package trafficdiff

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"trafficdiff/internal/pcap"
)

// TestClusterEndToEnd drives the full cluster serving stack over the
// real binaries: tracegen writes a checkpoint, two traced replicas
// serve it, and tracerouter spreads load across them, serves repeat
// seeded requests from its content-addressed cache byte-identically,
// survives a replica kill without surfacing 5xx, autoscales its own
// children in managed mode, and drains cleanly on SIGTERM.
// `make cluster-smoke` runs exactly this test.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e in -short mode")
	}
	dir := t.TempDir()
	tracegen := dir + "/tracegen"
	traced := dir + "/traced"
	tracerouter := dir + "/tracerouter"
	for bin, pkg := range map[string]string{
		tracegen: "./cmd/tracegen", traced: "./cmd/traced", tracerouter: "./cmd/tracerouter",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	ckpt := dir + "/model.ckpt"
	cmd := exec.Command(tracegen,
		"-classes", "amazon,teams", "-train", "4", "-per-class", "1",
		"-steps", "60", "-rows", "16", "-write-real=false",
		"-out", dir+"/synthetic", "-save", ckpt)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("tracegen: %v\n%s", err, out)
	}

	t.Run("static-spread-cache-failover", func(t *testing.T) {
		// Both replicas found via the machine-parseable ADDR= stdout
		// line — the same contract the managed-mode spawner relies on.
		rep0 := startAddrProc(t, traced, "-model", ckpt, "-addr", "127.0.0.1:0")
		defer rep0.kill(t)
		rep1 := startAddrProc(t, traced, "-model", ckpt, "-addr", "127.0.0.1:0")
		defer rep1.kill(t)
		router := startAddrProc(t, tracerouter,
			"-addr", "127.0.0.1:0",
			"-replicas", rep0.url+","+rep1.url,
			"-probe-interval", "50ms")
		defer router.kill(t)
		waitUntil(t, "router sees healthy replicas", func() bool {
			return httpStatus(router.url+"/readyz") == http.StatusOK
		})

		// Class spread under the default affinity policy: amazon warms
		// one replica, teams lands on the other.
		for i := 0; i < 4; i++ {
			for _, class := range []string{"amazon", "teams"} {
				code, body, _, err := postGenerate(router.url, fmt.Sprintf(`{"class":%q,"count":2,"seed":%d}`, class, 100+i))
				if err != nil || code != http.StatusOK {
					t.Fatalf("%s request %d: code=%d err=%v body=%q", class, i, code, err, body)
				}
			}
		}
		perUpstream := upstreamRequests(t, router.url)
		for _, rep := range []*addrProc{rep0, rep1} {
			if perUpstream[rep.url] == 0 {
				t.Fatalf("replica %s never routed to; spread: %v", rep.url, perUpstream)
			}
		}

		// Cache hit: byte-identical to the replica-served response, with
		// zero new upstream requests.
		req := `{"class":"amazon","count":2,"seed":555}`
		code, missBody, hdr, err := postGenerate(router.url, req)
		if err != nil || code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
			t.Fatalf("priming request: code=%d X-Cache=%q err=%v", code, hdr.Get("X-Cache"), err)
		}
		before := upstreamTotal(t, router.url)
		code, hitBody, hdr, err := postGenerate(router.url, req)
		if err != nil || code != http.StatusOK {
			t.Fatalf("repeat request: code=%d err=%v", code, err)
		}
		if hdr.Get("X-Cache") != "hit" {
			t.Fatalf("repeat seeded request X-Cache=%q, want hit", hdr.Get("X-Cache"))
		}
		if !bytes.Equal(missBody, hitBody) {
			t.Fatal("cache hit is not byte-identical to the replica-served response")
		}
		if after := upstreamTotal(t, router.url); after != before {
			t.Fatalf("cache hit touched a replica: upstream requests %d → %d", before, after)
		}
		if rd, err := pcap.NewReader(bytes.NewReader(hitBody)); err != nil {
			t.Fatalf("cached response is not a valid pcap: %v", err)
		} else if recs, err := rd.ReadAll(); err != nil || len(recs) == 0 {
			t.Fatalf("cached pcap: %d records, err %v", len(recs), err)
		}
		// The replica itself agrees byte for byte.
		code, direct, _, err := postGenerate(rep0.url, req)
		if err != nil || code != http.StatusOK {
			t.Fatalf("direct replica request: code=%d err=%v", code, err)
		}
		if !bytes.Equal(direct, hitBody) {
			t.Fatal("direct replica response differs from the router's cached bytes")
		}

		// Unseeded requests bypass the cache every time.
		for i := 0; i < 2; i++ {
			code, _, hdr, err := postGenerate(router.url, `{"class":"teams","count":1}`)
			if err != nil || code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
				t.Fatalf("unseeded request %d: code=%d X-Cache=%q err=%v", i, code, hdr.Get("X-Cache"), err)
			}
		}

		// Kill one replica: requests fail over with no 5xx surfaced —
		// the only statuses the mapping table allows here are 200 (the
		// survivor answers) and 429 (honest backpressure).
		rep0.kill(t)
		for i := 0; i < 20; i++ {
			code, body, _, err := postGenerate(router.url, fmt.Sprintf(`{"class":"amazon","count":1,"seed":%d}`, 9000+i))
			if err != nil {
				t.Fatalf("request %d after replica kill: %v", i, err)
			}
			if code != http.StatusOK && code != http.StatusTooManyRequests {
				t.Fatalf("request %d after replica kill: status %d body %q — 5xx leaked past the mapping table", i, code, body)
			}
		}
		waitUntil(t, "dead replica marked unhealthy", func() bool {
			for _, st := range replicaSnapshots(t, router.url) {
				if st.URL == rep0.url {
					return !st.Healthy
				}
			}
			return false
		})
	})

	t.Run("managed-autoscale-drain", func(t *testing.T) {
		router := startAddrProc(t, tracerouter,
			"-addr", "127.0.0.1:0",
			"-model", ckpt,
			"-traced-bin", traced,
			"-min-replicas", "2", "-max-replicas", "3",
			"-scale-interval", "100ms",
			"-probe-interval", "50ms")
		defer router.kill(t)

		// The scaler spawns to -min-replicas and the pool reports them.
		waitUntil(t, "managed replicas healthy", func() bool {
			healthy := 0
			for _, st := range replicaSnapshots(t, router.url) {
				if st.Healthy {
					healthy++
				}
			}
			return healthy == 2
		})

		code, body, hdr, err := postGenerate(router.url, `{"class":"teams","count":2,"seed":77}`)
		if err != nil || code != http.StatusOK {
			t.Fatalf("managed-mode request: code=%d err=%v body=%q", code, err, body)
		}
		if hdr.Get("X-Traced-Checkpoint") == "" {
			t.Fatal("managed replica response lacks checkpoint digest header")
		}

		// SIGTERM: the router drains, stops its children, and exits 0.
		if err := router.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := router.wait(60 * time.Second); err != nil {
			t.Fatalf("tracerouter did not exit cleanly after SIGTERM: %v\nstderr:\n%s", err, router.stderr())
		}
		if !strings.Contains(router.stderr(), "drained cleanly") {
			t.Fatalf("missing drain log; stderr:\n%s", router.stderr())
		}
	})
}

// addrProc is a child process located via its machine-parseable
// "ADDR=host:port" stdout line (traced and tracerouter both print one).
type addrProc struct {
	cmd  *exec.Cmd
	url  string
	outB *addrWriter
	errB *plainBuffer
	done chan error
}

// addrWriter scans the child's stdout for the ADDR= line.
type addrWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	found bool
	addr  chan string
}

func (w *addrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(p)
	if !w.found {
		s := w.buf.String()
		if i := strings.Index(s, "ADDR="); i >= 0 {
			rest := s[i+len("ADDR="):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				w.found = true
				w.addr <- strings.TrimSpace(rest[:j])
			}
		}
	}
	return n, err
}

type plainBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *plainBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *plainBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (p *addrProc) stderr() string { return p.errB.String() }

func (p *addrProc) wait(d time.Duration) error {
	select {
	case err := <-p.done:
		return err
	case <-time.After(d):
		return fmt.Errorf("timeout after %v", d)
	}
}

func (p *addrProc) kill(t *testing.T) {
	t.Helper()
	select {
	case <-p.done: // already exited
		return
	default:
	}
	if err := p.cmd.Process.Kill(); err == nil {
		<-p.done
	}
}

// startAddrProc launches bin and waits for its ADDR= stdout line.
func startAddrProc(t *testing.T, bin string, args ...string) *addrProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	outB := &addrWriter{addr: make(chan string, 1)}
	errB := &plainBuffer{}
	cmd.Stdout = outB
	cmd.Stderr = errB
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &addrProc{cmd: cmd, outB: outB, errB: errB, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()

	select {
	case addr := <-outB.addr:
		p.url = "http://" + addr
	case err := <-p.done:
		t.Fatalf("%s exited before printing ADDR=: %v\nstderr:\n%s", bin, err, p.stderr())
	case <-time.After(60 * time.Second):
		p.kill(t)
		t.Fatalf("%s never printed ADDR=; stderr:\n%s", bin, p.stderr())
	}
	return p
}

func httpStatus(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close() // status-only probe
	return resp.StatusCode
}

// replicaSnapshot mirrors the fields of the router's /replicas payload
// the e2e assertions need.
type replicaSnapshot struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Requests int64  `json:"requests_total"`
}

func replicaSnapshots(t *testing.T, routerURL string) []replicaSnapshot {
	t.Helper()
	resp, err := http.Get(routerURL + "/replicas")
	if err != nil {
		t.Fatal(err)
	}
	var out []replicaSnapshot
	derr := json.NewDecoder(resp.Body).Decode(&out)
	if cerr := resp.Body.Close(); derr == nil {
		derr = cerr
	}
	if derr != nil {
		t.Fatal(derr)
	}
	return out
}

func upstreamRequests(t *testing.T, routerURL string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, st := range replicaSnapshots(t, routerURL) {
		out[st.URL] = st.Requests
	}
	return out
}

func upstreamTotal(t *testing.T, routerURL string) int64 {
	t.Helper()
	total := int64(0)
	for _, n := range upstreamRequests(t, routerURL) {
		total += n
	}
	return total
}
