package trafficdiff

import (
	"encoding/json"
	"os"
	"os/exec"
	"regexp"
	"testing"
	"time"
)

// loadReport mirrors the fields of internal/load.Report the smoke test
// asserts on; decoding through a local struct keeps the root test
// coupled to the JSON contract (what CI consumers parse), not the Go
// type.
type loadReport struct {
	ScheduleDigest string  `json:"schedule_digest"`
	Requests       int     `json:"requests"`
	WallSeconds    float64 `json:"wall_seconds"`
	Totals         struct {
		OK        int `json:"ok"`
		Rejected  int `json:"rejected"`
		Draining  int `json:"draining"`
		Deadline  int `json:"deadline"`
		Upstream  int `json:"upstream"`
		OtherHTTP int `json:"other_http"`
		Transport int `json:"transport"`
		Unsent    int `json:"unsent"`
	} `json:"totals"`
	Classes []struct {
		SLOClass   string  `json:"slo_class"`
		Requests   int     `json:"requests"`
		P50Ms      float64 `json:"p50_ms"`
		P95Ms      float64 `json:"p95_ms"`
		Attainment float64 `json:"attainment"`
	} `json:"classes"`
}

// TestLoadEndToEnd is the load-harness smoke test over the real
// binaries: tracegen writes a checkpoint, traced serves it, and
// traceload drives the committed two-client example spec against it
// open-loop. The run must produce zero unexplained failures (5xx other
// than drain/deadline, transport errors), the JSON report must
// reconcile against the server's /metrics counters, and the schedule
// digest must be identical across runs. `make load-smoke` runs exactly
// this test.
func TestLoadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("load e2e in -short mode")
	}
	dir := t.TempDir()
	tracegen := dir + "/tracegen"
	traced := dir + "/traced"
	traceload := dir + "/traceload"
	for bin, pkg := range map[string]string{
		tracegen: "./cmd/tracegen", traced: "./cmd/traced", traceload: "./cmd/traceload",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	ckpt := dir + "/model.ckpt"
	cmd := exec.Command(tracegen,
		"-classes", "amazon,teams", "-train", "4", "-per-class", "1",
		"-steps", "60", "-rows", "16", "-write-real=false",
		"-out", dir+"/synthetic", "-save", ckpt)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("tracegen: %v\n%s", err, out)
	}

	const spec = "examples/loadspec/two-tier.yaml"
	digestRe := regexp.MustCompile(`digest ([0-9a-f]{16})`)

	// The schedule digest must be a pure function of the spec: two
	// dry runs of the binary agree.
	var digests []string
	for i := 0; i < 2; i++ {
		out, err := exec.Command(traceload, "-spec", spec, "-requests", "60", "-dry-run").CombinedOutput()
		if err != nil {
			t.Fatalf("traceload -dry-run: %v\n%s", err, out)
		}
		m := digestRe.FindSubmatch(out)
		if m == nil {
			t.Fatalf("no schedule digest in dry-run output:\n%s", out)
		}
		digests = append(digests, string(m[1]))
	}
	if digests[0] != digests[1] {
		t.Fatalf("dry-run digests differ: %s vs %s", digests[0], digests[1])
	}

	srv := startTraced(t, traced, ckpt, "-queue", "64", "-max-inflight", "16")
	defer srv.kill(t)

	// Fire the spec open-loop at the live server: 60 requests at the
	// spec's 40 req/s is a ~1.5s schedule. The -max-unexplained-5xx 0
	// gate makes traceload itself exit 2 on any 500/transport failure.
	jsonOut := dir + "/report.json"
	loadCmd := exec.Command(traceload,
		"-spec", spec, "-requests", "60", "-base", srv.url,
		"-json", jsonOut, "-quiet", "-max-unexplained-5xx", "0",
		"-timeout", "30s")
	if out, err := loadCmd.CombinedOutput(); err != nil {
		t.Fatalf("traceload: %v\n%s", err, out)
	}

	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, data)
	}

	// Report sanity: every scheduled request is accounted for exactly
	// once, and the digest matches the dry run's.
	if rep.Requests != 60 {
		t.Fatalf("report requests = %d, want 60", rep.Requests)
	}
	total := rep.Totals.OK + rep.Totals.Rejected + rep.Totals.Draining +
		rep.Totals.Deadline + rep.Totals.Upstream + rep.Totals.OtherHTTP +
		rep.Totals.Transport + rep.Totals.Unsent
	if total != rep.Requests {
		t.Fatalf("status buckets sum to %d, want %d: %+v", total, rep.Requests, rep.Totals)
	}
	if rep.ScheduleDigest[:16] != digests[0] {
		t.Fatalf("live digest %s != dry-run digest %s", rep.ScheduleDigest[:16], digests[0])
	}
	if rep.Totals.OtherHTTP != 0 || rep.Totals.Transport != 0 || rep.Totals.Unsent != 0 {
		t.Fatalf("unexplained failures: %+v", rep.Totals)
	}
	if rep.Totals.OK == 0 {
		t.Fatalf("no successful requests: %+v", rep.Totals)
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	for _, c := range rep.Classes {
		if c.Requests == 0 {
			t.Errorf("slo class %q saw no requests", c.SLOClass)
		}
		if c.Attainment < 0 || c.Attainment > 1 {
			t.Errorf("slo class %q attainment = %v", c.SLOClass, c.Attainment)
		}
		if c.P95Ms < c.P50Ms {
			t.Errorf("slo class %q p95 %v < p50 %v", c.SLOClass, c.P95Ms, c.P50Ms)
		}
	}

	// Reconcile client-side accounting against the server's /metrics:
	// the harness and the service must agree on every terminal path.
	m := fetchMetrics(t, srv.url)
	if got := int(m["completed_total"]); got != rep.Totals.OK {
		t.Errorf("server completed_total = %d, harness ok = %d", got, rep.Totals.OK)
	}
	if got := int(m["rejected_total"]); got != rep.Totals.Rejected {
		t.Errorf("server rejected_total = %d, harness 429s = %d", got, rep.Totals.Rejected)
	}
	if got := int(m["deadline_expired_total"]); got != rep.Totals.Deadline {
		t.Errorf("server deadline_expired_total = %d, harness 504s = %d", got, rep.Totals.Deadline)
	}
	if got := int(m["failed_total"]); got != 0 {
		t.Errorf("server failed_total = %d, want 0", got)
	}
	seen := int(m["bad_request_total"] + m["rejected_total"] + m["drain_rejected_total"] + m["accepted_total"])
	if seen != rep.Requests {
		t.Errorf("server saw %d requests, harness sent %d", seen, rep.Requests)
	}

	// The server must still be healthy and drain cleanly after the run.
	if err := srv.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := srv.wait(30 * time.Second); err != nil {
		t.Fatalf("traced did not exit cleanly after load: %v\nstderr:\n%s", err, srv.stderr())
	}
}
