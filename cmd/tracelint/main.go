// Command tracelint runs the project's domain-specific static analysis
// over the whole module and exits nonzero on findings.
//
// Usage:
//
//	tracelint              # analyze the module containing the cwd
//	tracelint -json        # machine-readable findings
//	tracelint -list        # list analyzers and what they enforce
//	tracelint -root DIR    # analyze the module rooted at DIR
//
// The analyzers enforce the determinism and robustness invariants the
// reproduction depends on; see internal/lint for the catalogue and
// DESIGN.md for the rationale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"trafficdiff/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracelint: ")
	var (
		asJSON = flag.Bool("json", false, "emit findings as a JSON array")
		list   = flag.Bool("list", false, "list analyzers and exit")
		root   = flag.String("root", "", "module root (default: nearest go.mod above cwd)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			log.Fatal(err)
		}
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		log.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		log.Fatal(err)
	}
	findings := lint.RunAnalyzers(loader.ModuleRoot(), loader.ModulePath(), pkgs, lint.All())

	if *asJSON {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("tracelint: %d packages, %d findings\n", len(pkgs), len(findings))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the cwd to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
