// Command tracelint runs the project's domain-specific static analysis
// over the whole module and exits nonzero on non-baselined findings.
//
// Usage:
//
//	tracelint                       # run every analyzer on the module containing the cwd
//	tracelint -list                 # list analyzers and what they enforce
//	tracelint -enable walltime,lockguard
//	tracelint -disable hotalloc     # all analyzers except these
//	tracelint -json                 # machine-readable report on stdout
//	tracelint -out findings.json    # write the JSON report to a file (always, even on failure)
//	tracelint -baseline .tracelint-baseline.json   # subtract accepted findings
//	tracelint -write-baseline .tracelint-baseline.json  # snapshot current findings and exit 0
//	tracelint -root DIR             # analyze the module rooted at DIR
//
// The analyzers enforce the determinism, concurrency and allocation
// invariants the reproduction depends on; see internal/lint for the
// catalogue and DESIGN.md for the rationale and annotation grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"trafficdiff/internal/lint"
)

// report is the machine-readable output shape: one object, so CI can
// read counts without jq gymnastics and the artifact is self-describing.
type report struct {
	Module    string         `json:"module"`
	Packages  int            `json:"packages"`
	Analyzers []string       `json:"analyzers"`
	Findings  []lint.Finding `json:"findings"`
	// Baselined counts findings absorbed by the baseline file.
	Baselined int `json:"baselined"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracelint: ")
	var (
		asJSON        = flag.Bool("json", false, "emit the report as JSON on stdout")
		outPath       = flag.String("out", "", "also write the JSON report to this file (written even when findings fail the run)")
		list          = flag.Bool("list", false, "list analyzers and exit")
		root          = flag.String("root", "", "module root (default: nearest go.mod above cwd)")
		enable        = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable       = flag.String("disable", "", "comma-separated analyzers to skip")
		baselinePath  = flag.String("baseline", "", "baseline file of accepted findings to subtract")
		writeBaseline = flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	)
	flag.Parse()

	analyzers, err := lint.Select(*enable, *disable)
	if err != nil {
		log.Fatal(err)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		dir, err = findModuleRoot()
		if err != nil {
			log.Fatal(err)
		}
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		log.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		log.Fatal(err)
	}
	findings := lint.RunAnalyzers(loader.ModuleRoot(), loader.ModulePath(), pkgs, analyzers)

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, findings); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d finding(s) to baseline %s", len(findings), *writeBaseline)
		return
	}

	baselined := 0
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			log.Fatal(err)
		}
		findings, baselined = b.Apply(findings)
	}
	if findings == nil {
		findings = []lint.Finding{}
	}

	rep := report{
		Module:    loader.ModulePath(),
		Packages:  len(pkgs),
		Analyzers: analyzerNames(analyzers),
		Findings:  findings,
		Baselined: baselined,
	}
	if *outPath != "" {
		if err := writeReport(*outPath, &rep); err != nil {
			log.Fatal(err)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("tracelint: %d packages, %d analyzers, %d findings (%d baselined)\n",
			rep.Packages, len(rep.Analyzers), len(findings), baselined)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func analyzerNames(analyzers []*lint.Analyzer) []string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return names
}

// writeReport writes the JSON report to path, creating parent
// directories as needed so `-out artifacts/findings.json` works in CI.
func writeReport(path string, rep *report) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// findModuleRoot walks upward from the cwd to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
