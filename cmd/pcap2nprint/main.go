// Command pcap2nprint converts between pcap captures and the nprint
// bit-level representation (CSV or Figure 2 style PNG).
//
// Usage:
//
//	pcap2nprint -in capture.pcap -out flow.csv          # pcap -> nprint CSV
//	pcap2nprint -in capture.pcap -out flow.png          # pcap -> image
//	pcap2nprint -in flow.csv -out replay.pcap           # nprint CSV -> pcap
//	pcap2nprint -in flow.png -out replay.pcap           # image -> pcap
//	pcap2nprint -in capture.pcap -out flow.csv -max 64  # first 64 packets
//
// The pcap -> nprint direction encodes every packet of the capture as
// one 1088-bit row (it does not split by flow; use tracegen for
// per-flow datasets). The reverse direction back-transforms rows into
// replayable packets with recomputed lengths and checksums.
//
// Reconstructed packets are stamped starting from a fixed epoch
// (2024-01-01T00:00:00Z, the same base timestamp the synthesis
// pipeline uses) so converting the same input twice yields
// byte-identical pcaps — the repo-wide determinism contract. Use
// -epoch to override the base timestamp (RFC3339).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"trafficdiff/internal/imagerep"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcap2nprint: ")
	in := flag.String("in", "", "input file (.pcap or .csv)")
	out := flag.String("out", "", "output file (.csv, .png or .pcap)")
	maxPkts := flag.Int("max", nprint.MaxPacketsPerFlow, "maximum packets to convert")
	epochIn := flag.String("epoch", defaultEpoch, "base RFC3339 timestamp stamped on reconstructed packets")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	epoch, err := time.Parse(time.RFC3339, *epochIn)
	if err != nil {
		log.Fatalf("invalid -epoch %q: %v", *epochIn, err)
	}
	if err := run(*in, *out, *maxPkts, epoch); err != nil {
		log.Fatal(err)
	}
}

// defaultEpoch is the fixed base timestamp for reconstructed packets.
// A wall-clock default (the old time.Now().UTC()) made the same
// conversion produce different pcaps on every invocation.
const defaultEpoch = "2024-01-01T00:00:00Z"

func run(in, out string, maxPkts int, epoch time.Time) error {
	switch filepath.Ext(in) {
	case ".pcap":
		m, err := pcapToMatrix(in, maxPkts)
		if err != nil {
			return err
		}
		switch filepath.Ext(out) {
		case ".csv":
			return writeFile(out, func(f *os.File) error { return nprint.WriteCSV(f, m) })
		case ".png":
			return writeFile(out, func(f *os.File) error {
				return imagerep.RenderPNG(f, imagerep.FromMatrix(m))
			})
		default:
			return fmt.Errorf("unsupported output %q for pcap input (want .csv or .png)", out)
		}
	case ".csv", ".png":
		if filepath.Ext(out) != ".pcap" {
			return fmt.Errorf("unsupported output %q for %s input (want .pcap)", out, filepath.Ext(in))
		}
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		var m *nprint.Matrix
		if filepath.Ext(in) == ".png" {
			im, perr := imagerep.ParsePNG(f)
			if perr != nil {
				return perr
			}
			m, err = imagerep.ToMatrix(im)
		} else {
			m, err = nprint.ReadCSV(f)
		}
		if err != nil {
			return err
		}
		pkts, skipped, err := nprint.ToPackets(m, nprint.DecodeOptions{
			Repair: true, Start: epoch, Interval: time.Millisecond,
		})
		if err != nil {
			return err
		}
		if skipped > 0 {
			log.Printf("skipped %d undecodable rows", skipped)
		}
		return writeFile(out, func(f *os.File) error {
			w, err := pcap.NewWriter(f, pcap.LinkTypeEthernet)
			if err != nil {
				return err
			}
			for _, p := range pkts {
				if err := w.WritePacket(p.Timestamp, p.Data); err != nil {
					return err
				}
			}
			return nil
		})
	default:
		return fmt.Errorf("unsupported input %q (want .pcap, .csv or .png)", in)
	}
}

func pcapToMatrix(path string, maxPkts int) (*nprint.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return nil, err
	}
	recs, err := r.ReadAll()
	if err != nil {
		log.Printf("warning: capture truncated (%v); converting %d packets", err, len(recs))
	}
	if maxPkts > 0 && len(recs) > maxPkts {
		recs = recs[:maxPkts]
	}
	m := nprint.NewMatrix(len(recs))
	for i, rec := range recs {
		p, err := packet.Decode(rec.Data, rec.Timestamp)
		if err != nil {
			log.Printf("warning: packet %d decodes partially (%v)", i, err)
		}
		nprint.EncodePacket(m.Row(i), p)
	}
	return m, nil
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		// The write error takes precedence over any close failure.
		_ = f.Close()
		return err
	}
	return f.Close()
}
