package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"trafficdiff/internal/packet"
	"trafficdiff/internal/pcap"
)

// writeTestPcap writes a small capture of TCP packets.
func writeTestPcap(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := pcap.NewWriter(f, pcap.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2023, 11, 28, 10, 0, 0, 0, time.UTC)
	var b packet.Builder
	for i := 0; i < 3; i++ {
		ip := packet.IPv4{TTL: 64, SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, ID: uint16(40 + i)}
		tcp := packet.TCP{SrcPort: 443, DstPort: 50123, Seq: uint32(100 * i), Flags: packet.FlagACK, Window: 29200}
		p := b.BuildTCP(ts.Add(time.Duration(i)*time.Millisecond), ip, tcp, make([]byte, i))
		if err := w.WritePacket(p.Timestamp, p.Data); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunDeterministicEpoch is the regression test for the
// time.Now().UTC() bug: converting the same CSV twice must yield
// byte-identical pcaps, and the first reconstructed packet must carry
// the fixed default epoch rather than the wall clock.
func TestRunDeterministicEpoch(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.pcap")
	csv := filepath.Join(dir, "flow.csv")
	writeTestPcap(t, in)

	epoch, err := time.Parse(time.RFC3339, defaultEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(in, csv, 0, epoch); err != nil {
		t.Fatal(err)
	}

	outA := filepath.Join(dir, "a.pcap")
	outB := filepath.Join(dir, "b.pcap")
	if err := run(csv, outA, 0, epoch); err != nil {
		t.Fatal(err)
	}
	if err := run(csv, outB, 0, epoch); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("converting the same CSV twice produced different pcaps")
	}

	// The first reconstructed packet is stamped with the epoch itself.
	f, err := os.Open(outA)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("reconstructed %d packets, want 3", len(recs))
	}
	if !recs[0].Timestamp.Equal(epoch) {
		t.Fatalf("first packet stamped %v, want %v", recs[0].Timestamp, epoch)
	}
}

// TestRunCustomEpoch checks that -epoch moves the reconstructed
// timestamps.
func TestRunCustomEpoch(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.pcap")
	csv := filepath.Join(dir, "flow.csv")
	out := filepath.Join(dir, "out.pcap")
	writeTestPcap(t, in)

	custom := time.Date(2030, 6, 15, 12, 0, 0, 0, time.UTC)
	if err := run(in, csv, 0, custom); err != nil {
		t.Fatal(err)
	}
	if err := run(csv, out, 0, custom); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || !recs[0].Timestamp.Equal(custom) {
		t.Fatalf("custom epoch not applied: first packet at %v", recs[0].Timestamp)
	}
}
