// Command traced serves on-demand trace generation over HTTP from a
// saved synthesizer checkpoint — the "generate N flows of class X"
// capability as a long-lived service instead of a batch CLI run.
//
// Produce a checkpoint once, then serve it:
//
//	tracegen -classes amazon,teams -save model.ckpt
//	traced -model model.ckpt -addr :8080
//	curl -d '{"class":"amazon","count":4,"seed":7}' localhost:8080/v1/generate > amazon.pcap
//
// Endpoints:
//
//	POST /v1/generate        {class, count, seed?, format?, timeout_ms?} → pcap or nprint CSV
//	GET  /healthz            liveness
//	GET  /readyz             readiness (503 while draining); bare probes get plain text
//	GET  /readyz?verbose=1   JSON: queue depth, in-flight flows, checkpoint digest,
//	                         DDIM steps, precision, classes, uptime — what tracerouter scores on
//	GET  /metrics            expvar counters: occupancy, admission wait, latency
//
// Requests carrying a seed are replayable: the body is a pure function
// of (checkpoint, class, count, seed), bit-identical on every replica —
// continuous batching never leaks batch composition into the bytes.
// Responses stamp X-Traced-Seed, X-Traced-Flows, X-Traced-Checkpoint
// (sha256 of the model file), X-Traced-DDIM-Steps and
// X-Traced-Precision, the coordinates tracerouter keys its
// content-addressed response cache on.
//
// -quant int8 switches inference to per-output-channel int8 weights
// (quantized once at load; training checkpoints are unaffected) and
// -ddim-steps overrides the checkpoint's sampler budget — together the
// fidelity-vs-speed frontier levers benchmarked by benchjson -suite
// quant. Replicas behind one router must agree on both, or the router
// refuses to cache (mixed precisions produce different bytes for the
// same seed).
// Overload answers 429 with Retry-After (bounded admission gate);
// SIGTERM/SIGINT drains in-flight work before exit.
//
// On startup the bound address is printed to stdout as a single
// machine-parseable line, "ADDR=host:port" — with -addr :0 this is how
// a parent process (tracerouter's managed mode, scripts, tests)
// discovers the ephemeral port.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traced: ")
	var (
		model    = flag.String("model", "", "checkpoint written by tracegen -save (required)")
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (:0 picks an ephemeral port)")
		queue    = flag.Int("queue", 64, "max requests concurrently inside the service; overflow gets 429")
		inflight = flag.Int("max-inflight", 16, "max flows simultaneously in the denoising batch")
		postWk   = flag.Int("post-workers", 2, "post-processing workers behind the step loop")
		stepRows = flag.Int("step-rows", 8, "max rows per denoiser forward, least-remaining-work first (negative = unlimited)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request deadline ceiling")
		maxFlows = flag.Int("max-flows", 64, "max flows per request")
		seedBase = flag.Uint64("seed-base", 1, "seed base for requests without an explicit seed")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget")
		gcPct    = flag.Int("gc-percent", 400, "GOGC for the serving process (heap is small; fewer GC cycles = less tail latency)")
		procs    = flag.Int("procs", 0, "GOMAXPROCS floor; 0 = raise to 2 so the network gets polled while compute runs")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
		quant    = flag.String("quant", "off", "inference weight precision: int8 (per-output-channel symmetric) or off (fp32)")
		ddim     = flag.Int("ddim-steps", -1, "override the checkpoint's DDIM step budget (0 = full DDPM; negative = keep checkpoint setting)")
	)
	flag.Parse()
	// The serving heap is a few MB; default GOGC=100 makes the collector
	// run every ~25ms under load, and on a single-CPU host each
	// concurrent mark phase steals up to ~12ms of wall clock — pure p95
	// tail. Trading heap headroom for fewer cycles is free here.
	debug.SetGCPercent(*gcPct)
	// With GOMAXPROCS=1 the Go scheduler only reaches its netpoll check
	// when the run queues are empty — and under load the step loop keeps
	// them full, so socket readiness is discovered by sysmon's ~10ms
	// fallback poll instead. A second P keeps a thread free to poll the
	// network, halving observed request p50 on single-CPU hosts.
	floor := *procs
	if floor <= 0 {
		floor = 2
	}
	if runtime.GOMAXPROCS(0) < floor {
		runtime.GOMAXPROCS(floor)
	}
	if *pprofA != "" {
		// Separate listener from the API so profiling is never exposed
		// on the serving address by accident.
		go func() {
			log.Printf("pprof: %v", http.ListenAndServe(*pprofA, nil))
		}()
	}
	cfg := serve.Config{
		QueueDepth:         *queue,
		MaxInFlight:        *inflight,
		PostWorkers:        *postWk,
		MaxStepRows:        *stepRows,
		RequestTimeout:     *timeout,
		MaxFlowsPerRequest: *maxFlows,
		SeedBase:           *seedBase,
	}
	if err := run(*model, *addr, cfg, *drain, *quant, *ddim); err != nil {
		log.Fatal(err)
	}
}

func run(model, addr string, cfg serve.Config, drain time.Duration, quant string, ddimSteps int) error {
	if model == "" {
		return fmt.Errorf("-model is required (produce one with: tracegen -save model.ckpt)")
	}
	// Read the checkpoint once: the bytes feed both the loader and the
	// content digest that keys router-side response caches. Seeded
	// generation is a pure function of (checkpoint, class, count, seed,
	// DDIM steps), so the digest pins the "checkpoint" coordinate.
	data, err := os.ReadFile(model)
	if err != nil {
		return err
	}
	digest := fmt.Sprintf("sha256:%x", sha256.Sum256(data))
	synth, err := core.Load(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("loading checkpoint: %w", err)
	}
	cfg.CheckpointDigest = digest
	// Precision is fixed before serving starts: SetPrecision quantizes
	// the loaded weights in place exactly once, so every response this
	// process ever writes carries the same X-Traced-Precision.
	if err := synth.SetPrecision(quant); err != nil {
		return err
	}
	cfg.Precision = synth.Precision()
	if ddimSteps >= 0 {
		synth.SetDDIMSteps(ddimSteps)
	}
	log.Printf("loaded checkpoint %s (classes: %s, digest %s, precision %s, ddim %d)",
		model, strings.Join(synth.Classes(), ","), digest, cfg.Precision, synth.DDIMSteps())

	srv, err := serve.New(synth, cfg)
	if err != nil {
		return fmt.Errorf("starting engine: %w", err)
	}
	srv.PublishExpvar("traced")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The e2e harness parses this line to find an ephemeral port.
	log.Printf("listening on %s", ln.Addr())
	// Machine-parseable bound-address line on stdout (logs go to
	// stderr): with -addr :0 a supervising router or test harness reads
	// exactly one "ADDR=host:port" line to find the ephemeral port,
	// with no race against the listener coming up.
	fmt.Printf("ADDR=%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		log.Printf("received %s; draining in-flight requests", got)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		log.Printf("drained cleanly")
		return nil
	}
}
