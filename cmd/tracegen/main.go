// Command tracegen trains the text-to-traffic pipeline on a labeled
// workload dataset and writes synthetic, replayable pcap files — one
// per class — plus the real fine-tuning captures for comparison.
//
// Usage:
//
//	tracegen -out ./synthetic                      # all 11 classes
//	tracegen -classes amazon,teams -per-class 20   # subset, 20 flows each
//	tracegen -generator gan -out ./gan-netflow     # GAN baseline (CSV)
//
// The diffusion generator emits pcaps (fine-grained raw packets); the
// GAN baseline emits NetFlow-like CSV records, mirroring the
// granularity gap the paper measures.
//
// # Train → save → serve
//
// tracegen is the checkpoint producer for the traced service: fine-tune
// once, save the pipeline, then serve concurrent generation requests
// from the frozen checkpoint without retraining:
//
//	tracegen -classes amazon,teams -save model.ckpt   # train + checkpoint
//	traced -model model.ckpt -addr :8080              # load + serve
//	curl -d '{"class":"amazon","count":4,"seed":7}' localhost:8080/v1/generate
//
// -save (alias -save-model) writes the checkpoint with Synthesizer.Save;
// -load-model resumes from one instead of training, so the same
// checkpoint replays identically in batch and serving mode.
//
// # Crash-safe training
//
// -checkpoint-every K writes an atomic mid-run training checkpoint
// (optimizer moments, EMA shadow, RNG position, loss curve) every K
// steps, and -resume continues a killed run from it — bit-identically
// to a run that was never interrupted:
//
//	tracegen -classes amazon,teams -checkpoint-every 25 -out synthetic
//	# ...killed mid-train...
//	tracegen -classes amazon,teams -checkpoint-every 25 -out synthetic \
//	    -resume synthetic/train.ckpt
//
// The resume run must use the same data and model flags; a mismatched
// config is refused. -progress-every N logs loss/grad-norm/steps per
// second during training.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"trafficdiff/internal/anonymize"
	"trafficdiff/internal/core"
	"trafficdiff/internal/eval"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/gan"
	"trafficdiff/internal/netflow"
	"trafficdiff/internal/pcap"
	"trafficdiff/internal/repair"
	"trafficdiff/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		outDir    = flag.String("out", "synthetic", "output directory")
		classesIn = flag.String("classes", "", "comma-separated classes (default: all 11)")
		perClass  = flag.Int("per-class", 8, "synthetic flows per class")
		trainN    = flag.Int("train", 16, "real fine-tuning flows per class")
		generator = flag.String("generator", "diffusion", "diffusion | gan")
		seed      = flag.Uint64("seed", 1, "random seed")
		rows      = flag.Int("rows", 32, "packets per flow image")
		steps     = flag.Int("steps", 300, "fine-tune steps")
		keepReal  = flag.Bool("write-real", true, "also write the real training flows as pcaps")
		saveModel = flag.String("save-model", "", "write the fine-tuned checkpoint to this path (for traced -model)")
		loadModel = flag.String("load-model", "", "load a saved synthesizer instead of training")
		anonKey   = flag.String("anonymize-key", "", "prefix-preservingly anonymize real pcaps with this key")
		stateful  = flag.Bool("stateful-repair", false, "rewrite generated TCP flows into valid conversations")
		ckptPath  = flag.String("checkpoint", "", "mid-run training checkpoint path (default <out>/train.ckpt when checkpointing is on)")
		ckptEvery = flag.Int("checkpoint-every", 0, "write a crash-safe training checkpoint every K steps (0 disables)")
		resume    = flag.String("resume", "", "resume fine-tuning from a mid-run checkpoint (requires the same data flags as the original run)")
		progressN = flag.Int("progress-every", 25, "log training progress every N steps (0 disables)")
	)
	flag.StringVar(saveModel, "save", "", "alias for -save-model")
	flag.Parse()

	classes := workload.ClassNames()
	if *classesIn != "" {
		classes = strings.Split(*classesIn, ",")
	}
	opts := runOpts{
		outDir: *outDir, classes: classes, perClass: *perClass, trainN: *trainN,
		generator: *generator, seed: *seed, rows: *rows, steps: *steps,
		keepReal: *keepReal, saveModel: *saveModel, loadModel: *loadModel,
		anonKey: *anonKey, stateful: *stateful,
		ckptPath: *ckptPath, ckptEvery: *ckptEvery, resume: *resume, progressN: *progressN,
	}
	if err := run(opts); err != nil {
		log.Fatal(err)
	}
}

type runOpts struct {
	outDir    string
	classes   []string
	perClass  int
	trainN    int
	generator string
	seed      uint64
	rows      int
	steps     int
	keepReal  bool
	saveModel string
	loadModel string
	anonKey   string
	stateful  bool
	ckptPath  string
	ckptEvery int
	resume    string
	progressN int
}

func run(o runOpts) error {
	outDir, classes, perClass, trainN := o.outDir, o.classes, o.perClass, o.trainN
	generator, seed, rows, steps, keepReal := o.generator, o.seed, o.rows, o.steps, o.keepReal
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ds, err := workload.Generate(workload.Config{
		Seed: seed, FlowsPerClass: trainN, Only: classes, MaxPacketsPerFlow: rows,
	})
	if err != nil {
		return err
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	if keepReal {
		for class, flows := range byClass {
			outFlows := flows
			if o.anonKey != "" {
				anon, err := anonymize.New([]byte(o.anonKey))
				if err != nil {
					return err
				}
				outFlows = make([]*flow.Flow, len(flows))
				for i, f := range flows {
					outFlows[i] = anon.Flow(f)
				}
			}
			if err := writePcap(filepath.Join(outDir, "real_"+class+".pcap"), outFlows); err != nil {
				return err
			}
		}
		suffix := ""
		if o.anonKey != "" {
			suffix = " (prefix-preservingly anonymized)"
		}
		log.Printf("wrote real fine-tuning pcaps for %d classes%s", len(byClass), suffix)
	}

	switch generator {
	case "diffusion":
		var synth *core.Synthesizer
		if o.loadModel != "" {
			f, err := os.Open(o.loadModel)
			if err != nil {
				return err
			}
			synth, err = core.Load(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			log.Printf("loaded fine-tuned synthesizer from %s", o.loadModel)
		} else {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Rows = rows
			cfg.BaseSteps = steps / 2
			cfg.FineTuneSteps = steps - steps/2
			var err error
			synth, err = core.New(cfg, classes)
			if err != nil {
				return err
			}
			ft := core.FineTuneOptions{
				CheckpointEvery: o.ckptEvery,
				ResumeFrom:      o.resume,
				Progress:        progressLogger(o.progressN),
			}
			// Checkpointing turns on whenever an interval or a resume
			// source is given; the file defaults next to the outputs.
			if o.ckptEvery > 0 || o.resume != "" {
				ft.CheckpointPath = o.ckptPath
				if ft.CheckpointPath == "" {
					if o.resume != "" {
						ft.CheckpointPath = o.resume
					} else {
						ft.CheckpointPath = filepath.Join(outDir, "train.ckpt")
					}
				}
			}
			if o.resume != "" {
				log.Printf("resuming fine-tune from %s", o.resume)
			}
			log.Printf("fine-tuning diffusion pipeline on %d flows (%d classes)...", len(ds.Flows), len(classes))
			report, err := synth.FineTuneWithOptions(byClass, ft)
			if err != nil {
				return err
			}
			logLossCurve("base", report.BaseLosses)
			logLossCurve("lora", report.FineTuneLosses)
		}
		if o.saveModel != "" {
			f, err := os.Create(o.saveModel)
			if err != nil {
				return err
			}
			if err := synth.Save(f); err != nil {
				// The Save error takes precedence over any close failure.
				_ = f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			log.Printf("saved synthesizer to %s", o.saveModel)
		}
		for _, class := range classes {
			res, err := synth.Generate(class, perClass)
			if err != nil {
				return err
			}
			outFlows := res.Flows
			if o.stateful {
				outFlows, err = repair.Flows(outFlows, seed+777)
				if err != nil {
					return err
				}
			}
			path := filepath.Join(outDir, "synthetic_"+class+".pcap")
			if err := writePcap(path, outFlows); err != nil {
				return err
			}
			log.Printf("%s: %d flows -> %s (raw protocol compliance %.3f, %d cells projected)",
				class, len(outFlows), path, res.RawCompliance, res.Repaired)
		}
	case "gan":
		micro := eval.MicroSpace(classes)
		var feats [][]float64
		var labels []int
		for _, f := range ds.Flows {
			feats = append(feats, netflow.FromFlow(f).FullVector())
			id, err := micro.LabelOf(f)
			if err != nil {
				return err
			}
			labels = append(labels, id)
		}
		gcfg := gan.DefaultConfig()
		gcfg.Seed = seed
		log.Printf("training NetShare-style GAN on %d NetFlow records...", len(feats))
		model, err := gan.Train(feats, labels, micro.K(), gcfg)
		if err != nil {
			return err
		}
		genFull, genL := model.Generate(perClass*len(classes), seed+1)
		genF := make([][]float64, len(genFull))
		for i, row := range genFull {
			genF[i] = netflow.ClassifierFeaturesFromFull(row)
		}
		path := filepath.Join(outDir, "gan_netflow.csv")
		if err := writeNetflowCSV(path, genF, genL, micro); err != nil {
			return err
		}
		log.Printf("wrote %d GAN NetFlow records -> %s", len(genF), path)
	default:
		return fmt.Errorf("unknown generator %q (want diffusion or gan)", generator)
	}
	return nil
}

func writePcap(path string, flows []*flow.Flow) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A failed close on a written file loses buffered packets; surface
	// it unless an earlier write error already explains the damage.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w, err := pcap.NewWriter(f, pcap.LinkTypeEthernet)
	if err != nil {
		return err
	}
	for _, fl := range flows {
		for _, p := range fl.Packets {
			if err := w.WritePacket(p.Timestamp, p.Data); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeNetflowCSV(path string, feats [][]float64, labels []int, micro *eval.LabelSpace) error {
	var b strings.Builder
	fmt.Fprint(&b, "label")
	for _, n := range netflow.FeatureNames {
		fmt.Fprintf(&b, ",%s", n)
	}
	fmt.Fprintln(&b)
	for i, row := range feats {
		fmt.Fprint(&b, micro.Names[labels[i]])
		for _, v := range row {
			fmt.Fprintf(&b, ",%g", v)
		}
		fmt.Fprintln(&b)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// progressLogger returns a FineTune progress hook that logs loss,
// gradient norm and step rate every n steps plus at each phase's last
// step; n <= 0 disables logging.
func progressLogger(n int) func(core.TrainProgress) {
	if n <= 0 {
		return nil
	}
	return func(p core.TrainProgress) {
		if (p.Step+1)%n != 0 && p.Step+1 != p.TotalSteps {
			return
		}
		log.Printf("%s step %d/%d: loss %.4f, grad norm %.3f, %.1f steps/s",
			p.Phase, p.Step+1, p.TotalSteps, p.Loss, p.GradNorm, p.StepsPerSec)
	}
}

func logLossCurve(name string, losses []float64) {
	if len(losses) == 0 {
		return
	}
	head, tail := losses[0], losses[len(losses)-1]
	log.Printf("%s training: %d steps, loss %.4f -> %.4f", name, len(losses), head, tail)
}
