// Command traceval regenerates the paper's tables and figures.
//
// Usage:
//
//	traceval table1              # Table 1: dataset composition
//	traceval table2              # Table 2: RF accuracy, 6 scenarios
//	traceval fig1a               # Figure 1(a): 11-class distribution
//	traceval fig1b               # Figure 1(b): 2-class distribution
//	traceval fig2                # Figure 2: synthetic Amazon flow image
//	traceval granularity         # §2.3: raw bits vs NetFlow on real data
//	traceval perclass-gan        # §2.3: one GAN per class
//	traceval all                 # everything above
//
// Flags scale the experiments: -train/-test/-synth set per-class flow
// counts, -fast shrinks the models for a quick smoke run. Figure 2's
// PNG lands in -out (default fig2_amazon.png).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"trafficdiff/internal/core"
	"trafficdiff/internal/eval"
	"trafficdiff/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceval: ")
	var (
		train = flag.Int("train", 24, "real training flows per class")
		test  = flag.Int("test", 8, "real test flows per class")
		synth = flag.Int("synth", 8, "synthetic flows per class")
		fast  = flag.Bool("fast", false, "shrink models for a quick run")
		out   = flag.String("out", "fig2_amazon.png", "figure 2 PNG path")
		seed  = flag.Uint64("seed", 7, "random seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "experiments: table1 table2 fig1a fig1b fig2 granularity perclass-gan fidelity speed all")
		os.Exit(2)
	}

	synthCfg := core.DefaultConfig()
	if *fast {
		synthCfg.Hidden = 64
		synthCfg.TimeSteps = 40
		synthCfg.BaseSteps = 50
		synthCfg.FineTuneSteps = 80
		synthCfg.DDIMSteps = 8
	}
	synthCfg.Seed = *seed

	run := func(name string) error {
		switch name {
		case "table1":
			ds, err := workload.Generate(workload.Config{Seed: *seed, Scale: 0.02, MaxPacketsPerFlow: 32})
			if err != nil {
				return err
			}
			fmt.Println("== Table 1: service recognition dataset (Scale=0.02 of paper counts) ==")
			fmt.Print(eval.Table1Report(ds))
		case "table2":
			cfg := eval.DefaultTable2Config()
			cfg.TrainFlowsPerClass = *train
			cfg.TestFlowsPerClass = *test
			cfg.SynthPerClass = *synth
			cfg.Synth = synthCfg
			cfg.Seed = *seed
			log.Printf("running table2 (train=%d/class, test=%d/class, synth=%d/class)...", *train, *test, *synth)
			res, err := eval.RunTable2(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== Table 2: RF accuracy across training/testing scenarios ==")
			fmt.Print(eval.Table2Report(res))
		case "fig1a", "fig1b":
			cfg := eval.DefaultFig1Config()
			if name == "fig1b" {
				cfg.Classes = []string{"netflix", "youtube"}
				cfg.SynthTotal = 4 * *synth
			} else {
				cfg.SynthTotal = 11 * *synth
			}
			cfg.Synth = synthCfg
			cfg.Seed = *seed + 21
			log.Printf("running %s...", name)
			res, err := eval.RunFig1(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("== Figure 1 (%s): class distribution, real vs GAN vs ours ==\n", name)
			fmt.Print(eval.Fig1Report(res))
		case "fig2":
			cfg := eval.DefaultFig2Config()
			cfg.TrainFlows = *train
			cfg.Synth = synthCfg
			cfg.Seed = *seed + 33
			log.Printf("running fig2...")
			res, err := eval.RunFig2(cfg)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*out, res.PNG, 0o644); err != nil {
				return err
			}
			fmt.Println("== Figure 2: color processed synthetic data for Amazon ==")
			fmt.Print(eval.Fig2Report(res))
			fmt.Printf("image written to %s\n", *out)
		case "granularity":
			cfg := eval.DefaultGranularityConfig()
			cfg.TrainFlowsPerClass = *train
			cfg.TestFlowsPerClass = *test
			cfg.Seed = *seed + 5
			res, err := eval.RunGranularity(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== §2.3: feature granularity on real data ==")
			fmt.Print(eval.GranularityReport(res))
		case "fidelity":
			cfg := eval.DefaultFidelityConfig()
			cfg.TrainFlows = *train
			cfg.TestFlows = *test
			cfg.GenFlows = *synth
			cfg.Synth = synthCfg
			cfg.Seed = *seed + 29
			log.Printf("running fidelity study...")
			res, err := eval.RunFidelity(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== fidelity: all generator families vs held-out real traffic ==")
			fmt.Print(eval.FidelityReport(res))
		case "speed":
			cfg := eval.DefaultSpeedConfig()
			cfg.Synth = synthCfg
			cfg.TrainFlows = *train
			cfg.GenFlows = *synth
			cfg.Seed = *seed + 17
			log.Printf("running generation-speed sweep...")
			res, err := eval.RunSpeed(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== §4: generative speed (sampling budget sweep) ==")
			fmt.Print(eval.SpeedReport(res))
		case "perclass-gan":
			cfg := eval.DefaultPerClassGANConfig()
			cfg.TrainFlowsPerClass = *train
			cfg.TestFlowsPerClass = *test
			cfg.SynthPerClass = *synth
			cfg.Seed = *seed + 13
			res, err := eval.RunPerClassGAN(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== §2.3: per-class GAN supplemental experiment ==")
			fmt.Print(eval.PerClassGANReport(res))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	names := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		names = []string{"table1", "granularity", "table2", "fig1a", "fig1b", "fig2", "perclass-gan", "fidelity", "speed"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			log.Fatalf("%s: %v", n, err)
		}
	}
}
