// Command traceload is the workload-spec load harness for traced and
// tracerouter: it expands a multi-client YAML spec into a seeded,
// reproducible open-loop request schedule, fires it at a live
// endpoint, and reports per-SLO-class latency percentiles, achieved
// throughput, SLO attainment, and shed/timeout rates.
//
//	traceload -spec examples/loadspec/two-tier.yaml -base http://127.0.0.1:8080
//	traceload -spec spec.yaml -base $URL -json report.json -duration 10
//
// The schedule — request offsets, flow counts, per-request seeds, and
// firing order — is a pure function of the spec (clients draw from
// per-client stats RNG splits in declaration order), so two runs of
// the same spec offer bit-identical request streams; the report's
// schedule_digest proves it. Open-loop means requests leave on
// schedule no matter how slowly the server answers, so overload shows
// up as shed/timeout rates and attainment, never as a quietly reduced
// offered rate. -dry-run prints the schedule digest and summary
// without needing a server at all.
//
// Exit status: 0 on a clean run, 1 on harness errors, 2 when
// -max-unexplained-5xx is set and exceeded (CI smoke gate).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trafficdiff/internal/load"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceload: ")
	var (
		specPath = flag.String("spec", "", "workload spec YAML (required)")
		baseURL  = flag.String("base", "", "target base URL, e.g. http://127.0.0.1:8080 (required unless -dry-run)")
		jsonOut  = flag.String("json", "", "also write the machine-readable JSON report to this file (- for stdout)")
		seed     = flag.Uint64("seed", 0, "override the spec's seed (0 = keep spec value)")
		duration = flag.Float64("duration", 0, "override the spec's duration_s (0 = keep spec value)")
		requests = flag.Int("requests", 0, "override the spec's num_requests (0 = keep spec value)")
		timeout  = flag.Duration("timeout", 60*time.Second, "client-side per-request timeout")
		dryRun   = flag.Bool("dry-run", false, "build and summarize the schedule without sending anything")
		quiet    = flag.Bool("quiet", false, "suppress per-second progress lines")
		max5xx   = flag.Int("max-unexplained-5xx", -1, "exit 2 if 500/other-5xx outcomes exceed this (negative = no gate)")
	)
	flag.Parse()
	code, err := run(*specPath, *baseURL, *jsonOut, *seed, *duration, *requests, *timeout, *dryRun, *quiet, *max5xx)
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(code)
}

func run(specPath, baseURL, jsonOut string, seed uint64, duration float64, requests int,
	timeout time.Duration, dryRun, quiet bool, max5xx int) (int, error) {
	if specPath == "" {
		return 1, fmt.Errorf("-spec is required")
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		return 1, err
	}
	spec, err := load.ParseSpec(data)
	if err != nil {
		return 1, err
	}
	// CLI overrides let CI reuse one spec at several scales.
	if seed != 0 {
		spec.Seed = seed
	}
	if duration > 0 {
		spec.DurationS = duration
	}
	if requests > 0 {
		spec.NumRequests = requests
	}
	if err := spec.Validate(); err != nil {
		return 1, err
	}
	sched, err := load.BuildSchedule(spec)
	if err != nil {
		return 1, err
	}
	log.Printf("schedule: %d requests over %.1fs, digest %s",
		len(sched.Requests), sched.Duration.Seconds(), sched.Digest()[:16])
	if dryRun {
		perClient := map[string]int{}
		for i := range sched.Requests {
			perClient[sched.Requests[i].Client]++
		}
		for _, c := range spec.Clients {
			log.Printf("  client %-16s %5d requests", c.ID, perClient[c.ID])
		}
		return 0, nil
	}
	if baseURL == "" {
		return 1, fmt.Errorf("-base is required (or use -dry-run)")
	}

	// SIGINT/SIGTERM cancels the remaining schedule; what already
	// completed is still reported.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	cfg := load.RunConfig{BaseURL: baseURL, Timeout: timeout}
	if !quiet {
		cfg.OnProgress = func(sent, done int) {
			log.Printf("progress: %d/%d sent, %d done", sent, len(sched.Requests), done)
		}
	}
	start := time.Now()
	outcomes, err := load.Run(ctx, sched, cfg)
	if err != nil {
		return 1, err
	}
	rep := load.BuildReport(sched, outcomes, baseURL, time.Since(start))

	if err := rep.WriteTable(os.Stdout); err != nil {
		return 1, err
	}
	if jsonOut != "" {
		if jsonOut == "-" {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				return 1, err
			}
		} else {
			f, err := os.Create(jsonOut)
			if err != nil {
				return 1, err
			}
			if err := rep.WriteJSON(f); err != nil {
				if cerr := f.Close(); cerr != nil {
					log.Printf("close %s: %v", jsonOut, cerr)
				}
				return 1, err
			}
			if err := f.Close(); err != nil {
				return 1, err
			}
			log.Printf("wrote %s", jsonOut)
		}
	}
	// The smoke gate: 429/503/504/502 are the server doing its job
	// under overload; 500s and transport failures are not.
	if max5xx >= 0 {
		unexplained := rep.Totals.OtherHTTP + rep.Totals.Transport
		if unexplained > max5xx {
			log.Printf("FAIL: %d unexplained failures (other_http=%d transport=%d) > budget %d",
				unexplained, rep.Totals.OtherHTTP, rep.Totals.Transport, max5xx)
			return 2, nil
		}
	}
	return 0, nil
}
