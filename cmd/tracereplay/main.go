// Command tracereplay feeds a capture file through the network-function
// pipeline — the downstream consumption path the paper motivates for
// synthetic traces ("replaying synthetic traffic for stress testing"),
// optionally under an emulated network condition.
//
// Usage:
//
//	tracereplay -in synthetic_amazon.pcap
//	tracereplay -in capture.pcap -condition cellular
//	tracereplay -in capture.pcap -strict -rate 100
//
// The report covers checksum validity, stateful TCP conformance, and
// flow/byte counts; -strict drops non-conforming packets instead of
// counting them.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/netem"
	"trafficdiff/internal/netfunc"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracereplay: ")
	var (
		in        = flag.String("in", "", "input .pcap file")
		condition = flag.String("condition", "clean", "clean | broadband | cellular | congested")
		strict    = flag.Bool("strict", false, "drop TCP-nonconforming packets instead of counting")
		rate      = flag.Int("rate", 0, "per-flow packet budget (0 = unlimited)")
		seed      = flag.Uint64("seed", 1, "condition randomness seed")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *condition, *strict, *rate, *seed); err != nil {
		log.Fatal(err)
	}
}

func conditionByName(name string) (netem.Condition, error) {
	switch name {
	case "clean":
		return netem.Clean, nil
	case "broadband":
		return netem.Broadband, nil
	case "cellular":
		return netem.Cellular, nil
	case "congested":
		return netem.Congested, nil
	default:
		return netem.Condition{}, fmt.Errorf("unknown condition %q", name)
	}
}

func run(path, condName string, strict bool, rate int, seed uint64) error {
	cond, err := conditionByName(condName)
	if err != nil {
		return err
	}
	cond.Seed = seed

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	var pkts []*packet.Packet
	decodeErrs := 0
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Printf("warning: capture truncated: %v", err)
			break
		}
		p, derr := packet.Decode(rec.Data, rec.Timestamp)
		if derr != nil {
			decodeErrs++
		}
		pkts = append(pkts, p)
	}
	log.Printf("loaded %d packets from %s (%d partial decodes)", len(pkts), path, decodeErrs)

	// Group into flows to apply the path condition per flow, then
	// flatten back in timestamp order.
	tbl := flow.NewTable()
	for _, p := range pkts {
		tbl.Add(p)
	}
	flows, st, err := netem.ApplyAll(tbl.Flows(), cond)
	if err != nil {
		return err
	}
	if condName != "clean" {
		log.Printf("condition %s: dropped %d/%d, duplicated %d, +%v mean delay",
			condName, st.Dropped, st.In, st.Duplicated, st.AddedDelay)
	}
	var replayPkts []*packet.Packet
	for _, fl := range flows {
		replayPkts = append(replayPkts, fl.Packets...)
	}

	checker := netfunc.NewTCPStateChecker()
	checker.Strict = strict
	pipeline := []netfunc.NF{
		netfunc.NewChecksumVerifier(),
		checker,
		netfunc.NewFlowMonitor(),
	}
	if rate > 0 {
		pipeline = append([]netfunc.NF{netfunc.NewRateLimiter(rate)}, pipeline...)
	}
	stats := netfunc.Replay(replayPkts, pipeline)
	fmt.Print(netfunc.Report(stats, pipeline))
	return nil
}
