// Command tracerouter is the cluster front tier for traced: it spreads
// generation requests over N traced replicas, serves repeat seeded
// requests from a content-addressed response cache without touching a
// replica at all, and (in managed mode) autoscales local traced child
// processes against queue-depth metrics.
//
// Static mode routes over replicas someone else runs:
//
//	traced -model model.ckpt -addr :8081 &
//	traced -model model.ckpt -addr :8082 &
//	tracerouter -addr :8090 -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Managed mode spawns and scales its own replicas:
//
//	tracerouter -addr :8090 -traced-bin ./traced -model model.ckpt \
//	    -min-replicas 2 -max-replicas 4
//
// Endpoints mirror traced's (POST /v1/generate, /healthz, /readyz,
// /metrics) plus GET /replicas (pool state as JSON). Routing policy is
// pluggable: -routing-scorers "class-affinity:3,queue-depth:2" sends
// same-class requests where the engine's continuous batch can merge
// them; "p2c" selects power-of-two-choices. Backpressure propagates
// honestly: when every replica sheds with 429 the router answers 429
// with the max Retry-After seen, never 502.
//
// Seeded generation is a pure function of (checkpoint digest, class,
// count, seed, DDIM steps, precision), so cached responses are byte-identical to
// replica-served ones; -cache-validate N re-proves that against a live
// replica on every Nth hit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trafficdiff/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracerouter: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8090", "listen address (:0 picks an ephemeral port)")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (static mode)")

		model      = flag.String("model", "", "checkpoint for managed replicas (managed mode; pairs with -traced-bin)")
		tracedBin  = flag.String("traced-bin", "traced", "traced binary to spawn in managed mode")
		tracedArgs = flag.String("traced-args", "", "extra space-separated flags passed to spawned traced processes")
		minReps    = flag.Int("min-replicas", 1, "managed mode: minimum replicas")
		maxReps    = flag.Int("max-replicas", 4, "managed mode: maximum replicas")

		scorers  = flag.String("routing-scorers", "class-affinity:3,queue-depth:2", `weighted routing policy, e.g. "class-affinity:3,queue-depth:2"; "p2c" = power-of-two-choices`)
		maxInfl  = flag.Int("replica-max-inflight", 32, "max requests the router keeps in flight per replica")
		probeInt = flag.Duration("probe-interval", 250*time.Millisecond, "replica health-probe cadence")

		cacheEntries  = flag.Int("cache-entries", 4096, "response cache entry bound (negative disables the cache)")
		cacheBytes    = flag.Int64("cache-bytes", 256<<20, "response cache byte bound")
		cacheValidate = flag.Int("cache-validate", 0, "re-verify every Nth cache hit against a replica (0 = off)")

		scaleLoad  = flag.Float64("scale-up-load", 4, "managed mode: avg per-replica load (queue+in-flight) that counts a tick toward scale-up")
		scaleUpT   = flag.Int("scale-up-ticks", 2, "managed mode: consecutive loaded ticks before scaling up")
		scaleDownT = flag.Int("scale-down-ticks", 20, "managed mode: consecutive idle ticks before scaling down")
		scaleInt   = flag.Duration("scale-interval", 500*time.Millisecond, "managed mode: autoscale decision cadence")

		drain  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget (router drain + replica drains)")
		pprofA = flag.String("pprof", "", "serve net/http/pprof on this address; off when empty")
	)
	flag.Parse()
	if *pprofA != "" {
		go func() {
			log.Printf("pprof: %v", http.ListenAndServe(*pprofA, nil))
		}()
	}
	if err := run(routerOptions{
		addr: *addr, replicas: *replicas,
		model: *model, tracedBin: *tracedBin, tracedArgs: *tracedArgs,
		minReplicas: *minReps, maxReplicas: *maxReps,
		scorers: *scorers, maxInflight: *maxInfl, probeInterval: *probeInt,
		cacheEntries: *cacheEntries, cacheBytes: *cacheBytes, cacheValidate: *cacheValidate,
		scaleLoad: *scaleLoad, scaleUpTicks: *scaleUpT, scaleDownTicks: *scaleDownT, scaleInterval: *scaleInt,
		drain: *drain,
	}); err != nil {
		log.Fatal(err)
	}
}

type routerOptions struct {
	addr, replicas               string
	model, tracedBin, tracedArgs string
	minReplicas, maxReplicas     int
	scorers                      string
	maxInflight                  int
	probeInterval                time.Duration
	cacheEntries                 int
	cacheBytes                   int64
	cacheValidate                int
	scaleLoad                    float64
	scaleUpTicks, scaleDownTicks int
	scaleInterval                time.Duration
	drain                        time.Duration
}

func run(o routerOptions) error {
	static := o.replicas != ""
	managed := o.model != ""
	if static == managed {
		return fmt.Errorf("exactly one of -replicas (static) or -model (managed) is required")
	}
	policy, err := cluster.ParseScorers(o.scorers)
	if err != nil {
		return err
	}

	pool := cluster.NewPool(cluster.PoolConfig{
		ProbeInterval: o.probeInterval,
		MaxInFlight:   o.maxInflight,
	})
	defer pool.Close()

	var scaler *cluster.Scaler
	if managed {
		var extra []string
		if strings.TrimSpace(o.tracedArgs) != "" {
			extra = strings.Fields(o.tracedArgs)
		}
		scaler, err = cluster.NewScaler(pool, cluster.ScalerConfig{
			Min: o.minReplicas, Max: o.maxReplicas,
			Interval:    o.scaleInterval,
			ScaleUpLoad: o.scaleLoad,
			UpTicks:     o.scaleUpTicks, DownTicks: o.scaleDownTicks,
			DrainTimeout: o.drain,
			Spawn:        cluster.TracedSpawner(o.tracedBin, o.model, extra),
			Logf:         log.Printf,
		})
		if err != nil {
			return err
		}
		log.Printf("managing %d-%d traced replicas (%s -model %s)", o.minReplicas, o.maxReplicas, o.tracedBin, o.model)
	} else {
		for _, u := range strings.Split(o.replicas, ",") {
			u = strings.TrimSpace(strings.TrimSuffix(u, "/"))
			if u == "" {
				continue
			}
			pool.Add(u)
			log.Printf("replica: %s", u)
		}
		if pool.Size() == 0 {
			return fmt.Errorf("-replicas: no usable URLs in %q", o.replicas)
		}
	}

	rt := cluster.NewRouter(pool, cluster.Config{
		Scorers:       policy,
		CacheEntries:  o.cacheEntries,
		CacheBytes:    o.cacheBytes,
		ValidateEvery: o.cacheValidate,
	})
	rt.PublishExpvar("tracerouter")
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s (policy %q)", ln.Addr(), o.scorers)
	// Same machine-parseable contract as traced: supervisors read one
	// ADDR= line from stdout to find an ephemeral port without races.
	fmt.Printf("ADDR=%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- rt.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if scaler != nil {
			scaler.Close()
		}
		return err
	case got := <-sig:
		log.Printf("received %s; draining", got)
		ctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			if scaler != nil {
				scaler.Close()
			}
			return fmt.Errorf("drain: %w", err)
		}
		if scaler != nil {
			scaler.Close()
		}
		log.Printf("drained cleanly")
		return nil
	}
}
