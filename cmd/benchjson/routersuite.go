package main

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"trafficdiff/internal/cluster"
	"trafficdiff/internal/core"
	"trafficdiff/internal/serve"
)

// runRouterSuite is the built-in `-suite router` benchmark: the same
// tiny synthesizer the serve suite trains, served by in-process traced
// replicas behind a real cluster.Router over TCP. Three records come
// out of one invocation:
//
//   - RouterGenerate/replicas=1: closed-loop throughput through the
//     router with a single replica — the routing-tier overhead baseline.
//   - RouterGenerate/replicas=3: the same load over three replicas —
//     the scaling headroom the cluster tier buys.
//   - RouterCache/hit-vs-miss: per-request latency of repeat seeded
//     requests (content-addressed cache hits) against first-contact
//     misses; ns/op carries the hit p95 and Custom carries the
//     p95 speedup the ISSUE's acceptance criterion (≥5×) reads.
func runRouterSuite(label string, requests, clients int) (*Run, error) {
	synth, err := trainServeSynth()
	if err != nil {
		return nil, fmt.Errorf("training synthesizer: %w", err)
	}
	debug.SetGCPercent(400)
	if runtime.GOMAXPROCS(0) == 1 {
		runtime.GOMAXPROCS(2)
	}

	replicas := make([]*benchReplica, 3)
	for i := range replicas {
		r, err := newBenchReplica(synth)
		if err != nil {
			return nil, err
		}
		defer r.shutdown()
		replicas[i] = r
	}
	classes := synth.Classes()

	run := &Run{Label: label, CPU: fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))}

	// Throughput: 1 replica vs 3 replicas, unique seeds (every request
	// a cache miss) so the replicas do real work.
	for _, n := range []int{1, 3} {
		urls := make([]string, n)
		for i := 0; i < n; i++ {
			urls[i] = replicas[i].url
		}
		rt, err := newBenchRouter(urls)
		if err != nil {
			return nil, err
		}
		seedBase := uint64(1_000_000 * (n + 1))
		lat, elapsed, err := driveRouter(rt.addr, classes, requests, clients, seedBase)
		rt.shutdown()
		if err != nil {
			return nil, fmt.Errorf("replicas=%d: %w", n, err)
		}
		sum := time.Duration(0)
		for _, d := range lat {
			sum += d
		}
		run.Results = append(run.Results, Result{
			Name:       fmt.Sprintf("RouterGenerate/replicas=%d/clients=%d", n, clients),
			Package:    "trafficdiff/internal/cluster",
			Iterations: int64(requests),
			NsPerOp:    float64(sum) / float64(requests),
			Custom: map[string]float64{
				"req/s":   float64(requests) / elapsed.Seconds(),
				"flows/s": float64(requests*2) / elapsed.Seconds(),
				"p50_ms":  float64(pctile(lat, 0.50)) / float64(time.Millisecond),
				"p99_ms":  float64(pctile(lat, 0.99)) / float64(time.Millisecond),
			},
		})
	}

	// Cache hit vs miss: a fresh router (cold cache) over one replica.
	// The miss pass primes every coordinate; the hit pass repeats it
	// request for request.
	rt, err := newBenchRouter([]string{replicas[0].url})
	if err != nil {
		return nil, err
	}
	defer rt.shutdown()
	missLat, _, err := driveRouter(rt.addr, classes, requests, 1, 5_000_000)
	if err != nil {
		return nil, fmt.Errorf("cache miss pass: %w", err)
	}
	hitLat, _, err := driveRouter(rt.addr, classes, requests, 1, 5_000_000)
	if err != nil {
		return nil, fmt.Errorf("cache hit pass: %w", err)
	}
	missP95 := pctile(missLat, 0.95)
	hitP95 := pctile(hitLat, 0.95)
	speedup := 0.0
	if hitP95 > 0 {
		speedup = float64(missP95) / float64(hitP95)
	}
	run.Results = append(run.Results, Result{
		Name:       "RouterCache/hit-vs-miss",
		Package:    "trafficdiff/internal/cluster",
		Iterations: int64(requests),
		NsPerOp:    float64(hitP95),
		Custom: map[string]float64{
			"miss_p50_ms": float64(pctile(missLat, 0.50)) / float64(time.Millisecond),
			"miss_p95_ms": float64(missP95) / float64(time.Millisecond),
			"hit_p50_ms":  float64(pctile(hitLat, 0.50)) / float64(time.Millisecond),
			"hit_p95_ms":  float64(hitP95) / float64(time.Millisecond),
			"speedup_p95": speedup,
		},
	})
	return run, nil
}

// pctile reads the p-th percentile from an unsorted latency sample.
func pctile(lat []time.Duration, p float64) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(p*float64(len(s)-1))]
}

// driveRouter runs a closed loop of `requests` seeded 2-flow requests
// over `clients` connections and returns per-request latencies.
func driveRouter(addr string, classes []string, requests, clients int, seedBase uint64) ([]time.Duration, time.Duration, error) {
	latencies := make([]time.Duration, requests)
	errs := make([]error, clients)
	var next sync.Mutex
	cursor := 0
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := newBenchClient(addr)
			defer cl.close()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= requests {
					return
				}
				t0 := time.Now()
				body := fmt.Sprintf(`{"class":%q,"count":2,"seed":%d}`, classes[i%len(classes)], seedBase+uint64(i))
				if err := cl.post(body); err != nil {
					errs[c] = fmt.Errorf("request %d: %w", i, err)
					return
				}
				latencies[i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return latencies, elapsed, nil
}

// benchReplica is one in-process traced instance on a real listener.
type benchReplica struct {
	srv *serve.Server
	url string
}

func newBenchReplica(synth *core.Synthesizer) (*benchReplica, error) {
	srv, err := serve.New(synth, serve.Config{
		QueueDepth: 256, MaxInFlight: 24, PostWorkers: 2, MaxStepRows: 3,
		// All replicas serve the same in-process checkpoint: the digest
		// just has to be shared and non-empty for the router to key its
		// content-addressed cache.
		CheckpointDigest: "sha256:benchsynth",
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() {
		// Returns ErrServerClosed after Shutdown; the bench is done
		// measuring by then.
		_ = srv.Serve(ln)
	}()
	return &benchReplica{srv: srv, url: "http://" + ln.Addr().String()}, nil
}

func (r *benchReplica) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Best-effort drain at bench teardown; the numbers are collected.
	_ = r.srv.Shutdown(ctx)
}

// benchRouter is a cluster.Router on a real listener over the given
// replica URLs, ready (all replicas healthy) when returned.
type benchRouter struct {
	rt   *cluster.Router
	pool *cluster.Pool
	addr string
	ln   net.Listener
}

func newBenchRouter(urls []string) (*benchRouter, error) {
	pool := cluster.NewPool(cluster.PoolConfig{ProbeInterval: 20 * time.Millisecond})
	for _, u := range urls {
		pool.Add(u)
	}
	policy, err := cluster.ParseScorers("class-affinity:3,queue-depth:2")
	if err != nil {
		pool.Close()
		return nil, err
	}
	rt := cluster.NewRouter(pool, cluster.Config{Scorers: policy})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pool.Close()
		return nil, err
	}
	go func() {
		// Returns nil after Shutdown.
		_ = rt.Serve(ln)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for pool.Healthy() < len(urls) {
		if time.Now().After(deadline) {
			_ = ln.Close() // teardown on startup failure; the error below is the one that matters
			pool.Close()
			return nil, fmt.Errorf("router: %d/%d replicas healthy after 10s", pool.Healthy(), len(urls))
		}
		time.Sleep(5 * time.Millisecond)
	}
	return &benchRouter{rt: rt, pool: pool, addr: ln.Addr().String(), ln: ln}, nil
}

func (b *benchRouter) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Teardown: measured requests have completed already.
	_ = b.rt.Shutdown(ctx)
	b.pool.Close()
}
