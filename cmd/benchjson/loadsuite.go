package main

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"trafficdiff/internal/load"
)

// loadSuiteSpec is the embedded two-client workload the `-suite load`
// benchmark offers: a bulk poisson class and a bursty gamma
// interactive class, the same shape examples/loadspec ships for real
// deployments, scaled down to the tiny in-process synthesizer.
const loadSuiteSpec = `
version: "1"
seed: 17
aggregate_rate: 120
num_requests: 64
clients:
  - id: bulk
    rate_fraction: 0.7
    class: amazon
    format: pcap
    slo_class: batch
    slo_target_ms: 2000
    arrival:
      process: poisson
    size_distribution:
      type: constant
      params:
        value: 2
  - id: interactive
    rate_fraction: 0.3
    class: teams
    format: csv
    slo_class: realtime
    slo_target_ms: 500
    arrival:
      process: gamma
      cv: 2.0
    size_distribution:
      type: constant
      params:
        value: 1
`

// runLoadSuite is the `-suite load` benchmark: it trains the tiny
// in-process synthesizer, serves it, and drives the embedded
// workload spec through the traceload harness (internal/load) — the
// full spec → schedule → open-loop fire → per-SLO-class report path.
// NsPerOp carries the batch-class p95 so `benchjson -compare` gates
// end-to-end latency regressions under mixed open-loop load; the
// custom fields record attainment and shed rates per SLO class.
func runLoadSuite(label string, requests int) (*Run, error) {
	synth, err := trainServeSynth()
	if err != nil {
		return nil, fmt.Errorf("training synthesizer: %w", err)
	}
	srv, err := newBenchServer(synth)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() {
		// Serve returns http.ErrServerClosed after Shutdown; the bench
		// is done measuring by then.
		_ = srv.Serve(ln)
	}()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Best-effort drain at bench teardown; the numbers are already
		// collected.
		_ = srv.Shutdown(ctx)
	}()

	baseURL := "http://" + ln.Addr().String()
	spec, err := load.ParseSpec([]byte(loadSuiteSpec))
	if err != nil {
		return nil, fmt.Errorf("embedded spec: %w", err)
	}
	spec.NumRequests = requests
	sched, err := load.BuildSchedule(spec)
	if err != nil {
		return nil, err
	}

	// Warm up once per class so first-request costs (lazy buffers, page
	// faults) don't land in the measured percentiles.
	warm := newBenchClient(ln.Addr().String())
	for i, class := range synth.Classes() {
		if err := postOnce(warm, class, uint64(i)+1); err != nil {
			warm.close()
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	warm.close()

	start := time.Now()
	outcomes, err := load.Run(context.Background(), sched, load.RunConfig{
		BaseURL: baseURL,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	rep := load.BuildReport(sched, outcomes, baseURL, time.Since(start))
	if rep.Totals.OtherHTTP+rep.Totals.Transport > 0 {
		return nil, fmt.Errorf("load suite saw %d unexplained failures (other_http=%d transport=%d)",
			rep.Totals.OtherHTTP+rep.Totals.Transport, rep.Totals.OtherHTTP, rep.Totals.Transport)
	}

	custom := map[string]float64{
		"offered_rps":       rep.OfferedRPS,
		"ok/s":              float64(rep.Totals.OK) / rep.WallSeconds,
		"shed_429":          float64(rep.Totals.Rejected),
		"max_send_delay_ms": rep.MaxSendDelayMs,
	}
	var gate float64
	for i := range rep.Classes {
		c := &rep.Classes[i]
		custom[c.SLOClass+"_p50_ms"] = c.P50Ms
		custom[c.SLOClass+"_p95_ms"] = c.P95Ms
		custom[c.SLOClass+"_attain"] = c.Attainment
		if c.SLOClass == "batch" {
			gate = c.P95Ms * float64(time.Millisecond)
		}
	}
	if !(gate > 0) {
		return nil, fmt.Errorf("load suite produced no batch-class latencies to gate on")
	}
	return &Run{
		Label: label,
		CPU:   fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		Results: []Result{{
			Name:       fmt.Sprintf("LoadHarness/clients=%d/requests=%d", len(spec.Clients), len(sched.Requests)),
			Package:    "trafficdiff/internal/load",
			Iterations: int64(len(sched.Requests)),
			// ns/op is the batch-class p95: the number the load
			// regression gate is written against.
			NsPerOp: gate,
			Custom:  custom,
		}},
	}, nil
}
