package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/serve"
	"trafficdiff/internal/workload"
)

// runServeSuite is the built-in `-suite serve` benchmark: it trains a
// tiny synthesizer in-process, serves it over a real TCP listener, and
// drives concurrent seeded generation requests through the full HTTP →
// queue → coalescer → sampler path. The Run it returns carries
// throughput (req/s, flows/s) and latency percentiles (p50/p99 ms) in
// the same Result shape the stdin parser produces, so serve records
// append into a BENCH_serve.json document exactly like kernel records
// append into BENCH_kernels.json.
func runServeSuite(label string, requests, clients int) (*Run, error) {
	synth, err := trainServeSynth()
	if err != nil {
		return nil, fmt.Errorf("training synthesizer: %w", err)
	}
	srv := serve.New(synth, serve.Config{QueueDepth: 256, MaxBatch: 8, Workers: runtime.NumCPU()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() {
		// Serve returns ErrServerClosed after Shutdown; the bench is
		// already done measuring by then.
		_ = srv.Serve(ln)
	}()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// All measured requests have completed; a drain failure here
		// cannot invalidate the numbers already collected.
		_ = srv.Shutdown(ctx)
	}()

	url := "http://" + ln.Addr().String() + "/v1/generate"
	classes := synth.Classes()

	// Warm up once per class so first-request costs don't skew p99.
	for i, class := range classes {
		if err := postOnce(url, class, uint64(i)+1); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}

	const flowsPerRequest = 2
	latencies := make([]time.Duration, requests)
	errs := make([]error, clients)
	var next sync.Mutex
	cursor := 0
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= requests {
					return
				}
				t0 := time.Now()
				if err := postOnce(url, classes[i%len(classes)], uint64(1000+i)); err != nil {
					errs[c] = fmt.Errorf("request %d: %w", i, err)
					return
				}
				latencies[i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, d := range latencies {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	name := fmt.Sprintf("ServeGenerate/clients=%d/flows=%d", clients, flowsPerRequest)
	return &Run{
		Label: label,
		CPU:   fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		Results: []Result{{
			Name:       name,
			Package:    "trafficdiff/internal/serve",
			Iterations: int64(requests),
			NsPerOp:    float64(sum) / float64(requests),
			Custom: map[string]float64{
				"req/s":   float64(requests) / elapsed.Seconds(),
				"flows/s": float64(requests*flowsPerRequest) / elapsed.Seconds(),
				"p50_ms":  float64(pct(0.50)) / float64(time.Millisecond),
				"p99_ms":  float64(pct(0.99)) / float64(time.Millisecond),
			},
		}},
	}, nil
}

// postOnce issues one seeded generate request and fully consumes the
// response, failing on any non-200 status.
func postOnce(url, class string, seed uint64) error {
	body := fmt.Sprintf(`{"class":%q,"count":2,"seed":%d}`, class, seed)
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	return nil
}

// trainServeSynth fine-tunes the same down-scaled pipeline the serve
// tests use: big enough to exercise real sampling, small enough that
// the bench measures serving overhead rather than training time.
func trainServeSynth() (*core.Synthesizer, error) {
	cfg := core.DefaultConfig()
	cfg.Rows = 16
	cfg.DownH = 2
	cfg.DownW = 16
	cfg.Hidden = 48
	cfg.TimeSteps = 30
	cfg.BaseSteps = 25
	cfg.FineTuneSteps = 35
	cfg.Batch = 8
	cfg.DDIMSteps = 6
	classes := []string{"amazon", "teams"}
	s, err := core.New(cfg, classes)
	if err != nil {
		return nil, err
	}
	ds, err := workload.Generate(workload.Config{
		Seed: 11, FlowsPerClass: 4, Only: classes, MaxPacketsPerFlow: cfg.Rows,
	})
	if err != nil {
		return nil, err
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	if _, err := s.FineTune(byClass); err != nil {
		return nil, err
	}
	return s, nil
}
