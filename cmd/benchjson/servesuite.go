package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/serve"
	"trafficdiff/internal/workload"
)

// runServeSuite is the built-in `-suite serve` benchmark: it trains a
// tiny synthesizer in-process, serves it over a real TCP listener, and
// drives concurrent seeded generation requests through the full HTTP →
// queue → coalescer → sampler path. The Run it returns carries
// throughput (req/s, flows/s) and latency percentiles (p50/p99 ms) in
// the same Result shape the stdin parser produces, so serve records
// append into a BENCH_serve.json document exactly like kernel records
// append into BENCH_kernels.json.
func runServeSuite(label string, requests, clients int) (*Run, error) {
	synth, err := trainServeSynth()
	if err != nil {
		return nil, fmt.Errorf("training synthesizer: %w", err)
	}
	srv, err := newBenchServer(synth)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() {
		// Serve returns ErrServerClosed after Shutdown; the bench is
		// already done measuring by then.
		_ = srv.Serve(ln)
	}()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// All measured requests have completed; a drain failure here
		// cannot invalidate the numbers already collected.
		_ = srv.Shutdown(ctx)
	}()

	addr := ln.Addr().String()
	classes := synth.Classes()

	// Warm up once per class so first-request costs don't skew p99.
	warm := newBenchClient(addr)
	for i, class := range classes {
		if err := postOnce(warm, class, uint64(i)+1); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	warm.close()

	const flowsPerRequest = 2
	latencies := make([]time.Duration, requests)
	errs := make([]error, clients)
	var next sync.Mutex
	cursor := 0
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := newBenchClient(addr)
			defer cl.close()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= requests {
					return
				}
				t0 := time.Now()
				if err := postOnce(cl, classes[i%len(classes)], uint64(1000+i)); err != nil {
					errs[c] = fmt.Errorf("request %d: %w", i, err)
					return
				}
				latencies[i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, d := range latencies {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	name := fmt.Sprintf("ServeGenerate/clients=%d/flows=%d", clients, flowsPerRequest)
	return &Run{
		Label: label,
		CPU:   fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		Results: []Result{{
			Name:       name,
			Package:    "trafficdiff/internal/serve",
			Iterations: int64(requests),
			NsPerOp:    float64(sum) / float64(requests),
			Custom: map[string]float64{
				"req/s":   float64(requests) / elapsed.Seconds(),
				"flows/s": float64(requests*flowsPerRequest) / elapsed.Seconds(),
				"p50_ms":  float64(pct(0.50)) / float64(time.Millisecond),
				"p99_ms":  float64(pct(0.99)) / float64(time.Millisecond),
			},
		}},
	}, nil
}

// runServeStaggerSuite is the `-suite serve-stagger` benchmark: it
// measures time-to-first-result for short requests that arrive while
// long generations are already in flight — the head-of-line-blocking
// scenario continuous batching exists to fix. Background clients keep
// the sampler saturated with 8-flow requests; a probe client fires a
// 1-flow request every few milliseconds and measures its end-to-end
// latency. Under a closed-batch server the probe waits for whole
// background generations to finish; under continuous batching it joins
// the in-flight denoising batch at the next timestep boundary. NsPerOp
// carries the probe p95 so `benchjson -compare` gates regressions on
// exactly the tail this scenario is about.
func runServeStaggerSuite(label string, probes int) (*Run, error) {
	synth, err := trainServeSynth()
	if err != nil {
		return nil, fmt.Errorf("training synthesizer: %w", err)
	}
	srv, err := newBenchServer(synth)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() {
		// Serve returns http.ErrServerClosed on Shutdown; the bench
		// only cares that the listener came up.
		_ = srv.Serve(ln)
	}()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Best-effort drain at bench teardown; a slow drain is not a
		// benchmark failure.
		_ = srv.Shutdown(ctx)
	}()

	addr := ln.Addr().String()
	classes := synth.Classes()
	warm := newBenchClient(addr)
	for i, class := range classes {
		if err := postOnce(warm, class, uint64(i)+1); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	warm.close()

	const bgClients = 2
	const bgFlows = 8
	var stop atomic.Bool
	var bgFlowsDone atomic.Int64
	var bgErr atomic.Value
	var bg sync.WaitGroup
	for c := 0; c < bgClients; c++ {
		bg.Add(1)
		go func(c int) {
			defer bg.Done()
			cl := newBenchClient(addr)
			defer cl.close()
			for i := 0; !stop.Load(); i++ {
				body := fmt.Sprintf(`{"class":%q,"count":%d,"seed":%d}`,
					classes[c%len(classes)], bgFlows, 10_000+c*100_000+i)
				if err := cl.post(body); err != nil {
					if !stop.Load() {
						bgErr.Store(fmt.Errorf("background client %d: %w", c, err))
					}
					return
				}
				bgFlowsDone.Add(bgFlows)
			}
		}(c)
	}
	// Let the background load occupy the sampler before probing.
	time.Sleep(50 * time.Millisecond)

	probeCl := newBenchClient(addr)
	defer probeCl.close()
	latencies := make([]time.Duration, 0, probes)
	start := time.Now()
	for i := 0; i < probes; i++ {
		t0 := time.Now()
		body := fmt.Sprintf(`{"class":%q,"count":1,"seed":%d}`, classes[i%len(classes)], 500_000+i)
		if err := probeCl.post(body); err != nil {
			stop.Store(true)
			bg.Wait()
			return nil, fmt.Errorf("probe %d: %w", i, err)
		}
		latencies = append(latencies, time.Since(t0))
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)
	stop.Store(true)
	bg.Wait()
	if err, ok := bgErr.Load().(error); ok && err != nil {
		return nil, err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, d := range latencies {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	return &Run{
		Label: label,
		CPU:   fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		Results: []Result{{
			Name:       fmt.Sprintf("ServeStaggered/probe=1flow/bg=%dx%dflow", bgClients, bgFlows),
			Package:    "trafficdiff/internal/serve",
			Iterations: int64(probes),
			// ns/op is the probe p95 time-to-first-result: the number
			// the continuous-batching acceptance criterion and the serve
			// regression gate are written against.
			NsPerOp: float64(pct(0.95)),
			Custom: map[string]float64{
				"ttfr_p50_ms":  float64(pct(0.50)) / float64(time.Millisecond),
				"ttfr_p95_ms":  float64(pct(0.95)) / float64(time.Millisecond),
				"ttfr_mean_ms": float64(sum) / float64(probes) / float64(time.Millisecond),
				"bg_flows/s":   float64(bgFlowsDone.Load()) / elapsed.Seconds(),
			},
		}},
	}, nil
}

// postOnce issues one seeded generate request and fully consumes the
// response, failing on any non-200 status.
func postOnce(c *benchClient, class string, seed uint64) error {
	return c.post(fmt.Sprintf(`{"class":%q,"count":2,"seed":%d}`, class, seed))
}

// benchClient is a minimal HTTP/1.1 load-generation client: one
// persistent connection, requests written directly to the socket and
// responses parsed from it on the calling goroutine. net/http's
// Transport runs a write loop and a read loop goroutine per
// connection; on the single-CPU hosts this bench targets those hops
// wait in the run queue behind the server's own compute and inflate
// every measured latency by several milliseconds — the wrk approach
// (an event loop on the caller's thread) measures the service instead
// of the client library.
type benchClient struct {
	addr string
	path string
	conn net.Conn
	br   *bufio.Reader
}

func newBenchClient(addr string) *benchClient {
	return &benchClient{addr: addr, path: "/v1/generate"}
}

// post issues one generate request and fully consumes the response,
// failing on any non-200 status. The connection is kept alive across
// calls and re-dialed after an error.
func (c *benchClient) post(body string) error {
	if c.conn == nil {
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return err
		}
		c.conn = conn
		c.br = bufio.NewReader(conn)
	}
	fail := func(err error) error {
		// The connection is already broken; the original error is the
		// one worth reporting.
		_ = c.conn.Close()
		c.conn = nil
		return err
	}
	req := fmt.Sprintf("POST %s HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		c.path, len(body), body)
	if _, err := io.WriteString(c.conn, req); err != nil {
		return fail(err)
	}
	resp, err := http.ReadResponse(c.br, nil)
	if err != nil {
		return fail(err)
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("status %d: %s", resp.StatusCode, data))
	}
	return nil
}

// close releases the client's connection.
func (c *benchClient) close() {
	if c.conn != nil {
		// Teardown of a one-way bench connection; nothing to flush.
		_ = c.conn.Close()
		c.conn = nil
	}
}

// newBenchServer builds the serve stack both suites load-test; one
// place to construct it keeps pre/post comparisons honest about
// everything except the serving architecture itself.
func newBenchServer(synth *core.Synthesizer) (*serve.Server, error) {
	// Mirror traced's serving defaults so the bench measures the service
	// as deployed: GC paced at 400 (the heap is a few MB; default-pace
	// cycles put their concurrent mark straight into the latency tail)
	// and at least two scheduler Ps. With GOMAXPROCS=1 and compute
	// always runnable, the Go scheduler never reaches its netpoll check,
	// so socket readiness is only discovered by sysmon's ~10ms fallback
	// poll — a second P keeps a thread free to poll the network.
	debug.SetGCPercent(400)
	if runtime.GOMAXPROCS(0) == 1 {
		runtime.GOMAXPROCS(2)
	}
	// MaxInFlight leaves headroom above the background load (2 clients
	// × 8 flows) so probe requests join the in-flight batch at the next
	// step boundary instead of queueing behind it.
	return serve.New(synth, serve.Config{QueueDepth: 256, MaxInFlight: 24, PostWorkers: 2, MaxStepRows: 3})
}

// trainServeSynth fine-tunes the same down-scaled pipeline the serve
// tests use: big enough to exercise real sampling, small enough that
// the bench measures serving overhead rather than training time.
func trainServeSynth() (*core.Synthesizer, error) {
	cfg := core.DefaultConfig()
	cfg.Rows = 16
	cfg.DownH = 2
	cfg.DownW = 16
	cfg.Hidden = 48
	cfg.TimeSteps = 30
	cfg.BaseSteps = 25
	cfg.FineTuneSteps = 35
	cfg.Batch = 8
	cfg.DDIMSteps = 6
	classes := []string{"amazon", "teams"}
	s, err := core.New(cfg, classes)
	if err != nil {
		return nil, err
	}
	ds, err := workload.Generate(workload.Config{
		Seed: 11, FlowsPerClass: 4, Only: classes, MaxPacketsPerFlow: cfg.Rows,
	})
	if err != nil {
		return nil, err
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	if _, err := s.FineTune(byClass); err != nil {
		return nil, err
	}
	return s, nil
}
