// Command benchjson converts `go test -bench -benchmem` text output
// (read from stdin) into a JSON snapshot suitable for committing next
// to the code it measures (BENCH_kernels.json). Each invocation parses
// one bench run into a labeled record; with -append the record is added
// to the existing file's runs array so before/after comparisons live in
// one document.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -label post-PR -out BENCH_kernels.json -append
//
// With -suite serve it runs a built-in end-to-end benchmark instead of
// parsing stdin: a tiny synthesizer is trained in-process, served from
// an ephemeral listener, and loaded with concurrent generate requests;
// the record carries req/s, flows/s, and p50/p99 latency:
//
//	benchjson -suite serve -label post-PR -out BENCH_serve.json -append
//
// With -suite router the same replicas run behind an in-process
// cluster router (internal/cluster): the record compares 1- vs
// 3-replica throughput and content-addressed cache-hit vs miss latency:
//
//	benchjson -suite router -label post-PR -out BENCH_router.json -append
//
// With -suite quant it sweeps the quantized-inference frontier: one
// in-process synthesizer measured at every (precision, DDIM steps)
// configuration for flows/s and Synthetic/Real RF accuracy against an
// fp32/64-step reference. The suite doubles as the fidelity-vs-speed
// gate — it exits non-zero when any point's accuracy drops more than
// the built-in tolerance below the reference or the best int8 point is
// under the required speedup:
//
//	benchjson -suite quant -label post-PR -out BENCH_quant.json -append
//
// With -suite load the in-process server is driven through the
// traceload harness (internal/load): an embedded two-client workload
// spec — bulk poisson plus bursty gamma interactive — is expanded to a
// seeded open-loop schedule and fired at the server; the record
// carries per-SLO-class p50/p95, attainment, and shed counts, gated on
// the batch-class p95:
//
//	benchjson -suite load -label post-PR -out BENCH_load.json -append
//
// With -compare it becomes a regression gate instead of a recorder:
//
//	benchjson -compare old.json new.json [-threshold 0.10]
//
// pairs benchmarks between the latest run of each snapshot (or the
// runs picked by -old-label/-new-label, which may address two runs in
// one file) and exits non-zero when any ns/op regressed past the
// threshold. `make bench-gate` wires this against the committed
// baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Custom holds testing.B.ReportMetric extras (e.g. flows/s).
	Custom map[string]float64 `json:"custom,omitempty"`
}

// Run is one labeled bench invocation.
type Run struct {
	Label   string   `json:"label"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Doc is the committed snapshot: a series of runs over time.
type Doc struct {
	Runs []Run `json:"runs"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	label := flag.String("label", "bench", "label for this run")
	appendRun := flag.Bool("append", false, "append to an existing -out document instead of overwriting")
	suite := flag.String("suite", "", "run a built-in suite instead of parsing stdin (serve, serve-stagger, router, quant, load)")
	requests := flag.Int("requests", 64, "total requests for -suite serve/load (probe count for serve-stagger)")
	clients := flag.Int("clients", 8, "concurrent clients for -suite serve")
	compare := flag.Bool("compare", false, "compare two snapshots: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.10, "per-benchmark ns/op regression threshold for -compare")
	oldLabel := flag.String("old-label", "", "run label to compare from (default: last run in old.json)")
	newLabel := flag.String("new-label", "", "run label to compare to (default: last run in new.json)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("benchjson: pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two snapshot paths")
			os.Exit(2)
		}
		ok, err := runCompare(flag.Arg(0), flag.Arg(1), *oldLabel, *newLabel, *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	var run *Run
	var err error
	switch *suite {
	case "":
		run, err = parse(bufio.NewScanner(os.Stdin), *label)
	case "serve":
		run, err = runServeSuite(*label, *requests, *clients)
	case "serve-stagger":
		run, err = runServeStaggerSuite(*label, *requests)
	case "router":
		run, err = runRouterSuite(*label, *requests, *clients)
	case "quant":
		run, err = runQuantSuite(*label)
	case "load":
		run, err = runLoadSuite(*label, *requests)
	default:
		err = fmt.Errorf("unknown suite %q (want serve, serve-stagger, router, quant or load)", *suite)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	doc := &Doc{}
	if *appendRun && *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: existing %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	doc.Runs = append(doc.Runs, *run)

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads go-test bench output. Lines look like:
//
//	pkg: trafficdiff/internal/tensor
//	cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
//	BenchmarkMatMul/8x2176x128-4  	 100	 123456 ns/op	 7.9 flows/s	 64 B/op	 2 allocs/op
func parse(sc *bufio.Scanner, label string) (*Run, error) {
	run := &Run{Label: label}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: trimProcSuffix(fields[0]), Package: pkg, Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Custom == nil {
					r.Custom = map[string]float64{}
				}
				r.Custom[unit] = v
			}
		}
		run.Results = append(run.Results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(run.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return run, nil
}

// trimProcSuffix drops the -N GOMAXPROCS suffix go test appends to
// benchmark names, so records compare across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
