package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineRun() Run {
	return Run{Label: "baseline", Results: []Result{
		{Name: "BenchmarkGenerationSpeedDDPM", Package: "trafficdiff", NsPerOp: 200_000_000},
		{Name: "BenchmarkGenerationSpeedDDIM", Package: "trafficdiff", NsPerOp: 30_000_000},
		{Name: "BenchmarkMatMul/8x2176x128", Package: "trafficdiff/internal/tensor", NsPerOp: 1_000_000},
	}}
}

func TestCompareDetectsInjectedRegression(t *testing.T) {
	old := baselineRun()
	injected := Run{Label: "candidate", Results: []Result{
		// 8% slower: inside the 10% threshold.
		{Name: "BenchmarkGenerationSpeedDDPM", Package: "trafficdiff", NsPerOp: 216_000_000},
		// 50% slower: the synthetic regression the gate must catch.
		{Name: "BenchmarkGenerationSpeedDDIM", Package: "trafficdiff", NsPerOp: 45_000_000},
		{Name: "BenchmarkMatMul/8x2176x128", Package: "trafficdiff/internal/tensor", NsPerOp: 900_000},
	}}
	deltas := compareRuns(&old, &injected, 0.10)
	if len(deltas) != 3 {
		t.Fatalf("compared %d benchmarks, want 3", len(deltas))
	}
	byName := map[string]delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["trafficdiff/BenchmarkGenerationSpeedDDPM"].Regression {
		t.Error("8%% slowdown flagged as regression at 10%% threshold")
	}
	if !byName["trafficdiff/BenchmarkGenerationSpeedDDIM"].Regression {
		t.Error("50%% slowdown not flagged as regression")
	}
	if byName["trafficdiff/internal/tensor/BenchmarkMatMul/8x2176x128"].Regression {
		t.Error("speedup flagged as regression")
	}
}

func TestCompareSkipsUnpairedBenchmarks(t *testing.T) {
	old := baselineRun()
	next := Run{Label: "next", Results: []Result{
		{Name: "BenchmarkGenerationSpeedDDPM", Package: "trafficdiff", NsPerOp: 190_000_000},
		{Name: "BenchmarkBrandNew", Package: "trafficdiff", NsPerOp: 5},
	}}
	deltas := compareRuns(&old, &next, 0.10)
	if len(deltas) != 1 {
		t.Fatalf("compared %d benchmarks, want 1 (new benchmark must be skipped)", len(deltas))
	}
	if deltas[0].Name != "trafficdiff/BenchmarkGenerationSpeedDDPM" {
		t.Fatalf("compared %q", deltas[0].Name)
	}
}

func TestFindRunByLabelAndDefault(t *testing.T) {
	doc := &Doc{Runs: []Run{
		{Label: "a"}, {Label: "b"}, {Label: "a"},
	}}
	r, err := findRun(doc, "")
	if err != nil || r != &doc.Runs[2] {
		t.Fatalf("default run = %v, %v; want last", r, err)
	}
	r, err = findRun(doc, "b")
	if err != nil || r.Label != "b" {
		t.Fatalf("labeled run = %v, %v", r, err)
	}
	if _, err := findRun(doc, "missing"); err == nil {
		t.Error("missing label should error")
	}
	if _, err := findRun(&Doc{}, ""); err == nil {
		t.Error("empty doc should error")
	}
}

// TestRunCompareEndToEnd exercises the file-level path `make
// bench-gate` uses: a candidate snapshot with an injected regression
// against a committed baseline must fail the gate; a clean candidate
// must pass.
func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc Doc) string {
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", Doc{Runs: []Run{baselineRun()}})

	slow := baselineRun()
	slow.Label = "regressed"
	slow.Results[1].NsPerOp *= 2
	slowPath := write("slow.json", Doc{Runs: []Run{slow}})

	var report strings.Builder
	ok, err := runCompare(oldPath, slowPath, "", "", 0.10, &report)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("gate passed despite 2x regression")
	}
	if !strings.Contains(report.String(), "REGRESSION") {
		t.Errorf("report does not mark the regression:\n%s", report.String())
	}

	fast := baselineRun()
	fast.Label = "improved"
	for i := range fast.Results {
		fast.Results[i].NsPerOp *= 0.9
	}
	fastPath := write("fast.json", Doc{Runs: []Run{fast}})
	ok, err = runCompare(oldPath, fastPath, "", "", 0.10, &report)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("gate failed on an across-the-board speedup")
	}
}
