package main

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"trafficdiff/internal/eval"
)

// Quant suite gate parameters. The tolerance is absolute micro
// accuracy: every (precision, steps) point must hold Synthetic/Real RF
// accuracy within this much of the fp32/64-step reference. The sweep's
// datasets are small (CI budget), so per-point accuracy moves in
// 1/test-set-size quanta; the tolerance absorbs that sampling noise
// while still catching a quantization bug that collapses class
// structure (which drops accuracy toward chance, far past any noise).
const (
	quantFidelityTol = 0.20
	quantMinSpeedup  = 2.0
)

// runQuantSuite is the built-in `-suite quant` benchmark: the
// fidelity-vs-speed frontier behind the int8 + few-step DDIM serving
// path. One tiny synthesizer is trained in-process, then every
// (precision ∈ {fp32, int8}) × (steps ∈ {4, 8, 16}) configuration is
// measured over identical weights against an fp32/64-step reference —
// flows/s for the speed axis, Synthetic/Real RF accuracy for the
// fidelity axis. The suite is also the gate: it exits non-zero when
// any point's accuracy falls more than quantFidelityTol below the
// reference, or when the best int8 point is less than quantMinSpeedup
// times faster than it.
func runQuantSuite(label string) (*Run, error) {
	debug.SetGCPercent(400)
	if runtime.GOMAXPROCS(0) == 1 {
		runtime.GOMAXPROCS(2)
	}

	cfg := eval.DefaultFrontierConfig()
	rep, err := eval.RunFrontier(cfg)
	if err != nil {
		return nil, fmt.Errorf("frontier sweep: %w", err)
	}
	if err := eval.GateFrontier(rep, quantFidelityTol, quantMinSpeedup); err != nil {
		return nil, fmt.Errorf("frontier gate: %w", err)
	}

	run := &Run{Label: label, CPU: fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))}
	for _, p := range rep.Points {
		name := fmt.Sprintf("QuantFrontier/%s/steps=%d", p.Precision, p.Steps)
		if p.Reference {
			name += "/ref"
		}
		run.Results = append(run.Results, Result{
			Name:       name,
			Package:    "trafficdiff/internal/eval",
			Iterations: 1,
			NsPerOp:    float64(time.Second) / p.FlowsPerS, // ns per generated flow
			Custom: map[string]float64{
				"flows/s":  p.FlowsPerS,
				"speedup":  p.Speedup,
				"rf_micro": p.RFMicro,
				"rf_macro": p.RFMacro,
			},
		})
	}
	return run, nil
}
