package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file implements `benchjson -compare old.json new.json`: the
// bench regression gate. It pairs benchmarks between one run from each
// snapshot and fails (non-zero exit) when any benchmark's ns/op grew
// past the threshold — the check that would have caught PR 2's silent
// end-to-end generation regression before it landed.

// delta is one benchmark's before/after comparison.
type delta struct {
	Name       string
	OldNs      float64
	NewNs      float64
	Regression bool
}

// findRun selects the run to compare from a snapshot: the latest run
// with the given label, or the last run overall when label is empty.
func findRun(doc *Doc, label string) (*Run, error) {
	if len(doc.Runs) == 0 {
		return nil, fmt.Errorf("snapshot has no runs")
	}
	if label == "" {
		return &doc.Runs[len(doc.Runs)-1], nil
	}
	for i := len(doc.Runs) - 1; i >= 0; i-- {
		if doc.Runs[i].Label == label {
			return &doc.Runs[i], nil
		}
	}
	return nil, fmt.Errorf("no run labeled %q", label)
}

// compareRuns pairs benchmarks by package+name and marks a regression
// wherever the new ns/op exceeds the old by more than threshold
// (0.10 = 10%). Benchmarks present in only one run are skipped: adding
// or retiring a benchmark is not a regression.
func compareRuns(oldRun, newRun *Run, threshold float64) []delta {
	key := func(r *Result) string { return r.Package + "/" + r.Name }
	old := make(map[string]*Result, len(oldRun.Results))
	for i := range oldRun.Results {
		old[key(&oldRun.Results[i])] = &oldRun.Results[i]
	}
	var out []delta
	for i := range newRun.Results {
		nr := &newRun.Results[i]
		or, ok := old[key(nr)]
		if !ok || !(or.NsPerOp > 0) {
			continue
		}
		out = append(out, delta{
			Name:       key(nr),
			OldNs:      or.NsPerOp,
			NewNs:      nr.NsPerOp,
			Regression: nr.NsPerOp > or.NsPerOp*(1+threshold),
		})
	}
	return out
}

// runCompare loads both snapshots, compares the selected runs, writes
// a report to w, and reports whether the gate passes.
func runCompare(oldPath, newPath, oldLabel, newLabel string, threshold float64, w io.Writer) (bool, error) {
	load := func(path string) (*Doc, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		doc := &Doc{}
		if err := json.Unmarshal(data, doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return doc, nil
	}
	oldDoc, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return false, err
	}
	oldRun, err := findRun(oldDoc, oldLabel)
	if err != nil {
		return false, fmt.Errorf("%s: %w", oldPath, err)
	}
	newRun, err := findRun(newDoc, newLabel)
	if err != nil {
		return false, fmt.Errorf("%s: %w", newPath, err)
	}
	deltas := compareRuns(oldRun, newRun, threshold)
	if len(deltas) == 0 {
		return false, fmt.Errorf("no comparable benchmarks between %q and %q", oldRun.Label, newRun.Label)
	}
	if _, err := fmt.Fprintf(w, "comparing %q -> %q (threshold %+.0f%%)\n", oldRun.Label, newRun.Label, threshold*100); err != nil {
		return false, err
	}
	ok := true
	for _, d := range deltas {
		change := (d.NewNs - d.OldNs) / d.OldNs * 100
		mark := "ok"
		if d.Regression {
			mark = "REGRESSION"
			ok = false
		}
		if _, err := fmt.Fprintf(w, "  %-60s %14.0f -> %14.0f ns/op  %+7.1f%%  %s\n",
			d.Name, d.OldNs, d.NewNs, change, mark); err != nil {
			return false, err
		}
	}
	return ok, nil
}
