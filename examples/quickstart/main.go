// Quickstart: train the text-to-traffic pipeline on two applications
// and generate synthetic, replayable flows.
//
//	go run ./examples/quickstart
//
// It fine-tunes a small diffusion model on generated "real" Amazon
// (TCP) and Teams (UDP) traffic, prompts it per class, and prints the
// protocol makeup of the synthetic flows — demonstrating the paper's
// headline controllability property (synthetic Amazon stays all-TCP,
// Teams all-UDP), then writes one synthetic pcap per class.
package main

import (
	"fmt"
	"log"
	"os"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/pcap"
	"trafficdiff/internal/workload"
)

func main() {
	log.SetFlags(0)
	classes := []string{"amazon", "teams"}

	// 1. Obtain labeled "real" traffic (the workload generator stands
	//    in for curated captures).
	ds, err := workload.Generate(workload.Config{
		Seed: 42, FlowsPerClass: 12, Only: classes, MaxPacketsPerFlow: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}

	// 2. Configure and fine-tune the synthesizer (small settings so
	//    this runs in under a minute on a laptop CPU).
	cfg := core.DefaultConfig()
	cfg.Hidden = 96
	cfg.BaseSteps = 120
	cfg.FineTuneSteps = 180
	synth, err := core.New(cfg, classes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fine-tuning on", len(ds.Flows), "flows ...")
	report, err := synth.FineTune(byClass)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base loss %.3f -> %.3f, lora loss %.3f -> %.3f\n",
		report.BaseLosses[0], report.BaseLosses[len(report.BaseLosses)-1],
		report.FineTuneLosses[0], report.FineTuneLosses[len(report.FineTuneLosses)-1])

	// 3. Generate and inspect.
	for _, class := range classes {
		prompt, _ := synth.Prompt(class)
		res, err := synth.Generate(class, 4)
		if err != nil {
			log.Fatal(err)
		}
		tcp, udp, icmp, total := 0, 0, 0, 0
		for _, f := range res.Flows {
			for _, p := range f.Packets {
				total++
				switch {
				case p.TCP != nil:
					tcp++
				case p.UDP != nil:
					udp++
				case p.ICMP != nil:
					icmp++
				}
			}
		}
		fmt.Printf("%-8s (prompt %q): %d flows, %d packets — TCP %d, UDP %d, ICMP %d (raw compliance %.2f)\n",
			class, prompt, len(res.Flows), total, tcp, udp, icmp, res.RawCompliance)

		path := "synthetic_" + class + ".pcap"
		out, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w, err := pcap.NewWriter(out, pcap.LinkTypeEthernet)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range res.Flows {
			for _, p := range f.Packets {
				if err := w.WritePacket(p.Timestamp, p.Data); err != nil {
					log.Fatal(err)
				}
			}
		}
		out.Close()
		fmt.Println("  wrote", path)
	}
}
