// Service recognition case study (the paper's §2.2/§3.2 workload):
// augmenting a Random-Forest application classifier with synthetic
// training data.
//
//	go run ./examples/servicerec
//
// The example trains on real flows from six applications, generates a
// synthetic dataset with the diffusion pipeline and the GAN baseline,
// and reports the cross-train/test accuracies that form the paper's
// Table 2, showing the diffusion pipeline's fine-grained nprint
// features transferring between real and synthetic data far better
// than the GAN's NetFlow aggregates.
package main

import (
	"fmt"
	"log"

	"trafficdiff/internal/core"
	"trafficdiff/internal/eval"
	"trafficdiff/internal/gan"
	"trafficdiff/internal/rf"
)

func main() {
	log.SetFlags(0)
	cfg := eval.DefaultTable2Config()
	cfg.Classes = []string{"netflix", "amazon", "teams", "zoom", "facebook", "other"}
	cfg.TrainFlowsPerClass = 16
	cfg.TestFlowsPerClass = 6
	cfg.SynthPerClass = 6
	cfg.PacketsPerFlow = 10

	synth := core.DefaultConfig()
	synth.Hidden = 96
	synth.BaseSteps = 120
	synth.FineTuneSteps = 180
	synth.DDIMSteps = 10
	cfg.Synth = synth
	cfg.GAN = gan.DefaultConfig()
	cfg.RF = rf.DefaultConfig()

	fmt.Printf("service recognition over %d applications (%d train / %d test flows per class)\n\n",
		len(cfg.Classes), cfg.TrainFlowsPerClass, cfg.TestFlowsPerClass)
	res, err := eval.RunTable2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eval.Table2Report(res))

	fmt.Println("\ninterpretation (cf. paper Table 2):")
	fmt.Printf("  - raw packet bits beat NetFlow on real data (micro %.2f vs %.2f)\n",
		res.RealRealNprint.Micro, res.RealRealNetFlow.Micro)
	fmt.Printf("  - our synthetic data transfers: Real/Synth micro %.2f vs GAN %.2f\n",
		res.RealSynthOurs.Micro, res.RealSynthGAN.Micro)
	fmt.Printf("  - and trains: Synth/Real micro %.2f vs GAN %.2f\n",
		res.SynthRealOurs.Micro, res.SynthRealGAN.Micro)
}
