// Coverage: the class-balance study behind the paper's Figure 1.
//
//	go run ./examples/coverage
//
// It builds an imbalanced real dataset (Table 1 proportions), trains
// the GAN baseline and the diffusion pipeline on it, and compares the
// class distributions each generator produces. The GAN treats the
// label as just another feature, so its output drifts from the real
// distribution and cannot be steered; the diffusion pipeline prompts
// each class explicitly, yielding an exactly balanced dataset (or any
// distribution on demand).
package main

import (
	"fmt"
	"log"
	"strings"

	"trafficdiff/internal/core"
	"trafficdiff/internal/eval"
)

func main() {
	log.SetFlags(0)
	cfg := eval.DefaultFig1Config()
	cfg.Classes = []string{"netflix", "youtube", "amazon", "teams", "zoom", "other"}
	cfg.Scale = 0.01
	cfg.SynthTotal = 60

	synth := core.DefaultConfig()
	synth.Hidden = 96
	synth.BaseSteps = 100
	synth.FineTuneSteps = 160
	synth.DDIMSteps = 10
	cfg.Synth = synth

	fmt.Printf("class coverage study over %d classes\n\n", len(cfg.Classes))
	res, err := eval.RunFig1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eval.Fig1Report(res))

	// Simple textual bars, log-flavored like the paper's Figure 1.
	fmt.Println("\nproportion bars (each # ~ 2%):")
	bar := func(p float64) string { return strings.Repeat("#", int(p*50+0.5)) }
	for i, c := range res.Classes {
		fmt.Printf("%-9s real %-28s\n", c, bar(res.Real[i]))
		fmt.Printf("%-9s gan  %-28s\n", "", bar(res.GAN[i]))
		fmt.Printf("%-9s ours %-28s\n", "", bar(res.Ours[i]))
	}
}
