// Replay: push synthetic traces through a network-function pipeline —
// the paper's "replaying synthetic traffic to test network functions"
// use case and its §4 open challenge.
//
//	go run ./examples/replay
//
// It generates real and synthetic Amazon flows, replays both through a
// checksum verifier, a stateful TCP conformance checker and a flow
// monitor, and compares the reports: checksums and protocol choice
// survive the synthesis pipeline (ControlNet + back-transform repair),
// while strict TCP handshake ordering — the open challenge — is only
// partially preserved, which the conformance numbers make visible.
package main

import (
	"fmt"
	"log"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/netem"
	"trafficdiff/internal/netfunc"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/repair"
	"trafficdiff/internal/workload"
)

func main() {
	log.SetFlags(0)
	const class = "amazon"

	ds, err := workload.Generate(workload.Config{
		Seed: 7, FlowsPerClass: 12, Only: []string{class}, MaxPacketsPerFlow: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Hidden = 96
	cfg.BaseSteps = 100
	cfg.FineTuneSteps = 150
	synth, err := core.New(cfg, []string{class})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := synth.FineTune(map[string][]*flow.Flow{class: ds.Flows}); err != nil {
		log.Fatal(err)
	}
	res, err := synth.Generate(class, 6)
	if err != nil {
		log.Fatal(err)
	}

	replay := func(name string, flows []*flow.Flow) {
		var pkts []*packet.Packet
		for _, f := range flows {
			pkts = append(pkts, f.Packets...)
		}
		pipeline := []netfunc.NF{
			netfunc.NewChecksumVerifier(),
			netfunc.NewTCPStateChecker(),
			netfunc.NewFlowMonitor(),
		}
		st := netfunc.Replay(pkts, pipeline)
		fmt.Printf("--- %s traffic ---\n%s\n", name, netfunc.Report(st, pipeline))
	}

	replay("real", ds.Flows)
	replay("synthetic", res.Flows)

	// Stateful repair (the §4 "stricter constraints" direction): the
	// TCP conversation structure is rewritten into a valid handshake /
	// data / teardown sequence while the class-carrying per-packet
	// attributes survive.
	repaired, err := repair.Flows(res.Flows, 99)
	if err != nil {
		log.Fatal(err)
	}
	replay("synthetic+stateful-repair", repaired)

	// Network-condition transfer (paper §4): re-render the synthetic
	// traffic under a congested path before replaying.
	congested, st, err := netem.ApplyAll(res.Flows, netem.Congested)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- condition transfer: clean -> congested (dropped %d of %d, +%v mean delay) ---\n",
		st.Dropped, st.In, st.AddedDelay.Round(time.Millisecond))
	replay("synthetic+congested", congested)

	fmt.Println("note: synthetic packets pass checksum verification (back-transform")
	fmt.Println("recomputes checksums) and keep the class's transport protocol, but")
	fmt.Println("full TCP handshake ordering is an open challenge the paper calls out —")
	fmt.Println("the tcp-state-checker's conformance rate quantifies the gap.")
}
