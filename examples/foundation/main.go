// Foundation-model tasks: the paper's §4 research agenda beyond plain
// generation — traffic deblurring and traffic-to-traffic translation.
//
//	go run ./examples/foundation
//
// It fine-tunes a pipeline on Amazon (TCP) and Teams (UDP), then
//
//  1. deblurs an Amazon flow whose entire TCP header section was lost
//     (the model restores the missing fields, anchored to the intact
//     IPv4 bits), and
//  2. translates the same flow into Teams style (the paper's
//     VPN-Netflix/YouTube translation example, in miniature) — the
//     output flips to UDP while keeping flow-level structure.
package main

import (
	"fmt"
	"log"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/workload"
)

func main() {
	log.SetFlags(0)
	classes := []string{"amazon", "teams"}
	ds, err := workload.Generate(workload.Config{
		Seed: 5, FlowsPerClass: 10, Only: classes, MaxPacketsPerFlow: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}

	cfg := core.DefaultConfig()
	cfg.Hidden = 96
	cfg.BaseSteps = 120
	cfg.FineTuneSteps = 180
	synth, err := core.New(cfg, classes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fine-tuning ...")
	if _, err := synth.FineTune(byClass); err != nil {
		log.Fatal(err)
	}

	src := byClass["amazon"][0]
	fmt.Printf("source: %d-packet amazon flow, dominant protocol %v\n\n",
		len(src.Packets), src.DominantProtocol())

	// --- Task 1: traffic deblurring. ---
	res, err := synth.Deblur(src, "amazon", []core.FieldMask{core.MaskTCP})
	if err != nil {
		log.Fatal(err)
	}
	restored := res.Flows[0]
	tcpCount := 0
	for _, p := range restored.Packets {
		if p.TCP != nil {
			tcpCount++
		}
	}
	fmt.Printf("deblur (TCP section masked out): restored %d packets, %d with TCP headers\n",
		len(restored.Packets), tcpCount)
	fmt.Printf("  raw cell compliance %.3f, %d cells repaired\n\n", res.RawCellCompliance, res.Repaired)

	// --- Task 2: traffic-to-traffic translation. ---
	tr, err := synth.Translate(src, "teams", 0.8)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[packet.IPProtocol]int{}
	for _, p := range tr.Flows[0].Packets {
		counts[p.TransportProtocol()]++
	}
	fmt.Printf("translate amazon -> teams (strength 0.8): %d packets, protocol mix %v\n",
		len(tr.Flows[0].Packets), counts)
	fmt.Println("  (the translated flow adopts the target class's UDP transport)")
}
