package trafficdiff

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"trafficdiff/internal/pcap"
)

// TestServeEndToEnd is the full train → save → serve loop over the
// real binaries: tracegen writes a checkpoint, traced loads and serves
// it, concurrent clients get structurally valid and seed-deterministic
// pcaps, an undersized instance sheds load with 429, and SIGTERM
// drains in-flight work before a clean exit. `make serve-smoke` runs
// exactly this test.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("serve e2e in -short mode")
	}
	dir := t.TempDir()
	tracegen := dir + "/tracegen"
	traced := dir + "/traced"
	for bin, pkg := range map[string]string{tracegen: "./cmd/tracegen", traced: "./cmd/traced"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Train a tiny model and save the checkpoint.
	ckpt := dir + "/model.ckpt"
	cmd := exec.Command(tracegen,
		"-classes", "amazon,teams", "-train", "4", "-per-class", "1",
		"-steps", "60", "-rows", "16", "-write-real=false",
		"-out", dir+"/synthetic", "-save", ckpt)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("tracegen: %v\n%s", err, out)
	}

	t.Run("concurrent-generation", func(t *testing.T) {
		srv := startTraced(t, traced, ckpt, "-queue", "64", "-max-inflight", "16")
		defer srv.kill(t)

		const n = 32
		var wg sync.WaitGroup
		errs := make([]error, n)
		bodies := make([][]byte, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				class := []string{"amazon", "teams"}[i%2]
				// Requests 0 and 2 share class and seed: their bodies
				// must be bit-identical.
				seed := 1000 + i
				if i == 2 {
					seed = 1000
				}
				code, body, _, err := postGenerate(srv.url, fmt.Sprintf(`{"class":%q,"count":2,"seed":%d}`, class, seed))
				if err != nil {
					errs[i] = err
					return
				}
				if code != http.StatusOK {
					errs[i] = fmt.Errorf("request %d: status %d body %q", i, code, body)
					return
				}
				bodies[i] = body
				rd, err := pcap.NewReader(bytes.NewReader(body))
				if err != nil {
					errs[i] = fmt.Errorf("request %d: invalid pcap: %v", i, err)
					return
				}
				if recs, err := rd.ReadAll(); err != nil || len(recs) == 0 {
					errs[i] = fmt.Errorf("request %d: %d records, err %v", i, len(recs), err)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(bodies[0], bodies[2]) {
			t.Fatal("same-seed requests returned different bodies across the network boundary")
		}
		if bytes.Equal(bodies[0], bodies[4]) {
			t.Fatal("different-seed requests returned identical bodies")
		}

		// Metrics moved under load.
		m := fetchMetrics(t, srv.url)
		for _, key := range []string{"accepted_total", "batch_occupancy_count", "flows_admitted_total", "latency_ms_count", "flows_generated_total"} {
			if m[key] <= 0 {
				t.Errorf("metric %s = %v, want > 0 after load", key, m[key])
			}
		}
	})

	t.Run("backpressure-and-drain", func(t *testing.T) {
		srv := startTraced(t, traced, ckpt, "-queue", "1", "-max-inflight", "8")
		defer srv.kill(t)

		// Flood the undersized instance: admitted requests succeed,
		// overflow is shed with 429 + Retry-After.
		const n = 24
		var wg sync.WaitGroup
		codes := make([]int, n)
		retryAfter := make([]string, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				code, _, hdr, err := postGenerate(srv.url, `{"class":"amazon","count":8}`)
				if err == nil {
					codes[i] = code
					retryAfter[i] = hdr.Get("Retry-After")
				}
			}(i)
		}
		wg.Wait()
		var ok, shed int
		for i, code := range codes {
			switch code {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				shed++
				if retryAfter[i] == "" {
					t.Error("429 without Retry-After header")
				}
			default:
				t.Errorf("request %d: unexpected status %d", i, code)
			}
		}
		if ok == 0 || shed == 0 {
			t.Fatalf("flood: %d ok, %d shed — want both > 0 (backpressure not exercised)", ok, shed)
		}

		// SIGTERM with a request in flight: the request completes, the
		// process drains and exits 0.
		inFlight := make(chan []byte, 1)
		inErr := make(chan error, 1)
		go func() {
			code, body, _, err := postGenerate(srv.url, `{"class":"teams","count":8}`)
			if err != nil {
				inErr <- err
				return
			}
			if code != http.StatusOK {
				inErr <- fmt.Errorf("in-flight request: status %d body %q", code, body)
				return
			}
			inFlight <- body
		}()
		waitUntil(t, "in-flight request admitted", func() bool {
			return fetchMetrics(t, srv.url)["accepted_total"] > float64(ok)
		})
		if err := srv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case body := <-inFlight:
			if rd, err := pcap.NewReader(bytes.NewReader(body)); err != nil {
				t.Fatalf("drained response invalid: %v", err)
			} else if recs, err := rd.ReadAll(); err != nil || len(recs) == 0 {
				t.Fatalf("drained response: %d records, err %v", len(recs), err)
			}
		case err := <-inErr:
			t.Fatalf("in-flight request failed during drain: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("in-flight request not answered during drain")
		}
		if err := srv.wait(30 * time.Second); err != nil {
			t.Fatalf("traced did not exit cleanly after SIGTERM: %v\nstderr:\n%s", err, srv.stderr())
		}
		if !strings.Contains(srv.stderr(), "drained cleanly") {
			t.Fatalf("missing drain log; stderr:\n%s", srv.stderr())
		}
	})
}

// tracedProc is one running traced instance under test.
type tracedProc struct {
	cmd  *exec.Cmd
	url  string
	errB *watchWriter
	done chan error
}

// watchWriter accumulates the child's stderr and signals addr once the
// "listening on" line is complete. It is handed to cmd.Stderr directly
// (not via StderrPipe) so os/exec's own copier guarantees every byte —
// including the final drain log — lands here before Wait returns.
type watchWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	found bool
	addr  chan string
}

func (w *watchWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(p)
	if !w.found {
		const marker = "traced: listening on "
		s := w.buf.String()
		if i := strings.Index(s, marker); i >= 0 {
			rest := s[i+len(marker):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				w.found = true
				w.addr <- strings.TrimSpace(rest[:j])
			}
		}
	}
	return n, err
}

func (w *watchWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func (p *tracedProc) stderr() string { return p.errB.String() }

// wait blocks for process exit and returns its error (nil on exit 0).
func (p *tracedProc) wait(d time.Duration) error {
	select {
	case err := <-p.done:
		return err
	case <-time.After(d):
		return fmt.Errorf("timeout after %v", d)
	}
}

func (p *tracedProc) kill(t *testing.T) {
	t.Helper()
	select {
	case <-p.done: // already exited
		return
	default:
	}
	if err := p.cmd.Process.Kill(); err == nil {
		<-p.done
	}
}

// startTraced launches traced on an ephemeral port and waits for
// readiness, returning the base URL.
func startTraced(t *testing.T, bin, ckpt string, extra ...string) *tracedProc {
	t.Helper()
	args := append([]string{"-model", ckpt, "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	errB := &watchWriter{addr: make(chan string, 1)}
	cmd.Stderr = errB
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &tracedProc{cmd: cmd, errB: errB, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()

	select {
	case addr := <-errB.addr:
		p.url = "http://" + addr
	case err := <-p.done:
		t.Fatalf("traced exited before listening: %v\nstderr:\n%s", err, p.stderr())
	case <-time.After(30 * time.Second):
		p.kill(t)
		t.Fatalf("traced never reported a listen address; stderr:\n%s", p.stderr())
	}
	waitUntil(t, "traced ready", func() bool {
		resp, err := http.Get(p.url + "/readyz")
		if err != nil {
			return false
		}
		// Readiness body is irrelevant; drop it so connections recycle.
		_, _ = io.Copy(io.Discard, resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			return false
		}
		return resp.StatusCode == http.StatusOK
	})
	return p
}

func postGenerate(url, body string) (int, []byte, http.Header, error) {
	resp, err := http.Post(url+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, data, resp.Header, nil
}

func fetchMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	derr := json.NewDecoder(resp.Body).Decode(&raw)
	if cerr := resp.Body.Close(); derr == nil {
		derr = cerr
	}
	if derr != nil {
		t.Fatal(derr)
	}
	out := map[string]float64{}
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
