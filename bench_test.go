// Package trafficdiff's root benchmark harness regenerates every table
// and figure in the paper's evaluation plus the ablations DESIGN.md
// calls out. Each experiment bench runs the full pipeline once per
// iteration with CPU-friendly sizes and reports the paper's numbers as
// custom benchmark metrics (accuracy, compliance, imbalance), so
//
//	go test -bench=. -benchmem
//
// prints the same rows the paper reports next to wall-clock cost.
// EXPERIMENTS.md records a paper-vs-measured comparison from a run of
// this harness.
package trafficdiff

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/diffusion"
	"trafficdiff/internal/eval"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/gan"
	"trafficdiff/internal/heuristic"
	"trafficdiff/internal/hmm"
	"trafficdiff/internal/netem"
	"trafficdiff/internal/netflow"
	"trafficdiff/internal/netfunc"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/pcap"
	"trafficdiff/internal/repair"
	"trafficdiff/internal/rf"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
	"trafficdiff/internal/workload"
)

// benchSynth returns a pipeline config sized so one full experiment
// iteration stays within a few seconds on a 2-core CPU box.
func benchSynth() core.Config {
	cfg := core.DefaultConfig()
	cfg.Hidden = 128
	cfg.TimeSteps = 80
	cfg.BaseSteps = 120
	cfg.FineTuneSteps = 200
	cfg.Batch = 12
	cfg.DDIMSteps = 10
	return cfg
}

func benchGAN() gan.Config {
	cfg := gan.DefaultConfig()
	cfg.Steps = 250
	return cfg
}

func benchRF() rf.Config {
	cfg := rf.DefaultConfig()
	cfg.Trees = 20
	return cfg
}

// ---------------------------------------------------------------------------
// Table 1 — dataset composition.
// ---------------------------------------------------------------------------

// BenchmarkTable1Dataset measures curated-dataset generation (Table 1
// class mix at Scale=0.02) and reports flows/sec plus the imbalance
// ratio the real data carries into Figure 1.
func BenchmarkTable1Dataset(b *testing.B) {
	var flows int
	var imbalance float64
	for i := 0; i < b.N; i++ {
		ds, err := workload.Generate(workload.Config{
			Seed: uint64(i + 1), Scale: 0.02, MaxPacketsPerFlow: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
		flows = len(ds.Flows)
		imbalance = stats.ImbalanceRatio(ds.CountVector())
	}
	b.ReportMetric(float64(flows), "flows")
	b.ReportMetric(imbalance, "imbalance-ratio")
}

// ---------------------------------------------------------------------------
// Table 2 — RF accuracy across the six training/testing scenarios.
// ---------------------------------------------------------------------------

// BenchmarkTable2RFScenarios runs the full case study (fine-tune,
// generate, GAN baseline, 12 RF fits) once per iteration and reports
// each Table 2 cell as a metric.
func BenchmarkTable2RFScenarios(b *testing.B) {
	cfg := eval.DefaultTable2Config()
	cfg.Classes = []string{"netflix", "amazon", "teams", "zoom", "facebook", "other"}
	cfg.TrainFlowsPerClass = 12
	cfg.TestFlowsPerClass = 5
	cfg.SynthPerClass = 5
	cfg.PacketsPerFlow = 10
	cfg.Synth = benchSynth()
	cfg.GAN = benchGAN()
	cfg.RF = benchRF()

	var res *eval.Table2Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(7 + i)
		var err error
		res, err = eval.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RealRealNprint.Micro, "real/real-nprint-micro")
	b.ReportMetric(res.RealRealNetFlow.Micro, "real/real-netflow-micro")
	b.ReportMetric(res.RealSynthOurs.Macro, "real/synth-ours-macro")
	b.ReportMetric(res.RealSynthOurs.Micro, "real/synth-ours-micro")
	b.ReportMetric(res.RealSynthGAN.Micro, "real/synth-gan-micro")
	b.ReportMetric(res.SynthRealOurs.Macro, "synth/real-ours-macro")
	b.ReportMetric(res.SynthRealOurs.Micro, "synth/real-ours-micro")
	b.ReportMetric(res.SynthRealGAN.Micro, "synth/real-gan-micro")
	b.Logf("\n%s", eval.Table2Report(res))
}

// ---------------------------------------------------------------------------
// Figure 1 — class coverage / balance.
// ---------------------------------------------------------------------------

// BenchmarkFigure1ClassCoverage runs the two-class (Figure 1b) study
// per iteration and reports the three imbalance ratios.
func BenchmarkFigure1ClassCoverage(b *testing.B) {
	cfg := eval.DefaultFig1Config()
	cfg.Classes = []string{"netflix", "youtube"}
	cfg.Scale = 0.004
	cfg.SynthTotal = 16
	cfg.Synth = benchSynth()
	cfg.GAN = benchGAN()

	var res *eval.Fig1Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(21 + i)
		var err error
		res, err = eval.RunFig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ImbalanceReal, "imbalance-real")
	b.ReportMetric(res.ImbalanceGAN, "imbalance-gan")
	b.ReportMetric(res.ImbalanceOurs, "imbalance-ours")
	b.Logf("\n%s", eval.Fig1Report(res))
}

// ---------------------------------------------------------------------------
// Figure 2 — protocol compliance of the rendered synthetic flow.
// ---------------------------------------------------------------------------

// BenchmarkFigure2ProtocolCompliance trains on Amazon, generates and
// renders one flow, and reports compliance before/after projection.
func BenchmarkFigure2ProtocolCompliance(b *testing.B) {
	cfg := eval.DefaultFig2Config()
	cfg.TrainFlows = 12
	cfg.Synth = benchSynth()

	var res *eval.Fig2Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(33 + i)
		var err error
		res, err = eval.RunFig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RawProtocolCompliance, "raw-compliance")
	b.ReportMetric(res.PostProtocolCompliance, "post-compliance")
	b.ReportMetric(res.SectionActive["tcp"], "tcp-rows")
	b.ReportMetric(res.SectionActive["udp"], "udp-rows")
	b.Logf("\n%s", eval.Fig2Report(res))
}

// ---------------------------------------------------------------------------
// §2.3 inline numbers.
// ---------------------------------------------------------------------------

// BenchmarkGranularityAblation reproduces the raw-bits vs NetFlow
// comparison on real data (paper: 0.94 vs 0.85 micro).
func BenchmarkGranularityAblation(b *testing.B) {
	cfg := eval.DefaultGranularityConfig()
	cfg.TrainFlowsPerClass = 16
	cfg.TestFlowsPerClass = 6
	cfg.PacketsPerFlow = 10
	cfg.MaxPacketsPerFlow = 24
	cfg.RF = benchRF()

	var res *eval.GranularityResult
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(5 + i)
		var err error
		res, err = eval.RunGranularity(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NprintMicro, "nprint-micro")
	b.ReportMetric(res.NetFlowMicro, "netflow-micro")
	b.Logf("\n%s", eval.GranularityReport(res))
}

// BenchmarkPerClassGAN reproduces the supplemental experiment: one GAN
// per class still yields poor Synthetic/Real accuracy (paper: ~0.20).
func BenchmarkPerClassGAN(b *testing.B) {
	cfg := eval.DefaultPerClassGANConfig()
	cfg.Classes = []string{"netflix", "amazon", "teams", "zoom", "facebook", "other"}
	cfg.TrainFlowsPerClass = 12
	cfg.TestFlowsPerClass = 5
	cfg.SynthPerClass = 5
	cfg.GAN = benchGAN()
	cfg.RF = benchRF()
	cfg.MaxPacketsPerFlow = 24

	var res *eval.PerClassGANResult
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(13 + i)
		var err error
		res, err = eval.RunPerClassGAN(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SynthRealMicro, "synth/real-micro")
	b.Logf("\n%s", eval.PerClassGANReport(res))
}

// ---------------------------------------------------------------------------
// §4 "Generative speed" — sampling cost, DDPM vs DDIM vs GAN.
// ---------------------------------------------------------------------------

// trainedSynthesizer fine-tunes one small pipeline for the speed
// benches (shared across them via sync-free package state is avoided;
// each bench trains its own).
func trainedSynthesizer(b *testing.B, cfg core.Config, classes []string) *core.Synthesizer {
	b.Helper()
	ds, err := workload.Generate(workload.Config{
		Seed: 3, FlowsPerClass: 10, Only: classes, MaxPacketsPerFlow: cfg.Rows,
	})
	if err != nil {
		b.Fatal(err)
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	s, err := core.New(cfg, classes)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.FineTune(byClass); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkGenerationSpeedDDPM measures full ancestral sampling
// throughput (T model evaluations per flow batch).
func BenchmarkGenerationSpeedDDPM(b *testing.B) {
	cfg := benchSynth()
	cfg.DDIMSteps = 0 // full DDPM
	s := trainedSynthesizer(b, cfg, []string{"amazon"})
	b.ResetTimer()
	flows := 0
	for i := 0; i < b.N; i++ {
		res, err := s.Generate("amazon", 2)
		if err != nil {
			b.Fatal(err)
		}
		flows += len(res.Flows)
	}
	b.ReportMetric(float64(flows)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkGenerationSpeedDDIM measures accelerated sampling (10
// steps) — the optimization the paper's speed challenge calls for.
func BenchmarkGenerationSpeedDDIM(b *testing.B) {
	cfg := benchSynth()
	cfg.DDIMSteps = 10
	s := trainedSynthesizer(b, cfg, []string{"amazon"})
	b.ResetTimer()
	flows := 0
	for i := 0; i < b.N; i++ {
		res, err := s.Generate("amazon", 2)
		if err != nil {
			b.Fatal(err)
		}
		flows += len(res.Flows)
	}
	b.ReportMetric(float64(flows)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkGenerationSpeedGAN measures the GAN baseline's one-shot
// generation for contrast (it emits aggregate records, not packets).
func BenchmarkGenerationSpeedGAN(b *testing.B) {
	ds, err := workload.Generate(workload.Config{
		Seed: 3, FlowsPerClass: 20, Only: []string{"amazon", "teams"}, MaxPacketsPerFlow: 24,
	})
	if err != nil {
		b.Fatal(err)
	}
	var feats [][]float64
	var labels []int
	for _, f := range ds.Flows {
		feats = append(feats, netflow.FromFlow(f).FeatureVector())
		l := 0
		if f.Label == "teams" {
			l = 1
		}
		labels = append(labels, l)
	}
	model, err := gan.Train(feats, labels, 2, benchGAN())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		f, _ := model.Generate(100, uint64(i))
		rows += len(f)
	}
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "records/s")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md): ControlNet, guidance scale, LoRA rank,
// resolution scaling, β schedule.
// ---------------------------------------------------------------------------

// BenchmarkAblationControlNet compares pre-projection protocol
// compliance with the control branch on vs off — the controllability
// claim isolated.
func BenchmarkAblationControlNet(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchSynth()
			cfg.UseControlNet = on
			var raw float64
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(50 + i)
				s := trainedSynthesizer(b, cfg, []string{"amazon"})
				res, err := s.Generate("amazon", 4)
				if err != nil {
					b.Fatal(err)
				}
				raw = res.RawCellCompliance
			}
			b.ReportMetric(raw, "raw-cell-compliance")
		})
	}
}

// BenchmarkAblationConstantSnap compares synthetic-data utility with
// and without the strong one-shot control (pinning class-invariant
// header bits): Synth/Real RF accuracy is the metric.
func BenchmarkAblationConstantSnap(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := eval.DefaultTable2Config()
			cfg.Classes = []string{"netflix", "amazon", "teams", "other"}
			cfg.TrainFlowsPerClass = 10
			cfg.TestFlowsPerClass = 4
			cfg.SynthPerClass = 4
			cfg.PacketsPerFlow = 8
			cfg.Synth = benchSynth()
			cfg.Synth.ConstantSnap = on
			cfg.GAN = benchGAN()
			cfg.RF = benchRF()
			var res *eval.Table2Result
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(40 + i)
				var err error
				res, err = eval.RunTable2(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.SynthRealOurs.Micro, "synth/real-ours-micro")
			b.ReportMetric(res.RealSynthOurs.Micro, "real/synth-ours-micro")
		})
	}
}

// BenchmarkAblationGuidanceScale sweeps classifier-free guidance.
func BenchmarkAblationGuidanceScale(b *testing.B) {
	for _, w := range []float64{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("w=%g", w), func(b *testing.B) {
			cfg := benchSynth()
			cfg.GuidanceScale = w
			var raw float64
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(60 + i)
				s := trainedSynthesizer(b, cfg, []string{"amazon"})
				res, err := s.Generate("amazon", 4)
				if err != nil {
					b.Fatal(err)
				}
				raw = res.RawCellCompliance
			}
			b.ReportMetric(raw, "raw-cell-compliance")
		})
	}
}

// BenchmarkAblationLoRARank sweeps the adapter rank used for class
// coverage, reporting fine-tune loss reached within a fixed budget.
func BenchmarkAblationLoRARank(b *testing.B) {
	for _, rank := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("r=%d", rank), func(b *testing.B) {
			cfg := benchSynth()
			cfg.LoRARank = rank
			var final float64
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(70 + i)
				ds, err := workload.Generate(workload.Config{
					Seed: 3, FlowsPerClass: 10, Only: []string{"amazon", "teams"}, MaxPacketsPerFlow: cfg.Rows,
				})
				if err != nil {
					b.Fatal(err)
				}
				byClass := map[string][]*flow.Flow{}
				for _, f := range ds.Flows {
					byClass[f.Label] = append(byClass[f.Label], f)
				}
				s, err := core.New(cfg, []string{"amazon", "teams"})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := s.FineTune(byClass)
				if err != nil {
					b.Fatal(err)
				}
				final = rep.FineTuneLosses[len(rep.FineTuneLosses)-1]
			}
			b.ReportMetric(final, "final-finetune-loss")
		})
	}
}

// BenchmarkAblationResolutionScaling sweeps the column scaling factor
// (bit-aligned 8 vs coarser 16/32), reporting cell compliance — the
// fidelity cost of compression.
func BenchmarkAblationResolutionScaling(b *testing.B) {
	for _, dw := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("downW=%d", dw), func(b *testing.B) {
			cfg := benchSynth()
			cfg.DownW = dw
			var raw float64
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(80 + i)
				s := trainedSynthesizer(b, cfg, []string{"amazon"})
				res, err := s.Generate("amazon", 4)
				if err != nil {
					b.Fatal(err)
				}
				raw = res.RawCellCompliance
			}
			b.ReportMetric(raw, "raw-cell-compliance")
		})
	}
}

// BenchmarkAblationSchedule compares the linear and cosine β schedules
// at a fixed training budget.
func BenchmarkAblationSchedule(b *testing.B) {
	for _, kind := range []diffusion.ScheduleKind{diffusion.ScheduleLinear, diffusion.ScheduleCosine} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := benchSynth()
			cfg.Schedule = kind
			var raw float64
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(90 + i)
				s := trainedSynthesizer(b, cfg, []string{"amazon"})
				res, err := s.Generate("amazon", 4)
				if err != nil {
					b.Fatal(err)
				}
				raw = res.RawCellCompliance
			}
			b.ReportMetric(raw, "raw-cell-compliance")
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkNprintEncode measures packets -> bit-matrix throughput.
func BenchmarkNprintEncode(b *testing.B) {
	g := workload.NewGenerator(1)
	g.MaxPackets = 32
	p, _ := workload.ProfileByName("netflix")
	f := g.GenerateFlow(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nprint.FromFlow(f, 32)
	}
}

// BenchmarkNprintDecode measures bit-matrix -> packets back-transform.
func BenchmarkNprintDecode(b *testing.B) {
	g := workload.NewGenerator(1)
	g.MaxPackets = 32
	p, _ := workload.ProfileByName("netflix")
	m := nprint.FromFlow(g.GenerateFlow(p), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := nprint.ToPackets(m, nprint.DecodeOptions{Repair: true, Start: time.Unix(0, 0)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPcapWriteRead measures capture-file round-trip throughput.
func BenchmarkPcapWriteRead(b *testing.B) {
	g := workload.NewGenerator(2)
	g.MaxPackets = 64
	p, _ := workload.ProfileByName("twitch")
	f := g.GenerateFlow(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, err := pcap.NewWriter(&buf, pcap.LinkTypeEthernet)
		if err != nil {
			b.Fatal(err)
		}
		for _, pk := range f.Packets {
			if err := w.WritePacket(pk.Timestamp, pk.Data); err != nil {
				b.Fatal(err)
			}
		}
		r, err := pcap.NewReader(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRFTrainPredict measures the classifier on nprint-sized
// feature rows.
func BenchmarkRFTrainPredict(b *testing.B) {
	ds, err := workload.Generate(workload.Config{
		Seed: 9, FlowsPerClass: 20,
		Only: []string{"netflix", "teams", "other"}, MaxPacketsPerFlow: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	x := eval.FeatureMatrix(ds.Flows, eval.GranularityNprint, 8)
	space := eval.MicroSpace([]string{"netflix", "teams", "other"})
	y, err := space.Labels(ds.Flows)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchRF()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forest, err := rf.Train(x, y, 3, cfg)
		if err != nil {
			b.Fatal(err)
		}
		forest.PredictBatch(x)
	}
}

// BenchmarkDiffusionTrainStep measures one optimizer step of the
// default denoiser.
func BenchmarkDiffusionTrainStep(b *testing.B) {
	r := stats.NewRNG(1)
	model := diffusion.NewMLPDenoiser(r, 16, 136, 128, 4)
	sched := diffusion.NewSchedule(diffusion.ScheduleCosine, 80)
	set := &diffusion.TrainSet{}
	for i := 0; i < 8; i++ {
		im := tensor.New(1, 16, 136).Randn(r, 1)
		set.Images = append(set.Images, im)
		set.Labels = append(set.Labels, i%4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diffusion.Train(model, sched, set, diffusion.TrainConfig{
			Steps: 1, Batch: 8, LR: 1e-3, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Prior-work baselines (§2.1): HMM and heuristics-based generators.
// ---------------------------------------------------------------------------

// BenchmarkBaselineHMMFidelity trains the Redžović-style HMM on real
// flows and reports the Jensen-Shannon divergence between real and
// generated packet-size distributions (lower is better) — alongside
// the inherent limitation metric: the fraction of header features the
// approach covers at all (2 of 1088 bit-level features).
func BenchmarkBaselineHMMFidelity(b *testing.B) {
	g := workload.NewGenerator(5)
	g.MaxPackets = 40
	prof, _ := workload.ProfileByName("netflix")
	var seqs [][]hmm.Observation
	realHist := stats.NewHistogram(0, 1600, 16)
	for i := 0; i < 20; i++ {
		f := g.GenerateFlow(prof)
		seqs = append(seqs, hmm.FromFlow(f))
		for _, p := range f.Packets {
			realHist.Add(float64(p.Length()))
		}
	}
	var js float64
	for i := 0; i < b.N; i++ {
		cfg := hmm.DefaultConfig()
		cfg.Seed = uint64(i + 1)
		model, _, err := hmm.Train(seqs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		genHist := stats.NewHistogram(0, 1600, 16)
		sample := model.Sample(800, stats.NewRNG(uint64(i+9)))
		for _, o := range sample {
			genHist.Add(o.SizeBytes)
		}
		js = stats.JSDivergence(realHist.Proportions(), genHist.Proportions())
	}
	b.ReportMetric(js, "size-js-divergence")
	b.ReportMetric(2.0/float64(nprint.BitsPerPacket), "feature-coverage")
}

// BenchmarkBaselineHeuristicFidelity fits the Harpoon/Swing-style
// empirical generator and reports aggregate fidelity (size JS
// divergence) next to the stateful gap (TCP conformance violations per
// packet) that the diffusion pipeline is designed to close.
func BenchmarkBaselineHeuristicFidelity(b *testing.B) {
	g := workload.NewGenerator(6)
	g.MaxPackets = 30
	prof, _ := workload.ProfileByName("amazon")
	var examples []*flow.Flow
	realHist := stats.NewHistogram(0, 1600, 16)
	for i := 0; i < 20; i++ {
		f := g.GenerateFlow(prof)
		examples = append(examples, f)
		for _, p := range f.Packets {
			realHist.Add(float64(p.Length()))
		}
	}
	var js, violPerPkt float64
	for i := 0; i < b.N; i++ {
		fit, err := heuristic.Fit(examples)
		if err != nil {
			b.Fatal(err)
		}
		gen := fit.Generate(20, uint64(i+1))
		genHist := stats.NewHistogram(0, 1600, 16)
		checker := netfunc.NewTCPStateChecker()
		pkts := 0
		for _, f := range gen {
			for _, p := range f.Packets {
				genHist.Add(float64(p.Length()))
				checker.Process(p)
				pkts++
			}
		}
		js = stats.JSDivergence(realHist.Proportions(), genHist.Proportions())
		violPerPkt = float64(checker.Violations()) / float64(pkts)
	}
	b.ReportMetric(js, "size-js-divergence")
	b.ReportMetric(violPerPkt, "tcp-violations-per-pkt")
}

// BenchmarkNetemConditionTransfer measures the §4 network-condition
// transfer: re-rendering a clean flow batch under a congested path.
func BenchmarkNetemConditionTransfer(b *testing.B) {
	g := workload.NewGenerator(7)
	g.MaxPackets = 40
	prof, _ := workload.ProfileByName("youtube")
	var flows []*flow.Flow
	for i := 0; i < 20; i++ {
		flows = append(flows, g.GenerateFlow(prof))
	}
	var lossFrac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cond := netem.Congested
		cond.Seed = uint64(i)
		_, st, err := netem.ApplyAll(flows, cond)
		if err != nil {
			b.Fatal(err)
		}
		lossFrac = float64(st.Dropped) / float64(st.In)
	}
	b.ReportMetric(lossFrac, "loss-fraction")
}

// BenchmarkFidelityStudy scores every generator family against
// held-out real traffic (size/gap KS distance, header coverage, TCP
// conformance) — the cross-baseline comparison behind §2.1.
func BenchmarkFidelityStudy(b *testing.B) {
	cfg := eval.DefaultFidelityConfig()
	cfg.TrainFlows = 10
	cfg.TestFlows = 10
	cfg.GenFlows = 6
	cfg.Synth = benchSynth()
	var res *eval.FidelityResult
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(29 + i)
		var err error
		res, err = eval.RunFidelity(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		// Metric units must be whitespace-free: keep the leading word.
		key := row.Name
		if i := strings.IndexAny(key, " ("); i > 0 {
			key = key[:i]
		}
		b.ReportMetric(row.SizeKS, key+"-size-ks")
	}
	b.Logf("\n%s", eval.FidelityReport(res))
}

// BenchmarkStatefulRepair measures the §4 "stricter constraints"
// post-processing: TCP conformance of generated flows before and
// after the stateful repair pass.
func BenchmarkStatefulRepair(b *testing.B) {
	cfg := benchSynth()
	s := trainedSynthesizer(b, cfg, []string{"amazon"})
	res, err := s.Generate("amazon", 6)
	if err != nil {
		b.Fatal(err)
	}
	conform := func(flows []*flow.Flow) float64 {
		c := netfunc.NewTCPStateChecker()
		total := 0
		for _, f := range flows {
			for _, p := range f.Packets {
				if p.TCP != nil {
					total++
				}
				c.Process(p)
			}
		}
		if total == 0 {
			return 1
		}
		return float64(total-c.Violations()) / float64(total)
	}
	before := conform(res.Flows)
	var after float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fixed, err := repair.Flows(res.Flows, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		after = conform(fixed)
	}
	b.ReportMetric(before, "conformance-before")
	b.ReportMetric(after, "conformance-after")
}
