package trafficdiff

import (
	"bytes"
	"testing"

	"trafficdiff/internal/anonymize"
	"trafficdiff/internal/core"
	"trafficdiff/internal/eval"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/netem"
	"trafficdiff/internal/netfunc"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/pcap"
	"trafficdiff/internal/repair"
	"trafficdiff/internal/rf"
	"trafficdiff/internal/workload"
)

// TestFullPipelineIntegration exercises the complete system end to
// end: workload generation -> fine-tuning -> synthesis -> pcap write/
// read round trip -> stateful repair -> NF replay under an emulated
// path -> classifier evaluation — every subsystem touching real data
// flowing through the others.
func TestFullPipelineIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test in -short mode")
	}
	classes := []string{"amazon", "teams"}

	// 1. "Real" data.
	ds, err := workload.Generate(workload.Config{
		Seed: 77, FlowsPerClass: 10, Only: classes, MaxPacketsPerFlow: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.7, 1)
	byClass := map[string][]*flow.Flow{}
	for _, f := range train.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}

	// 2. Fine-tune a small pipeline and generate.
	cfg := core.DefaultConfig()
	cfg.Rows = 16
	cfg.DownH = 2
	cfg.DownW = 16
	cfg.Hidden = 64
	cfg.TimeSteps = 40
	cfg.BaseSteps = 40
	cfg.FineTuneSteps = 60
	cfg.Batch = 8
	cfg.DDIMSteps = 8
	cfg.EMADecay = 0.99
	synth, err := core.New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := synth.FineTune(byClass); err != nil {
		t.Fatal(err)
	}
	synthFlows, err := synth.GenerateBalanced(4)
	if err != nil {
		t.Fatal(err)
	}

	// 3. pcap round trip of the synthetic traffic.
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	written := 0
	for _, f := range synthFlows {
		for _, p := range f.Packets {
			if err := w.WritePacket(p.Timestamp, p.Data); err != nil {
				t.Fatal(err)
			}
			written++
		}
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != written {
		t.Fatalf("pcap round trip lost packets: %d != %d", len(recs), written)
	}

	// 4. Stateful repair + NF replay under a lossy path.
	repaired, err := repair.Flows(synthFlows, 5)
	if err != nil {
		t.Fatal(err)
	}
	cond := netem.Cellular
	cond.Seed = 9
	conditioned, _, err := netem.ApplyAll(repaired, cond)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []*packet.Packet
	for _, f := range conditioned {
		pkts = append(pkts, f.Packets...)
	}
	checker := netfunc.NewTCPStateChecker()
	pipeline := []netfunc.NF{netfunc.NewChecksumVerifier(), checker, netfunc.NewFlowMonitor()}
	st := netfunc.Replay(pkts, pipeline)
	if st.Accepted != st.Packets {
		t.Fatalf("replay dropped %d of %d packets", st.Packets-st.Accepted, st.Packets)
	}
	// Loss breaks some conversations' continuity, but SYN-before-data
	// ordering survives; amazon TCP packets must be mostly conformant.
	if checker.Violations() > st.Packets/2 {
		t.Fatalf("repaired+conditioned traffic mostly non-conformant: %s", checker.Report())
	}

	// 5. Classifier evaluation: synthetic-trained RF must separate the
	// two protocol-distinct classes on real test data.
	micro := eval.MicroSpace(classes)
	sx := eval.FeatureMatrix(synthFlows, eval.GranularityNprint, 8)
	sy, err := micro.Labels(synthFlows)
	if err != nil {
		t.Fatal(err)
	}
	tx := eval.FeatureMatrix(test.Flows, eval.GranularityNprint, 8)
	ty, err := micro.Labels(test.Flows)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := rf.Train(sx, sy, micro.K(), rf.Config{Trees: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := rf.Accuracy(forest.PredictBatch(tx), ty); acc < 0.9 {
		t.Fatalf("synthetic-trained classifier accuracy %.2f on protocol-distinct classes", acc)
	}

	// 6. Anonymize the real captures for sharing; flows stay intact.
	anon, err := anonymize.New([]byte("integration"))
	if err != nil {
		t.Fatal(err)
	}
	af := anon.Flow(train.Flows[0])
	if len(af.Packets) != len(train.Flows[0].Packets) {
		t.Fatal("anonymization changed packet count")
	}
}
