# trafficdiff build targets.

GO ?= go

.PHONY: all build test vet bench fuzz experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark harness: every table/figure + ablations + micro benches.
bench:
	$(GO) test -bench=. -benchmem .

# Short fuzzing pass over the binary-format decoders.
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 15s ./internal/packet
	$(GO) test -fuzz FuzzReader -fuzztime 15s ./internal/pcap
	$(GO) test -fuzz FuzzNGReader -fuzztime 15s ./internal/pcap
	$(GO) test -fuzz FuzzDecodeRow -fuzztime 15s ./internal/nprint
	$(GO) test -fuzz FuzzReadCSV -fuzztime 15s ./internal/nprint

# Regenerate every paper table and figure.
experiments:
	$(GO) run ./cmd/traceval -train 40 -test 12 -synth 12 all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/servicerec
	$(GO) run ./examples/replay
	$(GO) run ./examples/coverage
	$(GO) run ./examples/foundation

clean:
	rm -f fig2_amazon.png synthetic_*.pcap
