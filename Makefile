# trafficdiff build targets.

GO ?= go

.PHONY: all build test vet lint race bench fuzz experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the project's own tracelint pass, which
# enforces the determinism invariants (seeded RNG only, no RNG sharing
# across goroutines, no float ==, no dropped errors, no library
# panics). See DESIGN.md "Static analysis & determinism invariants".
lint: vet
	$(GO) run ./cmd/tracelint

test:
	$(GO) test ./...

# Race-detector pass over every package; the concurrency in
# internal/rf (and anything the ROADMAP adds) must stay clean.
race:
	$(GO) test -race ./...

# Full benchmark harness: every table/figure + ablations + micro benches.
bench:
	$(GO) test -bench=. -benchmem .

# Short fuzzing pass over the binary-format decoders.
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 15s ./internal/packet
	$(GO) test -fuzz FuzzReader -fuzztime 15s ./internal/pcap
	$(GO) test -fuzz FuzzNGReader -fuzztime 15s ./internal/pcap
	$(GO) test -fuzz FuzzDecodeRow -fuzztime 15s ./internal/nprint
	$(GO) test -fuzz FuzzReadCSV -fuzztime 15s ./internal/nprint

# Regenerate every paper table and figure.
experiments:
	$(GO) run ./cmd/traceval -train 40 -test 12 -synth 12 all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/servicerec
	$(GO) run ./examples/replay
	$(GO) run ./examples/coverage
	$(GO) run ./examples/foundation

clean:
	rm -f fig2_amazon.png synthetic_*.pcap
