# trafficdiff build targets.

GO ?= go

.PHONY: all build test vet lint lint-fast race bench bench-json bench-gate bench-serve bench-router bench-quant bench-quant-gate bench-load bench-load-gate serve-smoke cluster-smoke load-smoke resume-smoke verify-determinism fuzz experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the project's own tracelint pass — all
# nine analyzers (determinism, concurrency, wall-clock, hot-path
# allocations) run in parallel over one shared type-checked load. The
# run fails on any finding not recorded in the committed baseline, and
# always writes the machine-readable report (CI uploads it as an
# artifact). See DESIGN.md "Static analysis & determinism invariants".
lint: vet
	$(GO) run ./cmd/tracelint -baseline .tracelint-baseline.json -out tracelint-findings.json

# Quick pre-commit loop: skip go vet and the module-wide call-graph
# analyzer (hotalloc dominates single-package edits the least but costs
# the most), keep everything per-package.
lint-fast:
	$(GO) run ./cmd/tracelint -disable hotalloc -baseline .tracelint-baseline.json

test:
	$(GO) test ./...

# Race-detector pass over every package; the concurrency in
# internal/rf (and anything the ROADMAP adds) must stay clean.
race:
	$(GO) test -race ./...

# Full benchmark harness: every table/figure + ablations + micro benches.
bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable benchmark snapshot: the §4 speed benches plus the
# tensor substrate micro-benches, appended as one labeled run to
# BENCH_kernels.json (override BENCH_LABEL to tag the run).
BENCH_LABEL ?= local
bench-json:
	{ $(GO) test -run NONE -bench 'BenchmarkGenerationSpeed|BenchmarkDiffusionTrainStep|BenchmarkNprint' -benchmem -benchtime 2x . ; \
	  $(GO) test -run NONE -bench 'BenchmarkSampleBatched' -benchmem ./internal/diffusion ; \
	  $(GO) test -run NONE -bench . -benchmem ./internal/tensor ; } \
	| $(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH_kernels.json -append

# Bench regression gate: re-run the end-to-end generation benches, the
# batched sampler benches, and the tensor micro-benches; snapshot them
# to a temp JSON; fail (non-zero) if any benchmark's ns/op regressed
# more than BENCH_THRESHOLD against the committed BENCH_BASELINE run in
# BENCH_kernels.json. Benchmarks present on only one side are skipped,
# so adding a benchmark never trips the gate.
# Default benchtime (not the 2x bench-json uses): the gate needs enough
# iterations that run-to-run noise stays under the threshold. The
# benchjson default threshold is 10%; the gate runs wider (25%) because
# shared-CPU runners jitter sub-2ms micro-benches by ~±10% — tighten it
# on a quiet box with BENCH_THRESHOLD=0.10.
BENCH_BASELINE ?= post-PR4-batched
BENCH_THRESHOLD ?= 0.25
# Serving-latency leg of the gate: the staggered-arrival suite's probe
# p95 against the committed continuous-batching record. Tail latency on
# a shared single-CPU runner swings far more than the kernel benches
# (machine state alone moves it ±30%), so the threshold is wide — this
# leg catches architecture-level regressions (a blocking admission path,
# a lost preemption), not percentage drift.
SERVE_BASELINE ?= post-PR7-continuous
SERVE_THRESHOLD ?= 0.50
bench-gate:
	{ $(GO) test -run NONE -bench 'BenchmarkGenerationSpeed' -benchmem . ; \
	  $(GO) test -run NONE -bench 'BenchmarkSampleBatched' -benchmem ./internal/diffusion ; \
	  $(GO) test -run NONE -bench . -benchmem ./internal/tensor ; } \
	| $(GO) run ./cmd/benchjson -label gate-candidate -out /tmp/bench_gate.json
	$(GO) run ./cmd/benchjson -compare -old-label "$(BENCH_BASELINE)" -threshold "$(BENCH_THRESHOLD)" BENCH_kernels.json /tmp/bench_gate.json
	$(GO) run ./cmd/benchjson -suite serve-stagger -label gate-candidate -out /tmp/bench_gate_serve.json
	$(GO) run ./cmd/benchjson -compare -old-label "$(SERVE_BASELINE)" -threshold "$(SERVE_THRESHOLD)" BENCH_serve.json /tmp/bench_gate_serve.json

# Serving throughput/latency snapshot: trains a tiny synthesizer, loads
# it with concurrent HTTP requests through the full traced pipeline, and
# appends req/s + p50/p99 latency to BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/benchjson -suite serve -label "$(BENCH_LABEL)" -out BENCH_serve.json -append

# Cluster-tier benchmark: 1- vs 3-replica throughput through the
# router, plus content-addressed cache hit-vs-miss latency (the ISSUE's
# ≥5× p95 criterion), appended to BENCH_router.json.
bench-router:
	$(GO) run ./cmd/benchjson -suite router -label "$(BENCH_LABEL)" -out BENCH_router.json -append

# Quantized-inference frontier: every (precision, DDIM steps) point
# measured for flows/s and Synthetic/Real RF accuracy against the
# fp32/64-step reference, appended to BENCH_quant.json. The suite exits
# non-zero when fidelity drops past its tolerance or the best int8
# point is under the ≥2× speedup criterion — it is the gate, not just
# the recorder. The flows/s regression leg (QUANT_THRESHOLD, wide for
# shared runners) then compares against the committed baseline run.
QUANT_BASELINE ?= post-PR9-quant
QUANT_THRESHOLD ?= 0.50
bench-quant:
	$(GO) run ./cmd/benchjson -suite quant -label "$(BENCH_LABEL)" -out BENCH_quant.json -append

bench-quant-gate:
	$(GO) run ./cmd/benchjson -suite quant -label gate-candidate -out /tmp/bench_gate_quant.json
	$(GO) run ./cmd/benchjson -compare -old-label "$(QUANT_BASELINE)" -threshold "$(QUANT_THRESHOLD)" BENCH_quant.json /tmp/bench_gate_quant.json

# Open-loop load-harness snapshot: the embedded two-client workload
# spec (bulk poisson + bursty gamma interactive) is expanded by
# internal/load into a seeded schedule and fired at an in-process
# server; per-SLO-class p50/p95, attainment and shed counts are
# appended to BENCH_load.json, gated on the batch-class p95.
bench-load:
	$(GO) run ./cmd/benchjson -suite load -label "$(BENCH_LABEL)" -out BENCH_load.json -append

# Load regression gate: batch-class p95 under the mixed open-loop
# workload against the committed baseline. Same shared-runner caveat as
# the serve leg — wide threshold, catches architecture regressions.
LOAD_BASELINE ?= post-PR10-load
LOAD_THRESHOLD ?= 0.50
bench-load-gate:
	$(GO) run ./cmd/benchjson -suite load -label gate-candidate -out /tmp/bench_gate_load.json
	$(GO) run ./cmd/benchjson -compare -old-label "$(LOAD_BASELINE)" -threshold "$(LOAD_THRESHOLD)" BENCH_load.json /tmp/bench_gate_load.json

# Serving smoke test over the real binaries: tracegen -save writes a
# checkpoint, traced serves it, concurrent clients get valid + seeded
# byte-identical pcaps, overload gets 429, and SIGTERM drains cleanly.
serve-smoke:
	$(GO) test -run TestServeEndToEnd -count=1 -v .

# Cluster smoke test over the real binaries: tracerouter spreads load
# across two traced replicas, serves a repeat seeded request from its
# content-addressed cache byte-identically, survives a replica kill
# with no 5xx leaked past the status-mapping table, autoscales its own
# children in managed mode, and drains cleanly (exit 0) on SIGTERM.
cluster-smoke:
	$(GO) test -run TestClusterEndToEnd -count=1 -v .

# Load-harness smoke test over the real binaries: tracegen -save
# writes a checkpoint, traced serves it, and traceload drives the
# two-client example spec against it open-loop — the report must
# reconcile against the server's /metrics counters with zero
# unexplained 5xx/transport failures.
load-smoke:
	$(GO) test -run TestLoadEndToEnd -count=1 -v .

# Crash-safety smoke test over the real binary: tracegen is SIGKILLed
# after its first mid-run training checkpoint, restarted with -resume,
# and must emit synthetic pcaps byte-identical to an uninterrupted run.
resume-smoke:
	$(GO) test -run TestResumeEndToEnd -count=1 -v .

# End-to-end determinism guard: the tiny Table 2 experiment must print
# byte-identical output at GOMAXPROCS=1 and GOMAXPROCS=4, and the
# kill-at-step-k resume property must hold across every combination of
# kill step, batch size, EMA mode and LoRA/full-training mode.
verify-determinism:
	$(GO) build -o /tmp/traceval-det ./cmd/traceval
	GOMAXPROCS=1 /tmp/traceval-det -fast table2 > /tmp/det_p1.txt
	GOMAXPROCS=4 /tmp/traceval-det -fast table2 > /tmp/det_p4.txt
	diff /tmp/det_p1.txt /tmp/det_p4.txt
	@echo "determinism OK: GOMAXPROCS=1 and 4 outputs identical"
	$(GO) test -run 'TestTrainerResumeBitIdentity' -count=1 ./internal/diffusion
	$(GO) test -run 'TestFineTuneResumeEquivalence|TestCheckpointedTrainingMatchesPlain' -count=1 ./internal/core
	@echo "determinism OK: resumed training is bit-identical to uninterrupted training"

# Short fuzzing pass over the binary-format decoders.
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 15s ./internal/packet
	$(GO) test -fuzz FuzzReader -fuzztime 15s ./internal/pcap
	$(GO) test -fuzz FuzzNGReader -fuzztime 15s ./internal/pcap
	$(GO) test -fuzz FuzzDecodeRow -fuzztime 15s ./internal/nprint
	$(GO) test -fuzz FuzzReadCSV -fuzztime 15s ./internal/nprint

# Regenerate every paper table and figure.
experiments:
	$(GO) run ./cmd/traceval -train 40 -test 12 -synth 12 all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/servicerec
	$(GO) run ./examples/replay
	$(GO) run ./examples/coverage
	$(GO) run ./examples/foundation

clean:
	rm -f fig2_amazon.png synthetic_*.pcap
