package trafficdiff

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestResumeEndToEnd kills a real tracegen training run after its first
// crash-safe checkpoint lands on disk, restarts it with -resume, and
// checks that the interrupted-and-resumed pipeline emits synthetic
// pcaps byte-identical to an uninterrupted run with the same flags.
// `make resume-smoke` runs exactly this test.
func TestResumeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("resume e2e in -short mode")
	}
	dir := t.TempDir()
	tracegen := filepath.Join(dir, "tracegen")
	if out, err := exec.Command("go", "build", "-o", tracegen, "./cmd/tracegen").CombinedOutput(); err != nil {
		t.Fatalf("building tracegen: %v\n%s", err, out)
	}

	baseArgs := func(out string) []string {
		return []string{
			"-classes", "amazon,teams", "-train", "4", "-per-class", "1",
			"-steps", "60", "-rows", "16", "-write-real=false",
			"-progress-every", "0", "-out", out,
		}
	}

	// Uninterrupted reference run (checkpointing on, never killed —
	// periodic checkpoints must not change the outputs).
	refDir := filepath.Join(dir, "ref")
	refCmd := exec.Command(tracegen, append(baseArgs(refDir), "-checkpoint-every", "2")...)
	if out, err := refCmd.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}

	// Interrupted run: SIGKILL as soon as the first checkpoint exists.
	killDir := filepath.Join(dir, "killed")
	ckpt := filepath.Join(killDir, "train.ckpt")
	killCmd := exec.Command(tracegen, append(baseArgs(killDir), "-checkpoint-every", "2")...)
	var killOut bytes.Buffer
	killCmd.Stdout = &killOut
	killCmd.Stderr = &killOut
	if err := killCmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st, err := os.Stat(ckpt); err == nil && st.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			_ = killCmd.Process.Kill()
			t.Fatalf("no checkpoint appeared within 60s; output:\n%s", killOut.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := killCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = killCmd.Wait() // killed: a non-zero exit is the point

	// Resume from the mid-run checkpoint with the same data flags.
	resumeCmd := exec.Command(tracegen, append(baseArgs(killDir), "-checkpoint-every", "2", "-resume", ckpt)...)
	out, err := resumeCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("resume run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "resuming fine-tune from") {
		t.Fatalf("resume run did not report resuming; output:\n%s", out)
	}

	for _, class := range []string{"amazon", "teams"} {
		name := "synthetic_" + class + ".pcap"
		want, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(killDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs between uninterrupted and killed-then-resumed runs", name)
		}
	}
}
