package diffusion

import (
	"math"
	"testing"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// editModel trains a tiny two-class model on the left/right-half data.
func editModel(t *testing.T) (*MLPDenoiser, *Schedule) {
	t.Helper()
	r := stats.NewRNG(3)
	model := NewMLPDenoiser(r, 4, 8, 96, 2)
	sched := NewSchedule(ScheduleCosine, 50)
	if _, err := Train(model, sched, tinySet(4, 8), TrainConfig{
		Steps: 400, Batch: 8, LR: 5e-3, ClipNorm: 5, Seed: 2, DropCond: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	return model, sched
}

func TestInpaintPreservesKnownRegion(t *testing.T) {
	model, sched := editModel(t)
	h, w := 4, 8
	known := tensor.New(1, h, w)
	mask := make([]bool, h*w)
	// Left half observed at +1 (class-0 style), right half missing.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				known.Data[y*w+x] = 1
				mask[y*w+x] = true
			}
		}
	}
	out, err := Inpaint(model, sched, InpaintConfig{
		Known: known, Mask: mask, Class: 0, GuidanceScale: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Known region reproduced exactly at t=0 (no noise at final step).
	for y := 0; y < h; y++ {
		for x := 0; x < w/2; x++ {
			if got := out.Data[y*w+x]; math.Abs(float64(got-1)) > 1e-6 {
				t.Fatalf("known pixel (%d,%d) = %v, want 1", y, x, got)
			}
		}
	}
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("inpaint produced NaN")
		}
	}
}

func TestInpaintValidation(t *testing.T) {
	model, sched := editModel(t)
	known := tensor.New(1, 4, 8)
	mask := make([]bool, 32)
	if _, err := Inpaint(model, sched, InpaintConfig{Known: nil, Mask: mask, Class: 0}); err == nil {
		t.Error("nil known should fail")
	}
	if _, err := Inpaint(model, sched, InpaintConfig{Known: known, Mask: mask[:5], Class: 0}); err == nil {
		t.Error("short mask should fail")
	}
	if _, err := Inpaint(model, sched, InpaintConfig{Known: known, Mask: mask, Class: 9}); err == nil {
		t.Error("bad class should fail")
	}
}

func TestTranslateMovesTowardTargetClass(t *testing.T) {
	model, sched := editModel(t)
	h, w := 4, 8
	// Source is a class-0 image (left half bright).
	src := tensor.New(1, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				src.Data[y*w+x] = 1
			} else {
				src.Data[y*w+x] = -1
			}
		}
	}
	out, err := Translate(model, sched, TranslateConfig{
		Source: src, TargetClass: 1, Strength: 0.9, GuidanceScale: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var left, right float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float64(out.Data[y*w+x])
			if x < w/2 {
				left += v
			} else {
				right += v
			}
		}
	}
	if right <= left {
		t.Fatalf("translation did not move toward class 1: left %v right %v", left, right)
	}
}

func TestTranslateLowStrengthPreservesSource(t *testing.T) {
	model, sched := editModel(t)
	h, w := 4, 8
	src := tensor.New(1, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				src.Data[y*w+x] = 1
			} else {
				src.Data[y*w+x] = -1
			}
		}
	}
	out, err := Translate(model, sched, TranslateConfig{
		Source: src, TargetClass: 1, Strength: 0.05, GuidanceScale: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With tiny strength the output stays close to the source.
	var dist float64
	for i := range src.Data {
		dist += math.Abs(float64(out.Data[i] - src.Data[i]))
	}
	if dist/float64(len(src.Data)) > 0.5 {
		t.Fatalf("low-strength translation diverged: mean |Δ| = %v", dist/32)
	}
}

func TestTranslateValidation(t *testing.T) {
	model, sched := editModel(t)
	src := tensor.New(1, 4, 8)
	if _, err := Translate(model, sched, TranslateConfig{Source: nil, TargetClass: 0, Strength: 0.5}); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := Translate(model, sched, TranslateConfig{Source: src, TargetClass: 5, Strength: 0.5}); err == nil {
		t.Error("bad class should fail")
	}
	if _, err := Translate(model, sched, TranslateConfig{Source: src, TargetClass: 0, Strength: 0}); err == nil {
		t.Error("zero strength should fail")
	}
	if _, err := Translate(model, sched, TranslateConfig{Source: src, TargetClass: 0, Strength: 2}); err == nil {
		t.Error("excess strength should fail")
	}
}
