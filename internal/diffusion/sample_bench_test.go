package diffusion

import (
	"testing"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// benchModel matches the end-to-end generation benchmarks' denoiser
// scale (hidden width 128, T=80) so per-step costs are comparable.
func benchModel(b *testing.B) (*MLPDenoiser, *Schedule) {
	b.Helper()
	r := stats.NewRNG(21)
	m := NewMLPDenoiser(r, 8, 16, 128, 2)
	m.OutLayer().W.X.Randn(r, 0.05)
	return m, NewSchedule(ScheduleCosine, 80)
}

// BenchmarkSampleBatchedDDPM measures the batched-timestep ancestral
// sampler: one guided forward pair per step over the whole batch.
func BenchmarkSampleBatchedDDPM(b *testing.B) {
	model, sched := benchModel(b)
	const n = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sample(model, sched, SampleConfig{
			Class: 0, N: n, GuidanceScale: 2, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkSampleBatchedDDIM measures the batched few-step sampler
// (10 DDIM steps — the paper's generative-speed configuration).
func BenchmarkSampleBatchedDDIM(b *testing.B) {
	model, sched := benchModel(b)
	const n = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sample(model, sched, SampleConfig{
			Class: 0, N: n, GuidanceScale: 2, DDIMSteps: 10, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// TestSampleSteadyStateAllocs asserts the sampler's inner step is
// allocation-free up to small tensor headers: after one warm-up step
// primes the tape arena, a full guided predict + per-flow update +
// recycle must stay under a few dozen allocations (Reshape headers in
// the denoiser forward). Before the workspace refactor a single step
// cost thousands of allocations (fresh tape, clones, embeddings).
func TestSampleSteadyStateAllocs(t *testing.T) {
	r := stats.NewRNG(23)
	h, w := 8, 16
	model := NewMLPDenoiser(r, h, w, 128, 2)
	sched := NewSchedule(ScheduleCosine, 80)
	const n = 8
	p := newPredictor(model.Forward, model.NullClass(), n, 0, 2, nil, h, w)
	rngs := make([]*stats.RNG, n)
	for i := range rngs {
		rngs[i] = stats.NewRNG(uint64(i + 1))
	}
	x := tensor.New(n, 1, h, w).Randn(r, 1)
	step := func(t int) {
		eps := p.predict(x, t)
		d := h * w
		for i, rr := range rngs {
			ddpmUpdate(x.Data[i*d:(i+1)*d], eps.Data[i*d:(i+1)*d], sched, t, rr)
		}
		p.endStep()
	}
	step(sched.T - 1) // warm the arena
	avg := testing.AllocsPerRun(20, func() { step(40) })
	if avg > 48 {
		t.Errorf("steady-state step allocates %.1f times, want <= 48", avg)
	}
}
