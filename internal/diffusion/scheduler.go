package diffusion

import (
	"fmt"

	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// FlowID names one flow admitted to a Scheduler.
type FlowID uint64

// FlowSpec describes one flow to admit into the in-flight denoising
// batch. Every flow carries its own class, guidance scale, step budget
// and RNG stream, so a single batch may mix classes and DDIM step
// counts freely: the denoiser forward already takes per-row timestep
// and class indices, and every kernel computes each output row with a
// row-count-independent accumulation order.
type FlowSpec struct {
	// Class conditions the flow ("the prompt"). Must be < NullClass.
	Class int
	// GuidanceScale w applies classifier-free guidance per flow:
	// ε = ε_uncond + w·(ε_cond − ε_uncond).
	GuidanceScale float64
	// DDIMSteps, when in (0, T), runs the deterministic DDIM sampler
	// with that many steps; otherwise full ancestral DDPM.
	DDIMSteps int
	// RNG is the flow's private noise stream. The scheduler draws the
	// initial x_T from it at admission and (for DDPM) one noise element
	// per pixel per step, exactly the draw sequence of a solo run — the
	// root of the bit-identity contract.
	RNG *stats.RNG
	// Control, when non-nil, is the flow's ControlNet conditioning
	// image with H*W leading elements. Control presence must be uniform
	// across all flows in one scheduler: the denoiser forward takes one
	// control tensor covering every row, so a nil-control flow cannot
	// share a forward with a conditioned one.
	Control *tensor.Tensor
	// Out receives the finished sample (len H*W) when the flow
	// completes. Retired flows never write it.
	Out []float32
	// JobRows is the number of flows admitted together as one request
	// (0 is treated as 1). It is a scheduling hint only: under a
	// step-row budget, flows belonging to smaller jobs with fewer
	// remaining steps are stepped first (shortest remaining processing
	// time), which minimizes mean request latency. It never affects any
	// flow's bytes.
	JobRows int
}

// SchedulerStats counts the engine's work. FlowSteps/Steps is the mean
// batch occupancy; a retired flow stops contributing to FlowSteps at
// the next step boundary, which is what "retiring dead work" means in
// forward passes saved.
type SchedulerStats struct {
	// Steps is the number of batched denoiser evaluations run (a
	// guided step's conditional+unconditional forward pair counts once).
	Steps uint64
	// FlowSteps is the number of flow-rows summed over those steps.
	FlowSteps uint64
	Admitted  uint64
	Completed uint64
	Retired   uint64
}

// schedFlow is one in-flight flow's private state. Its row index in
// the packed batch buffers is implicit: flows[i] owns row i.
type schedFlow struct {
	id  FlowID
	rng *stats.RNG

	class  int
	guided bool
	wg     float32

	// The step plan. DDIM: seq/coef are the memoized DDIMTable plan and
	// pos indexes seq, counting down to 0. DDPM: seq is nil and pos is
	// the current timestep t, counting down to 0. Either way pos < 0
	// means done.
	seq  []int
	coef []DDIMCoeff
	pos  int

	out     []float32
	retired bool
	// jobRows is the FlowSpec scheduling hint (≥1): the size of the
	// request this flow arrived with. The step-row budget prioritizes
	// jobRows·(pos+1) — the job's remaining row-steps — so a small
	// fresh request overtakes bulk work (SRPT).
	jobRows int
}

// remainingWork is the flow's SRPT priority key: its job's remaining
// denoiser row-steps, assuming siblings share its plan (they do — a
// job admits identical specs). Lower runs first.
func (f *schedFlow) remainingWork() int {
	return f.jobRows * (f.pos + 1)
}

// curT returns the flow's current timestep.
func (f *schedFlow) curT() int {
	if f.seq != nil {
		return f.seq[f.pos]
	}
	return f.pos
}

// Scheduler is an incremental denoising engine: a long-lived batched
// sampler whose batch composition may change at every timestep
// boundary. Admit adds flows to the in-flight batch (each starting at
// its own x_T), Step advances the active flows by one step of their
// own plans with ONE batched forward (a guided pair when any stepping
// flow wants guidance), and Retire drops a flow's rows at the next
// boundary so an abandoned request stops consuming forwards
// mid-generation. SetStepRows optionally caps the rows per forward,
// stepping the jobs with the least remaining work first so a fresh
// small request reaches its first result without paying for every
// bulk row in flight.
//
// Determinism: a flow's output is a pure function of its FlowSpec —
// independent of when it was admitted, which flows shared its
// forwards, and in which buffer row it ran. This holds because every
// kernel computes each output row with an accumulation order
// independent of the batch's row count, the forward conditions each
// row only on that row's timestep/class embedding, and all noise comes
// from the flow's private stream. sample_equiv_test.go pins this
// byte-for-byte against solo SampleLegacy runs under admission/retire
// churn.
//
// Steady-state allocation: the packed row buffers, index slices,
// guidance-combine buffer and the reuse-enabled no-grad tape arena all
// persist across steps, so a stable batch steps with only small tensor
// headers allocated (TestSchedulerSteadyStateAllocs).
//
// A Scheduler is NOT safe for concurrent use: one goroutine owns it
// (the serving engine's step loop, or a Sample call).
type Scheduler struct {
	sched     *Schedule
	forward   ForwardFunc
	nullClass int
	h, w, d   int

	flows []*schedFlow
	// Packed row storage: flow i's pixels live in xbuf[i*d:(i+1)*d].
	// The DDPM/DDIM updates run in place here, so rows are only copied
	// on admission, compaction and completion — never per step.
	xbuf []float32
	// cbuf mirrors xbuf for per-flow control rows when control is on.
	cbuf      []float32
	controlOn bool
	// stepRows caps the rows advanced per Step (0 = all): see
	// SetStepRows.
	stepRows int
	// rowTmp is the d-element scratch for swapping two packed rows.
	rowTmp []float32

	tp     *nn.Tape
	steps  []int
	classC []int
	classU []int
	// epsBuf holds the per-row guidance-combined ε when any active flow
	// is guided (unguided rows are copied through from ε_cond).
	epsBuf []float32

	// Cached view headers over the packed buffers; rebuilt only when
	// the active row count or the backing arrays change.
	xView *tensor.Tensor
	cView *tensor.Tensor
	viewN int

	completed []FlowID
	nextID    FlowID
	stats     SchedulerStats
}

// NewScheduler builds an empty engine over the model and schedule.
// forward overrides the model's forward pass (LoRA, ablations); nil
// means model.Forward.
func NewScheduler(model Denoiser, sched *Schedule, forward ForwardFunc) *Scheduler {
	if forward == nil {
		forward = model.Forward
	}
	h, w := model.Shape()
	s := &Scheduler{
		sched:     sched,
		forward:   forward,
		nullClass: model.NullClass(),
		h:         h, w: w, d: h * w,
		tp:     nn.NewTape(),
		viewN:  -1,
		rowTmp: make([]float32, h*w),
	}
	s.tp.EnableReuse()
	s.tp.SetNoGrad(true)
	return s
}

// Active returns the number of in-flight flows (including ones marked
// retired but not yet dropped at a boundary).
func (s *Scheduler) Active() int { return len(s.flows) }

// Stats returns a snapshot of the engine's work counters.
func (s *Scheduler) Stats() SchedulerStats { return s.stats }

// Admit adds a flow to the batch, drawing its initial x_T noise from
// its private stream. The flow joins the next Step's forward. Admission
// order never affects any flow's output bytes.
func (s *Scheduler) Admit(spec FlowSpec) (FlowID, error) {
	if spec.RNG == nil {
		return 0, fmt.Errorf("diffusion: admit needs a flow RNG")
	}
	if spec.Class < 0 || spec.Class >= s.nullClass {
		return 0, fmt.Errorf("diffusion: class %d out of range [0,%d)", spec.Class, s.nullClass)
	}
	if len(spec.Out) != s.d {
		return 0, fmt.Errorf("diffusion: out buffer has %d elements, want %d", len(spec.Out), s.d)
	}
	hasControl := spec.Control != nil
	if hasControl && len(spec.Control.Data) < s.d {
		return 0, fmt.Errorf("diffusion: control image smaller than %d elements", s.d)
	}
	if len(s.flows) == 0 {
		s.controlOn = hasControl
	} else if hasControl != s.controlOn {
		return 0, fmt.Errorf("diffusion: control presence must be uniform across the batch")
	}

	f := &schedFlow{
		id:      s.nextID,
		rng:     spec.RNG,
		class:   spec.Class,
		out:     spec.Out,
		jobRows: max(spec.JobRows, 1),
	}
	s.nextID++
	f.guided = !stats.ApproxEqual(spec.GuidanceScale, 1, 1e-9)
	if f.guided {
		f.wg = float32(spec.GuidanceScale)
	}
	if spec.DDIMSteps > 0 && spec.DDIMSteps < s.sched.T {
		f.seq, f.coef = s.sched.DDIMTable(spec.DDIMSteps)
		f.pos = len(f.seq) - 1
	} else {
		f.pos = s.sched.T - 1
	}

	row := len(s.flows)
	s.growTo(row + 1)
	seg := s.xbuf[row*s.d : (row+1)*s.d]
	for j := range seg {
		seg[j] = float32(spec.RNG.NormFloat64())
	}
	if s.controlOn {
		copy(s.cbuf[row*s.d:(row+1)*s.d], spec.Control.Data[:s.d])
	}
	s.flows = append(s.flows, f)
	s.stats.Admitted++
	return f.id, nil
}

// Retire marks a flow for removal; its rows are dropped at the start
// of the next Step without running further forwards and without
// writing Out. Retiring an unknown or already-finished id is a no-op.
func (s *Scheduler) Retire(id FlowID) {
	for _, f := range s.flows {
		if f.id == id {
			f.retired = true
			return
		}
	}
}

// growTo makes the packed buffers and index slices hold at least n
// rows, preserving live rows. Geometric growth keeps admission churn
// amortized-O(row).
func (s *Scheduler) growTo(n int) {
	if n*s.d <= len(s.xbuf) {
		return
	}
	rows := len(s.xbuf) / s.d
	if rows < 4 {
		rows = 4
	}
	for rows < n {
		rows *= 2
	}
	xbuf := make([]float32, rows*s.d)
	copy(xbuf, s.xbuf[:len(s.flows)*s.d])
	s.xbuf = xbuf
	cbuf := make([]float32, rows*s.d)
	copy(cbuf, s.cbuf[:min(len(s.cbuf), len(s.flows)*s.d)])
	s.cbuf = cbuf
	s.epsBuf = make([]float32, rows*s.d)
	s.steps = make([]int, rows)
	s.classC = make([]int, rows)
	s.classU = make([]int, rows)
	s.viewN = -1 // backing arrays moved; view headers are stale
}

// SetStepRows caps the rows advanced per Step call at n (0 restores
// the default of stepping every active row). When the batch exceeds
// the cap, each Step picks the n flows whose jobs have the least
// remaining row-steps (shortest remaining processing time, ties by
// admission order), so fresh small requests reach their first result
// through small, cheap forwards while bulk jobs drain oldest-first
// through the remaining capacity. Output bytes are unaffected: which
// rows share a forward never changes any flow's math, only when it
// runs.
func (s *Scheduler) SetStepRows(n int) {
	if n < 0 {
		n = 0
	}
	s.stepRows = n
}

// dropRow removes row i from the packed state by moving the last row
// into its place. Row order is free to change: no flow's bytes depend
// on which row it occupies.
func (s *Scheduler) dropRow(i int) {
	last := len(s.flows) - 1
	if i != last {
		copy(s.xbuf[i*s.d:(i+1)*s.d], s.xbuf[last*s.d:(last+1)*s.d])
		if s.controlOn {
			copy(s.cbuf[i*s.d:(i+1)*s.d], s.cbuf[last*s.d:(last+1)*s.d])
		}
		s.flows[i] = s.flows[last]
	}
	s.flows[last] = nil
	s.flows = s.flows[:last]
}

// swapRows exchanges rows i and j of the packed state.
func (s *Scheduler) swapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := s.xbuf[i*s.d:(i+1)*s.d], s.xbuf[j*s.d:(j+1)*s.d]
	copy(s.rowTmp, ri)
	copy(ri, rj)
	copy(rj, s.rowTmp)
	if s.controlOn {
		ci, cj := s.cbuf[i*s.d:(i+1)*s.d], s.cbuf[j*s.d:(j+1)*s.d]
		copy(s.rowTmp, ci)
		copy(ci, cj)
		copy(cj, s.rowTmp)
	}
	s.flows[i], s.flows[j] = s.flows[j], s.flows[i]
}

// selectActive applies the step-row budget: when the batch exceeds it,
// the budget's worth of flows with the least remaining job work (ties
// by admission order) are swapped to the front rows and only they
// advance this Step — shortest remaining processing time, the policy
// that minimizes mean request latency when sizes are known. A 1-flow
// probe therefore steps at every boundary even when an 8-flow bulk
// request lands right next to it, while bulk jobs drain in admission
// order through the remaining capacity. Starvation is bounded by the
// small-request load share: a big job's key only decreases as it runs,
// so whenever small jobs leave budget headroom the oldest big job
// advances. (Least-attained-service with admission-order ties was
// tried first and measured worse: every fresh bulk batch outranked the
// mid-flight probe until it caught up.) The partial selection sort is
// deterministic and O(budget·n) on batches of at most a few dozen
// rows.
func (s *Scheduler) selectActive() int {
	n := len(s.flows)
	if s.stepRows <= 0 || n <= s.stepRows {
		return n
	}
	for k := 0; k < s.stepRows; k++ {
		best := k
		for i := k + 1; i < n; i++ {
			f, b := s.flows[i], s.flows[best]
			fw, bw := f.remainingWork(), b.remainingWork()
			if fw < bw || (fw == bw && f.id < b.id) {
				best = i
			}
		}
		s.swapRows(k, best)
	}
	return s.stepRows
}

// views returns the [n,1,H,W] tensor headers over the packed buffers,
// rebuilding them only when n or the backing arrays changed — a stable
// batch reuses the same headers every step.
func (s *Scheduler) views(n int) (x, c *tensor.Tensor) {
	if s.viewN != n {
		//tracelint:allow hotalloc — header-only rebuild when batch composition changes; stable batches reuse it
		s.xView = tensor.FromSlice(s.xbuf[:n*s.d], n, 1, s.h, s.w)
		if s.controlOn {
			//tracelint:allow hotalloc — header-only rebuild when batch composition changes; stable batches reuse it
			s.cView = tensor.FromSlice(s.cbuf[:n*s.d], n, 1, s.h, s.w)
		} else {
			s.cView = nil
		}
		s.viewN = n
	}
	return s.xView, s.cView
}

// Step advances the active flows by one step of their own plans:
// retired flows are dropped first, the step-row budget (if set) picks
// the least-remaining-work flows to advance, then ONE batched forward (a
// guided pair when any stepping flow is guided) evaluates ε for the
// stepping rows at their per-row timesteps, and each flow's DDPM/DDIM
// update runs in place from its own coefficients and private stream.
// Flows whose plan is exhausted copy their row into Out and leave the
// batch; their IDs are returned (the slice is reused across calls —
// copy it to keep it).
//
//tracelint:hotpath
func (s *Scheduler) Step() []FlowID {
	s.completed = s.completed[:0]
	for i := 0; i < len(s.flows); {
		if s.flows[i].retired {
			s.stats.Retired++
			s.dropRow(i)
			continue
		}
		i++
	}
	if len(s.flows) == 0 {
		return s.completed
	}
	n := s.selectActive()

	guided := false
	for i, f := range s.flows[:n] {
		s.steps[i] = f.curT()
		s.classC[i] = f.class
		s.classU[i] = s.nullClass
		guided = guided || f.guided
	}
	xv, cv := s.views(n)
	tp := s.tp
	epsC := s.forward(tp, tp.Input(xv), s.steps[:n], s.classC[:n], cv)
	eps := epsC.X.Data
	if guided {
		epsU := s.forward(tp, tp.Input(xv), s.steps[:n], s.classU[:n], cv)
		cd, ud := epsC.X.Data, epsU.X.Data
		for i, f := range s.flows[:n] {
			seg := s.epsBuf[i*s.d : (i+1)*s.d]
			if f.guided {
				wg := f.wg
				for j := range seg {
					seg[j] = ud[i*s.d+j] + wg*(cd[i*s.d+j]-ud[i*s.d+j])
				}
			} else {
				copy(seg, cd[i*s.d:(i+1)*s.d])
			}
		}
		eps = s.epsBuf
	}

	for i, f := range s.flows[:n] {
		row := s.xbuf[i*s.d : (i+1)*s.d]
		erow := eps[i*s.d : (i+1)*s.d]
		if f.seq != nil {
			ddimUpdate(row, erow, f.coef[f.pos])
		} else {
			ddpmUpdate(row, erow, s.sched, f.pos, f.rng)
		}
		f.pos--
	}
	tp.Reset()
	tp.Recycle()
	s.stats.Steps++
	s.stats.FlowSteps += uint64(n)

	for i := 0; i < len(s.flows); {
		f := s.flows[i]
		if f.pos >= 0 {
			i++
			continue
		}
		copy(f.out, s.xbuf[i*s.d:(i+1)*s.d])
		//tracelint:allow hotalloc — completed-ID append: capacity reaches steady state after the first completions
		s.completed = append(s.completed, f.id)
		s.stats.Completed++
		s.dropRow(i)
	}
	return s.completed
}
