// Package diffusion implements denoising diffusion probabilistic
// models (DDPM) from scratch: forward noising, ε-prediction denoisers
// (an MLP and a small convolutional U-Net), the training loop, and
// DDPM/DDIM samplers with classifier-free guidance.
//
// This is the pipeline's stand-in for the paper's Stable Diffusion 1.5
// base model: the generative mechanism (iterative Gaussian denoising
// conditioned on a class "prompt" embedding) is the same, scaled to a
// CPU-trainable size and operating directly on resolution-scaled
// nprint images rather than a pretrained latent space.
package diffusion

import (
	"fmt"
	"math"
	"sync"
)

// ScheduleKind selects the β noise schedule.
type ScheduleKind int

// Available schedules.
const (
	// ScheduleLinear is the original DDPM linear β ramp.
	ScheduleLinear ScheduleKind = iota
	// ScheduleCosine is the improved-DDPM cosine ᾱ schedule.
	ScheduleCosine
)

// String names the schedule.
func (k ScheduleKind) String() string {
	switch k {
	case ScheduleLinear:
		return "linear"
	case ScheduleCosine:
		return "cosine"
	default:
		return fmt.Sprintf("ScheduleKind(%d)", int(k))
	}
}

// Schedule holds the precomputed diffusion constants for T steps.
type Schedule struct {
	T        int
	Kind     ScheduleKind
	Beta     []float64 // β_t
	Alpha    []float64 // α_t = 1-β_t
	AlphaBar []float64 // ᾱ_t = Π α_s
	// PosteriorVar is the DDPM reverse-process variance
	// β̃_t = β_t (1-ᾱ_{t-1})/(1-ᾱ_t).
	PosteriorVar []float64

	// Per-step sampler coefficient tables, precomputed so the reverse
	// loops do no math.Sqrt work per step. Each entry is computed with
	// the exact float64 expression the samplers previously evaluated
	// inline, so sampler outputs stay bit-identical.
	SqrtAlphaBar         []float64 // √ᾱ_t
	SqrtOneMinusAlphaBar []float64 // √(1-ᾱ_t)
	PosteriorCoefX0      []float64 // √ᾱ_{t-1}·β_t/(1-ᾱ_t)
	PosteriorCoefXt      []float64 // √α_t·(1-ᾱ_{t-1})/(1-ᾱ_t)
	PosteriorSigma       []float64 // √β̃_t

	// DDIM step plans, memoized per step count. Schedules are shared
	// across concurrently sampling goroutines, hence the lock; the
	// tables above are written once in NewSchedule and read-only after.
	ddimMu    sync.Mutex
	ddimPlans map[int]*ddimPlan
}

// ddimPlan is the precomputed step subsequence and per-step update
// coefficients for a DDIM run with a fixed step count.
type ddimPlan struct {
	seq  []int
	coef []DDIMCoeff
}

// DDIMCoeff holds the four coefficients of one DDIM update
// x ← √ᾱ_prev·x̂₀ + √(1-ᾱ_prev)·ε with x̂₀ = (x - √(1-ᾱ)·ε)/√ᾱ.
type DDIMCoeff struct {
	SqrtAB      float64 // √ᾱ_t
	Sqrt1AB     float64 // √(1-ᾱ_t)
	SqrtABPrev  float64 // √ᾱ_prev (1 for the final step)
	Sqrt1ABPrev float64 // √(1-ᾱ_prev)
}

// DDIMTable returns the step subsequence ddimSequence(T, steps)
// produces plus the update coefficients for each position, computing
// and memoizing them on first use. Callers must not mutate the
// returned slices.
func (s *Schedule) DDIMTable(steps int) ([]int, []DDIMCoeff) {
	s.ddimMu.Lock()
	defer s.ddimMu.Unlock()
	if s.ddimPlans == nil {
		//tracelint:allow hotalloc — first DDIMTable call only
		s.ddimPlans = make(map[int]*ddimPlan)
	}
	if p, ok := s.ddimPlans[steps]; ok {
		return p.seq, p.coef
	}
	seq := ddimSequence(s.T, steps)
	//tracelint:allow hotalloc — first use of this step count only; memoized below
	coef := make([]DDIMCoeff, len(seq))
	for i, t := range seq {
		ab := s.AlphaBar[t]
		abPrev := 1.0
		if i > 0 {
			abPrev = s.AlphaBar[seq[i-1]]
		}
		//tracelint:allow hotalloc — value assignment into the memoized table, not a heap site per step
		coef[i] = DDIMCoeff{
			SqrtAB:      math.Sqrt(ab),
			Sqrt1AB:     math.Sqrt(1 - ab),
			SqrtABPrev:  math.Sqrt(abPrev),
			Sqrt1ABPrev: math.Sqrt(1 - abPrev),
		}
	}
	//tracelint:allow hotalloc — first use of this step count only; later calls return the memo
	s.ddimPlans[steps] = &ddimPlan{seq: seq, coef: coef}
	return seq, coef
}

// NewSchedule precomputes a schedule with T steps.
func NewSchedule(kind ScheduleKind, T int) *Schedule {
	if T < 1 {
		//tracelint:allow paniccheck — constructor invariant; T comes from validated config
		panic("diffusion: schedule needs T >= 1")
	}
	s := &Schedule{
		T: T, Kind: kind,
		Beta:         make([]float64, T),
		Alpha:        make([]float64, T),
		AlphaBar:     make([]float64, T),
		PosteriorVar: make([]float64, T),

		SqrtAlphaBar:         make([]float64, T),
		SqrtOneMinusAlphaBar: make([]float64, T),
		PosteriorCoefX0:      make([]float64, T),
		PosteriorCoefXt:      make([]float64, T),
		PosteriorSigma:       make([]float64, T),
	}
	switch kind {
	case ScheduleLinear:
		// DDPM defaults (β from 1e-4 to 0.02) are tuned for T=1000;
		// rescale by 1000/T so the total noise injected — and hence
		// ᾱ_T ≈ 0 — is preserved for smaller T.
		scale := 1000.0 / float64(T)
		lo, hi := 1e-4*scale, 0.02*scale
		for t := 0; t < T; t++ {
			frac := 0.0
			if T > 1 {
				frac = float64(t) / float64(T-1)
			}
			b := lo + (hi-lo)*frac
			if b > 0.999 {
				b = 0.999
			}
			s.Beta[t] = b
		}
	case ScheduleCosine:
		// Nichol & Dhariwal: ᾱ_t = f(t)/f(0), f(t)=cos²((t/T+s)/(1+s)·π/2).
		const off = 0.008
		f := func(t float64) float64 {
			v := math.Cos((t/float64(T) + off) / (1 + off) * math.Pi / 2)
			return v * v
		}
		f0 := f(0)
		prev := 1.0
		for t := 0; t < T; t++ {
			ab := f(float64(t+1)) / f0
			beta := 1 - ab/prev
			if beta > 0.999 {
				beta = 0.999
			}
			if beta < 1e-8 {
				beta = 1e-8
			}
			s.Beta[t] = beta
			prev = ab
		}
	default:
		//tracelint:allow paniccheck — exhaustive switch over the package's own ScheduleKind constants
		panic("diffusion: unknown schedule kind")
	}
	abar := 1.0
	for t := 0; t < T; t++ {
		s.Alpha[t] = 1 - s.Beta[t]
		abar *= s.Alpha[t]
		s.AlphaBar[t] = abar
		prevBar := 1.0
		if t > 0 {
			prevBar = s.AlphaBar[t-1]
		}
		s.PosteriorVar[t] = s.Beta[t] * (1 - prevBar) / (1 - abar)
	}
	for t := 0; t < T; t++ {
		ab := s.AlphaBar[t]
		abPrev := 1.0
		if t > 0 {
			abPrev = s.AlphaBar[t-1]
		}
		s.SqrtAlphaBar[t] = math.Sqrt(ab)
		s.SqrtOneMinusAlphaBar[t] = math.Sqrt(1 - ab)
		s.PosteriorCoefX0[t] = math.Sqrt(abPrev) * s.Beta[t] / (1 - ab)
		s.PosteriorCoefXt[t] = math.Sqrt(s.Alpha[t]) * (1 - abPrev) / (1 - ab)
		s.PosteriorSigma[t] = math.Sqrt(s.PosteriorVar[t])
	}
	return s
}

// SNR returns the signal-to-noise ratio ᾱ_t/(1-ᾱ_t) at step t.
func (s *Schedule) SNR(t int) float64 {
	return s.AlphaBar[t] / (1 - s.AlphaBar[t])
}
