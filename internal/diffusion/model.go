package diffusion

import (
	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// Denoiser predicts the noise ε added to a batch of images.
//
// xt is [N,1,H,W]; steps and class give each sample's timestep and
// class id (pass the model's NullClass for unconditional samples —
// classifier-free guidance trains both paths). control, when non-nil,
// is a [N,1,H,W] conditioning image injected through a zero-initialized
// projection (the ControlNet hook).
type Denoiser interface {
	Forward(tp *nn.Tape, xt *nn.V, steps []int, class []int, control *tensor.Tensor) *nn.V
	// Params returns the trainable base parameters.
	Params() []*nn.V
	// NullClass is the class id meaning "no prompt".
	NullClass() int
	// Shape returns the image height and width the model expects.
	Shape() (h, w int)
}

// timeEmbedDim is the sinusoidal timestep feature width.
const timeEmbedDim = 64

// MLPDenoiser is a compact fully-connected ε-predictor: fast enough to
// train in seconds on CPU, used by tests and the default pipeline.
type MLPDenoiser struct {
	H, W   int
	Hidden int
	K      int // real classes; table has K+1 rows (null last)

	classEmb *nn.EmbeddingLayer
	timeProj *nn.LinearLayer
	xProj    *nn.LinearLayer
	ctrlProj *nn.LinearLayer // zero-init: ControlNet hook
	norm1    *nn.NormLayer
	hid      *nn.LinearLayer
	norm2    *nn.NormLayer
	out      *nn.LinearLayer
	// gate maps the timestep features to a per-sample scalar that
	// scales a direct x_t -> output skip. ε-prediction has the analytic
	// form ε = x_t/√(1−ᾱ_t) − (√ᾱ_t/√(1−ᾱ_t))·x̂₀; without this skip a
	// narrow MLP would have to squeeze all of x_t through its hidden
	// bottleneck just to reproduce the first term.
	gate *nn.LinearLayer
}

// NewMLPDenoiser builds a denoiser for h x w single-channel images
// with k conditioning classes.
func NewMLPDenoiser(r *stats.RNG, h, w, hidden, k int) *MLPDenoiser {
	d := h * w
	m := &MLPDenoiser{
		H: h, W: w, Hidden: hidden, K: k,
		classEmb: nn.NewEmbedding(r, k+1, hidden),
		timeProj: nn.NewLinear(r, timeEmbedDim, hidden),
		xProj:    nn.NewLinear(r, d, hidden),
		ctrlProj: nn.NewLinear(r, d, hidden),
		norm1:    nn.NewNorm(hidden),
		hid:      nn.NewLinear(r, hidden, hidden),
		norm2:    nn.NewNorm(hidden),
		out:      nn.NewLinear(r, hidden, d),
		gate:     nn.NewLinear(r, timeEmbedDim, 1),
	}
	// ControlNet-style zero init: the control path starts as a no-op.
	m.ctrlProj.W.X.Zero()
	m.ctrlProj.B.X.Zero()
	// Zero-init the output layer: the model starts by predicting 0
	// noise, which stabilizes early training.
	m.out.W.X.Zero()
	m.out.B.X.Zero()
	return m
}

// NullClass implements Denoiser.
func (m *MLPDenoiser) NullClass() int { return m.K }

// Shape implements Denoiser.
func (m *MLPDenoiser) Shape() (int, int) { return m.H, m.W }

// Params implements Denoiser.
func (m *MLPDenoiser) Params() []*nn.V {
	var ps []*nn.V
	ps = append(ps, m.classEmb.Params()...)
	ps = append(ps, m.timeProj.Params()...)
	ps = append(ps, m.xProj.Params()...)
	ps = append(ps, m.ctrlProj.Params()...)
	ps = append(ps, m.norm1.Params()...)
	ps = append(ps, m.hid.Params()...)
	ps = append(ps, m.norm2.Params()...)
	ps = append(ps, m.out.Params()...)
	ps = append(ps, m.gate.Params()...)
	return ps
}

// Forward implements Denoiser.
func (m *MLPDenoiser) Forward(tp *nn.Tape, xt *nn.V, steps []int, class []int, control *tensor.Tensor) *nn.V {
	n := xt.X.Shape[0]
	d := m.H * m.W
	x2 := tp.Reshape(xt, n, d)

	tfeat := tp.TimeEmbed(steps, timeEmbedDim)
	h := m.xProj.Apply(tp, x2)
	temb := m.timeProj.Apply(tp, tfeat)
	h = tp.Add(h, temb)
	cemb := m.classEmb.Apply(tp, class)
	h = tp.Add(h, cemb)
	if control != nil {
		ctrl := tp.Input(control.Reshape(n, d))
		h = tp.Add(h, m.ctrlProj.Apply(tp, ctrl))
	}
	h = tp.SiLU(m.norm1.Apply(tp, h))
	h2 := tp.SiLU(m.norm2.Apply(tp, m.hid.Apply(tp, h)))
	h = tp.Add(h, h2) // residual
	eps := m.out.Apply(tp, h)
	// Time-gated input skip (see the gate field's comment).
	skip := tp.MulScalarBroadcast(x2, m.gate.Apply(tp, tfeat))
	eps = tp.Add(eps, skip)
	return tp.Reshape(eps, n, 1, m.H, m.W)
}

// UNetDenoiser is a small convolutional U-Net ε-predictor: a stem
// conv, one stride-2 down stage, a middle block, and a mirrored up
// stage with additive skip connections. Timestep and class embeddings
// are injected as per-channel biases (FiLM-style) at every stage —
// the same conditioning mechanism Stable Diffusion's U-Net uses,
// minus attention.
type UNetDenoiser struct {
	H, W int
	C    int // base channels
	K    int

	classEmb  *nn.EmbeddingLayer
	timeProj  *nn.LinearLayer
	embToC    *nn.LinearLayer // emb -> C
	embToC2   *nn.LinearLayer // emb -> 2C
	stem      *nn.ConvLayer   // 1 -> C
	res1      *nn.ConvLayer   // C -> C
	down      *nn.ConvLayer   // C -> 2C stride 2
	mid       *nn.ConvLayer   // 2C -> 2C
	upConv    *nn.ConvLayer   // 2C -> C (after upsample)
	res2      *nn.ConvLayer   // C -> C
	head      *nn.ConvLayer   // C -> 1
	ctrlStem  *nn.ConvLayer   // control branch: 1 -> C
	ctrlZero  *nn.ConvLayer   // zero conv: C -> C
	gate      *nn.LinearLayer // time features -> x_t skip gain
	attn      *AttnBlock      // optional mid-stage self-attention
	embHidden int
}

// NewUNetDenoiser builds the U-Net for h x w images (h and w must be
// even) with base channel count c and k classes.
func NewUNetDenoiser(r *stats.RNG, h, w, c, k int) *UNetDenoiser {
	if h%2 != 0 || w%2 != 0 {
		//tracelint:allow paniccheck — documented shape invariant (doc comment: h and w must be even)
		panic("diffusion: UNet needs even spatial dims")
	}
	const embHidden = 64
	conv := func(in, out, stride int) *nn.ConvLayer {
		return nn.NewConv(r, tensor.ConvSpec{InC: in, OutC: out, KH: 3, KW: 3, Stride: stride, Pad: 1})
	}
	u := &UNetDenoiser{
		H: h, W: w, C: c, K: k,
		classEmb:  nn.NewEmbedding(r, k+1, embHidden),
		timeProj:  nn.NewLinear(r, timeEmbedDim, embHidden),
		embToC:    nn.NewLinear(r, embHidden, c),
		embToC2:   nn.NewLinear(r, embHidden, 2*c),
		stem:      conv(1, c, 1),
		res1:      conv(c, c, 1),
		down:      conv(c, 2*c, 2),
		mid:       conv(2*c, 2*c, 1),
		upConv:    conv(2*c, c, 1),
		res2:      conv(c, c, 1),
		head:      conv(c, 1, 1),
		ctrlStem:  conv(1, c, 1),
		ctrlZero:  conv(c, c, 1),
		gate:      nn.NewLinear(r, timeEmbedDim, 1),
		embHidden: embHidden,
	}
	// Zero-init head (predict zero noise initially) and the control
	// branch's zero convolution (ControlNet's key trick).
	u.head.W.X.Zero()
	u.head.B.X.Zero()
	u.ctrlZero.W.X.Zero()
	u.ctrlZero.B.X.Zero()
	return u
}

// NullClass implements Denoiser.
func (u *UNetDenoiser) NullClass() int { return u.K }

// Shape implements Denoiser.
func (u *UNetDenoiser) Shape() (int, int) { return u.H, u.W }

// EnableAttention attaches a self-attention block to the mid stage
// (the Stable Diffusion U-Net configuration). Call before training.
func (u *UNetDenoiser) EnableAttention(r *stats.RNG) {
	u.attn = NewAttnBlock(r, 2*u.C)
}

// Params implements Denoiser.
func (u *UNetDenoiser) Params() []*nn.V {
	var ps []*nn.V
	for _, l := range []interface{ Params() []*nn.V }{
		u.classEmb, u.timeProj, u.embToC, u.embToC2,
		u.stem, u.res1, u.down, u.mid, u.upConv, u.res2, u.head,
		u.ctrlStem, u.ctrlZero, u.gate,
	} {
		ps = append(ps, l.Params()...)
	}
	if u.attn != nil {
		ps = append(ps, u.attn.Params()...)
	}
	return ps
}

// Forward implements Denoiser.
func (u *UNetDenoiser) Forward(tp *nn.Tape, xt *nn.V, steps []int, class []int, control *tensor.Tensor) *nn.V {
	// Conditioning embedding shared by all stages.
	tfeat := tp.TimeEmbed(steps, timeEmbedDim)
	temb := u.timeProj.Apply(tp, tfeat)
	cemb := u.classEmb.Apply(tp, class)
	emb := tp.SiLU(tp.Add(temb, cemb)) // [N, embHidden]
	embC := u.embToC.Apply(tp, emb)    // [N, C]
	embC2 := u.embToC2.Apply(tp, emb)  // [N, 2C]

	h := tp.SiLU(u.stem.Apply(tp, xt))  // [N,C,H,W]
	h = tp.AddChannelBroadcast(h, embC) // inject conditioning
	if control != nil {
		c := tp.Input(control)
		cf := tp.SiLU(u.ctrlStem.Apply(tp, c))
		h = tp.Add(h, u.ctrlZero.Apply(tp, cf)) // zero conv: starts as no-op
	}
	h = tp.Add(h, tp.SiLU(u.res1.Apply(tp, h))) // residual block
	skip := h

	d := tp.SiLU(u.down.Apply(tp, h)) // [N,2C,H/2,W/2]
	d = tp.AddChannelBroadcast(d, embC2)
	d = tp.Add(d, tp.SiLU(u.mid.Apply(tp, d)))
	if u.attn != nil {
		d = u.attn.Apply(tp, d)
	}

	up := tp.UpsampleNearest2x(d)          // [N,2C,H,W]
	up2 := tp.SiLU(u.upConv.Apply(tp, up)) // [N,C,H,W]
	merged := tp.Add(up2, skip)            // additive skip connection
	merged = tp.Add(merged, tp.SiLU(u.res2.Apply(tp, merged)))
	eps := u.head.Apply(tp, merged) // [N,1,H,W]
	// Time-gated input skip: the analytic x_t term of ε-prediction.
	eps = tp.Add(eps, tp.MulChannelBroadcast(xt, u.gate.Apply(tp, tfeat)))
	return eps
}

// TimeEmbedDim exposes the sinusoidal feature width so wrappers (e.g.
// LoRA-adapted denoisers) can rebuild the conditioning path.
func TimeEmbedDim() int { return timeEmbedDim }

// Layer accessors let adapter wrappers (package lora) reuse the frozen
// base layers while substituting their own deltas.

// XProjLayer returns the input projection layer.
func (m *MLPDenoiser) XProjLayer() *nn.LinearLayer { return m.xProj }

// TimeProjLayer returns the timestep projection layer.
func (m *MLPDenoiser) TimeProjLayer() *nn.LinearLayer { return m.timeProj }

// CtrlProjLayer returns the control (ControlNet hook) projection.
func (m *MLPDenoiser) CtrlProjLayer() *nn.LinearLayer { return m.ctrlProj }

// Norm1Layer returns the first normalization layer.
func (m *MLPDenoiser) Norm1Layer() *nn.NormLayer { return m.norm1 }

// Norm2Layer returns the second normalization layer.
func (m *MLPDenoiser) Norm2Layer() *nn.NormLayer { return m.norm2 }

// HidLayer returns the hidden layer.
func (m *MLPDenoiser) HidLayer() *nn.LinearLayer { return m.hid }

// OutLayer returns the output projection layer.
func (m *MLPDenoiser) OutLayer() *nn.LinearLayer { return m.out }

// ClassEmbLayer returns the base class-embedding table.
func (m *MLPDenoiser) ClassEmbLayer() *nn.EmbeddingLayer { return m.classEmb }

// GateLayer returns the time-gated input-skip layer.
func (m *MLPDenoiser) GateLayer() *nn.LinearLayer { return m.gate }
