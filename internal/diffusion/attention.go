package diffusion

import (
	"math"

	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
)

// AttnBlock is a single-head spatial self-attention block, the
// component Stable Diffusion's U-Net applies at its lower-resolution
// stages: each spatial position attends over all others, letting the
// denoiser model long-range structure (e.g. column-aligned protocol
// fields spanning the whole flow image). The output projection is
// zero-initialized so the block starts as an identity residual.
type AttnBlock struct {
	C              int
	Wq, Wk, Wv, Wo *nn.LinearLayer
}

// NewAttnBlock builds the block for c channels.
func NewAttnBlock(r *stats.RNG, c int) *AttnBlock {
	b := &AttnBlock{
		C:  c,
		Wq: nn.NewLinear(r, c, c),
		Wk: nn.NewLinear(r, c, c),
		Wv: nn.NewLinear(r, c, c),
		Wo: nn.NewLinear(r, c, c),
	}
	b.Wo.W.X.Zero()
	b.Wo.B.X.Zero()
	return b
}

// Params returns the block's trainable parameters.
func (b *AttnBlock) Params() []*nn.V {
	var ps []*nn.V
	for _, l := range []*nn.LinearLayer{b.Wq, b.Wk, b.Wv, b.Wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Apply runs residual self-attention over x [N,C,H,W].
func (b *AttnBlock) Apply(tp *nn.Tape, x *nn.V) *nn.V {
	n, c := x.X.Shape[0], x.X.Shape[1]
	h, w := x.X.Shape[2], x.X.Shape[3]
	hw := h * w
	flat := tp.Reshape(x, n, c*hw)
	scale := float32(1 / math.Sqrt(float64(c)))

	var rows *nn.V
	for i := 0; i < n; i++ {
		// [1, C*HW] -> [C, HW] -> tokens [HW, C].
		sample := tp.Reshape(tp.SliceRows(flat, i, i+1), c, hw)
		tokens := tp.Transpose2D(sample)
		q := b.Wq.Apply(tp, tokens)
		k := b.Wk.Apply(tp, tokens)
		v := b.Wv.Apply(tp, tokens)
		scores := tp.Scale(tp.MatMul(q, tp.Transpose2D(k)), scale)
		att := tp.MatMul(tp.SoftmaxRows(scores), v)
		out := b.Wo.Apply(tp, att) // [HW, C]
		row := tp.Reshape(tp.Transpose2D(out), 1, c*hw)
		if rows == nil {
			rows = row
		} else {
			rows = tp.Concat0(rows, row)
		}
	}
	return tp.Add(x, tp.Reshape(rows, n, c, h, w))
}
