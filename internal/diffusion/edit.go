package diffusion

import (
	"fmt"
	"math"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// The paper's §4 research agenda sketches downstream tasks a traffic
// foundation model should support. Two of them map directly onto
// standard diffusion editing machinery and are implemented here:
//
//   - "traffic deblurring: restoration of missing header fields or
//     corrupted parts within network traffic" -> Inpaint (RePaint-style
//     masked reverse diffusion);
//   - "traffic-to-traffic translations" -> Translate (SDEdit-style
//     partial noising followed by denoising under a different class
//     prompt).

// InpaintConfig controls masked restoration.
type InpaintConfig struct {
	// Known is the observed image [1,H,W]; values at masked-out
	// positions are ignored.
	Known *tensor.Tensor
	// Mask marks which pixels are known (true = observed, keep).
	// Length must be H*W.
	Mask []bool
	// Class conditions the restoration.
	Class         int
	GuidanceScale float64
	Control       *tensor.Tensor
	Seed          uint64
}

// Inpaint restores the unknown region of a partially observed image by
// reverse diffusion: at every step the known region of x_t is replaced
// with a forward-noised version of the observation, so the generated
// content stays consistent with it (Lugmayr et al.'s RePaint scheme,
// single pass).
func Inpaint(model Denoiser, sched *Schedule, cfg InpaintConfig) (*tensor.Tensor, error) {
	h, w := model.Shape()
	d := h * w
	if cfg.Known == nil || cfg.Known.Len() != d {
		return nil, fmt.Errorf("diffusion: Known must be [1,%d,%d]", h, w)
	}
	if len(cfg.Mask) != d {
		return nil, fmt.Errorf("diffusion: mask length %d, want %d", len(cfg.Mask), d)
	}
	if cfg.Class < 0 || cfg.Class >= model.NullClass() {
		return nil, fmt.Errorf("diffusion: class %d out of range", cfg.Class)
	}
	r := stats.NewRNG(cfg.Seed)

	var control *tensor.Tensor
	if cfg.Control != nil {
		control = cfg.Control.Reshape(1, 1, h, w)
	}
	p := newPredictor(model.Forward, model.NullClass(), 1, cfg.Class, cfg.GuidanceScale, control, h, w)

	x := tensor.New(1, 1, h, w).Randn(r, 1)
	for t := sched.T - 1; t >= 0; t-- {
		// Standard reverse step on the whole image.
		stepDDPMInPlace(x, sched, t, r, p)
		// Overwrite the known region with q(x_{t-1} | x_0^known).
		abPrev := 1.0
		if t > 0 {
			abPrev = sched.AlphaBar[t-1]
		}
		sa := math.Sqrt(abPrev)
		sn := math.Sqrt(1 - abPrev)
		for i := 0; i < d; i++ {
			if cfg.Mask[i] {
				noise := 0.0
				if t > 0 {
					noise = r.NormFloat64()
				}
				x.Data[i] = float32(sa*float64(cfg.Known.Data[i]) + sn*noise)
			}
		}
	}
	return x.Reshape(1, h, w), nil
}

// TranslateConfig controls traffic-to-traffic translation.
type TranslateConfig struct {
	// Source is the input image [1,H,W].
	Source *tensor.Tensor
	// TargetClass is the prompt to translate toward.
	TargetClass int
	// Strength in (0,1]: the fraction of the noise schedule applied to
	// the source before denoising under the target prompt. Low values
	// preserve more of the source's structure; 1.0 is a fresh sample.
	Strength      float64
	GuidanceScale float64
	Control       *tensor.Tensor
	Seed          uint64
}

// Translate re-renders a source flow image under a different class
// prompt by noising it partway up the schedule and denoising back down
// conditioned on the target class (Meng et al.'s SDEdit applied to
// traffic — the paper's VPN-Netflix/YouTube translation example).
func Translate(model Denoiser, sched *Schedule, cfg TranslateConfig) (*tensor.Tensor, error) {
	h, w := model.Shape()
	d := h * w
	if cfg.Source == nil || cfg.Source.Len() != d {
		return nil, fmt.Errorf("diffusion: Source must be [1,%d,%d]", h, w)
	}
	if cfg.TargetClass < 0 || cfg.TargetClass >= model.NullClass() {
		return nil, fmt.Errorf("diffusion: class %d out of range", cfg.TargetClass)
	}
	if cfg.Strength <= 0 || cfg.Strength > 1 {
		return nil, fmt.Errorf("diffusion: strength %v out of (0,1]", cfg.Strength)
	}
	r := stats.NewRNG(cfg.Seed)
	t0 := int(cfg.Strength*float64(sched.T)) - 1
	if t0 < 0 {
		t0 = 0
	}

	var control *tensor.Tensor
	if cfg.Control != nil {
		control = cfg.Control.Reshape(1, 1, h, w)
	}
	p := newPredictor(model.Forward, model.NullClass(), 1, cfg.TargetClass, cfg.GuidanceScale, control, h, w)

	// Forward-noise the source to step t0, then denoise.
	x := tensor.New(1, 1, h, w)
	sa := sched.SqrtAlphaBar[t0]
	sn := sched.SqrtOneMinusAlphaBar[t0]
	for i := 0; i < d; i++ {
		x.Data[i] = float32(sa*float64(cfg.Source.Data[i]) + sn*r.NormFloat64())
	}
	for t := t0; t >= 0; t-- {
		stepDDPMInPlace(x, sched, t, r, p)
	}
	return x.Reshape(1, h, w), nil
}

// stepDDPMInPlace applies one reverse DDPM step (with x0 clipping) to
// x at timestep t, drawing noise from r.
func stepDDPMInPlace(x *tensor.Tensor, sched *Schedule, t int, r *stats.RNG, p *predictor) {
	eps := p.predict(x, t)
	ddpmUpdate(x.Data, eps.Data, sched, t, r)
	p.endStep()
}
