package diffusion

import (
	"fmt"
	"io"
	"math"
	"time"

	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// Progress is the per-step training report passed to a progress hook:
// the 0-based step just completed, its loss, the pre-clip global
// gradient norm, and the instantaneous step rate (0 on the first step
// — there is no previous step to measure against). The hook observes
// training; it must not mutate the model or the trainer.
type Progress struct {
	Step        int
	Loss        float64
	GradNorm    float64
	StepsPerSec float64
}

// ProgressFunc receives one Progress report after every optimizer step.
type ProgressFunc func(Progress)

// TrainConfig controls DDPM training.
type TrainConfig struct {
	Steps int     // optimizer steps
	Batch int     // minibatch size
	LR    float64 // Adam learning rate
	// DropCond is the probability a sample's class label is replaced
	// by the null class during training (classifier-free guidance).
	DropCond float64
	ClipNorm float64
	Seed     uint64
	// ExtraParams are trained alongside the model's own parameters
	// (LoRA adapters pass theirs here; pass the model's Params()
	// replaced by nothing to freeze the base — see TrainParams).
	ExtraParams []*nn.V
	// FreezeBase trains only ExtraParams (LoRA fine-tuning mode).
	FreezeBase bool
	// Controls, when non-nil, supplies the per-class control image fed
	// to the denoiser during training (ControlNet conditioning).
	Controls map[int]*tensor.Tensor
	// EMADecay, when > 0, maintains an exponential moving average of
	// the trained parameters and installs it when training finishes —
	// the standard DDPM sampling-quality practice (typical 0.995).
	EMADecay float64
	// Progress, when non-nil, is called after every optimizer step.
	// The hook is reporting-only: it does not participate in the
	// trainer's deterministic state, so checkpoints taken with and
	// without a hook are byte-identical.
	Progress ProgressFunc
}

// validate rejects configurations that would train incorrectly rather
// than fail loudly: a non-positive or non-finite learning rate
// silently trains away from (or never toward) the minimum, and a
// conditioning-drop probability outside [0,1] skews the
// classifier-free-guidance mix.
func (cfg *TrainConfig) validate() error {
	if cfg.Batch <= 0 || cfg.Steps <= 0 {
		return fmt.Errorf("diffusion: non-positive Steps/Batch")
	}
	if math.IsNaN(cfg.LR) || math.IsInf(cfg.LR, 0) || cfg.LR <= 0 {
		return fmt.Errorf("diffusion: LR must be positive and finite, got %v", cfg.LR)
	}
	if math.IsNaN(cfg.DropCond) || cfg.DropCond < 0 || cfg.DropCond > 1 {
		return fmt.Errorf("diffusion: DropCond must be in [0,1], got %v", cfg.DropCond)
	}
	if math.IsNaN(cfg.ClipNorm) || cfg.ClipNorm < 0 {
		return fmt.Errorf("diffusion: ClipNorm must be >= 0, got %v", cfg.ClipNorm)
	}
	if math.IsNaN(cfg.EMADecay) || cfg.EMADecay >= 1 {
		return fmt.Errorf("diffusion: EMADecay must be in (0,1)")
	}
	return nil
}

// TrainSet is the training data: images [1,H,W] each with a class id.
type TrainSet struct {
	Images []*tensor.Tensor
	Labels []int
}

// Validate checks the set's consistency against a model shape.
func (ts *TrainSet) Validate(h, w, k int) error {
	if len(ts.Images) == 0 {
		return fmt.Errorf("diffusion: empty training set")
	}
	if len(ts.Images) != len(ts.Labels) {
		return fmt.Errorf("diffusion: %d images, %d labels", len(ts.Images), len(ts.Labels))
	}
	for i, im := range ts.Images {
		if len(im.Shape) != 3 || im.Shape[0] != 1 || im.Shape[1] != h || im.Shape[2] != w {
			return fmt.Errorf("diffusion: image %d shape %v, want [1 %d %d]", i, im.Shape, h, w)
		}
		if ts.Labels[i] < 0 || ts.Labels[i] >= k {
			return fmt.Errorf("diffusion: image %d label %d out of range [0,%d)", i, ts.Labels[i], k)
		}
	}
	return nil
}

// Trainer runs DDPM training one optimizer step at a time over
// explicit state, which is what makes mid-run checkpointing possible:
// everything the loop touches — the trained parameters, the Adam
// moments and update count, the EMA shadow, the minibatch RNG
// position, the loss curve, and the step counter — is either held
// here or reachable through Checkpoint/Restore. A Trainer restored
// from a checkpoint continues the exact same training trajectory: the
// final weights are bit-identical to an uninterrupted run.
//
// A Trainer is single-goroutine; it owns reusable minibatch and tape
// buffers that make the steady-state step allocation-free.
type Trainer struct {
	model Denoiser
	sched *Schedule
	set   *TrainSet
	cfg   TrainConfig

	params []*nn.V
	opt    *nn.Adam
	ema    *nn.EMA
	rng    *stats.RNG

	losses   []float64
	step     int
	finished bool

	// Minibatch buffers are allocated once and refilled every step, and
	// the tape's output arena recycles the forward pass's intermediate
	// tensors across steps — shapes repeat, so after the first step the
	// training loop is allocation-free on the hot path.
	n, d     int
	xt       *tensor.Tensor
	noise    *tensor.Tensor
	stepIDs  []int
	classIDs []int
	control  *tensor.Tensor
	xv       *nn.V
	tp       *nn.Tape

	// prevStepEnd times the previous Step for the progress hook's
	// steps/s; wall-clock never feeds back into training state.
	prevStepEnd time.Time
}

// NewTrainer validates cfg and builds a Trainer positioned at step 0.
func NewTrainer(model Denoiser, sched *Schedule, set *TrainSet, cfg TrainConfig) (*Trainer, error) {
	h, w := model.Shape()
	kReal := model.NullClass()
	if err := set.Validate(h, w, kReal); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	params := cfg.ExtraParams
	if !cfg.FreezeBase {
		params = append(append([]*nn.V(nil), model.Params()...), cfg.ExtraParams...)
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("diffusion: nothing to train (base frozen, no extra params)")
	}
	opt := nn.NewAdam(cfg.LR, params)
	opt.ClipNorm = cfg.ClipNorm
	var ema *nn.EMA
	if cfg.EMADecay > 0 {
		ema = nn.NewEMA(cfg.EMADecay, params)
	}

	n := cfg.Batch
	tr := &Trainer{
		model: model, sched: sched, set: set, cfg: cfg,
		params: params, opt: opt, ema: ema,
		rng:    stats.NewRNG(cfg.Seed),
		losses: make([]float64, 0, cfg.Steps),
		n:      n, d: h * w,
		xt:       tensor.New(n, 1, h, w),
		noise:    tensor.New(n, 1, h, w),
		stepIDs:  make([]int, n),
		classIDs: make([]int, n),
		tp:       nn.NewTape(),
	}
	if cfg.Controls != nil {
		tr.control = tensor.New(n, 1, h, w)
	}
	tr.xv = nn.NewV(tr.xt)
	tr.tp.EnableReuse()
	return tr, nil
}

// StepCount returns the number of completed optimizer steps.
func (tr *Trainer) StepCount() int { return tr.step }

// Done reports whether the configured step budget is exhausted.
func (tr *Trainer) Done() bool { return tr.step >= tr.cfg.Steps }

// Losses returns the per-step loss curve so far. The slice is the
// trainer's own; callers must not mutate it.
func (tr *Trainer) Losses() []float64 { return tr.losses }

// Step runs one optimizer step: draw a minibatch, noise it to random
// timesteps, predict the noise, backpropagate the MSE, and update.
// A non-finite loss aborts with an error and leaves the loss curve at
// its last finite entry; EMA weights are never installed on that path.
func (tr *Trainer) Step() error {
	if tr.finished {
		return fmt.Errorf("diffusion: Step after Finish")
	}
	if tr.Done() {
		return fmt.Errorf("diffusion: Step beyond configured %d steps", tr.cfg.Steps)
	}
	n, d := tr.n, tr.d
	cfg, r, sched := &tr.cfg, tr.rng, tr.sched
	for i := 0; i < n; i++ {
		idx := r.Intn(len(tr.set.Images))
		x0 := tr.set.Images[idx]
		t := r.Intn(sched.T)
		tr.stepIDs[i] = t
		tr.classIDs[i] = tr.set.Labels[idx]
		if cfg.DropCond > 0 && r.Bool(cfg.DropCond) {
			tr.classIDs[i] = tr.model.NullClass()
		}
		// The schedule's precomputed √ᾱ_t / √(1-ᾱ_t) tables hold the
		// exact float64 values this loop previously computed inline, so
		// the noising is bit-identical to the pre-table code.
		sa := float32(sched.SqrtAlphaBar[t])
		sn := float32(sched.SqrtOneMinusAlphaBar[t])
		for j := 0; j < d; j++ {
			e := float32(r.NormFloat64())
			tr.noise.Data[i*d+j] = e
			tr.xt.Data[i*d+j] = sa*x0.Data[j] + sn*e
		}
		if tr.control != nil {
			if ctrl, ok := cfg.Controls[tr.set.Labels[idx]]; ok {
				copy(tr.control.Data[i*d:(i+1)*d], ctrl.Data)
			} else {
				ctrlRow := tr.control.Data[i*d : (i+1)*d]
				for j := range ctrlRow {
					ctrlRow[j] = 0
				}
			}
		}
	}

	tr.xv.ZeroGrad()
	pred := tr.model.Forward(tr.tp, tr.xv, tr.stepIDs, tr.classIDs, tr.control)
	loss := tr.tp.MSE(pred, tr.noise)
	lv := float64(loss.X.Data[0])
	if math.IsNaN(lv) || math.IsInf(lv, 0) {
		return fmt.Errorf("diffusion: non-finite loss at step %d", tr.step)
	}
	tr.losses = append(tr.losses, lv)
	tr.tp.Backward(loss)
	var gradNorm float64
	if cfg.Progress != nil {
		gradNorm = tr.opt.GradNorm()
	}
	tr.opt.Step()
	if tr.ema != nil {
		tr.ema.Update()
	}
	// All tape outputs from this step are dead now; hand their
	// storage back for the next step.
	tr.tp.Recycle()
	tr.step++

	if cfg.Progress != nil {
		// Steps/s is reported to the progress hook and never feeds back
		// into weights, samples, or checkpoints.
		//tracelint:allow walltime — observation-only progress timing
		now := time.Now()
		sps := 0.0
		if !tr.prevStepEnd.IsZero() {
			if dt := now.Sub(tr.prevStepEnd).Seconds(); dt > 0 {
				sps = 1 / dt
			}
		}
		tr.prevStepEnd = now
		cfg.Progress(Progress{Step: tr.step - 1, Loss: lv, GradNorm: gradNorm, StepsPerSec: sps})
	}
	return nil
}

// Finish completes training: when EMA is enabled, the averaged
// weights are installed on the model (the standard DDPM sampling
// practice). Idempotent; the trainer accepts no further Steps or
// Checkpoints afterwards.
func (tr *Trainer) Finish() {
	if tr.finished {
		return
	}
	tr.finished = true
	if tr.ema != nil {
		// Install the averaged weights for sampling.
		tr.ema.Swap()
	}
}

// Run steps the trainer to completion and finishes it — the classic
// Train loop. On a non-finite loss it returns the partial loss curve
// with the error; EMA weights are not installed in that case.
func (tr *Trainer) Run() ([]float64, error) {
	for !tr.Done() {
		if err := tr.Step(); err != nil {
			return tr.losses, err
		}
	}
	tr.Finish()
	return tr.losses, nil
}

// Checkpoint serializes the trainer's complete mid-run state — the
// trained parameter values plus the Adam moments, EMA shadow, RNG
// position, loss curve and step counter — as a Version-2 nn
// checkpoint. A Trainer built with the same model/set/config and
// restored from this stream continues training bit-identically.
// Checkpointing a finished trainer is an error: Finish may have
// swapped the EMA average into the live parameters, which is not a
// resumable state.
func (tr *Trainer) Checkpoint(w io.Writer) error {
	if tr.finished {
		return fmt.Errorf("diffusion: cannot checkpoint a finished trainer")
	}
	astep, m, v := tr.opt.State()
	st := &nn.TrainerState{
		Step:     tr.step,
		AdamStep: astep,
		AdamM:    m,
		AdamV:    v,
		RNG:      tr.rng.State(),
		Losses:   tr.losses,
	}
	if tr.ema != nil {
		st.EMA = tr.ema.Shadow()
	}
	return nn.SaveTraining(w, tr.params, st)
}

// Restore loads a checkpoint written by Checkpoint into this trainer,
// which must have been built with the same model, training set and
// config. The trainer resumes from the captured step.
func (tr *Trainer) Restore(r io.Reader) error {
	if tr.finished {
		return fmt.Errorf("diffusion: cannot restore into a finished trainer")
	}
	st, err := nn.LoadTraining(r, tr.params)
	if err != nil {
		return err
	}
	if st.Step < 0 || st.Step > tr.cfg.Steps {
		return fmt.Errorf("diffusion: checkpoint at step %d outside configured %d steps", st.Step, tr.cfg.Steps)
	}
	if len(st.Losses) != st.Step {
		return fmt.Errorf("diffusion: checkpoint has %d losses for %d steps", len(st.Losses), st.Step)
	}
	if (st.EMA != nil) != (tr.ema != nil) {
		return fmt.Errorf("diffusion: checkpoint EMA state (%t) does not match config (%t)", st.EMA != nil, tr.ema != nil)
	}
	if err := tr.opt.SetState(st.AdamStep, st.AdamM, st.AdamV); err != nil {
		return err
	}
	if tr.ema != nil {
		if err := tr.ema.SetShadow(st.EMA); err != nil {
			return err
		}
	}
	if err := tr.rng.SetState(st.RNG); err != nil {
		return err
	}
	tr.losses = append(tr.losses[:0], st.Losses...)
	tr.step = st.Step
	return nil
}

// Train runs DDPM training of model on set under sched and returns the
// per-step loss curve. Training minimizes E‖ε − ε_θ(√ᾱ x₀ + √(1−ᾱ) ε, t, c)‖².
// It is the single-shot form of the step-wise Trainer.
func Train(model Denoiser, sched *Schedule, set *TrainSet, cfg TrainConfig) ([]float64, error) {
	tr, err := NewTrainer(model, sched, set, cfg)
	if err != nil {
		return nil, err
	}
	return tr.Run()
}
