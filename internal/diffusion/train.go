package diffusion

import (
	"fmt"
	"math"

	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// TrainConfig controls DDPM training.
type TrainConfig struct {
	Steps int     // optimizer steps
	Batch int     // minibatch size
	LR    float64 // Adam learning rate
	// DropCond is the probability a sample's class label is replaced
	// by the null class during training (classifier-free guidance).
	DropCond float64
	ClipNorm float64
	Seed     uint64
	// ExtraParams are trained alongside the model's own parameters
	// (LoRA adapters pass theirs here; pass the model's Params()
	// replaced by nothing to freeze the base — see TrainParams).
	ExtraParams []*nn.V
	// FreezeBase trains only ExtraParams (LoRA fine-tuning mode).
	FreezeBase bool
	// Controls, when non-nil, supplies the per-class control image fed
	// to the denoiser during training (ControlNet conditioning).
	Controls map[int]*tensor.Tensor
	// EMADecay, when > 0, maintains an exponential moving average of
	// the trained parameters and installs it when training finishes —
	// the standard DDPM sampling-quality practice (typical 0.995).
	EMADecay float64
}

// TrainSet is the training data: images [1,H,W] each with a class id.
type TrainSet struct {
	Images []*tensor.Tensor
	Labels []int
}

// Validate checks the set's consistency against a model shape.
func (ts *TrainSet) Validate(h, w, k int) error {
	if len(ts.Images) == 0 {
		return fmt.Errorf("diffusion: empty training set")
	}
	if len(ts.Images) != len(ts.Labels) {
		return fmt.Errorf("diffusion: %d images, %d labels", len(ts.Images), len(ts.Labels))
	}
	for i, im := range ts.Images {
		if len(im.Shape) != 3 || im.Shape[0] != 1 || im.Shape[1] != h || im.Shape[2] != w {
			return fmt.Errorf("diffusion: image %d shape %v, want [1 %d %d]", i, im.Shape, h, w)
		}
		if ts.Labels[i] < 0 || ts.Labels[i] >= k {
			return fmt.Errorf("diffusion: image %d label %d out of range [0,%d)", i, ts.Labels[i], k)
		}
	}
	return nil
}

// Train runs DDPM training of model on set under sched and returns the
// per-step loss curve. Training minimizes E‖ε − ε_θ(√ᾱ x₀ + √(1−ᾱ) ε, t, c)‖².
func Train(model Denoiser, sched *Schedule, set *TrainSet, cfg TrainConfig) ([]float64, error) {
	h, w := model.Shape()
	kReal := model.NullClass()
	if err := set.Validate(h, w, kReal); err != nil {
		return nil, err
	}
	if cfg.Batch <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("diffusion: non-positive Steps/Batch")
	}
	r := stats.NewRNG(cfg.Seed)

	params := cfg.ExtraParams
	if !cfg.FreezeBase {
		params = append(append([]*nn.V(nil), model.Params()...), cfg.ExtraParams...)
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("diffusion: nothing to train (base frozen, no extra params)")
	}
	opt := nn.NewAdam(cfg.LR, params)
	opt.ClipNorm = cfg.ClipNorm
	var ema *nn.EMA
	if cfg.EMADecay > 0 {
		if cfg.EMADecay >= 1 {
			return nil, fmt.Errorf("diffusion: EMADecay must be in (0,1)")
		}
		ema = nn.NewEMA(cfg.EMADecay, params)
	}

	losses := make([]float64, 0, cfg.Steps)
	n := cfg.Batch
	d := h * w

	// Minibatch buffers are allocated once and refilled every step, and
	// the tape's output arena recycles the forward pass's intermediate
	// tensors across steps — shapes repeat, so after the first step the
	// training loop is allocation-free on the hot path.
	xt := tensor.New(n, 1, h, w)
	noise := tensor.New(n, 1, h, w)
	steps := make([]int, n)
	class := make([]int, n)
	var control *tensor.Tensor
	if cfg.Controls != nil {
		control = tensor.New(n, 1, h, w)
	}
	xv := nn.NewV(xt)
	tp := nn.NewTape()
	tp.EnableReuse()

	for step := 0; step < cfg.Steps; step++ {
		for i := 0; i < n; i++ {
			idx := r.Intn(len(set.Images))
			x0 := set.Images[idx]
			t := r.Intn(sched.T)
			steps[i] = t
			class[i] = set.Labels[idx]
			if cfg.DropCond > 0 && r.Bool(cfg.DropCond) {
				class[i] = model.NullClass()
			}
			sa := float32(math.Sqrt(sched.AlphaBar[t]))
			sn := float32(math.Sqrt(1 - sched.AlphaBar[t]))
			for j := 0; j < d; j++ {
				e := float32(r.NormFloat64())
				noise.Data[i*d+j] = e
				xt.Data[i*d+j] = sa*x0.Data[j] + sn*e
			}
			if control != nil {
				if ctrl, ok := cfg.Controls[set.Labels[idx]]; ok {
					copy(control.Data[i*d:(i+1)*d], ctrl.Data)
				} else {
					ctrlRow := control.Data[i*d : (i+1)*d]
					for j := range ctrlRow {
						ctrlRow[j] = 0
					}
				}
			}
		}

		xv.ZeroGrad()
		pred := model.Forward(tp, xv, steps, class, control)
		loss := tp.MSE(pred, noise)
		lv := float64(loss.X.Data[0])
		if math.IsNaN(lv) || math.IsInf(lv, 0) {
			return losses, fmt.Errorf("diffusion: non-finite loss at step %d", step)
		}
		losses = append(losses, lv)
		tp.Backward(loss)
		opt.Step()
		if ema != nil {
			ema.Update()
		}
		// All tape outputs from this step are dead now; hand their
		// storage back for the next step.
		tp.Recycle()
	}
	if ema != nil {
		// Install the averaged weights for sampling.
		ema.Swap()
	}
	return losses, nil
}
