package diffusion

import (
	"testing"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// admitTestFlow admits one DDIM flow with the given budget and returns
// its id and output buffer.
func admitTestFlow(t *testing.T, eng *Scheduler, seed uint64, ddim int, d int) (FlowID, []float32) {
	t.Helper()
	out := make([]float32, d)
	id, err := eng.Admit(FlowSpec{
		Class: 0, GuidanceScale: 2, DDIMSteps: ddim,
		RNG: stats.NewRNG(seed), Out: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	return id, out
}

// TestSchedulerRetireStopsWork is the wasted-work regression test: a
// flow retired mid-generation must stop consuming forwards at the next
// step boundary instead of running its remaining steps as dead work.
// Before the scheduler, an expired request that had already been
// dispatched was always fully generated.
func TestSchedulerRetireStopsWork(t *testing.T) {
	r := stats.NewRNG(31)
	h, w := 4, 8
	model := equivModel(r, h, w)
	sched := NewSchedule(ScheduleCosine, 12)
	eng := NewScheduler(model, sched, nil)

	const ddim = 6
	idA, outA := admitTestFlow(t, eng, 7, ddim, h*w)
	idB, outB := admitTestFlow(t, eng, 8, ddim, h*w)
	_ = idA

	eng.Step()
	eng.Step()
	if got := eng.Stats().FlowSteps; got != 4 {
		t.Fatalf("FlowSteps after 2 two-row steps = %d, want 4", got)
	}
	eng.Retire(idB)
	for eng.Active() > 0 {
		eng.Step()
	}
	st := eng.Stats()
	// Flow A runs its remaining 4 steps alone: 4 + 4 flow-steps total.
	// Had B not been retired the engine would have run 12.
	if st.FlowSteps != 8 {
		t.Errorf("FlowSteps = %d, want 8 (retired flow consumed forwards past the boundary)", st.FlowSteps)
	}
	if st.Retired != 1 || st.Completed != 1 {
		t.Errorf("retired/completed = %d/%d, want 1/1", st.Retired, st.Completed)
	}
	for j, v := range outB {
		if v != 0 {
			t.Fatalf("retired flow wrote out[%d]=%v", j, v)
		}
	}
	// The surviving flow's bytes are unaffected by its neighbour's
	// retirement: identical to a solo run.
	solo, err := SampleLegacy(model, sched, SampleConfig{
		Class: 0, N: 1, GuidanceScale: 2, DDIMSteps: ddim, FlowSeeds: []uint64{7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := bitsEqual(outA, solo.Data); !ok {
		t.Errorf("survivor diverges from solo at [%d]", i)
	}
}

// TestSchedulerAdmitValidation covers the Admit error surface,
// including the uniform-control-presence invariant.
func TestSchedulerAdmitValidation(t *testing.T) {
	r := stats.NewRNG(37)
	h, w := 4, 8
	model := equivModel(r, h, w)
	sched := NewSchedule(ScheduleCosine, 8)
	eng := NewScheduler(model, sched, nil)
	d := h * w
	control := tensor.New(1, h, w).Randn(r, 1)

	if _, err := eng.Admit(FlowSpec{Class: 0, RNG: nil, Out: make([]float32, d)}); err == nil {
		t.Error("nil RNG admitted")
	}
	if _, err := eng.Admit(FlowSpec{Class: 9, RNG: stats.NewRNG(1), Out: make([]float32, d)}); err == nil {
		t.Error("out-of-range class admitted")
	}
	if _, err := eng.Admit(FlowSpec{Class: 0, RNG: stats.NewRNG(1), Out: make([]float32, d-1)}); err == nil {
		t.Error("short out buffer admitted")
	}
	if _, err := eng.Admit(FlowSpec{Class: 0, RNG: stats.NewRNG(1), Out: make([]float32, d)}); err != nil {
		t.Fatalf("valid unconditioned admit: %v", err)
	}
	if _, err := eng.Admit(FlowSpec{Class: 0, RNG: stats.NewRNG(2), Control: control, Out: make([]float32, d)}); err == nil {
		t.Error("mixed control presence admitted into an unconditioned batch")
	}
	for eng.Active() > 0 {
		eng.Step()
	}
	// With the batch drained the presence mode resets.
	if _, err := eng.Admit(FlowSpec{Class: 0, RNG: stats.NewRNG(3), Control: control, Out: make([]float32, d)}); err != nil {
		t.Fatalf("conditioned admit into an empty engine: %v", err)
	}
}

// TestSchedulerSteadyStateAllocs asserts a stable batch steps without
// per-step storage allocations: after one warm-up step primes the tape
// arena and the cached view headers, a guided step over 8 flows must
// stay within the same small header budget as the predictor path.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	r := stats.NewRNG(23)
	h, w := 8, 16
	model := NewMLPDenoiser(r, h, w, 128, 2)
	sched := NewSchedule(ScheduleCosine, 80)
	eng := NewScheduler(model, sched, nil)
	const n = 8
	outs := make([][]float32, n)
	for i := range outs {
		outs[i] = make([]float32, h*w)
		if _, err := eng.Admit(FlowSpec{
			Class: 0, GuidanceScale: 2, RNG: stats.NewRNG(uint64(i + 1)), Out: outs[i],
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Step() // warm the arena and view headers
	avg := testing.AllocsPerRun(20, func() { eng.Step() })
	if avg > 48 {
		t.Errorf("steady-state Step allocates %.1f times, want <= 48", avg)
	}
}

// TestSchedulerStepRowsBudget pins the step-row cap's semantics: each
// Step advances exactly the budget's worth of least-attained flows, a
// late-joining flow is prioritized until it catches up, and every
// flow still finishes byte-identical to its solo run.
func TestSchedulerStepRowsBudget(t *testing.T) {
	r := stats.NewRNG(53)
	h, w := 4, 8
	model := equivModel(r, h, w)
	sched := NewSchedule(ScheduleCosine, 12)
	eng := NewScheduler(model, sched, nil)
	eng.SetStepRows(2)
	d := h * w

	const ddim = 4
	_, outA := admitTestFlow(t, eng, 21, ddim, d)
	_, outB := admitTestFlow(t, eng, 22, ddim, d)
	_, outC := admitTestFlow(t, eng, 23, ddim, d)

	// 3 flows, budget 2: every boundary steps exactly 2 rows.
	eng.Step()
	if st := eng.Stats(); st.Steps != 1 || st.FlowSteps != 2 {
		t.Fatalf("after budgeted step: steps=%d flowSteps=%d, want 1/2", st.Steps, st.FlowSteps)
	}
	// A flow joining now has attained 0 — less than everyone — so it
	// must be in the stepping pair at the next boundary and, with
	// ddim=2 < 4, can overtake and finish first.
	idD, outD := admitTestFlow(t, eng, 24, 2, d)
	var order []FlowID
	for eng.Active() > 0 {
		order = append(order, eng.Step()...)
	}
	if len(order) != 4 || order[0] != idD {
		t.Fatalf("completion order %v, want the late short flow %d first", order, idD)
	}
	for i, c := range []struct {
		seed uint64
		dd   int
		out  []float32
	}{{21, ddim, outA}, {22, ddim, outB}, {23, ddim, outC}, {24, 2, outD}} {
		solo, err := SampleLegacy(model, sched, SampleConfig{
			Class: 0, N: 1, GuidanceScale: 2, DDIMSteps: c.dd, FlowSeeds: []uint64{c.seed},
		})
		if err != nil {
			t.Fatal(err)
		}
		if j, ok := bitsEqual(c.out, solo.Data); !ok {
			t.Errorf("flow %d diverges from solo at [%d] under a step-row budget", i, j)
		}
	}
}

// TestSchedulerGrowthPreservesFlows admits past the initial buffer
// capacity mid-flight and checks every flow still matches its solo
// run: growth must move live rows without corrupting them.
func TestSchedulerGrowthPreservesFlows(t *testing.T) {
	r := stats.NewRNG(41)
	h, w := 4, 8
	model := equivModel(r, h, w)
	sched := NewSchedule(ScheduleCosine, 10)
	eng := NewScheduler(model, sched, nil)
	d := h * w

	type fl struct {
		seed uint64
		out  []float32
	}
	var flows []fl
	admit := func(seed uint64) {
		out := make([]float32, d)
		if _, err := eng.Admit(FlowSpec{
			Class: 1, GuidanceScale: 2, DDIMSteps: 5,
			RNG: stats.NewRNG(seed), Out: out,
		}); err != nil {
			t.Fatal(err)
		}
		flows = append(flows, fl{seed, out})
	}
	// 3 flows fit the initial 4-row buffer; two steps in, a burst of 6
	// more forces a regrow while rows are mid-denoise.
	for i := 0; i < 3; i++ {
		admit(uint64(100 + i))
	}
	eng.Step()
	eng.Step()
	for i := 0; i < 6; i++ {
		admit(uint64(200 + i))
	}
	for eng.Active() > 0 {
		eng.Step()
	}
	for _, f := range flows {
		solo, err := SampleLegacy(model, sched, SampleConfig{
			Class: 1, N: 1, GuidanceScale: 2, DDIMSteps: 5, FlowSeeds: []uint64{f.seed},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := bitsEqual(f.out, solo.Data); !ok {
			t.Errorf("seed %d diverges from solo at [%d] after mid-flight growth", f.seed, i)
		}
	}
}
