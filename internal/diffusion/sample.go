package diffusion

import (
	"fmt"
	"runtime"
	"sync"

	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// SampleConfig controls reverse-process sampling.
type SampleConfig struct {
	// Class conditions generation ("the prompt"). Must be < NullClass.
	Class int
	// N is the number of images to draw in one batch.
	N int
	// GuidanceScale w applies classifier-free guidance:
	// ε = ε_uncond + w·(ε_cond − ε_uncond). w=1 is pure conditional;
	// w=0 unconditional; w>1 sharpens class adherence.
	GuidanceScale float64
	// DDIMSteps, when > 0, uses the deterministic DDIM sampler with
	// that many evenly spaced steps instead of full ancestral DDPM
	// sampling (the paper's "generative speed" lever).
	DDIMSteps int
	// Control, when non-nil, is the ControlNet conditioning image
	// [1,H,W] shared by every flow in the batch.
	Control *tensor.Tensor
	Seed    uint64
	// FlowSeeds, when non-empty, must have length N and gives every
	// flow its own independent RNG root, making each flow's output a
	// pure function of its seed alone — independent of batch
	// composition. This is the property that lets a serving layer
	// coalesce concurrent requests into one batch while keeping
	// seeded requests bit-identical across replicas. When empty, all
	// streams derive from Seed by sequential Split (the batch-level
	// layout used by training-time experiments).
	FlowSeeds []uint64
	// ExtraForward, when non-nil, replaces the plain model forward —
	// the lora package uses it to route through adapters.
	ExtraForward ForwardFunc
}

// ForwardFunc matches Denoiser.Forward and lets callers wrap the model
// (LoRA, ablations) without re-implementing the samplers.
type ForwardFunc func(tp *nn.Tape, xt *nn.V, steps []int, class []int, control *tensor.Tensor) *nn.V

// Sample draws cfg.N images [N,1,H,W] from the model under sched.
//
// The whole batch is admitted to a step Scheduler and stepped until
// every flow completes: each timestep runs ONE forward over all N
// flows, so the denoiser sees [N,·] tensors big enough for the
// parallel kernel layer instead of N batch-1 calls below its work
// threshold (the PR 2 end-to-end regression). The DDPM/DDIM update is
// then applied per flow from that flow's private RNG stream. Callers
// that need mid-generation admission and retirement drive a Scheduler
// directly (the serving engine does).
//
// Determinism: every kernel computes each output row with an
// accumulation order independent of the batch's row count, so the
// batched forward's row i is bit-identical to a batch-1 forward of
// flow i, and each flow's noise draws come only from its own stream —
// the output equals SampleLegacy's exactly (enforced by
// TestBatchedMatchesLegacy) and, with FlowSeeds, stays a pure
// function of each flow's seed regardless of batch composition or
// GOMAXPROCS.
func Sample(model Denoiser, sched *Schedule, cfg SampleConfig) (*tensor.Tensor, error) {
	forward, err := sampleSetup(model, cfg)
	if err != nil {
		return nil, err
	}
	h, w := model.Shape()
	n, d := cfg.N, h*w
	rngs := flowStreams(cfg)

	eng := NewScheduler(model, sched, forward)
	out := tensor.New(n, 1, h, w)
	for i, r := range rngs {
		if _, err := eng.Admit(FlowSpec{
			Class:         cfg.Class,
			GuidanceScale: cfg.GuidanceScale,
			DDIMSteps:     cfg.DDIMSteps,
			RNG:           r,
			Control:       cfg.Control,
			Out:           out.Data[i*d : (i+1)*d],
		}); err != nil {
			return nil, err
		}
	}
	for eng.Active() > 0 {
		eng.Step()
	}
	return out, nil
}

// SampleLegacy draws cfg.N images with the pre-batching orchestration:
// flow-parallel, step-serial, one goroutine-pool task per flow running
// batch-1 forwards. It is retained as the reference implementation for
// the batched path's bit-identity property test and as a fallback for
// callers that want per-flow latency over batch throughput. Each
// worker's tensor ops run under tensor.Serial: the pool already owns
// the CPUs, and intra-kernel sharding on top of it only adds dispatch
// overhead and contention.
func SampleLegacy(model Denoiser, sched *Schedule, cfg SampleConfig) (*tensor.Tensor, error) {
	forward, err := sampleSetup(model, cfg)
	if err != nil {
		return nil, err
	}
	h, w := model.Shape()
	n, d := cfg.N, h*w
	nullClass := model.NullClass()
	rngs := flowStreams(cfg)

	// Control is read-only during sampling and shared by all workers.
	var control *tensor.Tensor
	if cfg.Control != nil {
		control = cfg.Control.Reshape(1, 1, h, w)
	}

	out := tensor.New(n, 1, h, w)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			tensor.Serial(func() {
				x := sampleOne(forward, nullClass, sched, cfg, h, w, rngs[i], control)
				copy(out.Data[i*d:(i+1)*d], x.Data)
			})
		}(i)
	}
	wg.Wait()
	return out, nil
}

// sampleSetup validates cfg and resolves the forward function.
func sampleSetup(model Denoiser, cfg SampleConfig) (ForwardFunc, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("diffusion: sample N must be positive")
	}
	if len(cfg.FlowSeeds) != 0 && len(cfg.FlowSeeds) != cfg.N {
		return nil, fmt.Errorf("diffusion: %d flow seeds for N=%d", len(cfg.FlowSeeds), cfg.N)
	}
	if cfg.Class < 0 || cfg.Class >= model.NullClass() {
		return nil, fmt.Errorf("diffusion: class %d out of range [0,%d)", cfg.Class, model.NullClass())
	}
	if cfg.ExtraForward != nil {
		return cfg.ExtraForward, nil
	}
	return model.Forward, nil
}

// flowStreams builds one private RNG stream per flow. With FlowSeeds
// each stream roots at its own seed; otherwise streams split off
// sequentially from the batch seed (same discipline as rf.Train).
// Either way the draw sequence per flow is fixed up front, so output
// is bit-identical at any GOMAXPROCS and, with FlowSeeds, independent
// of batch composition.
func flowStreams(cfg SampleConfig) []*stats.RNG {
	rngs := make([]*stats.RNG, cfg.N)
	if len(cfg.FlowSeeds) != 0 {
		for i := range rngs {
			rngs[i] = stats.NewRNG(cfg.FlowSeeds[i])
		}
	} else {
		root := stats.NewRNG(cfg.Seed)
		for i := range rngs {
			rngs[i] = root.Split()
		}
	}
	return rngs
}

// predictor runs classifier-free-guided ε predictions for a fixed
// batch shape. The tape (reuse-enabled, no-grad), the step/class index
// slices and the guidance-combination buffer all persist across calls,
// so the per-timestep steady state allocates no new float32 storage.
// The guidance comparison is evaluated once here, not per step (it
// previously ran through stats.ApproxEqual on every predictOne call).
type predictor struct {
	forward ForwardFunc
	tp      *nn.Tape
	control *tensor.Tensor
	steps   []int
	classC  []int
	classU  []int
	guided  bool
	wg      float32
	eps     *tensor.Tensor // combined guidance output [n,1,h,w]
}

func newPredictor(forward ForwardFunc, nullClass, n, class int, guidance float64, control *tensor.Tensor, h, w int) *predictor {
	p := &predictor{
		forward: forward,
		tp:      nn.NewTape(),
		control: control,
		steps:   make([]int, n),
		classC:  make([]int, n),
		classU:  make([]int, n),
	}
	p.tp.EnableReuse()
	p.tp.SetNoGrad(true)
	for i := 0; i < n; i++ {
		p.classC[i] = class
		p.classU[i] = nullClass
	}
	p.guided = !stats.ApproxEqual(guidance, 1, 1e-9)
	if p.guided {
		p.wg = float32(guidance)
		p.eps = tensor.New(n, 1, h, w)
	}
	return p
}

// predict returns ε for x at timestep t. The returned tensor is owned
// by the predictor and valid only until endStep.
//
//tracelint:hotpath
func (p *predictor) predict(x *tensor.Tensor, t int) *tensor.Tensor {
	for i := range p.steps {
		p.steps[i] = t
	}
	tp := p.tp
	epsC := p.forward(tp, tp.Input(x), p.steps, p.classC, p.control)
	out := epsC.X
	if p.guided {
		epsU := p.forward(tp, tp.Input(x), p.steps, p.classU, p.control)
		wg := p.wg
		for i := range p.eps.Data {
			p.eps.Data[i] = epsU.X.Data[i] + wg*(epsC.X.Data[i]-epsU.X.Data[i])
		}
		out = p.eps
	}
	tp.Reset()
	return out
}

// endStep returns the step's tape storage to the arena. Call after the
// ε from predict has been fully consumed.
func (p *predictor) endStep() { p.tp.Recycle() }

// sampleOne draws a single flow image [1,1,H,W] from its private RNG
// stream (the legacy per-flow path).
func sampleOne(forward ForwardFunc, nullClass int, sched *Schedule, cfg SampleConfig, h, w int, r *stats.RNG, control *tensor.Tensor) *tensor.Tensor {
	p := newPredictor(forward, nullClass, 1, cfg.Class, cfg.GuidanceScale, control, h, w)
	// x_T ~ N(0, I).
	x := tensor.New(1, 1, h, w).Randn(r, 1)
	if cfg.DDIMSteps > 0 && cfg.DDIMSteps < sched.T {
		return sampleDDIM(x, sched, cfg.DDIMSteps, p)
	}
	return sampleDDPM(x, sched, r, p)
}

// ddpmUpdate applies one reverse DDPM step (with x0 clipping) to one
// flow's elements from its private stream, reading the precomputed
// coefficient tables. The predicted x₀ is clipped to the data range
// before computing the posterior mean ("clip_denoised"), which keeps
// an imperfect denoiser from diverging over many steps.
//
//tracelint:hotpath
func ddpmUpdate(xd, ed []float32, sched *Schedule, t int, r *stats.RNG) {
	sqrtAB := sched.SqrtAlphaBar[t]
	sqrt1AB := sched.SqrtOneMinusAlphaBar[t]
	coefX0 := sched.PosteriorCoefX0[t]
	coefXt := sched.PosteriorCoefXt[t]
	sigma := sched.PosteriorSigma[t]
	for j := range xd {
		x0 := (float64(xd[j]) - sqrt1AB*float64(ed[j])) / sqrtAB
		if x0 > 1.5 {
			x0 = 1.5
		}
		if x0 < -1.5 {
			x0 = -1.5
		}
		mean := coefX0*x0 + coefXt*float64(xd[j])
		if t > 0 {
			mean += sigma * r.NormFloat64()
		}
		xd[j] = float32(mean)
	}
}

// ddimUpdate applies one deterministic DDIM step (with x0 clipping) to
// the elements of xd.
//
//tracelint:hotpath
func ddimUpdate(xd, ed []float32, c DDIMCoeff) {
	for j := range xd {
		x0 := (float64(xd[j]) - c.Sqrt1AB*float64(ed[j])) / c.SqrtAB
		// Clip x0 to the data range to stabilize few-step sampling.
		if x0 > 1.5 {
			x0 = 1.5
		}
		if x0 < -1.5 {
			x0 = -1.5
		}
		xd[j] = float32(c.SqrtABPrev*x0 + c.Sqrt1ABPrev*float64(ed[j]))
	}
}

// sampleDDPM runs full ancestral sampling for one flow: T model
// evaluations.
func sampleDDPM(x *tensor.Tensor, sched *Schedule, r *stats.RNG, p *predictor) *tensor.Tensor {
	for t := sched.T - 1; t >= 0; t-- {
		stepDDPMInPlace(x, sched, t, r, p)
	}
	return x
}

// sampleDDIM runs deterministic DDIM over an evenly spaced subsequence
// of steps — the standard inference-speed optimization for diffusion
// models (paper §4 "generative speed"). The update coefficients are
// shared by every flow and DDIM draws no noise, so the same sweep
// serves a one-flow x and a whole batch.
//
//tracelint:hotpath
func sampleDDIM(x *tensor.Tensor, sched *Schedule, steps int, p *predictor) *tensor.Tensor {
	seq, coef := sched.DDIMTable(steps)
	for i := len(seq) - 1; i >= 0; i-- {
		eps := p.predict(x, seq[i])
		ddimUpdate(x.Data, eps.Data, coef[i])
		p.endStep()
	}
	return x
}

// ddimSequence returns an increasing subsequence of [0, T) with the
// requested length, always including step T-1.
func ddimSequence(T, steps int) []int {
	if steps >= T {
		//tracelint:allow hotalloc — runs once per step count; DDIMTable memoizes the plan
		seq := make([]int, T)
		for i := range seq {
			seq[i] = i
		}
		return seq
	}
	//tracelint:allow hotalloc — runs once per step count; DDIMTable memoizes the plan
	seq := make([]int, steps)
	for i := 0; i < steps; i++ {
		seq[i] = i * T / steps
	}
	seq[steps-1] = T - 1
	return seq
}

// ForwardNoise applies the closed-form forward process q(x_t | x_0) to
// an image, returning √ᾱ_t·x₀ + √(1−ᾱ_t)·ε for fresh noise ε. Exposed
// for tests and diagnostics.
func ForwardNoise(sched *Schedule, x0 *tensor.Tensor, t int, r *stats.RNG) *tensor.Tensor {
	out := tensor.New(x0.Shape...)
	sa := sched.SqrtAlphaBar[t]
	sn := sched.SqrtOneMinusAlphaBar[t]
	for i, v := range x0.Data {
		out.Data[i] = float32(sa*float64(v) + sn*r.NormFloat64())
	}
	return out
}
