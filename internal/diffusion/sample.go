package diffusion

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// SampleConfig controls reverse-process sampling.
type SampleConfig struct {
	// Class conditions generation ("the prompt"). Must be < NullClass.
	Class int
	// N is the number of images to draw in one batch.
	N int
	// GuidanceScale w applies classifier-free guidance:
	// ε = ε_uncond + w·(ε_cond − ε_uncond). w=1 is pure conditional;
	// w=0 unconditional; w>1 sharpens class adherence.
	GuidanceScale float64
	// DDIMSteps, when > 0, uses the deterministic DDIM sampler with
	// that many evenly spaced steps instead of full ancestral DDPM
	// sampling (the paper's "generative speed" lever).
	DDIMSteps int
	// Control, when non-nil, is the ControlNet conditioning image
	// [1,H,W] shared by every flow in the batch.
	Control *tensor.Tensor
	Seed    uint64
	// FlowSeeds, when non-empty, must have length N and gives every
	// flow its own independent RNG root, making each flow's output a
	// pure function of its seed alone — independent of batch
	// composition. This is the property that lets a serving layer
	// coalesce concurrent requests into one batch while keeping
	// seeded requests bit-identical across replicas. When empty, all
	// streams derive from Seed by sequential Split (the batch-level
	// layout used by training-time experiments).
	FlowSeeds []uint64
	// ExtraForward, when non-nil, replaces the plain model forward —
	// the lora package uses it to route through adapters.
	ExtraForward ForwardFunc
}

// ForwardFunc matches Denoiser.Forward and lets callers wrap the model
// (LoRA, ablations) without re-implementing the samplers.
type ForwardFunc func(tp *nn.Tape, xt *nn.V, steps []int, class []int, control *tensor.Tensor) *nn.V

// Sample draws cfg.N images [N,1,H,W] from the model under sched.
//
// Flows in a diffusion batch are statistically independent, so they are
// sampled concurrently, one goroutine-pool task per flow. Each flow
// owns a private RNG stream derived by Split() from the seed root —
// all streams are derived sequentially BEFORE any worker starts, so the
// draw sequence per flow is a pure function of (Seed, flow index) and
// the output is bit-identical at GOMAXPROCS=1 and GOMAXPROCS=N.
func Sample(model Denoiser, sched *Schedule, cfg SampleConfig) (*tensor.Tensor, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("diffusion: sample N must be positive")
	}
	if len(cfg.FlowSeeds) != 0 && len(cfg.FlowSeeds) != cfg.N {
		return nil, fmt.Errorf("diffusion: %d flow seeds for N=%d", len(cfg.FlowSeeds), cfg.N)
	}
	if cfg.Class < 0 || cfg.Class >= model.NullClass() {
		return nil, fmt.Errorf("diffusion: class %d out of range [0,%d)", cfg.Class, model.NullClass())
	}
	h, w := model.Shape()
	n, d := cfg.N, h*w

	forward := cfg.ExtraForward
	if forward == nil {
		forward = model.Forward
	}
	nullClass := model.NullClass()

	// Control is read-only during sampling and shared by all workers.
	var control *tensor.Tensor
	if cfg.Control != nil {
		control = cfg.Control.Reshape(1, 1, h, w)
	}

	// One private stream per flow. With FlowSeeds each stream roots at
	// its own seed; otherwise streams split off sequentially from the
	// batch seed before any goroutine exists (same discipline as
	// rf.Train). Either way the draw sequence per flow is fixed before
	// workers start, so output is bit-identical at any GOMAXPROCS.
	rngs := make([]*stats.RNG, n)
	if len(cfg.FlowSeeds) != 0 {
		for i := range rngs {
			rngs[i] = stats.NewRNG(cfg.FlowSeeds[i])
		}
	} else {
		root := stats.NewRNG(cfg.Seed)
		for i := range rngs {
			rngs[i] = root.Split()
		}
	}

	out := tensor.New(n, 1, h, w)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			r := rngs[i]
			x := sampleOne(forward, nullClass, sched, cfg, h, w, r, control)
			copy(out.Data[i*d:(i+1)*d], x.Data)
		}(i)
	}
	wg.Wait()
	return out, nil
}

// sampleOne draws a single flow image [1,1,H,W] from its private RNG
// stream.
func sampleOne(forward ForwardFunc, nullClass int, sched *Schedule, cfg SampleConfig, h, w int, r *stats.RNG, control *tensor.Tensor) *tensor.Tensor {
	predict := func(x *tensor.Tensor, t int) *tensor.Tensor {
		return predictOne(forward, nullClass, x, t, cfg.Class, cfg.GuidanceScale, control)
	}
	// x_T ~ N(0, I).
	x := tensor.New(1, 1, h, w).Randn(r, 1)
	if cfg.DDIMSteps > 0 && cfg.DDIMSteps < sched.T {
		return sampleDDIM(x, sched, cfg.DDIMSteps, predict)
	}
	return sampleDDPM(x, sched, r, predict)
}

// predictOne runs one classifier-free-guided ε prediction for a
// single-sample batch. Shared by the batch sampler and the editing
// tasks (Inpaint, Translate).
func predictOne(forward ForwardFunc, nullClass int, x *tensor.Tensor, t, class int, guidance float64, control *tensor.Tensor) *tensor.Tensor {
	tp := nn.NewTape()
	epsC := forward(tp, nn.NewV(x.Clone()), []int{t}, []int{class}, control)
	var eps *tensor.Tensor
	if !stats.ApproxEqual(guidance, 1, 1e-9) {
		epsU := forward(tp, nn.NewV(x.Clone()), []int{t}, []int{nullClass}, control)
		eps = tensor.New(x.Shape...)
		wg := float32(guidance)
		for i := range eps.Data {
			eps.Data[i] = epsU.X.Data[i] + wg*(epsC.X.Data[i]-epsU.X.Data[i])
		}
	} else {
		eps = epsC.X
	}
	tp.Reset()
	return eps
}

// sampleDDPM runs full ancestral sampling: T model evaluations. The
// predicted x₀ is clipped to the data range before computing the
// posterior mean ("clip_denoised"), which keeps an imperfect denoiser
// from diverging over many steps.
func sampleDDPM(x *tensor.Tensor, sched *Schedule, r *stats.RNG, predict func(*tensor.Tensor, int) *tensor.Tensor) *tensor.Tensor {
	for t := sched.T - 1; t >= 0; t-- {
		stepDDPMInPlace(x, sched, t, r, predict)
	}
	return x
}

// sampleDDIM runs deterministic DDIM over an evenly spaced subsequence
// of steps — the standard inference-speed optimization for diffusion
// models (paper §4 "generative speed").
func sampleDDIM(x *tensor.Tensor, sched *Schedule, steps int, predict func(*tensor.Tensor, int) *tensor.Tensor) *tensor.Tensor {
	seq := ddimSequence(sched.T, steps)
	for i := len(seq) - 1; i >= 0; i-- {
		t := seq[i]
		eps := predict(x, t)
		ab := sched.AlphaBar[t]
		abPrev := 1.0
		if i > 0 {
			abPrev = sched.AlphaBar[seq[i-1]]
		}
		sqrtAB := math.Sqrt(ab)
		sqrt1AB := math.Sqrt(1 - ab)
		sqrtABp := math.Sqrt(abPrev)
		sqrt1ABp := math.Sqrt(1 - abPrev)
		for j := range x.Data {
			x0 := (float64(x.Data[j]) - sqrt1AB*float64(eps.Data[j])) / sqrtAB
			// Clip x0 to the data range to stabilize few-step sampling.
			if x0 > 1.5 {
				x0 = 1.5
			}
			if x0 < -1.5 {
				x0 = -1.5
			}
			x.Data[j] = float32(sqrtABp*x0 + sqrt1ABp*float64(eps.Data[j]))
		}
	}
	return x
}

// ddimSequence returns an increasing subsequence of [0, T) with the
// requested length, always including step T-1.
func ddimSequence(T, steps int) []int {
	if steps >= T {
		seq := make([]int, T)
		for i := range seq {
			seq[i] = i
		}
		return seq
	}
	seq := make([]int, steps)
	for i := 0; i < steps; i++ {
		seq[i] = i * T / steps
	}
	seq[steps-1] = T - 1
	return seq
}

// ForwardNoise applies the closed-form forward process q(x_t | x_0) to
// an image, returning √ᾱ_t·x₀ + √(1−ᾱ_t)·ε for fresh noise ε. Exposed
// for tests and diagnostics.
func ForwardNoise(sched *Schedule, x0 *tensor.Tensor, t int, r *stats.RNG) *tensor.Tensor {
	out := tensor.New(x0.Shape...)
	sa := math.Sqrt(sched.AlphaBar[t])
	sn := math.Sqrt(1 - sched.AlphaBar[t])
	for i, v := range x0.Data {
		out.Data[i] = float32(sa*float64(v) + sn*r.NormFloat64())
	}
	return out
}
