package diffusion

import (
	"math"
	"testing"
	"testing/quick"

	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

func TestScheduleInvariants(t *testing.T) {
	for _, kind := range []ScheduleKind{ScheduleLinear, ScheduleCosine} {
		s := NewSchedule(kind, 100)
		prev := 1.0
		for i := 0; i < s.T; i++ {
			if s.Beta[i] <= 0 || s.Beta[i] >= 1 {
				t.Fatalf("%v: beta[%d] = %v out of (0,1)", kind, i, s.Beta[i])
			}
			if s.AlphaBar[i] <= 0 || s.AlphaBar[i] > 1 {
				t.Fatalf("%v: alphaBar[%d] = %v out of (0,1]", kind, i, s.AlphaBar[i])
			}
			if s.AlphaBar[i] >= prev {
				t.Fatalf("%v: alphaBar not strictly decreasing at %d", kind, i)
			}
			prev = s.AlphaBar[i]
			if math.Abs(s.Alpha[i]-(1-s.Beta[i])) > 1e-12 {
				t.Fatalf("%v: alpha/beta inconsistent at %d", kind, i)
			}
		}
		// Near-complete noising at the end.
		if s.AlphaBar[s.T-1] > 0.2 {
			t.Errorf("%v: alphaBar[T-1] = %v, want near 0", kind, s.AlphaBar[s.T-1])
		}
		// SNR monotone decreasing.
		if s.SNR(0) <= s.SNR(s.T-1) {
			t.Errorf("%v: SNR not decreasing", kind)
		}
	}
}

func TestQuickScheduleMonotonic(t *testing.T) {
	f := func(steps uint8) bool {
		T := 2 + int(steps)%200
		s := NewSchedule(ScheduleCosine, T)
		for i := 1; i < T; i++ {
			if s.AlphaBar[i] >= s.AlphaBar[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardNoiseEndpoints(t *testing.T) {
	s := NewSchedule(ScheduleCosine, 200)
	r := stats.NewRNG(1)
	x0 := tensor.New(1, 1, 4, 4)
	x0.Fill(1)
	// At t=0, x_t ≈ x0 (tiny noise).
	xt := ForwardNoise(s, x0, 0, r)
	var dist float64
	for i := range xt.Data {
		dist += math.Abs(float64(xt.Data[i] - x0.Data[i]))
	}
	if dist/float64(len(xt.Data)) > 0.2 {
		t.Errorf("t=0 forward noise too strong: mean |Δ| = %v", dist/16)
	}
	// At t=T-1, mean ≈ 0 (signal destroyed) across many draws.
	var mean float64
	const draws = 200
	for i := 0; i < draws; i++ {
		xT := ForwardNoise(s, x0, s.T-1, r)
		for _, v := range xT.Data {
			mean += float64(v)
		}
	}
	mean /= draws * 16
	if math.Abs(mean) > 0.15 {
		t.Errorf("t=T forward noise retains signal: mean = %v", mean)
	}
}

func TestDDIMSequence(t *testing.T) {
	seq := ddimSequence(100, 10)
	if len(seq) != 10 {
		t.Fatalf("len = %d", len(seq))
	}
	if seq[len(seq)-1] != 99 {
		t.Errorf("last = %d, want 99", seq[len(seq)-1])
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] <= seq[i-1] {
			t.Fatal("sequence not increasing")
		}
	}
	full := ddimSequence(5, 10)
	if len(full) != 5 {
		t.Fatalf("oversampled sequence len = %d", len(full))
	}
}

// tinySet builds a two-class dataset where class 0 images are all +1
// in the left half and class 1 in the right half — trivially learnable.
func tinySet(h, w int) *TrainSet {
	set := &TrainSet{}
	for rep := 0; rep < 8; rep++ {
		for cls := 0; cls < 2; cls++ {
			im := tensor.New(1, h, w)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := float32(-1)
					if (cls == 0 && x < w/2) || (cls == 1 && x >= w/2) {
						v = 1
					}
					im.Data[y*w+x] = v
				}
			}
			set.Images = append(set.Images, im)
			set.Labels = append(set.Labels, cls)
		}
	}
	return set
}

func TestTrainLossDecreases(t *testing.T) {
	r := stats.NewRNG(7)
	h, w := 4, 8
	model := NewMLPDenoiser(r, h, w, 64, 2)
	sched := NewSchedule(ScheduleCosine, 50)
	losses, err := Train(model, sched, tinySet(h, w), TrainConfig{
		Steps: 200, Batch: 8, LR: 1e-2, ClipNorm: 5, Seed: 1, DropCond: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	head := avg(losses[:20])
	tail := avg(losses[len(losses)-20:])
	if tail >= head {
		t.Fatalf("loss did not decrease: head %v tail %v", head, tail)
	}
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestTrainValidation(t *testing.T) {
	r := stats.NewRNG(1)
	model := NewMLPDenoiser(r, 4, 4, 16, 2)
	sched := NewSchedule(ScheduleLinear, 10)
	if _, err := Train(model, sched, &TrainSet{}, TrainConfig{Steps: 1, Batch: 1, LR: 1e-3}); err == nil {
		t.Error("empty set should fail")
	}
	bad := &TrainSet{Images: []*tensor.Tensor{tensor.New(1, 2, 2)}, Labels: []int{0}}
	if _, err := Train(model, sched, bad, TrainConfig{Steps: 1, Batch: 1, LR: 1e-3}); err == nil {
		t.Error("wrong image shape should fail")
	}
	badLabel := &TrainSet{Images: []*tensor.Tensor{tensor.New(1, 4, 4)}, Labels: []int{5}}
	if _, err := Train(model, sched, badLabel, TrainConfig{Steps: 1, Batch: 1, LR: 1e-3}); err == nil {
		t.Error("out-of-range label should fail")
	}
	ok := &TrainSet{Images: []*tensor.Tensor{tensor.New(1, 4, 4)}, Labels: []int{0}}
	if _, err := Train(model, sched, ok, TrainConfig{Steps: 0, Batch: 1, LR: 1e-3}); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := Train(model, sched, ok, TrainConfig{Steps: 1, Batch: 1, LR: 1e-3, FreezeBase: true}); err == nil {
		t.Error("frozen base without extra params should fail")
	}
}

func TestSampleClassConditioning(t *testing.T) {
	// Train on the two-half dataset, then check that class-0 samples
	// have a brighter left half and class-1 samples a brighter right
	// half — i.e. the "prompt" controls generation.
	r := stats.NewRNG(3)
	h, w := 4, 8
	model := NewMLPDenoiser(r, h, w, 96, 2)
	sched := NewSchedule(ScheduleCosine, 60)
	_, err := Train(model, sched, tinySet(h, w), TrainConfig{
		Steps: 600, Batch: 8, LR: 5e-3, ClipNorm: 5, Seed: 2, DropCond: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sideBias := func(class int) float64 {
		out, err := Sample(model, sched, SampleConfig{
			Class: class, N: 6, GuidanceScale: 2, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		var left, right float64
		d := h * w
		for i := 0; i < 6; i++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := float64(out.Data[i*d+y*w+x])
					if x < w/2 {
						left += v
					} else {
						right += v
					}
				}
			}
		}
		return left - right
	}
	if b0 := sideBias(0); b0 <= 0 {
		t.Errorf("class 0 bias = %v, want left-bright (>0)", b0)
	}
	if b1 := sideBias(1); b1 >= 0 {
		t.Errorf("class 1 bias = %v, want right-bright (<0)", b1)
	}
}

func TestSampleDDIMFewerSteps(t *testing.T) {
	r := stats.NewRNG(4)
	model := NewMLPDenoiser(r, 4, 4, 32, 2)
	sched := NewSchedule(ScheduleCosine, 50)
	out, err := Sample(model, sched, SampleConfig{Class: 0, N: 2, GuidanceScale: 1, DDIMSteps: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[0] != 2 || out.Shape[2] != 4 {
		t.Fatalf("shape = %v", out.Shape)
	}
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("DDIM produced non-finite output")
		}
	}
}

func TestSampleRejectsBadConfig(t *testing.T) {
	r := stats.NewRNG(5)
	model := NewMLPDenoiser(r, 4, 4, 16, 2)
	sched := NewSchedule(ScheduleLinear, 10)
	if _, err := Sample(model, sched, SampleConfig{Class: 0, N: 0}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := Sample(model, sched, SampleConfig{Class: 2, N: 1}); err == nil {
		t.Error("null class as prompt should fail")
	}
	if _, err := Sample(model, sched, SampleConfig{Class: -1, N: 1}); err == nil {
		t.Error("negative class should fail")
	}
}

func TestUNetForwardShapesAndTraining(t *testing.T) {
	r := stats.NewRNG(6)
	h, w := 4, 8
	model := NewUNetDenoiser(r, h, w, 8, 2)
	sched := NewSchedule(ScheduleCosine, 20)
	// Forward shape.
	tp := nn.NewTape()
	x := nn.NewV(tensor.New(2, 1, h, w).Randn(stats.NewRNG(1), 1))
	y := model.Forward(tp, x, []int{1, 5}, []int{0, 1}, nil)
	tp.Reset()
	want := []int{2, 1, h, w}
	for i := range want {
		if y.X.Shape[i] != want[i] {
			t.Fatalf("unet output shape %v", y.X.Shape)
		}
	}
	// Short training run decreases loss.
	losses, err := Train(model, sched, tinySet(h, w), TrainConfig{
		Steps: 60, Batch: 4, LR: 5e-3, ClipNorm: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg(losses[len(losses)-10:]) >= avg(losses[:10]) {
		t.Error("unet loss did not decrease")
	}
}

func TestUNetRequiresEvenDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd dims")
		}
	}()
	NewUNetDenoiser(stats.NewRNG(1), 5, 8, 4, 2)
}

func TestControlInjectionStartsAsNoOp(t *testing.T) {
	// With zero-initialized control projections, supplying a control
	// image must not change the initial forward output.
	r := stats.NewRNG(7)
	model := NewMLPDenoiser(r, 4, 4, 32, 2)
	x := tensor.New(1, 1, 4, 4).Randn(stats.NewRNG(2), 1)
	ctrl := tensor.New(1, 1, 4, 4).Randn(stats.NewRNG(3), 1)

	tp := nn.NewTape()
	y1 := model.Forward(tp, nn.NewV(x.Clone()), []int{1}, []int{0}, nil)
	tp.Reset()
	tp2 := nn.NewTape()
	y2 := model.Forward(tp2, nn.NewV(x.Clone()), []int{1}, []int{0}, ctrl)
	tp2.Reset()
	for i := range y1.X.Data {
		if y1.X.Data[i] != y2.X.Data[i] {
			t.Fatal("zero-init control path altered output")
		}
	}
}

func TestScheduleString(t *testing.T) {
	if ScheduleLinear.String() != "linear" || ScheduleCosine.String() != "cosine" {
		t.Error("schedule names wrong")
	}
}

func TestUNetWithAttentionTrains(t *testing.T) {
	r := stats.NewRNG(19)
	model := NewUNetDenoiser(r, 4, 8, 4, 2)
	model.EnableAttention(r)
	sched := NewSchedule(ScheduleCosine, 20)
	// Attention starts as identity: forward must match a no-attention
	// twin at init except the attention params exist.
	plain := NewUNetDenoiser(stats.NewRNG(19), 4, 8, 4, 2)
	x := tensor.New(2, 1, 4, 8).Randn(stats.NewRNG(1), 1)
	tp := nn.NewTape()
	y1 := model.Forward(tp, nn.NewV(x.Clone()), []int{1, 2}, []int{0, 1}, nil)
	tp.Reset()
	tp2 := nn.NewTape()
	y2 := plain.Forward(tp2, nn.NewV(x.Clone()), []int{1, 2}, []int{0, 1}, nil)
	tp2.Reset()
	for i := range y1.X.Data {
		if math.Abs(float64(y1.X.Data[i]-y2.X.Data[i])) > 1e-5 {
			t.Fatal("zero-init attention changed the initial forward pass")
		}
	}
	// And it trains without diverging.
	losses, err := Train(model, sched, tinySet(4, 8), TrainConfig{
		Steps: 40, Batch: 4, LR: 5e-3, ClipNorm: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg(losses[len(losses)-8:]) >= avg(losses[:8]) {
		t.Error("attention unet loss did not decrease")
	}
}

func TestTrainWithEMA(t *testing.T) {
	r := stats.NewRNG(21)
	model := NewMLPDenoiser(r, 4, 8, 48, 2)
	sched := NewSchedule(ScheduleCosine, 30)
	losses, err := Train(model, sched, tinySet(4, 8), TrainConfig{
		Steps: 80, Batch: 8, LR: 5e-3, ClipNorm: 5, Seed: 1, EMADecay: 0.98,
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg(losses[len(losses)-10:]) >= avg(losses[:10]) {
		t.Error("EMA training did not converge")
	}
	// Sampling from the installed averaged weights works.
	if _, err := Sample(model, sched, SampleConfig{Class: 0, N: 1, GuidanceScale: 1, DDIMSteps: 4, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// Invalid decay rejected.
	if _, err := Train(model, sched, tinySet(4, 8), TrainConfig{
		Steps: 1, Batch: 2, LR: 1e-3, EMADecay: 1.5,
	}); err == nil {
		t.Error("EMADecay >= 1 should fail")
	}
}
