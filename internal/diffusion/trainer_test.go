package diffusion

import (
	"math"
	"strings"
	"testing"

	"trafficdiff/internal/stats"
)

// TestTrainConfigValidation table-tests the config checks: a negative
// or NaN learning rate would silently train away from (or never
// toward) the minimum, and an out-of-range DropCond skews the
// classifier-free-guidance mix, so all of them must error loudly.
func TestTrainConfigValidation(t *testing.T) {
	r := stats.NewRNG(1)
	model := NewMLPDenoiser(r, 4, 8, 16, 2)
	sched := NewSchedule(ScheduleLinear, 10)
	set := tinySet(4, 8)
	base := TrainConfig{Steps: 1, Batch: 1, LR: 1e-3}

	cases := []struct {
		name    string
		mutate  func(*TrainConfig)
		wantErr string
	}{
		{"valid", func(c *TrainConfig) {}, ""},
		{"valid DropCond 0", func(c *TrainConfig) { c.DropCond = 0 }, ""},
		{"valid DropCond 1", func(c *TrainConfig) { c.DropCond = 1 }, ""},
		{"zero LR", func(c *TrainConfig) { c.LR = 0 }, "LR"},
		{"negative LR", func(c *TrainConfig) { c.LR = -1e-3 }, "LR"},
		{"NaN LR", func(c *TrainConfig) { c.LR = math.NaN() }, "LR"},
		{"infinite LR", func(c *TrainConfig) { c.LR = math.Inf(1) }, "LR"},
		{"negative DropCond", func(c *TrainConfig) { c.DropCond = -0.1 }, "DropCond"},
		{"DropCond above 1", func(c *TrainConfig) { c.DropCond = 1.01 }, "DropCond"},
		{"NaN DropCond", func(c *TrainConfig) { c.DropCond = math.NaN() }, "DropCond"},
		{"negative ClipNorm", func(c *TrainConfig) { c.ClipNorm = -1 }, "ClipNorm"},
		{"NaN ClipNorm", func(c *TrainConfig) { c.ClipNorm = math.NaN() }, "ClipNorm"},
		{"zero Steps", func(c *TrainConfig) { c.Steps = 0 }, "Steps"},
		{"zero Batch", func(c *TrainConfig) { c.Batch = 0 }, "Steps"},
		{"EMADecay 1", func(c *TrainConfig) { c.EMADecay = 1 }, "EMADecay"},
		{"NaN EMADecay", func(c *TrainConfig) { c.EMADecay = math.NaN() }, "EMADecay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			_, err := Train(model, sched, set, cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("config %+v should be rejected", cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestScheduleTrainingTablesBitExact extends the PR-4 table-equivalence
// guarantee to the training path: Trainer.Step noises minibatches with
// sched.SqrtAlphaBar / sched.SqrtOneMinusAlphaBar, which must be
// bit-identical to the inline √ᾱ_t / √(1-ᾱ_t) expressions the loop
// previously evaluated per sample — otherwise the refactor would have
// changed every training trajectory.
func TestScheduleTrainingTablesBitExact(t *testing.T) {
	for _, kind := range []ScheduleKind{ScheduleLinear, ScheduleCosine} {
		for _, T := range []int{2, 40, 120, 1000} {
			s := NewSchedule(kind, T)
			for tt := 0; tt < T; tt++ {
				if got, want := s.SqrtAlphaBar[tt], math.Sqrt(s.AlphaBar[tt]); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%v T=%d: SqrtAlphaBar[%d] = %x, inline sqrt = %x", kind, T, tt, math.Float64bits(got), math.Float64bits(want))
				}
				if got, want := s.SqrtOneMinusAlphaBar[tt], math.Sqrt(1-s.AlphaBar[tt]); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%v T=%d: SqrtOneMinusAlphaBar[%d] = %x, inline sqrt = %x", kind, T, tt, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

// TestNonFiniteLossAbort drives training into divergence with an
// enormous learning rate and checks the abort contract: the error is
// surfaced and names the step, the partial loss curve (finite entries
// only) is returned, and the EMA average is NOT installed on the model
// — the weights must be left exactly as the last completed step wrote
// them, so callers can inspect the blown-up state.
func TestNonFiniteLossAbort(t *testing.T) {
	run := func(emaDecay float64) ([]float64, []float32, error) {
		r := stats.NewRNG(4)
		model := NewMLPDenoiser(r, 4, 8, 32, 2)
		sched := NewSchedule(ScheduleCosine, 30)
		losses, err := Train(model, sched, tinySet(4, 8), TrainConfig{
			Steps: 400, Batch: 8, LR: 1e18, Seed: 6, EMADecay: emaDecay,
		})
		var flat []float32
		for _, p := range model.Params() {
			flat = append(flat, p.X.Data...)
		}
		return losses, flat, err
	}

	losses, params, err := run(0)
	if err == nil {
		t.Fatal("LR=1e18 should produce a non-finite loss")
	}
	if !strings.Contains(err.Error(), "non-finite loss at step") {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(losses) == 0 || len(losses) >= 400 {
		t.Fatalf("expected a partial loss curve, got %d entries", len(losses))
	}
	for i, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("returned loss curve has non-finite entry at %d", i)
		}
	}

	// Same run with EMA enabled: the trajectory is identical (the EMA
	// shadow never feeds back into training), so if Finish had wrongly
	// installed the average on the abort path the weights would differ
	// from the EMA-off run. They must be bit-identical.
	lossesEMA, paramsEMA, errEMA := run(0.99)
	if errEMA == nil {
		t.Fatal("EMA run should abort identically")
	}
	if len(lossesEMA) != len(losses) {
		t.Fatalf("EMA changed the abort step: %d vs %d losses", len(lossesEMA), len(losses))
	}
	if len(params) != len(paramsEMA) {
		t.Fatalf("param count mismatch: %d vs %d", len(params), len(paramsEMA))
	}
	for i := range params {
		if math.Float32bits(params[i]) != math.Float32bits(paramsEMA[i]) {
			t.Fatalf("param %d differs between EMA-off and EMA-on abort: EMA average was installed", i)
		}
	}
}

// TestTrainerProgressHook checks the per-step report stream: one call
// per step in order, finite losses matching the returned curve, a
// positive gradient norm, and no effect on the trained weights (the
// hook is observation-only, so checkpoints with and without a hook
// stay byte-identical).
func TestTrainerProgressHook(t *testing.T) {
	const steps = 12
	run := func(hook ProgressFunc) []float32 {
		r := stats.NewRNG(8)
		model := NewMLPDenoiser(r, 4, 8, 24, 2)
		sched := NewSchedule(ScheduleCosine, 20)
		if _, err := Train(model, sched, tinySet(4, 8), TrainConfig{
			Steps: steps, Batch: 4, LR: 5e-3, ClipNorm: 5, Seed: 2, Progress: hook,
		}); err != nil {
			t.Fatal(err)
		}
		var flat []float32
		for _, p := range model.Params() {
			flat = append(flat, p.X.Data...)
		}
		return flat
	}

	var got []Progress
	withHook := run(func(p Progress) { got = append(got, p) })
	if len(got) != steps {
		t.Fatalf("hook called %d times, want %d", len(got), steps)
	}
	for i, p := range got {
		if p.Step != i {
			t.Fatalf("report %d has step %d", i, p.Step)
		}
		if math.IsNaN(p.Loss) || p.Loss <= 0 {
			t.Fatalf("report %d has loss %v", i, p.Loss)
		}
		if p.GradNorm <= 0 {
			t.Fatalf("report %d has grad norm %v", i, p.GradNorm)
		}
		if p.StepsPerSec < 0 {
			t.Fatalf("report %d has steps/s %v", i, p.StepsPerSec)
		}
	}

	without := run(nil)
	if len(withHook) != len(without) {
		t.Fatal("param layouts differ")
	}
	for i := range without {
		if math.Float32bits(withHook[i]) != math.Float32bits(without[i]) {
			t.Fatalf("param %d differs with/without progress hook", i)
		}
	}
}
