package diffusion

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// equivModel builds an MLP denoiser whose zero-initialized layers
// (output projection, ControlNet hook) are given real weights, so
// sampler-equivalence comparisons exercise the full network rather
// than just the time-gated input skip.
func equivModel(r *stats.RNG, h, w int) *MLPDenoiser {
	m := NewMLPDenoiser(r, h, w, 32, 2)
	m.OutLayer().W.X.Randn(r, 0.05)
	m.CtrlProjLayer().W.X.Randn(r, 0.05)
	return m
}

// bitsEqual reports whether two float32 slices are byte-identical,
// returning the first differing index.
func bitsEqual(a, b []float32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// TestBatchedMatchesLegacy is the batched-timestep path's bit-identity
// property test: for DDPM and DDIM, guidance 1 and 3, with and without
// ControlNet conditioning, with batch-seeded and flow-seeded RNG
// layouts, and at GOMAXPROCS 1 and 8, Sample (step-serial, batch-wide)
// must produce byte-identical output to SampleLegacy (flow-parallel,
// batch-1 forwards). This is what makes batching purely a scheduling
// decision: no experiment or seeded serving request can observe it.
func TestBatchedMatchesLegacy(t *testing.T) {
	r := stats.NewRNG(11)
	h, w := 4, 8
	model := equivModel(r, h, w)
	sched := NewSchedule(ScheduleCosine, 12)
	control := tensor.New(1, h, w).Randn(r, 1)
	flowSeeds := []uint64{901, 77, 31337}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for _, ddim := range []int{0, 4} {
			for _, guidance := range []float64{1, 3} {
				for _, ctl := range []*tensor.Tensor{nil, control} {
					for _, seeded := range []bool{false, true} {
						cfg := SampleConfig{
							Class: 1, N: 3, GuidanceScale: guidance,
							DDIMSteps: ddim, Control: ctl, Seed: 42,
						}
						if seeded {
							cfg.FlowSeeds = flowSeeds
						}
						name := fmt.Sprintf("procs=%d/ddim=%d/w=%v/ctl=%v/flowseeds=%v",
							procs, ddim, guidance, ctl != nil, seeded)
						got, err := Sample(model, sched, cfg)
						if err != nil {
							t.Fatalf("%s: Sample: %v", name, err)
						}
						want, err := SampleLegacy(model, sched, cfg)
						if err != nil {
							t.Fatalf("%s: SampleLegacy: %v", name, err)
						}
						if i, ok := bitsEqual(got.Data, want.Data); !ok {
							t.Errorf("%s: batched diverges from legacy at [%d]: %x vs %x",
								name, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
						}
					}
				}
			}
		}
	}
}

// TestBatchedMatchesLegacyUNet repeats the core equivalence cases with
// the convolutional U-Net: its kernels (im2col, fused conv epilogue,
// upsample, attention-free path) must also be row-independent for the
// batched forward to decompose into batch-1 forwards. A short training
// run gives the zero-initialized head real weights first.
func TestBatchedMatchesLegacyUNet(t *testing.T) {
	r := stats.NewRNG(13)
	h, w := 4, 8
	model := NewUNetDenoiser(r, h, w, 4, 2)
	sched := NewSchedule(ScheduleCosine, 8)
	if _, err := Train(model, sched, tinySet(h, w), TrainConfig{
		Steps: 12, Batch: 4, LR: 1e-2, ClipNorm: 5, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	control := tensor.New(1, h, w).Randn(r, 1)
	for _, ddim := range []int{0, 3} {
		cfg := SampleConfig{
			Class: 0, N: 2, GuidanceScale: 2, DDIMSteps: ddim,
			Control: control, FlowSeeds: []uint64{5, 6},
		}
		got, err := Sample(model, sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SampleLegacy(model, sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := bitsEqual(got.Data, want.Data); !ok {
			t.Errorf("ddim=%d: UNet batched diverges from legacy at [%d]", ddim, i)
		}
	}
}

// churnFlow is one flow of the randomized churn schedule: its spec,
// its solo-reference config, and where the scheduler run put it.
type churnFlow struct {
	seed     uint64
	class    int
	guidance float64
	ddim     int
	id       FlowID
	out      []float32
	retired  bool
	done     bool
}

// TestSchedulerChurnBitIdentity is the continuous-batching bit-identity
// property test: flows join the in-flight batch and retire at
// randomized step boundaries, mixing DDPM with heterogeneous DDIM step
// counts, classes and guidance scales in one batch, with and without
// ControlNet conditioning, at GOMAXPROCS 1 and 8 — and every completed
// flow's bytes must equal a solo SampleLegacy run of that flow alone.
// This is the contract that lets traced admit a request into a batch
// that is already at step 37 without the response bytes depending on
// it. Runs under -race in CI (make race).
func TestSchedulerChurnBitIdentity(t *testing.T) {
	r := stats.NewRNG(11)
	h, w := 4, 8
	model := equivModel(r, h, w)
	sched := NewSchedule(ScheduleCosine, 12)
	control := tensor.New(1, h, w).Randn(r, 1)
	d := h * w

	ddimChoices := []int{0, 3, 4, 6} // 0 = full DDPM, rest heterogeneous DDIM budgets
	guidanceChoices := []float64{1, 2, 3}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for _, ctl := range []*tensor.Tensor{nil, control} {
			// budget 3 forces the step-row cap through constant
			// least-attained reordering under churn; 0 steps every row.
			for _, budget := range []int{0, 3} {
				name := fmt.Sprintf("procs=%d/ctl=%v/budget=%d", procs, ctl != nil, budget)
				driver := stats.NewRNG(97) // deterministic churn script
				eng := NewScheduler(model, sched, nil)
				eng.SetStepRows(budget)
				var flows []*churnFlow
				byID := map[FlowID]*churnFlow{}
				admitted, completed := 0, 0
				const total = 14
				for completed < total {
					// Admit 0-2 new flows at this boundary (always at least
					// one while the engine is idle and flows remain).
					burst := int(driver.Uint64() % 3)
					for burst > 0 || (eng.Active() == 0 && admitted < total) {
						if admitted >= total {
							break
						}
						cf := &churnFlow{
							seed:     uint64(1000 + admitted),
							class:    int(driver.Uint64() % 2),
							guidance: guidanceChoices[driver.Uint64()%3],
							ddim:     ddimChoices[driver.Uint64()%4],
							out:      make([]float32, d),
						}
						id, err := eng.Admit(FlowSpec{
							Class:         cf.class,
							GuidanceScale: cf.guidance,
							DDIMSteps:     cf.ddim,
							RNG:           stats.NewRNG(cf.seed),
							Control:       ctl,
							Out:           cf.out,
						})
						if err != nil {
							t.Fatalf("%s: admit: %v", name, err)
						}
						cf.id = id
						flows = append(flows, cf)
						byID[id] = cf
						admitted++
						burst--
					}
					// Occasionally retire a random live flow mid-generation
					// (its spot must not perturb anyone else's bytes).
					if driver.Uint64()%5 == 0 {
						live := flows[:0:0]
						for _, cf := range flows {
							if !cf.done && !cf.retired {
								live = append(live, cf)
							}
						}
						if len(live) > 1 {
							victim := live[driver.Uint64()%uint64(len(live))]
							victim.retired = true
							eng.Retire(victim.id)
							completed++ // retired flows count toward termination
						}
					}
					for _, id := range eng.Step() {
						cf := byID[id]
						if cf == nil {
							t.Fatalf("%s: unknown completed id %d", name, id)
						}
						if cf.retired {
							t.Fatalf("%s: retired flow %d completed", name, id)
						}
						cf.done = true
						completed++
					}
				}
				for eng.Active() > 0 {
					for _, id := range eng.Step() {
						byID[id].done = true
					}
				}

				for _, cf := range flows {
					if cf.retired {
						// A retired flow must never have written its output.
						for j, v := range cf.out {
							if v != 0 {
								t.Fatalf("%s: retired flow %d wrote out[%d]=%v", name, cf.id, j, v)
							}
						}
						continue
					}
					if !cf.done {
						t.Fatalf("%s: flow %d never completed", name, cf.id)
					}
					solo, err := SampleLegacy(model, sched, SampleConfig{
						Class: cf.class, N: 1, GuidanceScale: cf.guidance,
						DDIMSteps: cf.ddim, Control: ctl, FlowSeeds: []uint64{cf.seed},
					})
					if err != nil {
						t.Fatalf("%s: solo reference: %v", name, err)
					}
					if i, ok := bitsEqual(cf.out, solo.Data); !ok {
						t.Errorf("%s: flow %d (class=%d w=%v ddim=%d) diverges from solo at [%d]",
							name, cf.id, cf.class, cf.guidance, cf.ddim, i)
					}
				}
			}
		}
	}
}

// TestBatchCompositionInvariance checks the FlowSeeds contract on the
// batched path directly: a flow's bytes are a pure function of its own
// seed, unchanged by which other flows share the batch.
func TestBatchCompositionInvariance(t *testing.T) {
	r := stats.NewRNG(17)
	h, w := 4, 8
	model := equivModel(r, h, w)
	sched := NewSchedule(ScheduleCosine, 10)
	d := h * w
	for _, ddim := range []int{0, 4} {
		alone, err := Sample(model, sched, SampleConfig{
			Class: 1, N: 1, GuidanceScale: 2, DDIMSteps: ddim, FlowSeeds: []uint64{424242},
		})
		if err != nil {
			t.Fatal(err)
		}
		grouped, err := Sample(model, sched, SampleConfig{
			Class: 1, N: 4, GuidanceScale: 2, DDIMSteps: ddim,
			FlowSeeds: []uint64{7, 424242, 99, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := bitsEqual(alone.Data, grouped.Data[d:2*d]); !ok {
			t.Errorf("ddim=%d: flow output depends on batch composition (index %d)", ddim, i)
		}
	}
}
