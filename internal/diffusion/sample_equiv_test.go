package diffusion

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// equivModel builds an MLP denoiser whose zero-initialized layers
// (output projection, ControlNet hook) are given real weights, so
// sampler-equivalence comparisons exercise the full network rather
// than just the time-gated input skip.
func equivModel(r *stats.RNG, h, w int) *MLPDenoiser {
	m := NewMLPDenoiser(r, h, w, 32, 2)
	m.OutLayer().W.X.Randn(r, 0.05)
	m.CtrlProjLayer().W.X.Randn(r, 0.05)
	return m
}

// bitsEqual reports whether two float32 slices are byte-identical,
// returning the first differing index.
func bitsEqual(a, b []float32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// TestBatchedMatchesLegacy is the batched-timestep path's bit-identity
// property test: for DDPM and DDIM, guidance 1 and 3, with and without
// ControlNet conditioning, with batch-seeded and flow-seeded RNG
// layouts, and at GOMAXPROCS 1 and 8, Sample (step-serial, batch-wide)
// must produce byte-identical output to SampleLegacy (flow-parallel,
// batch-1 forwards). This is what makes batching purely a scheduling
// decision: no experiment or seeded serving request can observe it.
func TestBatchedMatchesLegacy(t *testing.T) {
	r := stats.NewRNG(11)
	h, w := 4, 8
	model := equivModel(r, h, w)
	sched := NewSchedule(ScheduleCosine, 12)
	control := tensor.New(1, h, w).Randn(r, 1)
	flowSeeds := []uint64{901, 77, 31337}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for _, ddim := range []int{0, 4} {
			for _, guidance := range []float64{1, 3} {
				for _, ctl := range []*tensor.Tensor{nil, control} {
					for _, seeded := range []bool{false, true} {
						cfg := SampleConfig{
							Class: 1, N: 3, GuidanceScale: guidance,
							DDIMSteps: ddim, Control: ctl, Seed: 42,
						}
						if seeded {
							cfg.FlowSeeds = flowSeeds
						}
						name := fmt.Sprintf("procs=%d/ddim=%d/w=%v/ctl=%v/flowseeds=%v",
							procs, ddim, guidance, ctl != nil, seeded)
						got, err := Sample(model, sched, cfg)
						if err != nil {
							t.Fatalf("%s: Sample: %v", name, err)
						}
						want, err := SampleLegacy(model, sched, cfg)
						if err != nil {
							t.Fatalf("%s: SampleLegacy: %v", name, err)
						}
						if i, ok := bitsEqual(got.Data, want.Data); !ok {
							t.Errorf("%s: batched diverges from legacy at [%d]: %x vs %x",
								name, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
						}
					}
				}
			}
		}
	}
}

// TestBatchedMatchesLegacyUNet repeats the core equivalence cases with
// the convolutional U-Net: its kernels (im2col, fused conv epilogue,
// upsample, attention-free path) must also be row-independent for the
// batched forward to decompose into batch-1 forwards. A short training
// run gives the zero-initialized head real weights first.
func TestBatchedMatchesLegacyUNet(t *testing.T) {
	r := stats.NewRNG(13)
	h, w := 4, 8
	model := NewUNetDenoiser(r, h, w, 4, 2)
	sched := NewSchedule(ScheduleCosine, 8)
	if _, err := Train(model, sched, tinySet(h, w), TrainConfig{
		Steps: 12, Batch: 4, LR: 1e-2, ClipNorm: 5, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	control := tensor.New(1, h, w).Randn(r, 1)
	for _, ddim := range []int{0, 3} {
		cfg := SampleConfig{
			Class: 0, N: 2, GuidanceScale: 2, DDIMSteps: ddim,
			Control: control, FlowSeeds: []uint64{5, 6},
		}
		got, err := Sample(model, sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SampleLegacy(model, sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := bitsEqual(got.Data, want.Data); !ok {
			t.Errorf("ddim=%d: UNet batched diverges from legacy at [%d]", ddim, i)
		}
	}
}

// TestBatchCompositionInvariance checks the FlowSeeds contract on the
// batched path directly: a flow's bytes are a pure function of its own
// seed, unchanged by which other flows share the batch.
func TestBatchCompositionInvariance(t *testing.T) {
	r := stats.NewRNG(17)
	h, w := 4, 8
	model := equivModel(r, h, w)
	sched := NewSchedule(ScheduleCosine, 10)
	d := h * w
	for _, ddim := range []int{0, 4} {
		alone, err := Sample(model, sched, SampleConfig{
			Class: 1, N: 1, GuidanceScale: 2, DDIMSteps: ddim, FlowSeeds: []uint64{424242},
		})
		if err != nil {
			t.Fatal(err)
		}
		grouped, err := Sample(model, sched, SampleConfig{
			Class: 1, N: 4, GuidanceScale: 2, DDIMSteps: ddim,
			FlowSeeds: []uint64{7, 424242, 99, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := bitsEqual(alone.Data, grouped.Data[d:2*d]); !ok {
			t.Errorf("ddim=%d: flow output depends on batch composition (index %d)", ddim, i)
		}
	}
}
