package diffusion

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"trafficdiff/internal/stats"
)

func quantTestModel(h, w int) *MLPDenoiser {
	r := stats.NewRNG(31)
	m := NewMLPDenoiser(r, h, w, 64, 2)
	m.OutLayer().W.X.Randn(r, 0.05)
	return m
}

// TestQuantizedSampleDeterministicAcrossWorkers pins the quantized
// path to the same determinism contract the fp32 sampler has: at any
// GOMAXPROCS, int8 sampling is bit-identical. The int8 kernels shard
// like the fp32 ones (one sequential dot per output element), so this
// holds by construction — the test keeps it that way.
func TestQuantizedSampleDeterministicAcrossWorkers(t *testing.T) {
	m := quantTestModel(8, 16)
	m.Quantize()
	if m.Precision() != PrecisionInt8 {
		t.Fatal("Quantize did not switch precision")
	}
	sched := NewSchedule(ScheduleCosine, 40)
	cfg := SampleConfig{Class: 0, N: 4, GuidanceScale: 2, DDIMSteps: 8, Seed: 9}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	ref, err := Sample(m, sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		got, err := Sample(m, sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("GOMAXPROCS=%d: element %d differs: %v vs %v", procs, i, got.Data[i], ref.Data[i])
			}
		}
	}
}

// TestQuantizeUnquantizeRestoresFP32 asserts the revert contract that
// SetPrecision("off") relies on: quantize → unquantize leaves sampling
// bit-identical to a model that was never quantized.
func TestQuantizeUnquantizeRestoresFP32(t *testing.T) {
	m := quantTestModel(8, 16)
	sched := NewSchedule(ScheduleCosine, 40)
	cfg := SampleConfig{Class: 1, N: 3, GuidanceScale: 2, DDIMSteps: 8, Seed: 17}

	ref, err := Sample(m, sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Quantize()
	m.Unquantize()
	if m.Precision() != PrecisionFP32 {
		t.Fatal("Unquantize did not restore fp32")
	}
	got, err := Sample(m, sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("element %d: post-unquantize %v != never-quantized %v", i, got.Data[i], ref.Data[i])
		}
	}
}

// TestQuantizedSampleTracksFP32 bounds the int8 path's drift from
// fp32 on a full DDIM run: per-element error stays small relative to
// the output scale. The bound is loose (error compounds across steps);
// the fidelity gate proper lives in eval's frontier sweep.
func TestQuantizedSampleTracksFP32(t *testing.T) {
	m := quantTestModel(8, 16)
	sched := NewSchedule(ScheduleCosine, 40)
	cfg := SampleConfig{Class: 0, N: 4, GuidanceScale: 2, DDIMSteps: 16, Seed: 5}

	ref, err := Sample(m, sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Quantize()
	got, err := Sample(m, sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff, scale float64
	for i := range ref.Data {
		d := math.Abs(float64(got.Data[i]) - float64(ref.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
		if a := math.Abs(float64(ref.Data[i])); a > scale {
			scale = a
		}
	}
	if maxDiff > 0.05*scale+0.02 {
		t.Fatalf("int8 sample drifts %.4f from fp32 (output scale %.4f)", maxDiff, scale)
	}
}

// TestFewStepBudgets runs every frontier step budget end to end on the
// quantized path — each must produce finite output of the right shape.
func TestFewStepBudgets(t *testing.T) {
	m := quantTestModel(8, 16)
	m.Quantize()
	sched := NewSchedule(ScheduleCosine, 64)
	for _, steps := range []int{4, 8, 16} {
		x, err := Sample(m, sched, SampleConfig{Class: 0, N: 2, GuidanceScale: 2, DDIMSteps: steps, Seed: 3})
		if err != nil {
			t.Fatalf("steps=%d: %v", steps, err)
		}
		if x.Shape[0] != 2 || x.Shape[2] != 8 || x.Shape[3] != 16 {
			t.Fatalf("steps=%d: shape %v", steps, x.Shape)
		}
		for i, v := range x.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("steps=%d: non-finite output at %d", steps, i)
			}
		}
	}
}

// TestDDIMTableConcurrent hammers the memoized table from many
// goroutines mixing first-use and cached step counts. Run under -race
// it proves the ddimMu discipline; the slice-identity check proves
// every caller gets the same memoized plan (no torn rebuilds).
func TestDDIMTableConcurrent(t *testing.T) {
	sched := NewSchedule(ScheduleCosine, 64)
	budgets := []int{4, 8, 10, 16, 32}
	type plan struct {
		seq  []int
		coef []DDIMCoeff
	}
	first := make([]plan, len(budgets))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				b := budgets[(g+iter)%len(budgets)]
				seq, coef := sched.DDIMTable(b)
				if len(seq) != b || len(coef) != b {
					t.Errorf("DDIMTable(%d): got %d steps, %d coeffs", b, len(seq), len(coef))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i, b := range budgets {
		seq, coef := sched.DDIMTable(b)
		first[i] = plan{seq, coef}
		seq2, coef2 := sched.DDIMTable(b)
		if &seq[0] != &seq2[0] || &coef[0] != &coef2[0] {
			t.Fatalf("DDIMTable(%d) rebuilt instead of memoizing", b)
		}
	}
}

// BenchmarkSampleBatchedDDIM64 is the fp32/64-step reference point of
// the quantization frontier: full precision at the paper's canonical
// DDIM budget. BENCH_quant's >=2x speedup criterion compares the int8
// few-step configurations against this.
func BenchmarkSampleBatchedDDIM64(b *testing.B) {
	model, sched := benchModel(b)
	const n = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sample(model, sched, SampleConfig{
			Class: 0, N: n, GuidanceScale: 2, DDIMSteps: 64, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkSampleBatchedDDIMInt8 measures the tentpole configuration:
// int8 weights at an 8-step DDIM budget.
func BenchmarkSampleBatchedDDIMInt8(b *testing.B) {
	model, sched := benchModel(b)
	model.Quantize()
	const n = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sample(model, sched, SampleConfig{
			Class: 0, N: n, GuidanceScale: 2, DDIMSteps: 8, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}
