package diffusion_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"trafficdiff/internal/diffusion"
	"trafficdiff/internal/lora"
	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// resumeSet builds a small two-class training set.
func resumeSet(h, w int) *diffusion.TrainSet {
	set := &diffusion.TrainSet{}
	for rep := 0; rep < 6; rep++ {
		for cls := 0; cls < 2; cls++ {
			im := tensor.New(1, h, w)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := float32(-1)
					if (cls == 0 && x < w/2) || (cls == 1 && x >= w/2) {
						v = 1
					}
					im.Data[y*w+x] = v
				}
			}
			set.Images = append(set.Images, im)
			set.Labels = append(set.Labels, cls)
		}
	}
	return set
}

// resumeFixture deterministically builds the model (and, in FreezeBase
// mode, the LoRA adapter) plus its training config; calling it twice
// yields bit-identical starting points, which stands in for "restart
// the process and reconstruct the model from the same seed".
func resumeFixture(freeze bool, batch int, emaDecay float64, steps int) (diffusion.Denoiser, []*nn.V, diffusion.TrainConfig) {
	r := stats.NewRNG(31)
	base := diffusion.NewMLPDenoiser(r, 4, 8, 24, 2)
	cfg := diffusion.TrainConfig{
		Steps: steps, Batch: batch, LR: 5e-3, ClipNorm: 5,
		Seed: 17, DropCond: 0.2, EMADecay: emaDecay,
	}
	var model diffusion.Denoiser = base
	trained := base.Params()
	if freeze {
		ar := stats.NewRNG(32)
		ad := lora.NewAdaptedMLP(ar, base, 4, 8, 2)
		cfg.FreezeBase = true
		cfg.ExtraParams = ad.Params()
		model = ad
		trained = ad.Params()
	}
	return model, trained, cfg
}

// TestTrainerResumeBitIdentity is the resume contract's property test:
// for every combination of kill step k, batch size, EMA on/off, and
// FreezeBase/LoRA mode, checkpointing a run at step k, rebuilding the
// trainer from scratch, restoring, and training to completion must
// produce a final checkpoint byte-identical to the uninterrupted
// run's, and bit-identical final model weights (including the EMA
// install). `make verify-determinism` and CI run this under -race.
func TestTrainerResumeBitIdentity(t *testing.T) {
	const steps = 8
	sched := diffusion.NewSchedule(diffusion.ScheduleCosine, 25)
	set := resumeSet(4, 8)

	for _, freeze := range []bool{false, true} {
		for _, emaDecay := range []float64{0, 0.95} {
			for _, batch := range []int{2, 5} {
				for _, k := range []int{0, 1, 3, steps - 1, steps} {
					name := fmt.Sprintf("freeze=%t/ema=%v/batch=%d/k=%d", freeze, emaDecay, batch, k)
					t.Run(name, func(t *testing.T) {
						// Uninterrupted run, capturing the checkpoint it
						// would have written at step k and at completion.
						modelA, trainedA, cfgA := resumeFixture(freeze, batch, emaDecay, steps)
						trA, err := diffusion.NewTrainer(modelA, sched, set, cfgA)
						if err != nil {
							t.Fatal(err)
						}
						var atK, finalA bytes.Buffer
						for !trA.Done() {
							if trA.StepCount() == k {
								if err := trA.Checkpoint(&atK); err != nil {
									t.Fatal(err)
								}
							}
							if err := trA.Step(); err != nil {
								t.Fatal(err)
							}
						}
						if trA.StepCount() == k {
							if err := trA.Checkpoint(&atK); err != nil {
								t.Fatal(err)
							}
						}
						if err := trA.Checkpoint(&finalA); err != nil {
							t.Fatal(err)
						}
						trA.Finish()

						// Killed-and-resumed run: fresh process state,
						// restore at k, train the remaining steps.
						modelB, trainedB, cfgB := resumeFixture(freeze, batch, emaDecay, steps)
						trB, err := diffusion.NewTrainer(modelB, sched, set, cfgB)
						if err != nil {
							t.Fatal(err)
						}
						if err := trB.Restore(bytes.NewReader(atK.Bytes())); err != nil {
							t.Fatal(err)
						}
						if got := trB.StepCount(); got != k {
							t.Fatalf("restored step = %d, want %d", got, k)
						}
						for !trB.Done() {
							if err := trB.Step(); err != nil {
								t.Fatal(err)
							}
						}
						var finalB bytes.Buffer
						if err := trB.Checkpoint(&finalB); err != nil {
							t.Fatal(err)
						}
						trB.Finish()

						if !bytes.Equal(finalA.Bytes(), finalB.Bytes()) {
							t.Fatal("final checkpoints differ between uninterrupted and resumed runs")
						}
						// Loss curves match exactly.
						la, lb := trA.Losses(), trB.Losses()
						if len(la) != len(lb) {
							t.Fatalf("loss curves have %d vs %d entries", len(la), len(lb))
						}
						for i := range la {
							if math.Float64bits(la[i]) != math.Float64bits(lb[i]) {
								t.Fatalf("loss %d differs: %v vs %v", i, la[i], lb[i])
							}
						}
						// Post-Finish weights (EMA installed when on) match
						// bit-for-bit — both the trained set and, in freeze
						// mode, the untouched base.
						if len(trainedA) != len(trainedB) {
							t.Fatal("param sets differ")
						}
						for i := range trainedA {
							a, b := trainedA[i].X.Data, trainedB[i].X.Data
							for j := range a {
								if math.Float32bits(a[j]) != math.Float32bits(b[j]) {
									t.Fatalf("trained param %d elem %d differs after resume", i, j)
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestTrainerRestoreValidation covers the refuse-to-resume paths: a
// checkpoint from an EMA run cannot restore into a non-EMA trainer
// (and vice versa), a checkpoint beyond the configured step budget is
// rejected, and weights-only checkpoints are not resumable.
func TestTrainerRestoreValidation(t *testing.T) {
	sched := diffusion.NewSchedule(diffusion.ScheduleCosine, 25)
	set := resumeSet(4, 8)

	mkTrainer := func(emaDecay float64, steps int) *diffusion.Trainer {
		model, _, cfg := resumeFixture(false, 2, emaDecay, steps)
		tr, err := diffusion.NewTrainer(model, sched, set, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	// Checkpoint from an EMA run at step 2.
	src := mkTrainer(0.9, 4)
	for i := 0; i < 2; i++ {
		if err := src.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var ck bytes.Buffer
	if err := src.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}

	if err := mkTrainer(0, 4).Restore(bytes.NewReader(ck.Bytes())); err == nil {
		t.Error("EMA checkpoint should not restore into a non-EMA trainer")
	}
	if err := mkTrainer(0.9, 1).Restore(bytes.NewReader(ck.Bytes())); err == nil {
		t.Error("checkpoint beyond the step budget should be rejected")
	}
	if err := mkTrainer(0.9, 4).Restore(bytes.NewReader(ck.Bytes())); err != nil {
		t.Errorf("matching trainer should restore: %v", err)
	}

	// Weights-only checkpoints carry no resumable state.
	model, trained, _ := resumeFixture(false, 2, 0, 4)
	_ = model
	var weightsOnly bytes.Buffer
	if err := nn.SaveParams(&weightsOnly, trained); err != nil {
		t.Fatal(err)
	}
	if err := mkTrainer(0, 4).Restore(bytes.NewReader(weightsOnly.Bytes())); err == nil {
		t.Error("weights-only checkpoint should not be resumable")
	}

	// A finished trainer accepts no further checkpoints.
	done := mkTrainer(0, 4)
	if _, err := done.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := done.Checkpoint(&buf); err == nil {
		t.Error("finished trainer should refuse to checkpoint")
	}
}
