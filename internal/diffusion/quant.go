package diffusion

import "fmt"

// This file is the sampler-side precision switch. Quantization flips
// each GEMM-heavy layer to per-output-channel int8 weights (see
// nn/quant.go); the conditioning path — timestep projection, gate,
// class embeddings, norms, attention — stays fp32, both because it is
// a rounding-sensitive scalar path and because it is a negligible
// share of the forward's work. The predictor needs no switch of its
// own: its tape already runs no-grad, which is exactly the mode the
// quantized kernels require, and layer Apply dispatches per layer.
//
// Quantize is a load-time, pre-serving operation: it must not run
// concurrently with Forward, and a quantized model must never be
// trained (the quantized ops panic on gradient-recording tapes).

// Precision names an inference weight precision.
type Precision int

// Available precisions.
const (
	// PrecisionFP32 is the full-precision default path.
	PrecisionFP32 Precision = iota
	// PrecisionInt8 runs GEMM-heavy layers with per-output-channel
	// symmetric int8 weights (fp32 activations and accumulation).
	PrecisionInt8
)

// String names the precision the way flags, readiness payloads and
// cache keys spell it.
func (p Precision) String() string {
	switch p {
	case PrecisionFP32:
		return "fp32"
	case PrecisionInt8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision reads the flag/readiness spelling ("fp32", "int8";
// "off" and "" alias fp32 for the -quant flag).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "fp32", "off", "":
		return PrecisionFP32, nil
	case "int8":
		return PrecisionInt8, nil
	default:
		return PrecisionFP32, fmt.Errorf("diffusion: unknown precision %q (want int8 or off)", s)
	}
}

// Quantizable is implemented by denoisers that support the int8
// inference path.
type Quantizable interface {
	// Quantize converts the GEMM-heavy layers to int8 weights. Call
	// once, after loading and before any Forward; never before
	// training.
	Quantize()
	// Precision reports the active inference precision.
	Precision() Precision
}

// Quantize implements Quantizable: the four wide projections carry
// essentially all of the MLP forward's multiply-adds.
func (m *MLPDenoiser) Quantize() {
	m.xProj.Quantize()
	m.ctrlProj.Quantize()
	m.hid.Quantize()
	m.out.Quantize()
}

// Precision implements Quantizable.
func (m *MLPDenoiser) Precision() Precision {
	if m.xProj.Quantized() {
		return PrecisionInt8
	}
	return PrecisionFP32
}

// Unquantize reverts to the fp32 path (byte-exact: the fp32 weights
// were never modified).
func (m *MLPDenoiser) Unquantize() {
	m.xProj.Unquantize()
	m.ctrlProj.Unquantize()
	m.hid.Unquantize()
	m.out.Unquantize()
}

// Quantize implements Quantizable: every convolution plus the two
// FiLM-style embedding projections. The attention block (when
// enabled) stays fp32 — softmax logits are the one place int8 weight
// noise visibly moves outputs.
func (u *UNetDenoiser) Quantize() {
	for _, c := range []interface{ Quantize() }{
		u.stem, u.res1, u.down, u.mid, u.upConv, u.res2, u.head,
		u.ctrlStem, u.ctrlZero, u.embToC, u.embToC2,
	} {
		c.Quantize()
	}
}

// Precision implements Quantizable.
func (u *UNetDenoiser) Precision() Precision {
	if u.stem.Quantized() {
		return PrecisionInt8
	}
	return PrecisionFP32
}

// Unquantize reverts every layer Quantize touched to the fp32 path.
func (u *UNetDenoiser) Unquantize() {
	for _, c := range []interface{ Unquantize() }{
		u.stem, u.res1, u.down, u.mid, u.upConv, u.res2, u.head,
		u.ctrlStem, u.ctrlZero, u.embToC, u.embToC2,
	} {
		c.Unquantize()
	}
}
