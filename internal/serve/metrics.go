package serve

import (
	"expvar"
	"time"

	"trafficdiff/internal/core"
)

// metrics is the server's expvar-backed instrumentation. Every counter
// lives in vars, the map /metrics serializes; PublishExpvar can mirror
// the same map into the process-wide expvar registry.
type metrics struct {
	vars *expvar.Map

	// Admission and completion counters. Every terminal outcome of
	// POST /v1/generate bumps exactly one of these (plus accepted_total
	// on the paths that made it through the gate), so a load harness
	// can reconcile its client-side status accounting against the
	// server: accepted = completed + expired + failed, and
	// badRequest + rejected + drainRejected + accepted = requests seen.
	accepted      *expvar.Int // accepted_total
	rejected      *expvar.Int // rejected_total (429 backpressure)
	drainRejected *expvar.Int // drain_rejected_total (503 while draining)
	badRequest    *expvar.Int // bad_request_total (4xx validation)
	expired       *expvar.Int // deadline_expired_total (504)
	completed     *expvar.Int // completed_total
	failed        *expvar.Int // failed_total (500)

	flowsGenerated *expvar.Int // flows_generated_total

	// Latency counters: mean = sum/count; distributions come from the
	// bench suite, not the live endpoint.
	latencyMsSum *expvar.Float // latency_ms_sum
	latencyCount *expvar.Int   // latency_ms_count

	// Admission-wait histograms keyed by class (mean = sum/count per
	// class): time from request acceptance to the step boundary where
	// its flows joined the in-flight batch.
	admitWaitMsSum *expvar.Map // admission_wait_ms_sum
	admitWaitCount *expvar.Map // admission_wait_ms_count

	writeErrors *expvar.Int // response_write_errors_total
}

// newMetrics wires the counter set plus live gauges over the gate and
// the engine. Batch occupancy is exported as a count/sum pair straight
// from the engine's step counters: batch_occupancy_sum /
// batch_occupancy_count is the mean number of flows sharing each
// denoiser forward.
func newMetrics(classes []string, gateDepth func() int, engineStats func() core.EngineStats) *metrics {
	m := &metrics{vars: new(expvar.Map).Init()}
	newInt := func(name string) *expvar.Int {
		v := new(expvar.Int)
		m.vars.Set(name, v)
		return v
	}
	m.accepted = newInt("accepted_total")
	m.rejected = newInt("rejected_total")
	m.drainRejected = newInt("drain_rejected_total")
	m.badRequest = newInt("bad_request_total")
	m.expired = newInt("deadline_expired_total")
	m.completed = newInt("completed_total")
	m.failed = newInt("failed_total")
	m.flowsGenerated = newInt("flows_generated_total")
	m.latencyCount = newInt("latency_ms_count")
	m.writeErrors = newInt("response_write_errors_total")
	m.latencyMsSum = new(expvar.Float)
	m.vars.Set("latency_ms_sum", m.latencyMsSum)

	m.admitWaitMsSum = new(expvar.Map).Init()
	m.admitWaitCount = new(expvar.Map).Init()
	// Pre-seed every class so scrapes see zeroed series from the start.
	for _, c := range classes {
		m.admitWaitMsSum.AddFloat(c, 0)
		m.admitWaitCount.Add(c, 0)
	}
	m.vars.Set("admission_wait_ms_sum", m.admitWaitMsSum)
	m.vars.Set("admission_wait_ms_count", m.admitWaitCount)

	m.vars.Set("inflight_requests", expvar.Func(func() any { return gateDepth() }))
	m.vars.Set("batch_occupancy_count", expvar.Func(func() any { return engineStats().Steps }))
	m.vars.Set("batch_occupancy_sum", expvar.Func(func() any { return engineStats().FlowSteps }))
	m.vars.Set("flows_admitted_total", expvar.Func(func() any { return engineStats().FlowsAdmitted }))
	m.vars.Set("flows_retired_total", expvar.Func(func() any { return engineStats().FlowsRetired }))
	return m
}

// observeAdmissionWait records one request's wait between acceptance
// and the step boundary that admitted its flows.
func (m *metrics) observeAdmissionWait(class string, d time.Duration) {
	m.admitWaitMsSum.AddFloat(class, float64(d)/float64(time.Millisecond))
	m.admitWaitCount.Add(class, 1)
}
