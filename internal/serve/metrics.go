package serve

import (
	"expvar"
	"sync/atomic"
)

// metrics is the server's expvar-backed instrumentation. Every counter
// lives in vars, the map /metrics serializes; PublishExpvar can mirror
// the same map into the process-wide expvar registry.
type metrics struct {
	vars *expvar.Map

	// Admission and completion counters.
	accepted  *expvar.Int // accepted_total
	rejected  *expvar.Int // rejected_total (429 backpressure)
	expired   *expvar.Int // deadline_expired_total (504)
	completed *expvar.Int // completed_total
	failed    *expvar.Int // failed_total (500)

	// Coalescer and generation counters.
	batches        *expvar.Int // batches_total
	batchFlows     *expvar.Int // batch_flows_total
	flowsGenerated *expvar.Int // flows_generated_total

	// Latency counters: mean = sum/count; distributions come from the
	// bench suite, not the live endpoint.
	latencyMsSum *expvar.Float // latency_ms_sum
	latencyCount *expvar.Int   // latency_ms_count

	writeErrors *expvar.Int // response_write_errors_total

	// batchMax tracks the largest coalesced batch (flows) seen; kept
	// as a CAS-able atomic and exposed through an expvar.Func gauge.
	batchMax atomic.Int64
}

func newMetrics(queueDepth func() int) *metrics {
	m := &metrics{vars: new(expvar.Map).Init()}
	newInt := func(name string) *expvar.Int {
		v := new(expvar.Int)
		m.vars.Set(name, v)
		return v
	}
	m.accepted = newInt("accepted_total")
	m.rejected = newInt("rejected_total")
	m.expired = newInt("deadline_expired_total")
	m.completed = newInt("completed_total")
	m.failed = newInt("failed_total")
	m.batches = newInt("batches_total")
	m.batchFlows = newInt("batch_flows_total")
	m.flowsGenerated = newInt("flows_generated_total")
	m.latencyCount = newInt("latency_ms_count")
	m.writeErrors = newInt("response_write_errors_total")
	m.latencyMsSum = new(expvar.Float)
	m.vars.Set("latency_ms_sum", m.latencyMsSum)
	m.vars.Set("queue_depth", expvar.Func(func() any { return queueDepth() }))
	m.vars.Set("batch_size_max", expvar.Func(func() any { return m.batchMax.Load() }))
	return m
}

// observeBatch records one dispatched batch.
func (m *metrics) observeBatch(b *batch) {
	m.batches.Add(1)
	m.batchFlows.Add(int64(b.flows))
	for {
		cur := m.batchMax.Load()
		if int64(b.flows) <= cur || m.batchMax.CompareAndSwap(cur, int64(b.flows)) {
			return
		}
	}
}
