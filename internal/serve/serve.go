// Package serve implements traced's backpressured HTTP trace-generation
// service over a saved core.Synthesizer checkpoint, with continuous
// batching.
//
// The request path is deliberately short:
//
//	handler → admission gate → continuous-batching engine
//
// The gate bounds the requests concurrently inside the service; beyond
// it the handler answers 429 with a Retry-After header instead of
// letting latency grow without bound. Admitted requests feed a
// core.Engine, whose single step loop owns the in-flight denoising
// batch: new requests join at the next timestep boundary (no closed
// batches, no head-of-line blocking behind whole generations) and
// requests whose deadline expires — queued or mid-denoise — retire
// their flows at the next boundary and are answered 504, so abandoned
// work stops consuming denoiser forwards.
//
// Determinism across the network boundary: a request with an explicit
// seed expands to per-flow seeds via core.DeriveFlowSeeds, and each
// flow's bytes are a pure function of its own seed (the scheduler's
// bit-identity contract). Batch composition therefore never leaks into
// the output — a seeded request returns bit-identical pcap bytes on
// every replica serving the same checkpoint, no matter which other
// requests shared its denoiser forwards or when it joined the batch.
//
// Shutdown drains: the gate closes to new admissions, in-flight
// requests run to completion and their handlers write full responses
// before the HTTP server stops accepting.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/pcap"
)

// Engine is the slice of core.Engine the service needs: a continuous
// generation engine whose Generate blocks until the request's flows
// complete (or its context expires), calling onAdmit when the flows
// enter the denoising batch. Implementations must make each flow a
// pure function of its seed (batch-composition independent) and be
// safe for concurrent Generate calls.
type Engine interface {
	Classes() []string
	Generate(ctx context.Context, class string, flowSeeds []uint64, onAdmit func()) (*core.GenerateResult, error)
	Stats() core.EngineStats
}

// Config parameterizes a Server. Zero values take the defaults noted
// on each field.
type Config struct {
	// QueueDepth bounds the requests concurrently inside the service
	// (waiting for admission or mid-generation); requests beyond it get
	// 429 (default 64).
	QueueDepth int
	// MaxInFlight caps the flows simultaneously in the denoising batch
	// (default 16). Larger values raise throughput under load; smaller
	// ones bound per-step latency.
	MaxInFlight int
	// PostWorkers is the number of post-processing workers behind the
	// step loop (default 2).
	PostWorkers int
	// MaxStepRows caps the rows per denoiser forward (default 8;
	// negative for unlimited). Stepping the requests with the least
	// remaining work first keeps a fresh request's time-to-first-result
	// small even when the batch is full of bulk work; see
	// core.EngineConfig.MaxStepRows.
	MaxStepRows int
	// RequestTimeout is the per-request deadline ceiling; a request's
	// timeout_ms may shorten it but never extend it (default 60s).
	RequestTimeout time.Duration
	// MaxFlowsPerRequest bounds count per request (default 64).
	MaxFlowsPerRequest int
	// SeedBase seeds the derivation chain for requests that do not
	// carry an explicit seed (default 1). Replicas that must differ on
	// unseeded traffic should differ here.
	SeedBase uint64
	// CheckpointDigest identifies the loaded checkpoint (conventionally
	// "sha256:<hex>"). It is reported on /readyz?verbose=1 and stamped
	// on every generate response as X-Traced-Checkpoint, so a routing
	// tier can derive content-addressed cache keys and validate that a
	// replica serves the checkpoint the cache entry was built from.
	// Optional; empty means "unidentified".
	CheckpointDigest string
	// Precision is the inference weight precision the loaded synthesizer
	// runs at ("fp32" or "int8", default "fp32"). Unlike the DDIM budget
	// it is fixed at load time (traced quantizes right after Load), so it
	// is plain config rather than a live engine query. It is reported on
	// /readyz?verbose=1 and stamped on every generate response as
	// X-Traced-Precision so a routing tier never mixes int8 and fp32
	// bytes under one cache key.
	Precision string
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.PostWorkers <= 0 {
		c.PostWorkers = 2
	}
	if c.MaxStepRows == 0 {
		c.MaxStepRows = 8
	}
	if c.MaxStepRows < 0 {
		c.MaxStepRows = 0 // explicit "unlimited"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxFlowsPerRequest <= 0 {
		c.MaxFlowsPerRequest = 64
	}
	if c.Precision == "" {
		c.Precision = "fp32"
	}
	return c
}

// Server is the trace-generation service.
type Server struct {
	eng Engine
	// ownedEngine is non-nil when New built the engine itself; Shutdown
	// closes it after the drain.
	ownedEngine *core.Engine
	cfg         Config
	classes     map[string]bool

	gate *gate
	met  *metrics

	// ddimSteps reports the engine's live DDIM budget for readiness
	// payloads and response headers; zero when the engine doesn't
	// expose one (plain Engine implementations).
	ddimSteps func() int
	// start anchors the uptime reported on /readyz?verbose=1.
	start time.Time

	draining atomic.Bool
	seedCtr  atomic.Uint64
	inflight sync.WaitGroup

	httpSrv *http.Server
}

// New builds a Server over a fine-tuned synthesizer, starting a
// continuous-batching core.Engine sized by cfg. Callers must
// eventually Shutdown, which drains and closes the engine.
func New(synth *core.Synthesizer, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	eng, err := core.NewEngine(synth, core.EngineConfig{
		MaxInFlight: cfg.MaxInFlight,
		PostWorkers: cfg.PostWorkers,
		MaxStepRows: cfg.MaxStepRows,
	})
	if err != nil {
		return nil, err
	}
	s := NewWithEngine(eng, cfg)
	s.ownedEngine = eng
	return s, nil
}

// NewWithEngine builds a Server over a caller-owned engine; Shutdown
// drains the server but leaves the engine running (the caller closes
// it).
func NewWithEngine(eng Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:     eng,
		cfg:     cfg,
		classes: map[string]bool{},
		gate:    newGate(cfg.QueueDepth),
		start:   time.Now(),
	}
	if d, ok := eng.(interface{ DDIMSteps() int }); ok {
		s.ddimSteps = d.DDIMSteps
	} else {
		s.ddimSteps = func() int { return 0 }
	}
	for _, c := range eng.Classes() {
		s.classes[c] = true
	}
	s.met = newMetrics(eng.Classes(), s.gate.depth, eng.Stats)
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Handler returns the service mux: POST /v1/generate plus /healthz,
// /readyz and the expvar-backed /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Serve accepts connections on ln until Shutdown. A clean shutdown
// returns nil.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// PublishExpvar registers the server's metrics map in the process-wide
// expvar registry under name. Call at most once per name per process
// (expvar forbids duplicate registration).
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, s.met.vars)
}

// Shutdown drains the service: new requests are refused, requests
// already inside the gate run to completion (or expiry), their
// handlers finish writing, the engine (when owned) closes, then the
// HTTP server (if Serve was used) stops. It returns ctx's error if
// draining outlives the context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.gate.close()
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.ownedEngine != nil {
		s.ownedEngine.Close()
	}
	return s.httpSrv.Shutdown(ctx)
}

// generateRequest is the POST /v1/generate body.
type generateRequest struct {
	Class string `json:"class"`
	// Count is the number of flows to synthesize (default 1).
	Count int `json:"count"`
	// Seed, when present, makes the response a pure function of
	// (checkpoint, class, count, seed): bit-identical on every replica.
	Seed *uint64 `json:"seed"`
	// Format selects the body encoding: "pcap" (default) or "csv"
	// (nprint bit matrices).
	Format string `json:"format"`
	// TimeoutMs shortens the server's per-request deadline.
	TimeoutMs int `json:"timeout_ms"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.met.badRequest.Add(1)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		// Same terminal outcome as the gateClosed branch below: the
		// request arrived inside the drain window. Without a counter
		// these rejections were invisible in /metrics, so a load
		// harness could never reconcile its observed 503s against the
		// server's accounting.
		s.met.drainRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	var gr generateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&gr); err != nil {
		s.met.badRequest.Add(1)
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if gr.Count == 0 {
		gr.Count = 1
	}
	if gr.Count < 0 || gr.Count > s.cfg.MaxFlowsPerRequest {
		s.met.badRequest.Add(1)
		http.Error(w, fmt.Sprintf("count must be in [1,%d]", s.cfg.MaxFlowsPerRequest), http.StatusBadRequest)
		return
	}
	if !s.classes[gr.Class] {
		s.met.badRequest.Add(1)
		http.Error(w, fmt.Sprintf("unknown class %q", gr.Class), http.StatusBadRequest)
		return
	}
	format := gr.Format
	if format == "" {
		format = "pcap"
	}
	if format != "pcap" && format != "csv" {
		s.met.badRequest.Add(1)
		http.Error(w, `format must be "pcap" or "csv"`, http.StatusBadRequest)
		return
	}

	seed := s.deriveSeed(gr.Seed)
	timeout := s.cfg.RequestTimeout
	if gr.TimeoutMs > 0 {
		if d := time.Duration(gr.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	switch s.gate.acquire() {
	case gateOK:
		s.met.accepted.Add(1)
	case gateFull:
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "service at capacity", http.StatusTooManyRequests)
		return
	case gateClosed:
		s.met.drainRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}

	start := time.Now()
	class := gr.Class
	// onAdmit fires on the engine's step loop the moment the request's
	// flows join the in-flight batch; the elapsed time is exactly the
	// admission wait (gate + engine FIFO).
	onAdmit := func() { s.met.observeAdmissionWait(class, time.Since(start)) }
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer s.gate.release()
	// Generate is called synchronously: the engine itself answers an
	// expired request at the next step boundary (it never parks a dead
	// waiter), so a watcher goroutine would only add scheduling hops to
	// every request's latency to shave ~one boundary off the 504 path.
	res, err := s.eng.Generate(ctx, class, core.DeriveFlowSeeds(seed, gr.Count), onAdmit)
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.met.expired.Add(1)
		http.Error(w, "deadline exceeded before generation completed", http.StatusGatewayTimeout)
	case err != nil:
		s.met.failed.Add(1)
		http.Error(w, "generation failed: "+err.Error(), http.StatusInternalServerError)
	default:
		s.met.flowsGenerated.Add(int64(len(res.Flows)))
		s.met.latencyMsSum.Add(float64(time.Since(start)) / float64(time.Millisecond))
		s.met.latencyCount.Add(1)
		s.writeBody(w, seed, format, res)
		s.met.completed.Add(1)
	}
}

// deriveSeed picks the request's root seed: the client's, or the next
// element of the server's derivation chain for unseeded requests.
func (s *Server) deriveSeed(client *uint64) uint64 {
	if client != nil {
		return *client
	}
	// SplitMix64-style increment keeps successive unseeded requests on
	// unrelated streams (same mixing discipline as stats.NewRNG).
	return s.cfg.SeedBase ^ (s.seedCtr.Add(1) * 0x9e3779b97f4a7c15)
}

// writeBody encodes the generated flows and streams them out. The body
// is buffered first so a failed generation can never leave a
// half-written success response.
func (s *Server) writeBody(w http.ResponseWriter, seed uint64, format string, res *core.GenerateResult) {
	var buf bytes.Buffer
	switch format {
	case "csv":
		for _, m := range res.Matrices {
			if err := nprint.WriteCSV(&buf, m); err != nil {
				http.Error(w, "encoding csv: "+err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "text/csv")
	default:
		pw, err := pcap.NewWriter(&buf, pcap.LinkTypeEthernet)
		if err != nil {
			http.Error(w, "encoding pcap: "+err.Error(), http.StatusInternalServerError)
			return
		}
		for _, fl := range res.Flows {
			for _, p := range fl.Packets {
				if err := pw.WritePacket(p.Timestamp, p.Data); err != nil {
					http.Error(w, "encoding pcap: "+err.Error(), http.StatusInternalServerError)
					return
				}
			}
		}
		w.Header().Set("Content-Type", "application/vnd.tcpdump.pcap")
	}
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("X-Traced-Seed", strconv.FormatUint(seed, 10))
	w.Header().Set("X-Traced-Flows", strconv.Itoa(len(res.Flows)))
	// Cache-validation headers: a routing tier keys its response cache
	// on (digest, class, count, seed, DDIM steps, precision, format);
	// echoing the replica's digest, DDIM budget and precision lets it
	// assert the entry it is about to store matches the configuration
	// that produced the bytes.
	if s.cfg.CheckpointDigest != "" {
		w.Header().Set("X-Traced-Checkpoint", s.cfg.CheckpointDigest)
	}
	w.Header().Set("X-Traced-DDIM-Steps", strconv.Itoa(s.ddimSteps()))
	w.Header().Set("X-Traced-Precision", s.cfg.Precision)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The client went away mid-response; nothing to send it, but
		// the failure is visible in /metrics.
		s.met.writeErrors.Add(1)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeText(w, http.StatusOK, "ok")
}

// ReadyStatus is the JSON body of GET /readyz?verbose=1: everything a
// routing tier needs to score a replica (queue depth, in-flight flows)
// and to validate cached responses against it (checkpoint digest, DDIM
// budget) without scraping expvar. The bare GET /readyz keeps the
// text/plain 200-or-503 contract existing probes rely on.
type ReadyStatus struct {
	Status           string   `json:"status"`
	QueueDepth       int      `json:"queue_depth"`
	InFlightFlows    int64    `json:"in_flight_flows"`
	CheckpointDigest string   `json:"checkpoint_digest,omitempty"`
	DDIMSteps        int      `json:"ddim_steps"`
	Precision        string   `json:"precision"`
	Classes          []string `json:"classes,omitempty"`
	UptimeMs         int64    `json:"uptime_ms"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("verbose") != "1" {
		if s.draining.Load() {
			s.writeText(w, http.StatusServiceUnavailable, "draining")
			return
		}
		s.writeText(w, http.StatusOK, "ready")
		return
	}
	status, code := "ready", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	st := s.eng.Stats()
	payload := ReadyStatus{
		Status:           status,
		QueueDepth:       s.gate.depth(),
		InFlightFlows:    int64(st.FlowsAdmitted) - int64(st.FlowsCompleted) - int64(st.FlowsRetired),
		CheckpointDigest: s.cfg.CheckpointDigest,
		DDIMSteps:        s.ddimSteps(),
		Precision:        s.cfg.Precision,
		Classes:          s.eng.Classes(),
		UptimeMs:         time.Since(s.start).Milliseconds(),
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		s.met.writeErrors.Add(1)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write([]byte(s.met.vars.String())); err != nil {
		s.met.writeErrors.Add(1)
	}
}

// writeText writes a small plain-text response, routing write failures
// to the metrics the way every handler here does.
func (s *Server) writeText(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	if _, err := w.Write([]byte(body + "\n")); err != nil {
		s.met.writeErrors.Add(1)
	}
}
