// Package serve implements traced's batching, backpressured HTTP
// trace-generation service over a saved core.Synthesizer checkpoint.
//
// The request path is a short pipeline:
//
//	handler → bounded admission queue → batch coalescer → worker pool
//
// The admission queue is a fixed-capacity buffer; when it is full the
// handler answers 429 with a Retry-After header instead of letting
// latency grow without bound. The coalescer merges concurrent
// same-class requests into single diffusion sampling calls, sized by
// worker availability: while every worker is busy the next batch keeps
// absorbing queued requests up to MaxBatch flows. Each request carries
// a deadline; requests that expire while queued are dropped by the
// pipeline and answered 504 by their handler.
//
// Determinism across the network boundary: a request with an explicit
// seed expands to per-flow seeds via core.DeriveFlowSeeds, and each
// flow's bytes are a pure function of its own seed (see
// diffusion.SampleConfig.FlowSeeds). Batch composition therefore never
// leaks into the output — a seeded request returns bit-identical pcap
// bytes on every replica serving the same checkpoint, no matter which
// other requests it was coalesced with.
//
// Shutdown drains: the queue closes to new admissions, in-flight
// batches run to completion and their handlers write full responses
// before the HTTP server stops accepting.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/pcap"
)

// Generator is the slice of core.Synthesizer the service needs. The
// implementation must be safe for concurrent use and must make each
// flow a pure function of its seed (batch-composition independent).
type Generator interface {
	Classes() []string
	GenerateWithFlowSeeds(class string, flowSeeds []uint64) (*core.GenerateResult, error)
}

// Config parameterizes a Server. Zero values take the defaults noted
// on each field.
type Config struct {
	// QueueDepth bounds the admission queue; requests beyond it get
	// 429 (default 64).
	QueueDepth int
	// MaxBatch caps the flows merged into one sampling call
	// (default 8). A single request larger than MaxBatch still runs,
	// as a batch of its own.
	MaxBatch int
	// Workers is the number of concurrent generation workers
	// (default 2; sampling is CPU-bound and parallel internally).
	Workers int
	// RequestTimeout is the per-request deadline ceiling; a request's
	// timeout_ms may shorten it but never extend it (default 60s).
	RequestTimeout time.Duration
	// MaxFlowsPerRequest bounds count per request (default 64).
	MaxFlowsPerRequest int
	// SeedBase seeds the derivation chain for requests that do not
	// carry an explicit seed (default 1). Replicas that must differ on
	// unseeded traffic should differ here.
	SeedBase uint64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxFlowsPerRequest <= 0 {
		c.MaxFlowsPerRequest = 64
	}
	return c
}

// result is what the pipeline delivers back to a waiting handler.
type result struct {
	flows    []*flow.Flow
	matrices []*nprint.Matrix
	err      error
}

// request is one admitted generation request travelling the pipeline.
type request struct {
	class     string
	count     int
	seed      uint64
	flowSeeds []uint64
	ctx       context.Context
	// done is buffered so the pipeline never blocks on a handler that
	// already gave up (deadline expiry).
	done chan result
}

// Server is the trace-generation service.
type Server struct {
	gen     Generator
	cfg     Config
	classes map[string]bool

	q       *queue
	batches chan *batch
	met     *metrics

	draining atomic.Bool
	seedCtr  atomic.Uint64
	pipeline sync.WaitGroup

	httpSrv *http.Server
}

// New builds a Server over a trained generator and starts its
// coalescer and worker pool. Callers must eventually Shutdown.
func New(gen Generator, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		gen:     gen,
		cfg:     cfg,
		classes: map[string]bool{},
		q:       newQueue(cfg.QueueDepth),
		// Unbuffered on purpose: the coalescer blocks here while all
		// workers are busy, which is exactly the window in which the
		// next batch keeps coalescing queued requests.
		batches: make(chan *batch),
	}
	for _, c := range gen.Classes() {
		s.classes[c] = true
	}
	s.met = newMetrics(s.q.depth)
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}

	s.pipeline.Add(1)
	go func() {
		defer s.pipeline.Done()
		s.coalesceLoop()
	}()
	for i := 0; i < cfg.Workers; i++ {
		s.pipeline.Add(1)
		go func() {
			defer s.pipeline.Done()
			s.workerLoop()
		}()
	}
	return s
}

// Handler returns the service mux: POST /v1/generate plus /healthz,
// /readyz and the expvar-backed /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Serve accepts connections on ln until Shutdown. A clean shutdown
// returns nil.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// PublishExpvar registers the server's metrics map in the process-wide
// expvar registry under name. Call at most once per name per process
// (expvar forbids duplicate registration).
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, s.met.vars)
}

// Shutdown drains the service: new requests are refused, queued and
// in-flight batches run to completion, their handlers finish writing,
// then the HTTP server (if Serve was used) stops. It returns ctx's
// error if draining outlives the context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.q.close()
	drained := make(chan struct{})
	go func() {
		s.pipeline.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	return s.httpSrv.Shutdown(ctx)
}

// generateRequest is the POST /v1/generate body.
type generateRequest struct {
	Class string `json:"class"`
	// Count is the number of flows to synthesize (default 1).
	Count int `json:"count"`
	// Seed, when present, makes the response a pure function of
	// (checkpoint, class, count, seed): bit-identical on every replica.
	Seed *uint64 `json:"seed"`
	// Format selects the body encoding: "pcap" (default) or "csv"
	// (nprint bit matrices).
	Format string `json:"format"`
	// TimeoutMs shortens the server's per-request deadline.
	TimeoutMs int `json:"timeout_ms"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	var gr generateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&gr); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if gr.Count == 0 {
		gr.Count = 1
	}
	if gr.Count < 0 || gr.Count > s.cfg.MaxFlowsPerRequest {
		http.Error(w, fmt.Sprintf("count must be in [1,%d]", s.cfg.MaxFlowsPerRequest), http.StatusBadRequest)
		return
	}
	if !s.classes[gr.Class] {
		http.Error(w, fmt.Sprintf("unknown class %q", gr.Class), http.StatusBadRequest)
		return
	}
	format := gr.Format
	if format == "" {
		format = "pcap"
	}
	if format != "pcap" && format != "csv" {
		http.Error(w, `format must be "pcap" or "csv"`, http.StatusBadRequest)
		return
	}

	seed := s.deriveSeed(gr.Seed)
	timeout := s.cfg.RequestTimeout
	if gr.TimeoutMs > 0 {
		if d := time.Duration(gr.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	req := &request{
		class:     gr.Class,
		count:     gr.Count,
		seed:      seed,
		flowSeeds: core.DeriveFlowSeeds(seed, gr.Count),
		ctx:       ctx,
		done:      make(chan result, 1),
	}
	start := time.Now()
	switch s.q.tryPush(req) {
	case pushOK:
		s.met.accepted.Add(1)
	case pushFull:
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "admission queue full", http.StatusTooManyRequests)
		return
	case pushClosed:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}

	select {
	case res := <-req.done:
		if res.err != nil {
			s.met.failed.Add(1)
			http.Error(w, "generation failed: "+res.err.Error(), http.StatusInternalServerError)
			return
		}
		s.met.latencyMsSum.Add(float64(time.Since(start)) / float64(time.Millisecond))
		s.met.latencyCount.Add(1)
		s.writeBody(w, req, format, res)
		s.met.completed.Add(1)
	case <-ctx.Done():
		s.met.expired.Add(1)
		http.Error(w, "deadline exceeded before generation completed", http.StatusGatewayTimeout)
	}
}

// deriveSeed picks the request's root seed: the client's, or the next
// element of the server's derivation chain for unseeded requests.
func (s *Server) deriveSeed(client *uint64) uint64 {
	if client != nil {
		return *client
	}
	// SplitMix64-style increment keeps successive unseeded requests on
	// unrelated streams (same mixing discipline as stats.NewRNG).
	return s.cfg.SeedBase ^ (s.seedCtr.Add(1) * 0x9e3779b97f4a7c15)
}

// writeBody encodes the generated flows and streams them out. The body
// is buffered first so a failed generation can never leave a
// half-written success response.
func (s *Server) writeBody(w http.ResponseWriter, req *request, format string, res result) {
	var buf bytes.Buffer
	switch format {
	case "csv":
		for _, m := range res.matrices {
			if err := nprint.WriteCSV(&buf, m); err != nil {
				http.Error(w, "encoding csv: "+err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "text/csv")
	default:
		pw, err := pcap.NewWriter(&buf, pcap.LinkTypeEthernet)
		if err != nil {
			http.Error(w, "encoding pcap: "+err.Error(), http.StatusInternalServerError)
			return
		}
		for _, fl := range res.flows {
			for _, p := range fl.Packets {
				if err := pw.WritePacket(p.Timestamp, p.Data); err != nil {
					http.Error(w, "encoding pcap: "+err.Error(), http.StatusInternalServerError)
					return
				}
			}
		}
		w.Header().Set("Content-Type", "application/vnd.tcpdump.pcap")
	}
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("X-Traced-Seed", strconv.FormatUint(req.seed, 10))
	w.Header().Set("X-Traced-Flows", strconv.Itoa(len(res.flows)))
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The client went away mid-response; nothing to send it, but
		// the failure is visible in /metrics.
		s.met.writeErrors.Add(1)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeText(w, http.StatusOK, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeText(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.writeText(w, http.StatusOK, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write([]byte(s.met.vars.String())); err != nil {
		s.met.writeErrors.Add(1)
	}
}

// writeText writes a small plain-text response, routing write failures
// to the metrics the way every handler here does.
func (s *Server) writeText(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	if _, err := w.Write([]byte(body + "\n")); err != nil {
		s.met.writeErrors.Add(1)
	}
}
