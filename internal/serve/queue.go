package serve

import "sync"

// pushOutcome is the admission decision for one request.
type pushOutcome int

const (
	// pushOK: admitted; the pipeline will answer the request.
	pushOK pushOutcome = iota
	// pushFull: the bounded queue is at capacity — backpressure (429).
	pushFull
	// pushClosed: the server is draining — no new admissions (503).
	pushClosed
)

// queue is the bounded admission queue. It is a buffered channel plus
// the mutex that makes close-versus-push safe: tryPush can never send
// on a closed channel, and close is idempotent.
type queue struct {
	mu     sync.Mutex
	ch     chan *request
	closed bool // guarded by mu
}

func newQueue(depth int) *queue {
	return &queue{ch: make(chan *request, depth)}
}

// tryPush admits req if there is room, without ever blocking the
// handler: a full queue is an immediate backpressure signal, not a
// wait.
func (q *queue) tryPush(req *request) pushOutcome {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return pushClosed
	}
	select {
	case q.ch <- req:
		return pushOK
	default:
		return pushFull
	}
}

// close stops admissions. Requests already buffered stay queued for
// the coalescer to drain.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// depth reports the number of queued requests (the queue_depth gauge).
func (q *queue) depth() int { return len(q.ch) }
