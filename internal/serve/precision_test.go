package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestPrecisionAdvertised pins the precision surfaces a routing tier
// keys on: the X-Traced-Precision response header and the
// /readyz?verbose=1 field must both carry the configured precision,
// and an unset Config.Precision must default to "fp32" (never empty —
// an empty header would collide int8 and fp32 cache entries).
func TestPrecisionAdvertised(t *testing.T) {
	for _, tc := range []struct {
		cfg  string
		want string
	}{
		{cfg: "", want: "fp32"},
		{cfg: "int8", want: "int8"},
	} {
		eng := &fakeEngine{classes: []string{"amazon"}}
		s := NewWithEngine(eng, Config{Precision: tc.cfg, CheckpointDigest: "sha256:ab"})
		ts := httptest.NewServer(s.Handler())
		func() {
			defer ts.Close()
			defer shutdownServer(t, s)

			code, _, hdr := post(t, ts.URL, `{"class":"amazon","count":1,"seed":9}`)
			if code != http.StatusOK {
				t.Fatalf("cfg %q: generate status %d", tc.cfg, code)
			}
			if got := hdr.Get("X-Traced-Precision"); got != tc.want {
				t.Fatalf("cfg %q: X-Traced-Precision = %q, want %q", tc.cfg, got, tc.want)
			}

			resp, err := http.Get(ts.URL + "/readyz?verbose=1")
			if err != nil {
				t.Fatal(err)
			}
			var st ReadyStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			if cerr := resp.Body.Close(); cerr != nil {
				t.Error(cerr)
			}
			if err != nil {
				t.Fatal(err)
			}
			if st.Precision != tc.want {
				t.Fatalf("cfg %q: readyz precision = %q, want %q", tc.cfg, st.Precision, tc.want)
			}
		}()
	}
}
