package serve

// batch is a group of same-class requests executed as one sampling
// call. Flow seeds make each request's slice of the batch independent
// of its neighbours, so grouping is purely a throughput decision — and
// since the sampler runs one batched denoiser forward per timestep,
// every request merged here widens that forward's matrices instead of
// queuing another serial pass, which is where coalescing pays off.
type batch struct {
	class string
	reqs  []*request
	flows int
}

// coalesceLoop forms batches from the admission queue until the queue
// closes and drains. Dispatch over the unbuffered batches channel
// blocks while all workers are busy — exactly the window in which the
// queue accumulates requests for the next, larger batch. Requests
// whose deadline already expired are dropped here (their handlers have
// answered 504).
func (s *Server) coalesceLoop() {
	defer close(s.batches)
	var held *request
	for {
		first := held
		held = nil
		if first == nil {
			req, ok := <-s.q.ch
			if !ok {
				return
			}
			first = req
		}
		if first.ctx.Err() != nil {
			continue
		}
		b := &batch{class: first.class, reqs: []*request{first}, flows: first.count}
		qOpen := true
	merge:
		for b.flows < s.cfg.MaxBatch {
			select {
			case req, ok := <-s.q.ch:
				switch {
				case !ok:
					qOpen = false
					break merge
				case req.ctx.Err() != nil:
					// Expired while queued; handler already gave up.
				case req.class == b.class && b.flows+req.count <= s.cfg.MaxBatch:
					b.reqs = append(b.reqs, req)
					b.flows += req.count
				default:
					// Different class (or would overflow): the batch
					// closes and this request seeds the next one.
					held = req
					break merge
				}
			default:
				// Queue momentarily empty: ship what we have rather
				// than trade latency for batch size.
				break merge
			}
		}
		s.met.observeBatch(b)
		s.batches <- b
		if !qOpen {
			if held != nil && held.ctx.Err() == nil {
				hb := &batch{class: held.class, reqs: []*request{held}, flows: held.count}
				s.met.observeBatch(hb)
				s.batches <- hb
			}
			return
		}
	}
}

// workerLoop executes batches until the coalescer closes the channel
// at the end of drain.
func (s *Server) workerLoop() {
	for b := range s.batches {
		s.runBatch(b)
	}
}

// runBatch concatenates the batch's per-request flow seeds into one
// generation call and slices the results back out per request.
func (s *Server) runBatch(b *batch) {
	live := b.reqs[:0]
	for _, req := range b.reqs {
		if req.ctx.Err() == nil {
			live = append(live, req)
		}
	}
	if len(live) == 0 {
		return
	}
	seeds := make([]uint64, 0, b.flows)
	for _, req := range live {
		seeds = append(seeds, req.flowSeeds...)
	}
	res, err := s.gen.GenerateWithFlowSeeds(b.class, seeds)
	if err != nil {
		for _, req := range live {
			req.done <- result{err: err}
		}
		return
	}
	s.met.flowsGenerated.Add(int64(len(seeds)))
	off := 0
	for _, req := range live {
		req.done <- result{
			flows:    res.Flows[off : off+req.count],
			matrices: res.Matrices[off : off+req.count],
		}
		off += req.count
	}
}
