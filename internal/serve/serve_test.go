package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/pcap"
	"trafficdiff/internal/workload"
)

// fakeGen is a controllable Generator: an optional gate blocks each
// generation call until the test releases it, and every call's seed
// batch is recorded so tests can assert coalescing behaviour.
type fakeGen struct {
	classes  []string
	gate     chan struct{}
	delay    time.Duration
	inFlight atomic.Int64

	mu    sync.Mutex
	calls [][]uint64
}

func (g *fakeGen) Classes() []string { return append([]string(nil), g.classes...) }

func (g *fakeGen) GenerateWithFlowSeeds(class string, seeds []uint64) (*core.GenerateResult, error) {
	g.inFlight.Add(1)
	defer g.inFlight.Add(-1)
	if g.gate != nil {
		<-g.gate
	}
	if g.delay > 0 {
		time.Sleep(g.delay)
	}
	g.mu.Lock()
	g.calls = append(g.calls, append([]uint64(nil), seeds...))
	g.mu.Unlock()
	res := &core.GenerateResult{}
	for _, s := range seeds {
		data := make([]byte, 16)
		binary.BigEndian.PutUint64(data, s)
		res.Flows = append(res.Flows, &flow.Flow{
			Label:   class,
			Packets: []*packet.Packet{{Timestamp: time.Unix(0, 0).UTC(), Data: data}},
		})
		res.Matrices = append(res.Matrices, nprint.NewMatrix(1))
	}
	return res, nil
}

func (g *fakeGen) callSizes() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	sizes := make([]int, len(g.calls))
	for i, c := range g.calls {
		sizes[i] = len(c)
	}
	return sizes
}

// post fires one generate request and returns status, body and header.
func post(t *testing.T, url string, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// metricsSnapshot fetches and parses /metrics.
func metricsSnapshot(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestQueueTryPush(t *testing.T) {
	q := newQueue(1)
	ctx := context.Background()
	if got := q.tryPush(&request{ctx: ctx}); got != pushOK {
		t.Fatalf("first push = %v, want pushOK", got)
	}
	if got := q.tryPush(&request{ctx: ctx}); got != pushFull {
		t.Fatalf("push beyond capacity = %v, want pushFull", got)
	}
	q.close()
	q.close() // idempotent
	if got := q.tryPush(&request{ctx: ctx}); got != pushClosed {
		t.Fatalf("push after close = %v, want pushClosed", got)
	}
	if q.depth() != 1 {
		t.Fatalf("depth = %d, want 1 (buffered request survives close)", q.depth())
	}
}

// TestQueueFull429 drives the queue to capacity behind a blocked
// worker and checks that the overflow request is refused immediately
// with 429 + Retry-After while every admitted request still completes.
func TestQueueFull429(t *testing.T) {
	gate := make(chan struct{})
	gen := &fakeGen{classes: []string{"amazon"}, gate: gate}
	s := New(gen, Config{QueueDepth: 2, Workers: 1, MaxBatch: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)
	defer close(gate)

	type reply struct {
		code int
	}
	replies := make(chan reply, 16)
	launch := func() {
		go func() {
			code, _, _ := post(t, ts.URL, `{"class":"amazon"}`)
			replies <- reply{code}
		}()
	}
	// First request occupies the worker (blocked on the gate).
	launch()
	waitFor(t, "worker to pick up first request", func() bool { return gen.inFlight.Load() == 1 })
	// Second request is popped by the coalescer, which then blocks
	// dispatching it; the rest fill the bounded queue.
	launch()
	for i := 0; i < 2; i++ {
		launch()
	}
	waitFor(t, "queue to fill", func() bool { return s.q.depth() == 2 })

	// The queue is now full: the next request must bounce, not block.
	code, body, hdr := post(t, ts.URL, `{"class":"amazon"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d body %q, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	m := metricsSnapshot(t, ts.URL)
	if m["rejected_total"] < 1 {
		t.Fatalf("rejected_total = %v, want >= 1", m["rejected_total"])
	}

	// Release the pipeline: every admitted request completes.
	for i := 0; i < 4; i++ {
		gate <- struct{}{}
	}
	for i := 0; i < 4; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Fatalf("admitted request finished with %d, want 200", r.code)
		}
	}
}

// TestDeadlineExpiry checks that a request whose deadline passes while
// the pipeline is busy gets 504 and is dropped without a generation
// call.
func TestDeadlineExpiry(t *testing.T) {
	gate := make(chan struct{})
	gen := &fakeGen{classes: []string{"amazon"}, gate: gate}
	s := New(gen, Config{QueueDepth: 8, Workers: 1, MaxBatch: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)
	defer close(gate)

	blocked := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts.URL, `{"class":"amazon"}`)
		blocked <- code
	}()
	waitFor(t, "worker to block", func() bool { return gen.inFlight.Load() == 1 })

	code, body, _ := post(t, ts.URL, `{"class":"amazon","count":2,"timeout_ms":50}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d body %q, want 504", code, body)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["deadline_expired_total"] != 1 {
		t.Fatalf("deadline_expired_total = %v, want 1", m["deadline_expired_total"])
	}

	gate <- struct{}{} // release the blocker
	if c := <-blocked; c != http.StatusOK {
		t.Fatalf("blocker finished with %d", c)
	}
	shutdownServer(t, s)
	// Only the blocker generated; the expired request's seeds never
	// reached the generator.
	if sizes := gen.callSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("generation calls = %v, want exactly [1]", sizes)
	}
}

// TestBatchCoalescing stalls the single worker so four same-class
// requests accumulate, then checks they execute as one merged
// sampling call.
func TestBatchCoalescing(t *testing.T) {
	gate := make(chan struct{})
	gen := &fakeGen{classes: []string{"amazon"}, gate: gate}
	s := New(gen, Config{QueueDepth: 16, Workers: 1, MaxBatch: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)
	defer close(gate)

	replies := make(chan int, 8)
	launch := func(body string) {
		go func() {
			code, _, _ := post(t, ts.URL, body)
			replies <- code
		}()
	}
	// Blocker 1 occupies the worker; blocker 2 occupies the
	// coalescer's dispatch slot. Only then do the next four requests
	// pile up in the queue together.
	launch(`{"class":"amazon"}`)
	waitFor(t, "worker busy", func() bool { return gen.inFlight.Load() == 1 })
	launch(`{"class":"amazon"}`)
	waitFor(t, "coalescer holding a batch", func() bool {
		return metricsSnapshot(t, ts.URL)["batches_total"] == 2
	})
	for i := 0; i < 4; i++ {
		launch(`{"class":"amazon"}`)
	}
	waitFor(t, "four requests queued", func() bool { return s.q.depth() == 4 })

	gate <- struct{}{} // finish blocker 1; worker takes blocker 2
	waitFor(t, "blocker 2 generating", func() bool { return gen.inFlight.Load() == 1 })
	gate <- struct{}{} // finish blocker 2; worker takes the merged batch
	gate <- struct{}{} // finish the merged batch
	for i := 0; i < 6; i++ {
		if code := <-replies; code != http.StatusOK {
			t.Fatalf("request finished with %d", code)
		}
	}

	sizes := gen.callSizes()
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 1 || sizes[2] != 4 {
		t.Fatalf("generation call sizes = %v, want [1 1 4] (four requests coalesced)", sizes)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["batch_size_max"] != 4 {
		t.Fatalf("batch_size_max = %v, want 4", m["batch_size_max"])
	}
	if m["batches_total"] != 3 {
		t.Fatalf("batches_total = %v, want 3", m["batches_total"])
	}
}

// TestDrainOnShutdown admits a burst of slow requests, then checks
// Shutdown completes them all before returning and that the server
// refuses new work while draining.
func TestDrainOnShutdown(t *testing.T) {
	gen := &fakeGen{classes: []string{"amazon"}, delay: 30 * time.Millisecond}
	s := New(gen, Config{QueueDepth: 16, Workers: 2, MaxBatch: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 6
	replies := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			code, _, _ := post(t, ts.URL, `{"class":"amazon"}`)
			replies <- code
		}()
	}
	waitFor(t, "all requests admitted", func() bool {
		return metricsSnapshot(t, ts.URL)["accepted_total"] == n
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Every admitted request completed during the drain.
	for i := 0; i < n; i++ {
		if code := <-replies; code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d during drain", code)
		}
	}
	// New work is refused while draining.
	code, _, hdr := post(t, ts.URL, `{"class":"amazon"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	if rc, _, _ := get(t, ts.URL+"/readyz"); rc != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rc)
	}
	if rc, _, _ := get(t, ts.URL+"/healthz"); rc != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (process is alive)", rc)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["completed_total"] != n {
		t.Fatalf("completed_total = %v, want %d", m["completed_total"], n)
	}
	if m["latency_ms_count"] != n || m["latency_ms_sum"] <= 0 {
		t.Fatalf("latency counters = %v/%v, want count %d with positive sum",
			m["latency_ms_count"], m["latency_ms_sum"], n)
	}
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// TestRequestValidation covers the 4xx surface.
func TestRequestValidation(t *testing.T) {
	gen := &fakeGen{classes: []string{"amazon"}}
	s := New(gen, Config{MaxFlowsPerRequest: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)

	cases := []struct {
		body string
		want int
	}{
		{`{"class":"nope"}`, http.StatusBadRequest},
		{`{"class":"amazon","count":5}`, http.StatusBadRequest},
		{`{"class":"amazon","count":-1}`, http.StatusBadRequest},
		{`{"class":"amazon","format":"exe"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, _, _ := post(t, ts.URL, c.body); code != c.want {
			t.Errorf("body %q: status %d, want %d", c.body, code, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Error(cerr)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/generate = %d, want 405", resp.StatusCode)
	}
}

// trainSynth fine-tunes a synthesizer on the standard test workload.
func trainSynth(cfg core.Config, classes []string) (*core.Synthesizer, error) {
	s, err := core.New(cfg, classes)
	if err != nil {
		return nil, err
	}
	ds, err := workload.Generate(workload.Config{
		Seed: 11, FlowsPerClass: 4, Only: classes, MaxPacketsPerFlow: cfg.Rows,
	})
	if err != nil {
		return nil, err
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	if _, err := s.FineTune(byClass); err != nil {
		return nil, err
	}
	return s, nil
}

// trainedServer builds a server over a real (tiny) synthesizer; shared
// across the contract tests below because training dominates runtime.
var (
	realOnce sync.Once
	realGen  *core.Synthesizer
	realErr  error
)

func realSynth(t *testing.T) *core.Synthesizer {
	t.Helper()
	realOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Rows = 16
		cfg.DownH = 2
		cfg.DownW = 16
		cfg.Hidden = 48
		cfg.TimeSteps = 30
		cfg.BaseSteps = 25
		cfg.FineTuneSteps = 35
		cfg.Batch = 8
		cfg.DDIMSteps = 6
		realGen, realErr = trainSynth(cfg, []string{"amazon", "teams"})
	})
	if realErr != nil {
		t.Fatal(realErr)
	}
	return realGen
}

// TestServeRealSynthesizerContract is the network-boundary determinism
// contract over a real checkpoint: seeded requests are byte-identical,
// unseeded requests differ, and both formats decode.
func TestServeRealSynthesizerContract(t *testing.T) {
	s := New(realSynth(t), Config{Workers: 2, MaxBatch: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)

	code, a, hdr := post(t, ts.URL, `{"class":"amazon","count":2,"seed":9}`)
	if code != http.StatusOK {
		t.Fatalf("seeded request: %d %s", code, a)
	}
	if got := hdr.Get("X-Traced-Seed"); got != "9" {
		t.Fatalf("X-Traced-Seed = %q, want 9", got)
	}
	if len(a) < 4 || binary.LittleEndian.Uint32(a[:4]) != pcap.MagicMicroseconds {
		t.Fatal("response does not start with the pcap magic number")
	}
	rd, err := pcap.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("response is not a structurally valid pcap: %v", err)
	}
	recs, err := rd.ReadAll()
	if err != nil || len(recs) == 0 {
		t.Fatalf("pcap records: %d, err %v", len(recs), err)
	}

	_, b, _ := post(t, ts.URL, `{"class":"amazon","count":2,"seed":9}`)
	if !bytes.Equal(a, b) {
		t.Fatal("two requests with the same seed returned different bodies")
	}
	_, c, _ := post(t, ts.URL, `{"class":"amazon","count":2,"seed":10}`)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds returned identical bodies")
	}
	_, u1, _ := post(t, ts.URL, `{"class":"amazon","count":2}`)
	_, u2, _ := post(t, ts.URL, `{"class":"amazon","count":2}`)
	if bytes.Equal(u1, u2) {
		t.Fatal("two unseeded requests returned identical bodies")
	}

	code, csvBody, hdr := post(t, ts.URL, `{"class":"teams","seed":3,"format":"csv"}`)
	if code != http.StatusOK {
		t.Fatalf("csv request: %d %s", code, csvBody)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("csv content type = %q", ct)
	}
	m, err := nprint.ReadCSV(bytes.NewReader(csvBody))
	if err != nil || m.NumRows == 0 {
		t.Fatalf("csv body did not parse as an nprint matrix: rows %d err %v", m.NumRows, err)
	}
}

// TestServeConcurrentMixedClasses hammers a real-synthesizer server
// with concurrent requests across classes and checks every response is
// a valid pcap of the right size.
func TestServeConcurrentMixedClasses(t *testing.T) {
	s := New(realSynth(t), Config{Workers: 2, MaxBatch: 4, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := []string{"amazon", "teams"}[i%2]
			code, body, _ := post(t, ts.URL, fmt.Sprintf(`{"class":%q,"seed":%d}`, class, 100+i))
			if code != http.StatusOK {
				errs[i] = fmt.Errorf("request %d: status %d body %q", i, code, body)
				return
			}
			rd, err := pcap.NewReader(bytes.NewReader(body))
			if err != nil {
				errs[i] = fmt.Errorf("request %d: %v", i, err)
				return
			}
			if recs, err := rd.ReadAll(); err != nil || len(recs) == 0 {
				errs[i] = fmt.Errorf("request %d: %d records, err %v", i, len(recs), err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m := metricsSnapshot(t, ts.URL)
	if m["flows_generated_total"] < n {
		t.Fatalf("flows_generated_total = %v, want >= %d", m["flows_generated_total"], n)
	}
}
