package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/pcap"
	"trafficdiff/internal/workload"
)

// fakeEngine is a controllable Engine: an optional gate blocks each
// generation between admission and completion until the test releases
// it (or the request's context expires), and every completed call's
// seed batch is recorded so tests can assert what reached the engine.
type fakeEngine struct {
	classes []string
	gate    chan struct{}
	delay   time.Duration
	// failErr, when set, makes every generation fail with it after
	// admission — the handler's 500 path.
	failErr  error
	inFlight atomic.Int64
	admitted atomic.Int64

	mu    sync.Mutex
	calls [][]uint64
}

func (g *fakeEngine) Classes() []string { return append([]string(nil), g.classes...) }

func (g *fakeEngine) Stats() core.EngineStats {
	return core.EngineStats{FlowsAdmitted: uint64(g.admitted.Load())}
}

func (g *fakeEngine) Generate(ctx context.Context, class string, seeds []uint64, onAdmit func()) (*core.GenerateResult, error) {
	g.inFlight.Add(1)
	defer g.inFlight.Add(-1)
	g.admitted.Add(int64(len(seeds)))
	if onAdmit != nil {
		onAdmit()
	}
	if g.gate != nil {
		select {
		case <-g.gate:
		case <-ctx.Done():
			// Mirrors the real engine: an expired request's flows are
			// retired at the boundary, no output is produced.
			return nil, ctx.Err()
		}
	}
	if g.delay > 0 {
		time.Sleep(g.delay)
	}
	if g.failErr != nil {
		return nil, g.failErr
	}
	g.mu.Lock()
	g.calls = append(g.calls, append([]uint64(nil), seeds...))
	g.mu.Unlock()
	res := &core.GenerateResult{}
	for _, s := range seeds {
		data := make([]byte, 16)
		binary.BigEndian.PutUint64(data, s)
		res.Flows = append(res.Flows, &flow.Flow{
			Label:   class,
			Packets: []*packet.Packet{{Timestamp: time.Unix(0, 0).UTC(), Data: data}},
		})
		res.Matrices = append(res.Matrices, nprint.NewMatrix(1))
	}
	return res, nil
}

func (g *fakeEngine) callSizes() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	sizes := make([]int, len(g.calls))
	for i, c := range g.calls {
		sizes[i] = len(c)
	}
	return sizes
}

// post fires one generate request and returns status, body and header.
func post(t *testing.T, url string, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// metricsRaw fetches /metrics as the raw decoded JSON, including the
// nested per-class histogram maps.
func metricsRaw(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	return raw
}

// metricsSnapshot fetches /metrics and keeps the scalar series.
func metricsSnapshot(t *testing.T, url string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for k, v := range metricsRaw(t, url) {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

// classCounter digs a per-class entry out of a nested histogram map.
func classCounter(t *testing.T, raw map[string]any, series, class string) float64 {
	t.Helper()
	m, ok := raw[series].(map[string]any)
	if !ok {
		t.Fatalf("metric %q missing or not a map: %T", series, raw[series])
	}
	f, ok := m[class].(float64)
	if !ok {
		t.Fatalf("metric %q has no numeric entry for class %q: %v", series, class, m)
	}
	return f
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestGateSemantics(t *testing.T) {
	g := newGate(1)
	if got := g.acquire(); got != gateOK {
		t.Fatalf("first acquire = %v, want gateOK", got)
	}
	if got := g.acquire(); got != gateFull {
		t.Fatalf("acquire beyond limit = %v, want gateFull", got)
	}
	g.release()
	if got := g.acquire(); got != gateOK {
		t.Fatalf("acquire after release = %v, want gateOK", got)
	}
	g.close()
	g.close() // idempotent
	if got := g.acquire(); got != gateClosed {
		t.Fatalf("acquire after close = %v, want gateClosed", got)
	}
	if g.depth() != 1 {
		t.Fatalf("depth = %d, want 1 (held slot survives close)", g.depth())
	}
}

// TestGateFull429 fills the admission gate with requests blocked
// inside the engine and checks the overflow request is refused
// immediately with 429 + Retry-After while every admitted request
// still completes.
func TestGateFull429(t *testing.T) {
	gate := make(chan struct{})
	eng := &fakeEngine{classes: []string{"amazon"}, gate: gate}
	s := NewWithEngine(eng, Config{QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)
	defer close(gate)

	replies := make(chan int, 4)
	launch := func() {
		go func() {
			code, _, _ := post(t, ts.URL, `{"class":"amazon"}`)
			replies <- code
		}()
	}
	launch()
	launch()
	waitFor(t, "both requests inside the engine", func() bool { return eng.inFlight.Load() == 2 })

	// The gate is at capacity: the next request must bounce, not block.
	code, body, hdr := post(t, ts.URL, `{"class":"amazon"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d body %q, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	m := metricsSnapshot(t, ts.URL)
	if m["rejected_total"] < 1 {
		t.Fatalf("rejected_total = %v, want >= 1", m["rejected_total"])
	}
	if m["inflight_requests"] != 2 {
		t.Fatalf("inflight_requests = %v, want 2", m["inflight_requests"])
	}

	gate <- struct{}{}
	gate <- struct{}{}
	for i := 0; i < 2; i++ {
		if code := <-replies; code != http.StatusOK {
			t.Fatalf("admitted request finished with %d, want 200", code)
		}
	}
}

// TestDeadlineExpiry checks that a request whose deadline passes while
// mid-generation gets 504 and its flows never produce output: the
// engine answers with the context error at the next step boundary
// instead of finishing the generation as dead work.
func TestDeadlineExpiry(t *testing.T) {
	gate := make(chan struct{})
	eng := &fakeEngine{classes: []string{"amazon"}, gate: gate}
	s := NewWithEngine(eng, Config{QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)
	defer close(gate)

	code, body, _ := post(t, ts.URL, `{"class":"amazon","count":2,"timeout_ms":50}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d body %q, want 504", code, body)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["deadline_expired_total"] != 1 {
		t.Fatalf("deadline_expired_total = %v, want 1", m["deadline_expired_total"])
	}

	// A fresh request on the drained gate still works.
	done := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts.URL, `{"class":"amazon"}`)
		done <- code
	}()
	gate <- struct{}{}
	if c := <-done; c != http.StatusOK {
		t.Fatalf("follow-up request finished with %d", c)
	}
	// Only the follow-up completed a generation; the expired request's
	// flows were retired without output.
	if sizes := eng.callSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("completed generations = %v, want exactly [1]", sizes)
	}
}

// TestContinuousAdmission is the head-of-line regression test for the
// continuous-batching rewrite: with no worker pool between the handler
// and the engine, a burst of requests is all inside the engine at
// once — none serialized behind a busy worker or a closed batch.
func TestContinuousAdmission(t *testing.T) {
	gate := make(chan struct{})
	eng := &fakeEngine{classes: []string{"amazon"}, gate: gate}
	s := NewWithEngine(eng, Config{QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)
	defer close(gate)

	const n = 4
	replies := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			code, _, _ := post(t, ts.URL, fmt.Sprintf(`{"class":"amazon","count":%d}`, 1+i%2))
			replies <- code
		}(i)
	}
	// The old pipeline held all but Workers requests in a queue here;
	// continuous admission has the whole burst denoising concurrently.
	waitFor(t, "all requests inside the engine at once", func() bool { return eng.inFlight.Load() == n })

	raw := metricsRaw(t, ts.URL)
	if got := classCounter(t, raw, "admission_wait_ms_count", "amazon"); got != n {
		t.Fatalf(`admission_wait_ms_count["amazon"] = %v, want %d`, got, n)
	}
	if sum := classCounter(t, raw, "admission_wait_ms_sum", "amazon"); sum < 0 {
		t.Fatalf(`admission_wait_ms_sum["amazon"] = %v, want >= 0`, sum)
	}
	if m := metricsSnapshot(t, ts.URL); m["flows_admitted_total"] < n {
		t.Fatalf("flows_admitted_total = %v, want >= %d", m["flows_admitted_total"], n)
	}

	for i := 0; i < n; i++ {
		gate <- struct{}{}
	}
	for i := 0; i < n; i++ {
		if code := <-replies; code != http.StatusOK {
			t.Fatalf("request finished with %d", code)
		}
	}
}

// TestDrainOnShutdown admits a burst of slow requests, then checks
// Shutdown completes them all before returning and that the server
// refuses new work while draining.
func TestDrainOnShutdown(t *testing.T) {
	eng := &fakeEngine{classes: []string{"amazon"}, delay: 30 * time.Millisecond}
	s := NewWithEngine(eng, Config{QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 6
	replies := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			code, _, _ := post(t, ts.URL, `{"class":"amazon"}`)
			replies <- code
		}()
	}
	waitFor(t, "all requests admitted", func() bool {
		return metricsSnapshot(t, ts.URL)["accepted_total"] == n
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Every admitted request completed during the drain.
	for i := 0; i < n; i++ {
		if code := <-replies; code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d during drain", code)
		}
	}
	// New work is refused while draining.
	code, _, hdr := post(t, ts.URL, `{"class":"amazon"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	if rc, _, _ := get(t, ts.URL+"/readyz"); rc != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rc)
	}
	if rc, _, _ := get(t, ts.URL+"/healthz"); rc != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (process is alive)", rc)
	}
	waitFor(t, "all completions recorded", func() bool {
		return metricsSnapshot(t, ts.URL)["completed_total"] == n
	})
	m := metricsSnapshot(t, ts.URL)
	if m["latency_ms_count"] != n || m["latency_ms_sum"] <= 0 {
		t.Fatalf("latency counters = %v/%v, want count %d with positive sum",
			m["latency_ms_count"], m["latency_ms_sum"], n)
	}
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// TestRequestValidation covers the 4xx surface.
func TestRequestValidation(t *testing.T) {
	eng := &fakeEngine{classes: []string{"amazon"}}
	s := NewWithEngine(eng, Config{MaxFlowsPerRequest: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)

	cases := []struct {
		body string
		want int
	}{
		{`{"class":"nope"}`, http.StatusBadRequest},
		{`{"class":"amazon","count":5}`, http.StatusBadRequest},
		{`{"class":"amazon","count":-1}`, http.StatusBadRequest},
		{`{"class":"amazon","format":"exe"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, _, _ := post(t, ts.URL, c.body); code != c.want {
			t.Errorf("body %q: status %d, want %d", c.body, code, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Error(cerr)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/generate = %d, want 405", resp.StatusCode)
	}
}

// trainSynth fine-tunes a synthesizer on the standard test workload.
func trainSynth(cfg core.Config, classes []string) (*core.Synthesizer, error) {
	s, err := core.New(cfg, classes)
	if err != nil {
		return nil, err
	}
	ds, err := workload.Generate(workload.Config{
		Seed: 11, FlowsPerClass: 4, Only: classes, MaxPacketsPerFlow: cfg.Rows,
	})
	if err != nil {
		return nil, err
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	if _, err := s.FineTune(byClass); err != nil {
		return nil, err
	}
	return s, nil
}

// trainedServer builds a server over a real (tiny) synthesizer; shared
// across the contract tests below because training dominates runtime.
var (
	realOnce sync.Once
	realGen  *core.Synthesizer
	realErr  error
)

func realSynth(t *testing.T) *core.Synthesizer {
	t.Helper()
	realOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Rows = 16
		cfg.DownH = 2
		cfg.DownW = 16
		cfg.Hidden = 48
		cfg.TimeSteps = 30
		cfg.BaseSteps = 25
		cfg.FineTuneSteps = 35
		cfg.Batch = 8
		cfg.DDIMSteps = 6
		realGen, realErr = trainSynth(cfg, []string{"amazon", "teams"})
	})
	if realErr != nil {
		t.Fatal(realErr)
	}
	return realGen
}

func realServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(realSynth(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServeRealSynthesizerContract is the network-boundary determinism
// contract over a real checkpoint: seeded requests are byte-identical,
// unseeded requests differ, and both formats decode.
func TestServeRealSynthesizerContract(t *testing.T) {
	s := realServer(t, Config{MaxInFlight: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)

	code, a, hdr := post(t, ts.URL, `{"class":"amazon","count":2,"seed":9}`)
	if code != http.StatusOK {
		t.Fatalf("seeded request: %d %s", code, a)
	}
	if got := hdr.Get("X-Traced-Seed"); got != "9" {
		t.Fatalf("X-Traced-Seed = %q, want 9", got)
	}
	if len(a) < 4 || binary.LittleEndian.Uint32(a[:4]) != pcap.MagicMicroseconds {
		t.Fatal("response does not start with the pcap magic number")
	}
	rd, err := pcap.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("response is not a structurally valid pcap: %v", err)
	}
	recs, err := rd.ReadAll()
	if err != nil || len(recs) == 0 {
		t.Fatalf("pcap records: %d, err %v", len(recs), err)
	}

	_, b, _ := post(t, ts.URL, `{"class":"amazon","count":2,"seed":9}`)
	if !bytes.Equal(a, b) {
		t.Fatal("two requests with the same seed returned different bodies")
	}
	_, c, _ := post(t, ts.URL, `{"class":"amazon","count":2,"seed":10}`)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds returned identical bodies")
	}
	_, u1, _ := post(t, ts.URL, `{"class":"amazon","count":2}`)
	_, u2, _ := post(t, ts.URL, `{"class":"amazon","count":2}`)
	if bytes.Equal(u1, u2) {
		t.Fatal("two unseeded requests returned identical bodies")
	}

	code, csvBody, hdr := post(t, ts.URL, `{"class":"teams","seed":3,"format":"csv"}`)
	if code != http.StatusOK {
		t.Fatalf("csv request: %d %s", code, csvBody)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("csv content type = %q", ct)
	}
	m, err := nprint.ReadCSV(bytes.NewReader(csvBody))
	if err != nil || m.NumRows == 0 {
		t.Fatalf("csv body did not parse as an nprint matrix: rows %d err %v", m.NumRows, err)
	}
}

// TestServeConcurrentMixedClasses hammers a real-synthesizer server
// with concurrent requests across classes and checks every response is
// a valid pcap of the right size. With continuous batching the
// concurrent burst shares denoiser forwards, so batch occupancy and
// the per-class admission-wait histograms must both show traffic.
func TestServeConcurrentMixedClasses(t *testing.T) {
	s := realServer(t, Config{MaxInFlight: 8, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer shutdownServer(t, s)

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := []string{"amazon", "teams"}[i%2]
			code, body, _ := post(t, ts.URL, fmt.Sprintf(`{"class":%q,"seed":%d}`, class, 100+i))
			if code != http.StatusOK {
				errs[i] = fmt.Errorf("request %d: status %d body %q", i, code, body)
				return
			}
			rd, err := pcap.NewReader(bytes.NewReader(body))
			if err != nil {
				errs[i] = fmt.Errorf("request %d: %v", i, err)
				return
			}
			if recs, err := rd.ReadAll(); err != nil || len(recs) == 0 {
				errs[i] = fmt.Errorf("request %d: %d records, err %v", i, len(recs), err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m := metricsSnapshot(t, ts.URL)
	if m["flows_generated_total"] < n {
		t.Fatalf("flows_generated_total = %v, want >= %d", m["flows_generated_total"], n)
	}
	if m["flows_admitted_total"] < n {
		t.Fatalf("flows_admitted_total = %v, want >= %d", m["flows_admitted_total"], n)
	}
	if m["batch_occupancy_count"] <= 0 || m["batch_occupancy_sum"] < m["batch_occupancy_count"] {
		t.Fatalf("batch occupancy sum/count = %v/%v, want positive with sum >= count",
			m["batch_occupancy_sum"], m["batch_occupancy_count"])
	}
	raw := metricsRaw(t, ts.URL)
	for _, class := range []string{"amazon", "teams"} {
		if got := classCounter(t, raw, "admission_wait_ms_count", class); got != n/2 {
			t.Fatalf(`admission_wait_ms_count[%q] = %v, want %d`, class, got, n/2)
		}
	}
}

// terminalCounters are the mutually-exclusive outcome counters of
// POST /v1/generate: every request that reaches a terminal state must
// bump exactly one of them, or a load harness's client-side status
// accounting can never reconcile against the server's /metrics.
var terminalCounters = []string{
	"completed_total",
	"rejected_total",
	"drain_rejected_total",
	"bad_request_total",
	"deadline_expired_total",
	"failed_total",
}

func terminalSnapshot(t *testing.T, url string) map[string]float64 {
	t.Helper()
	all := metricsSnapshot(t, url)
	out := map[string]float64{}
	for _, k := range terminalCounters {
		v, ok := all[k]
		if !ok {
			t.Fatalf("terminal counter %s missing from /metrics", k)
		}
		out[k] = v
	}
	return out
}

// assertOneBump checks that exactly `want` moved by +1 between two
// terminal-counter snapshots and everything else is unchanged.
func assertOneBump(t *testing.T, before, after map[string]float64, want, scenario string) {
	t.Helper()
	for _, k := range terminalCounters {
		delta := after[k] - before[k]
		expect := 0.0
		if k == want {
			expect = 1
		}
		if delta != expect {
			t.Errorf("%s: counter %s moved %v, want %v (before=%v after=%v)",
				scenario, k, delta, expect, before, after)
		}
	}
}

// TestTerminalPathCounters drives every terminal path of the generate
// handler — 200, the whole 4xx validation surface, 429 backpressure,
// 504 expiry, 500 engine failure and both 503 drain-window paths — and
// asserts each bumps exactly one outcome counter. The drain paths are
// the PR's regression: they previously incremented nothing.
func TestTerminalPathCounters(t *testing.T) {
	t.Run("validation-and-success", func(t *testing.T) {
		eng := &fakeEngine{classes: []string{"amazon"}}
		s := NewWithEngine(eng, Config{MaxFlowsPerRequest: 4})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer shutdownServer(t, s)

		cases := []struct {
			scenario string
			body     string
			counter  string
		}{
			{"success", `{"class":"amazon"}`, "completed_total"},
			{"bad json", `not json`, "bad_request_total"},
			{"unknown class", `{"class":"nope"}`, "bad_request_total"},
			{"count too large", `{"class":"amazon","count":9}`, "bad_request_total"},
			{"bad format", `{"class":"amazon","format":"exe"}`, "bad_request_total"},
		}
		for _, c := range cases {
			before := terminalSnapshot(t, ts.URL)
			post(t, ts.URL, c.body)
			assertOneBump(t, before, terminalSnapshot(t, ts.URL), c.counter, c.scenario)
		}

		// Method not allowed is terminal too.
		before := terminalSnapshot(t, ts.URL)
		if code, _, _ := get(t, ts.URL+"/v1/generate"); code != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/generate = %d, want 405", code)
		}
		assertOneBump(t, before, terminalSnapshot(t, ts.URL), "bad_request_total", "method not allowed")
	})

	t.Run("backpressure-429", func(t *testing.T) {
		gate := make(chan struct{})
		eng := &fakeEngine{classes: []string{"amazon"}, gate: gate}
		s := NewWithEngine(eng, Config{QueueDepth: 1})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer shutdownServer(t, s)
		defer close(gate)

		done := make(chan int, 1)
		go func() {
			code, _, _ := post(t, ts.URL, `{"class":"amazon"}`)
			done <- code
		}()
		waitFor(t, "request inside the engine", func() bool { return eng.inFlight.Load() == 1 })

		before := terminalSnapshot(t, ts.URL)
		if code, _, _ := post(t, ts.URL, `{"class":"amazon"}`); code != http.StatusTooManyRequests {
			t.Fatalf("overflow request = %d, want 429", code)
		}
		assertOneBump(t, before, terminalSnapshot(t, ts.URL), "rejected_total", "gate full")

		gate <- struct{}{}
		if code := <-done; code != http.StatusOK {
			t.Fatalf("admitted request finished with %d", code)
		}
	})

	t.Run("deadline-504", func(t *testing.T) {
		gate := make(chan struct{})
		eng := &fakeEngine{classes: []string{"amazon"}, gate: gate}
		s := NewWithEngine(eng, Config{QueueDepth: 4})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer shutdownServer(t, s)
		defer close(gate)

		before := terminalSnapshot(t, ts.URL)
		if code, _, _ := post(t, ts.URL, `{"class":"amazon","timeout_ms":40}`); code != http.StatusGatewayTimeout {
			t.Fatalf("expired request = %d, want 504", code)
		}
		assertOneBump(t, before, terminalSnapshot(t, ts.URL), "deadline_expired_total", "deadline expiry")
	})

	t.Run("engine-failure-500", func(t *testing.T) {
		eng := &fakeEngine{classes: []string{"amazon"}, failErr: fmt.Errorf("synthetic engine failure")}
		s := NewWithEngine(eng, Config{QueueDepth: 4})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer shutdownServer(t, s)

		before := terminalSnapshot(t, ts.URL)
		if code, _, _ := post(t, ts.URL, `{"class":"amazon"}`); code != http.StatusInternalServerError {
			t.Fatalf("failing request = %d, want 500", code)
		}
		assertOneBump(t, before, terminalSnapshot(t, ts.URL), "failed_total", "engine failure")
	})

	t.Run("drain-503", func(t *testing.T) {
		eng := &fakeEngine{classes: []string{"amazon"}}
		s := NewWithEngine(eng, Config{QueueDepth: 4})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		shutdownServer(t, s)

		// Every request inside the drain window is a drain rejection —
		// previously invisible in /metrics.
		before := terminalSnapshot(t, ts.URL)
		for i := 0; i < 3; i++ {
			code, _, hdr := post(t, ts.URL, `{"class":"amazon"}`)
			if code != http.StatusServiceUnavailable {
				t.Fatalf("drain-window request = %d, want 503", code)
			}
			if hdr.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After header")
			}
		}
		after := terminalSnapshot(t, ts.URL)
		if got := after["drain_rejected_total"] - before["drain_rejected_total"]; got != 3 {
			t.Fatalf("drain_rejected_total moved %v, want 3", got)
		}
		for _, k := range terminalCounters {
			if k != "drain_rejected_total" && after[k] != before[k] {
				t.Fatalf("counter %s moved during drain rejections", k)
			}
		}
	})
}
