package serve

import "sync"

// gateOutcome is the result of one admission attempt.
type gateOutcome int

const (
	gateOK gateOutcome = iota
	gateFull
	gateClosed
)

// gate is the service's backpressure boundary: a closable counting
// limit on the requests concurrently inside the server (waiting for
// engine admission or mid-generation). Unlike a queue it holds no
// work — requests past the gate drive their own generation — so
// closing it refuses new arrivals without stranding anything.
type gate struct {
	mu     sync.Mutex
	n      int
	limit  int
	closed bool
}

func newGate(limit int) *gate {
	return &gate{limit: limit}
}

// acquire takes a slot, or reports why it could not.
func (g *gate) acquire() gateOutcome {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return gateClosed
	}
	if g.n >= g.limit {
		return gateFull
	}
	g.n++
	return gateOK
}

// release returns a slot taken by a successful acquire.
func (g *gate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
}

// depth reports the slots currently held.
func (g *gate) depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// close makes every future acquire return gateClosed. Idempotent;
// held slots are unaffected.
func (g *gate) close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
}
