package cluster

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Proc is one spawned replica process, as returned by a SpawnFunc.
type Proc struct {
	// URL is the replica's base URL.
	URL string
	// Stop drains the process gracefully (SIGTERM + wait) within the
	// context's budget.
	Stop func(context.Context) error
	// Exited, when non-nil, is closed when the process exits on its
	// own. The scaler reaps such a replica from the managed set and the
	// pool, so the Min-deficit path respawns a replacement instead of
	// counting a corpse toward the managed total forever.
	Exited <-chan struct{}
}

// SpawnFunc starts one replica process.
type SpawnFunc func(ctx context.Context) (*Proc, error)

// ScalerConfig parameterizes the autoscale loop. Zero values take the
// defaults noted on each field.
type ScalerConfig struct {
	// Min/Max bound the managed replica count (defaults 1, 4).
	Min, Max int
	// Interval is the decision cadence (default 500ms).
	Interval time.Duration
	// ScaleUpLoad is the average per-healthy-replica load — replica
	// queue depth + in-flight flows + router-side in-flight — above
	// which ticks count toward a scale-up (default 4).
	ScaleUpLoad float64
	// UpTicks is how many consecutive loaded ticks trigger one
	// scale-up (default 2); DownTicks how many consecutive idle ticks
	// (zero aggregate load) trigger one drain (default 20). Scaling
	// one step per trigger with the counters reset keeps the loop from
	// flapping through the whole range on a single burst.
	UpTicks, DownTicks int
	// SpawnTimeout bounds one replica start, and DrainTimeout one
	// graceful stop (defaults 60s, 30s).
	SpawnTimeout time.Duration
	DrainTimeout time.Duration
	// Spawn starts a replica (required). TracedSpawner builds one over
	// the real binary.
	Spawn SpawnFunc
	// Logf, when set, receives scaling decisions for the operator log.
	Logf func(format string, args ...any)
}

func (c ScalerConfig) withDefaults() ScalerConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.ScaleUpLoad <= 0 {
		c.ScaleUpLoad = 4
	}
	if c.UpTicks <= 0 {
		c.UpTicks = 2
	}
	if c.DownTicks <= 0 {
		c.DownTicks = 20
	}
	if c.SpawnTimeout <= 0 {
		c.SpawnTimeout = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// scaleAction is one tick's verdict.
type scaleAction int

const (
	scaleHold scaleAction = iota
	scaleUp
	scaleDown
)

// scaleState is the loop's tick-counter memory.
type scaleState struct {
	hiTicks int // consecutive ticks above ScaleUpLoad
	loTicks int // consecutive ticks at zero load
}

// decide is the pure autoscale policy: given the managed replica count,
// the healthy count, and this tick's aggregate load (replica queue
// depth + in-flight flows + router in-flight, summed), it updates the
// tick counters and returns the action. Deficit below Min always
// scales up immediately; load-driven scale-up needs UpTicks
// consecutive loaded ticks and headroom under Max; scale-down needs
// DownTicks consecutive idle ticks and slack above Min.
func decide(cfg ScalerConfig, st *scaleState, managed, healthy int, aggLoad float64) scaleAction {
	if managed < cfg.Min {
		return scaleUp
	}
	avg := aggLoad
	if healthy > 0 {
		avg = aggLoad / float64(healthy)
	}
	switch {
	case healthy > 0 && avg >= cfg.ScaleUpLoad:
		st.hiTicks++
		st.loTicks = 0
		if st.hiTicks >= cfg.UpTicks && managed < cfg.Max {
			st.hiTicks = 0
			return scaleUp
		}
	case healthy > 0 && aggLoad <= 0:
		st.loTicks++
		st.hiTicks = 0
		if st.loTicks >= cfg.DownTicks && managed > cfg.Min {
			st.loTicks = 0
			return scaleDown
		}
	default:
		st.hiTicks = 0
		st.loTicks = 0
	}
	return scaleHold
}

// Scaler owns the managed replica processes and the autoscale loop:
// it watches the pool's aggregate queue-depth metrics and starts or
// drains local traced children between Min and Max replicas. Drains
// remove the replica from the pool first (no new routes), then SIGTERM
// the child so its own graceful path finishes in-flight work.
type Scaler struct {
	pool *Pool
	cfg  ScalerConfig

	mu    sync.Mutex
	procs []*Proc    // guarded by mu — LIFO; newest drained first
	state scaleState // guarded by mu (loop-only, but Close races the loop)

	stopCh chan struct{}
	wg     sync.WaitGroup

	scaleUps   atomic.Int64
	scaleDowns atomic.Int64
}

// NewScaler starts the autoscale loop over pool. Callers must
// eventually Close it, which drains every managed child.
func NewScaler(pool *Pool, cfg ScalerConfig) (*Scaler, error) {
	cfg = cfg.withDefaults()
	if cfg.Spawn == nil {
		return nil, fmt.Errorf("cluster: ScalerConfig.Spawn is required")
	}
	s := &Scaler{pool: pool, cfg: cfg, stopCh: make(chan struct{})}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Counts reports managed replicas and lifetime scale events.
func (s *Scaler) Counts() (managed int, ups, downs int64) {
	s.mu.Lock()
	managed = len(s.procs)
	s.mu.Unlock()
	return managed, s.scaleUps.Load(), s.scaleDowns.Load()
}

// Close stops the loop and drains every managed replica concurrently.
func (s *Scaler) Close() {
	close(s.stopCh)
	s.wg.Wait()
	s.mu.Lock()
	procs := s.procs
	s.procs = nil
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			s.pool.Remove(p.URL)
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
			defer cancel()
			if err := p.Stop(ctx); err != nil {
				s.cfg.Logf("scaler: draining %s: %v", p.URL, err)
			}
		}(p)
	}
	wg.Wait()
}

// loop ticks the autoscale policy.
func (s *Scaler) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
		}
		s.tick()
	}
}

// tick gathers one load sample and applies the policy's verdict.
func (s *Scaler) tick() {
	healthy, agg := 0, 0.0
	for _, st := range s.pool.Snapshot() {
		if !st.Healthy {
			continue
		}
		healthy++
		agg += float64(st.QueueDepth) + float64(st.InFlightFlows) + float64(st.InFlight)
	}
	s.mu.Lock()
	managed := len(s.procs)
	action := decide(s.cfg, &s.state, managed, healthy, agg)
	s.mu.Unlock()
	switch action {
	case scaleUp:
		s.spawnOne(managed, healthy, agg)
	case scaleDown:
		s.drainOne(agg)
	}
}

// spawnOne starts one replica and registers it with the pool.
func (s *Scaler) spawnOne(managed, healthy int, agg float64) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.SpawnTimeout)
	defer cancel()
	p, err := s.cfg.Spawn(ctx)
	if err != nil {
		s.cfg.Logf("scaler: spawn failed: %v", err)
		return
	}
	s.mu.Lock()
	s.procs = append(s.procs, p)
	n := len(s.procs)
	s.mu.Unlock()
	s.scaleUps.Add(1)
	s.pool.Add(p.URL)
	if p.Exited != nil {
		s.wg.Add(1)
		go s.watchExit(p)
	}
	s.cfg.Logf("scaler: scaled up to %d replicas (%s; healthy %d, aggregate load %.1f)", n, p.URL, healthy, agg)
}

// watchExit reaps a managed child that exits on its own: the replica
// leaves the pool and the managed set at once, so the next tick's
// Min-deficit check respawns a replacement. Pool removal happens first
// so a respawn triggered by the shrunken managed count never races a
// stale pool entry.
func (s *Scaler) watchExit(p *Proc) {
	defer s.wg.Done()
	select {
	case <-s.stopCh:
		// Close owns the remaining procs and drains them itself.
		return
	case <-p.Exited:
	}
	s.pool.Remove(p.URL)
	if s.removeProc(p) {
		s.cfg.Logf("scaler: replica %s exited unexpectedly; reaped (respawn on next tick)", p.URL)
	}
}

// removeProc drops p from the managed set; false when a drain or Close
// already popped it.
func (s *Scaler) removeProc(p *Proc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.procs {
		if q == p {
			s.procs = append(s.procs[:i], s.procs[i+1:]...)
			return true
		}
	}
	return false
}

// drainOne withdraws the newest replica from the pool and stops it
// gracefully.
func (s *Scaler) drainOne(agg float64) {
	p, n := s.popNewest()
	if p == nil {
		return
	}
	s.scaleDowns.Add(1)
	s.pool.Remove(p.URL)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := p.Stop(ctx); err != nil {
		s.cfg.Logf("scaler: draining %s: %v", p.URL, err)
		return
	}
	s.cfg.Logf("scaler: scaled down to %d replicas (aggregate load %.1f)", n, agg)
}

// popNewest removes and returns the most recently spawned replica
// (LIFO) along with the remaining managed count; nil when none.
func (s *Scaler) popNewest() (*Proc, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.procs) == 0 {
		return nil, 0
	}
	p := s.procs[len(s.procs)-1]
	s.procs = s.procs[:len(s.procs)-1]
	return p, len(s.procs)
}

// TracedSpawner builds a SpawnFunc over the real traced binary: it
// starts `bin -model model -addr 127.0.0.1:0 <extraArgs...>`, reads
// the machine-parseable "ADDR=host:port" line traced prints on stdout
// once its listener is up, and returns a Proc whose Stop SIGTERMs the
// child (traced's graceful drain path) and waits for exit. The child's
// stderr passes through to the router's, so startup errors and crash
// reasons stay diagnosable.
func TracedSpawner(bin, model string, extraArgs []string) SpawnFunc {
	return func(ctx context.Context) (*Proc, error) {
		args := append([]string{"-model", model, "-addr", "127.0.0.1:0"}, extraArgs...)
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		done := make(chan error, 1)
		exited := make(chan struct{})
		go func() {
			done <- cmd.Wait() // buffered: the send precedes the close
			close(exited)
		}()

		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if addr, ok := strings.CutPrefix(strings.TrimSpace(sc.Text()), "ADDR="); ok {
					addrCh <- addr
					break
				}
			}
			close(addrCh)
		}()

		kill := func() {
			// Startup failed; nothing is listening, so hard-kill is safe.
			_ = cmd.Process.Kill()
			<-done
		}
		select {
		case addr, ok := <-addrCh:
			if !ok || addr == "" {
				kill()
				return nil, fmt.Errorf("cluster: %s exited before printing ADDR=", bin)
			}
			stop := func(ctx context.Context) error {
				if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
					// The child is already gone (a crash the exit watcher
					// reaped); its wait result is the real verdict.
					select {
					case werr := <-done:
						return werr
					case <-ctx.Done():
						return err
					}
				}
				select {
				case err := <-done:
					return err
				case <-ctx.Done():
					// Drain budget exhausted; reap the child hard.
					_ = cmd.Process.Kill()
					<-done
					return ctx.Err()
				}
			}
			return &Proc{URL: "http://" + addr, Stop: stop, Exited: exited}, nil
		case err := <-done:
			return nil, fmt.Errorf("cluster: %s exited before printing ADDR=: %v", bin, err)
		case <-ctx.Done():
			kill()
			return nil, fmt.Errorf("cluster: spawning %s: %w", bin, ctx.Err())
		}
	}
}
