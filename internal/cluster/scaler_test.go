package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDecide pins the pure autoscale policy.
func TestDecide(t *testing.T) {
	cfg := ScalerConfig{Min: 1, Max: 3, ScaleUpLoad: 4, UpTicks: 2, DownTicks: 3}.withDefaults()

	t.Run("deficit below min scales up immediately", func(t *testing.T) {
		st := &scaleState{}
		if got := decide(cfg, st, 0, 0, 0); got != scaleUp {
			t.Fatalf("decide = %v, want scaleUp", got)
		}
	})

	t.Run("sustained load scales up after UpTicks", func(t *testing.T) {
		st := &scaleState{}
		if got := decide(cfg, st, 1, 1, 4); got != scaleHold {
			t.Fatalf("tick 1 = %v, want hold", got)
		}
		if got := decide(cfg, st, 1, 1, 4); got != scaleUp {
			t.Fatalf("tick 2 = %v, want scaleUp", got)
		}
		if st.hiTicks != 0 {
			t.Fatalf("hiTicks not reset after scale-up: %d", st.hiTicks)
		}
	})

	t.Run("load must be consecutive", func(t *testing.T) {
		st := &scaleState{}
		decide(cfg, st, 1, 1, 4) // hi
		decide(cfg, st, 1, 1, 2) // mid: resets
		if got := decide(cfg, st, 1, 1, 4); got != scaleHold {
			t.Fatalf("non-consecutive load scaled up")
		}
	})

	t.Run("at max holds under any load", func(t *testing.T) {
		st := &scaleState{}
		for i := 0; i < 10; i++ {
			if got := decide(cfg, st, 3, 3, 100); got != scaleHold {
				t.Fatalf("tick %d = %v at Max, want hold", i, got)
			}
		}
	})

	t.Run("sustained idle scales down after DownTicks", func(t *testing.T) {
		st := &scaleState{}
		for i := 0; i < 2; i++ {
			if got := decide(cfg, st, 2, 2, 0); got != scaleHold {
				t.Fatalf("idle tick %d = %v, want hold", i, got)
			}
		}
		if got := decide(cfg, st, 2, 2, 0); got != scaleDown {
			t.Fatalf("idle tick 3 = %v, want scaleDown", got)
		}
	})

	t.Run("at min never drains", func(t *testing.T) {
		st := &scaleState{}
		for i := 0; i < 10; i++ {
			if got := decide(cfg, st, 1, 1, 0); got != scaleHold {
				t.Fatalf("idle tick %d = %v at Min, want hold", i, got)
			}
		}
	})

	t.Run("no healthy replicas holds and resets", func(t *testing.T) {
		st := &scaleState{hiTicks: 1, loTicks: 1}
		if got := decide(cfg, st, 2, 0, 0); got != scaleHold {
			t.Fatalf("decide = %v with zero healthy, want hold", got)
		}
		if st.hiTicks != 0 || st.loTicks != 0 {
			t.Fatalf("counters not reset: %+v", st)
		}
	})

	t.Run("load averages over healthy replicas", func(t *testing.T) {
		st := &scaleState{}
		// Aggregate 6 over 2 healthy = avg 3 < 4: below threshold.
		if got := decide(cfg, st, 2, 2, 6); got != scaleHold || st.hiTicks != 0 {
			t.Fatalf("avg under threshold counted as load: %v %+v", got, st)
		}
		// Aggregate 8 over 2 healthy = avg 4: counts.
		decide(cfg, st, 2, 2, 8)
		if st.hiTicks != 1 {
			t.Fatalf("avg at threshold not counted: %+v", st)
		}
	})
}

// fakeSpawner mints fake replicas on demand and records drains.
type fakeSpawner struct {
	t *testing.T

	mu      sync.Mutex
	spawned []*fakeReplica
	exits   []chan struct{}
	stops   atomic.Int64
}

func (fs *fakeSpawner) spawn(ctx context.Context) (*Proc, error) {
	f := newFakeReplica(fs.t, "sha256:aa", 6)
	exited := make(chan struct{})
	fs.mu.Lock()
	fs.spawned = append(fs.spawned, f)
	fs.exits = append(fs.exits, exited)
	fs.mu.Unlock()
	stop := func(context.Context) error {
		fs.stops.Add(1)
		return nil
	}
	return &Proc{URL: f.url(), Stop: stop, Exited: exited}, nil
}

// crash closes the i-th child's exit channel, simulating the replica
// process dying on its own.
func (fs *fakeSpawner) crash(i int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	close(fs.exits[i])
}

// spawnCount reports how many replicas have been spawned so far.
func (fs *fakeSpawner) spawnCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.spawned)
}

func (fs *fakeSpawner) setLoad(depth int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.spawned {
		f.set(func(r *fakeReplica) { r.queueDepth = depth })
	}
}

func TestScalerSpawnsToMinAndDrainsOnClose(t *testing.T) {
	fs := &fakeSpawner{t: t}
	p := newTestPool(t, PoolConfig{})
	s, err := NewScaler(p, ScalerConfig{
		Min: 2, Max: 4, Interval: 10 * time.Millisecond,
		Spawn: fs.spawn,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "scale to min", func() bool {
		managed, _, _ := s.Counts()
		return managed == 2 && p.Healthy() == 2
	})
	s.Close()
	if got := fs.stops.Load(); got != 2 {
		t.Fatalf("Close drained %d replicas, want 2", got)
	}
	if p.Size() != 0 {
		t.Fatalf("pool still holds %d replicas after Close", p.Size())
	}
}

func TestScalerScalesUpUnderLoadAndBackDown(t *testing.T) {
	fs := &fakeSpawner{t: t}
	p := newTestPool(t, PoolConfig{})
	s, err := NewScaler(p, ScalerConfig{
		Min: 1, Max: 2,
		Interval:    10 * time.Millisecond,
		ScaleUpLoad: 1, UpTicks: 2, DownTicks: 2,
		Spawn: fs.spawn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	waitUntil(t, 5*time.Second, "initial replica", func() bool {
		managed, _, _ := s.Counts()
		return managed == 1 && p.Healthy() == 1
	})

	fs.setLoad(5)
	waitUntil(t, 5*time.Second, "scale up", func() bool {
		managed, _, _ := s.Counts()
		return managed == 2
	})
	fs.setLoad(0)
	waitUntil(t, 5*time.Second, "scale back down", func() bool {
		managed, _, _ := s.Counts()
		return managed == 1
	})
	if fs.stops.Load() != 1 {
		t.Fatalf("scale-down drained %d replicas, want 1", fs.stops.Load())
	}
	_, ups, downs := s.Counts()
	if ups < 2 || downs != 1 {
		t.Fatalf("counts: ups=%d downs=%d, want ups>=2 downs=1", ups, downs)
	}
	// LIFO drain: the newest replica is withdrawn from the pool.
	fs.mu.Lock()
	newest := fs.spawned[len(fs.spawned)-1].url()
	fs.mu.Unlock()
	for _, st := range p.Snapshot() {
		if st.URL == newest {
			t.Fatalf("newest replica %s still pooled after LIFO drain", newest)
		}
	}
}

// A managed child that dies on its own must be reaped — removed from
// both the managed set and the pool — so the Min-deficit path respawns
// a replacement instead of counting the corpse toward managed forever.
func TestScalerReapsCrashedChildAndRespawns(t *testing.T) {
	fs := &fakeSpawner{t: t}
	p := newTestPool(t, PoolConfig{})
	s, err := NewScaler(p, ScalerConfig{Min: 1, Max: 2, Interval: 10 * time.Millisecond, Spawn: fs.spawn})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitUntil(t, 5*time.Second, "initial replica", func() bool {
		managed, _, _ := s.Counts()
		return managed == 1 && p.Healthy() == 1
	})
	fs.mu.Lock()
	first := fs.spawned[0].url()
	fs.mu.Unlock()

	fs.crash(0)
	waitUntil(t, 5*time.Second, "crashed child reaped and replaced", func() bool {
		managed, _, _ := s.Counts()
		return fs.spawnCount() == 2 && managed == 1
	})
	for _, st := range p.Snapshot() {
		if st.URL == first {
			t.Fatalf("crashed replica %s still pooled after reap", first)
		}
	}
	if got := fs.stops.Load(); got != 0 {
		t.Fatalf("reap called Stop %d times; a dead child needs no drain", got)
	}
}

func TestScalerRequiresSpawn(t *testing.T) {
	p := newTestPool(t, PoolConfig{})
	if _, err := NewScaler(p, ScalerConfig{}); err == nil {
		t.Fatal("NewScaler accepted a nil Spawn")
	}
}

func TestScalerSpawnFailureIsRetriedNextTick(t *testing.T) {
	var calls atomic.Int64
	fs := &fakeSpawner{t: t}
	flaky := func(ctx context.Context) (*Proc, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient spawn failure")
		}
		return fs.spawn(ctx)
	}
	p := newTestPool(t, PoolConfig{})
	s, err := NewScaler(p, ScalerConfig{Min: 1, Max: 1, Interval: 10 * time.Millisecond, Spawn: flaky})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitUntil(t, 5*time.Second, "recovery after failed spawn", func() bool {
		managed, _, _ := s.Counts()
		return managed == 1
	})
	if calls.Load() < 2 {
		t.Fatalf("spawn called %d times, want a retry after the failure", calls.Load())
	}
}
