package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Router. Zero values take the defaults noted
// on each field.
type Config struct {
	// Scorers is the weighted routing policy (ParseScorers). Nil
	// selects the power-of-two-choices fallback: two candidates are
	// drawn per request and the less loaded one wins.
	Scorers []WeightedScorer
	// CacheEntries / CacheBytes bound the content-addressed response
	// cache (defaults 4096 entries, 256 MiB). CacheEntries < 0
	// disables caching entirely.
	CacheEntries int
	CacheBytes   int64
	// ValidateEvery, when positive, re-fetches every Nth cache hit
	// from a replica and asserts byte-identity against the cached
	// body; a mismatch invalidates the entry, serves the replica's
	// bytes, and increments cache_validation_mismatches_total.
	ValidateEvery int
	// MaxBodyBytes bounds a request body (default 1 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Router is the cluster front tier: it terminates /v1/generate,
// serves repeat seeded requests from the content-addressed cache, and
// spreads the rest over the pool's healthy replicas under the
// configured scoring policy, with honest backpressure propagation
// (see mapFailure for the status-mapping table).
type Router struct {
	pool   *Pool
	cfg    Config
	cache  *Cache
	met    *routerMetrics
	client *http.Client

	// drainMu orders the draining flag against inflight.Add: the check
	// and the Add happen in one critical section, so no request can
	// register after Shutdown flips the flag and inflight.Wait observes
	// zero (sync.WaitGroup forbids Add racing such a Wait).
	drainMu  sync.Mutex
	draining bool // guarded by drainMu
	inflight sync.WaitGroup
	p2cCtr   atomic.Uint64
	hitCtr   atomic.Uint64

	httpSrv *http.Server
}

// NewRouter builds a Router over a caller-owned pool (the caller
// closes the pool after Shutdown).
func NewRouter(pool *Pool, cfg Config) *Router {
	cfg = cfg.withDefaults()
	var cache *Cache
	if cfg.CacheEntries >= 0 {
		cache = NewCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = 64
	rt := &Router{
		pool:  pool,
		cfg:   cfg,
		cache: cache,
		// No client timeout: per-request deadlines belong to the
		// caller and the replicas' own RequestTimeout bounds work.
		client: &http.Client{Transport: transport},
	}
	rt.met = newRouterMetrics(pool, cache)
	rt.httpSrv = &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return rt
}

// Handler returns the router mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", rt.handleGenerate)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/replicas", rt.handleReplicas)
	return mux
}

// Serve accepts connections on ln until Shutdown. A clean shutdown
// returns nil.
func (rt *Router) Serve(ln net.Listener) error {
	err := rt.httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// PublishExpvar registers the router metrics map process-wide under
// name (at most once per name per process).
func (rt *Router) PublishExpvar(name string) {
	expvar.Publish(name, rt.met.vars)
}

// Shutdown drains the router: new requests are refused, in-flight
// proxied requests complete, then the HTTP server stops. Replicas are
// untouched — the scaler (or operator) owns them.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.drainMu.Lock()
	rt.draining = true
	rt.drainMu.Unlock()
	drained := make(chan struct{})
	go func() {
		rt.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	return rt.httpSrv.Shutdown(ctx)
}

// beginRequest registers an in-flight request unless the router is
// draining; the caller must rt.inflight.Done() when it returns true.
func (rt *Router) beginRequest() bool {
	rt.drainMu.Lock()
	defer rt.drainMu.Unlock()
	if rt.draining {
		return false
	}
	rt.inflight.Add(1)
	return true
}

func (rt *Router) isDraining() bool {
	rt.drainMu.Lock()
	defer rt.drainMu.Unlock()
	return rt.draining
}

// routeRequest mirrors the fields of traced's generate request the
// router needs for cache keys and routing; unknown fields pass through
// untouched in the raw body.
type routeRequest struct {
	Class  string  `json:"class"`
	Count  int     `json:"count"`
	Seed   *uint64 `json:"seed"`
	Format string  `json:"format"`
}

func (rt *Router) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !rt.beginRequest() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	defer rt.inflight.Done()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var gr routeRequest
	if err := json.Unmarshal(body, &gr); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if gr.Count == 0 {
		gr.Count = 1
	}
	if gr.Format == "" {
		gr.Format = "pcap"
	}
	rt.met.requests.Add(1)

	// Cache lookup: only seeded requests are content-addressed, and
	// only while every healthy replica agrees on (digest, DDIM steps,
	// precision) — a mixed pool must not alias entries across
	// configurations.
	var key CacheKey
	cacheable := false
	if gr.Seed != nil && rt.cache != nil {
		if digest, ddim, prec, ok := rt.pool.CacheCoordinates(); ok {
			if prec == "" {
				prec = "fp32" // replicas predating the precision field
			}
			key = CacheKey{
				Digest: digest, Class: gr.Class, Count: gr.Count,
				Seed: *gr.Seed, DDIMSteps: ddim, Precision: prec, Format: gr.Format,
			}
			cacheable = true
		}
	}
	if gr.Seed == nil {
		rt.met.cacheBypass.Add(1)
	}
	if cacheable {
		if ent, ok := rt.cache.Get(key); ok {
			rt.met.cacheHits.Add(1)
			if rt.cfg.ValidateEvery > 0 && rt.hitCtr.Add(1)%uint64(rt.cfg.ValidateEvery) == 0 {
				rt.validateHit(w, r, gr, body, key, ent)
				return
			}
			rt.writeCached(w, ent, "hit")
			return
		}
		rt.met.cacheMisses.Add(1)
	}
	rt.proxy(w, r, gr, body, key, cacheable)
}

// proxy runs the attempt loop over scored candidates and writes the
// outcome (success passthrough or the status-mapping table's verdict).
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, gr routeRequest, body []byte, key CacheKey, cacheable bool) {
	in := RouteInput{Class: gr.Class, Count: gr.Count}
	tried := map[int]bool{}
	fail := routeFailure{Healthy: rt.pool.Healthy()}
	for {
		rep := rt.next(in, tried)
		if rep == nil {
			break
		}
		tried[rep.id] = true
		fail.Attempts++
		rep.requests.Add(1)
		status, hdr, respBody, err := rt.forward(r.Context(), rep, body)
		rt.pool.release(rep, gr.Class)
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away (disconnect or deadline), which
				// fails client.Do no matter how healthy the replica is.
				// Ejecting here — and then retrying every remaining
				// replica with the same dead context — would let one
				// impatient client empty the candidate set, so give up
				// without blaming anyone.
				rt.met.clientAborts.Add(1)
				return
			}
			// Transport failure: eject the replica so later requests
			// don't re-dial a dead upstream before the probe notices.
			rt.pool.noteProxyFailure(rep)
			fail.SawTransport = true
			rt.met.retries.Add(1)
			continue
		}
		switch {
		case status == http.StatusOK:
			if cacheable {
				rt.storeResponse(key, hdr, respBody)
			}
			rt.writeUpstream(w, status, hdr, respBody, rep.url)
			rt.met.completed.Add(1)
			return
		case status == http.StatusTooManyRequests:
			rep.status429.Add(1)
			fail.Saw429 = true
			if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err == nil && ra > fail.MaxRetryAfter {
				fail.MaxRetryAfter = ra
			}
			rt.met.retries.Add(1)
			continue
		case status == http.StatusGatewayTimeout:
			// The request's own deadline expired inside the replica;
			// retrying elsewhere could only blow it further. Verbatim.
			rep.status504.Add(1)
			rt.met.mapped504.Add(1)
			rt.writeUpstream(w, status, hdr, respBody, rep.url)
			return
		case status >= 500:
			// The replica answered, so it is alive — no ejection — but
			// this request deserves a different one.
			rep.errors.Add(1)
			fail.SawTransport = true
			rt.met.retries.Add(1)
			continue
		default:
			// Client errors (bad class, bad count, …) are the same on
			// every replica.
			rt.writeUpstream(w, status, hdr, respBody, rep.url)
			return
		}
	}
	status, retryAfter := mapFailure(fail)
	switch status {
	case http.StatusTooManyRequests:
		rt.met.mapped429.Add(1)
	case http.StatusServiceUnavailable:
		rt.met.rejected.Add(1)
	default:
		rt.met.mapped502.Add(1)
	}
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	http.Error(w, failureBody(status, fail), status)
}

// routeFailure summarizes an attempt loop that produced no response to
// pass through.
type routeFailure struct {
	// Healthy is the healthy-replica count when routing began.
	Healthy int
	// Attempts counts upstream requests actually made.
	Attempts int
	// Saw429 records that at least one replica shed the request;
	// MaxRetryAfter is the largest Retry-After (seconds) seen on one.
	Saw429        bool
	MaxRetryAfter int
	// SawTransport records connect/transport failures or upstream 5xx.
	SawTransport bool
}

// mapFailure is the router's status-mapping table for exhausted
// attempt loops:
//
//	all attempts 429 (even mixed with transport failures) → 429 with
//	  the max Retry-After seen — backpressure propagates as
//	  backpressure, never as 502
//	no healthy replica to try                             → 503 + Retry-After
//	healthy replicas all at the router in-flight bound    → 429 + Retry-After
//	only transport failures / upstream 5xx                → 502
func mapFailure(f routeFailure) (status int, retryAfter string) {
	switch {
	case f.Saw429:
		ra := f.MaxRetryAfter
		if ra < 1 {
			ra = 1
		}
		return http.StatusTooManyRequests, strconv.Itoa(ra)
	case f.Attempts == 0 && f.Healthy == 0:
		return http.StatusServiceUnavailable, "1"
	case f.Attempts == 0:
		return http.StatusTooManyRequests, "1"
	default:
		return http.StatusBadGateway, ""
	}
}

// failureBody renders the mapped failure for the response body.
func failureBody(status int, f routeFailure) string {
	switch status {
	case http.StatusTooManyRequests:
		return "cluster at capacity"
	case http.StatusServiceUnavailable:
		return "no healthy replicas"
	default:
		return fmt.Sprintf("all %d replica attempts failed", f.Attempts)
	}
}

// next ranks the untried replicas under the routing policy and
// reserves the best one that still has in-flight headroom. Nil when no
// candidate can be reserved.
func (rt *Router) next(in RouteInput, tried map[int]bool) *replica {
	var cands []*replica
	var stats []ReplicaStatus
	for _, r := range rt.pool.all() {
		if tried[r.id] {
			continue
		}
		st := r.status()
		if !st.Healthy {
			continue
		}
		cands = append(cands, r)
		stats = append(stats, st)
	}
	if len(cands) == 0 {
		return nil
	}
	scorers := rt.cfg.Scorers
	if scorers == nil {
		// Power-of-two-choices: draw two distinct candidates from a
		// splitmix64-spread counter, then let the queue-depth score
		// settle it. No RNG state crosses handler goroutines.
		if len(cands) > 2 {
			c := rt.p2cCtr.Add(1)
			i := int(splitmix64(c) % uint64(len(cands)))
			j := int(splitmix64(splitmix64(c)) % uint64(len(cands)-1))
			if j >= i {
				j++
			}
			cands = []*replica{cands[i], cands[j]}
			stats = []ReplicaStatus{stats[i], stats[j]}
		}
		scorers = []WeightedScorer{{Name: "queue-depth", Weight: 1, Fn: builtinScorers["queue-depth"]}}
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	scores := make([]float64, len(cands))
	for i, st := range stats {
		scores[i] = scoreReplica(scorers, in, st)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] { //tracelint:allow floateq — exact tie detection for deterministic id ordering, not numeric comparison
			return scores[order[a]] > scores[order[b]]
		}
		return cands[order[a]].id < cands[order[b]].id
	})
	for _, i := range order {
		if rt.pool.acquire(cands[i]) {
			return cands[i]
		}
	}
	return nil
}

// forward issues the upstream request and reads the full response.
func (rt *Router) forward(ctx context.Context, rep *replica, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, data, nil
}

// storeResponse caches a successful seeded response, but only when the
// replica's cache-validation headers confirm it was generated from
// exactly the coordinates the key claims — a replica that changed
// checkpoints between the probe and the response must not poison the
// cache.
func (rt *Router) storeResponse(key CacheKey, hdr http.Header, body []byte) {
	prec := hdr.Get("X-Traced-Precision")
	if prec == "" {
		prec = "fp32" // replicas predating the precision header
	}
	if hdr.Get("X-Traced-Checkpoint") != key.Digest ||
		hdr.Get("X-Traced-DDIM-Steps") != strconv.Itoa(key.DDIMSteps) ||
		prec != key.Precision {
		rt.met.coordMismatches.Add(1)
		return
	}
	rt.cache.Put(key, &CachedResponse{
		Body:        body,
		ContentType: hdr.Get("Content-Type"),
		Seed:        hdr.Get("X-Traced-Seed"),
		Flows:       hdr.Get("X-Traced-Flows"),
		Digest:      hdr.Get("X-Traced-Checkpoint"),
		DDIMSteps:   hdr.Get("X-Traced-DDIM-Steps"),
		Precision:   prec,
	})
}

// validateHit re-fetches a cache hit from a replica and asserts
// byte-identity. On a mismatch the entry is dropped, the replica's
// bytes are served, and the mismatch is counted; if no replica can
// answer, the cached bytes are served as usual.
func (rt *Router) validateHit(w http.ResponseWriter, r *http.Request, gr routeRequest, body []byte, key CacheKey, ent *CachedResponse) {
	rt.met.validations.Add(1)
	in := RouteInput{Class: gr.Class, Count: gr.Count}
	rep := rt.next(in, map[int]bool{})
	if rep == nil {
		rt.writeCached(w, ent, "hit")
		return
	}
	rep.requests.Add(1)
	status, hdr, respBody, err := rt.forward(r.Context(), rep, body)
	rt.pool.release(rep, gr.Class)
	if err != nil || status != http.StatusOK {
		rt.writeCached(w, ent, "hit")
		return
	}
	if !bytes.Equal(respBody, ent.Body) {
		rt.met.validationMismatches.Add(1)
		rt.cache.Drop(key)
		rt.writeUpstream(w, status, hdr, respBody, rep.url)
		return
	}
	rt.writeCached(w, ent, "hit-validated")
}

// writeCached replays a cache entry.
func (rt *Router) writeCached(w http.ResponseWriter, ent *CachedResponse, verdict string) {
	h := w.Header()
	if ent.ContentType != "" {
		h.Set("Content-Type", ent.ContentType)
	}
	if ent.Seed != "" {
		h.Set("X-Traced-Seed", ent.Seed)
	}
	if ent.Flows != "" {
		h.Set("X-Traced-Flows", ent.Flows)
	}
	if ent.Digest != "" {
		h.Set("X-Traced-Checkpoint", ent.Digest)
	}
	if ent.DDIMSteps != "" {
		h.Set("X-Traced-DDIM-Steps", ent.DDIMSteps)
	}
	if ent.Precision != "" {
		h.Set("X-Traced-Precision", ent.Precision)
	}
	h.Set("Content-Length", strconv.Itoa(len(ent.Body)))
	h.Set("X-Cache", verdict)
	if _, err := w.Write(ent.Body); err != nil {
		rt.met.writeErrors.Add(1)
	}
	rt.met.completed.Add(1)
}

// writeUpstream passes a replica response through, preserving its
// generation headers.
func (rt *Router) writeUpstream(w http.ResponseWriter, status int, hdr http.Header, body []byte, replicaURL string) {
	h := w.Header()
	for _, name := range []string{
		"Content-Type", "Retry-After",
		"X-Traced-Seed", "X-Traced-Flows", "X-Traced-Checkpoint", "X-Traced-DDIM-Steps", "X-Traced-Precision",
	} {
		if v := hdr.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	h.Set("X-Cache", "miss")
	h.Set("X-Cluster-Replica", replicaURL)
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		rt.met.writeErrors.Add(1)
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.writeText(w, http.StatusOK, "ok")
}

// readyPayload is the JSON body of the router's /readyz?verbose=1.
type readyPayload struct {
	Status   string          `json:"status"`
	Healthy  int             `json:"healthy_replicas"`
	Replicas []ReplicaStatus `json:"replicas"`
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	healthy := rt.pool.Healthy()
	status, code := "ready", http.StatusOK
	switch {
	case rt.isDraining():
		status, code = "draining", http.StatusServiceUnavailable
	case healthy == 0:
		status, code = "no healthy replicas", http.StatusServiceUnavailable
	}
	if r.URL.Query().Get("verbose") != "1" {
		rt.writeText(w, code, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(readyPayload{
		Status: status, Healthy: healthy, Replicas: rt.pool.Snapshot(),
	}); err != nil {
		rt.met.writeErrors.Add(1)
	}
}

func (rt *Router) handleReplicas(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(rt.pool.Snapshot()); err != nil {
		rt.met.writeErrors.Add(1)
	}
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write([]byte(rt.met.vars.String())); err != nil {
		rt.met.writeErrors.Add(1)
	}
}

// writeText writes a small plain-text response.
func (rt *Router) writeText(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	if _, err := w.Write([]byte(body + "\n")); err != nil {
		rt.met.writeErrors.Add(1)
	}
}

// routerMetrics is the router's expvar-backed instrumentation.
type routerMetrics struct {
	vars *expvar.Map

	requests     *expvar.Int // requests_total
	completed    *expvar.Int // completed_total
	rejected     *expvar.Int // rejected_total (503, no healthy replica)
	retries      *expvar.Int // retries_total (failed attempts that moved on)
	clientAborts *expvar.Int // client_aborts_total (client gone mid-proxy)
	mapped429    *expvar.Int // mapped_429_total (aggregate backpressure)
	mapped502    *expvar.Int // mapped_502_total
	mapped504    *expvar.Int // mapped_504_total (passed-through deadline expiry)
	cacheHits    *expvar.Int // cache_hits_total
	cacheMisses  *expvar.Int // cache_misses_total
	cacheBypass  *expvar.Int // cache_bypass_total (unseeded requests)

	validations          *expvar.Int // cache_validations_total
	validationMismatches *expvar.Int // cache_validation_mismatches_total
	coordMismatches      *expvar.Int // cache_coordinate_mismatches_total

	writeErrors *expvar.Int // response_write_errors_total
}

// newRouterMetrics wires counters plus live gauges over the pool and
// cache, including the per-upstream 429/504/error counts the
// backpressure story is audited with.
func newRouterMetrics(pool *Pool, cache *Cache) *routerMetrics {
	m := &routerMetrics{vars: new(expvar.Map).Init()}
	newInt := func(name string) *expvar.Int {
		v := new(expvar.Int)
		m.vars.Set(name, v)
		return v
	}
	m.requests = newInt("requests_total")
	m.completed = newInt("completed_total")
	m.rejected = newInt("rejected_total")
	m.retries = newInt("retries_total")
	m.clientAborts = newInt("client_aborts_total")
	m.mapped429 = newInt("mapped_429_total")
	m.mapped502 = newInt("mapped_502_total")
	m.mapped504 = newInt("mapped_504_total")
	m.cacheHits = newInt("cache_hits_total")
	m.cacheMisses = newInt("cache_misses_total")
	m.cacheBypass = newInt("cache_bypass_total")
	m.validations = newInt("cache_validations_total")
	m.validationMismatches = newInt("cache_validation_mismatches_total")
	m.coordMismatches = newInt("cache_coordinate_mismatches_total")
	m.writeErrors = newInt("response_write_errors_total")

	m.vars.Set("replicas_total", expvar.Func(func() any { return pool.Size() }))
	m.vars.Set("replicas_healthy", expvar.Func(func() any { return pool.Healthy() }))
	upstream := func(pick func(ReplicaStatus) int64) expvar.Func {
		return func() any {
			out := map[string]int64{}
			for _, st := range pool.Snapshot() {
				out[st.URL] = pick(st)
			}
			return out
		}
	}
	m.vars.Set("upstream_requests_total", upstream(func(st ReplicaStatus) int64 { return st.Requests }))
	m.vars.Set("upstream_429_total", upstream(func(st ReplicaStatus) int64 { return st.Status429 }))
	m.vars.Set("upstream_504_total", upstream(func(st ReplicaStatus) int64 { return st.Status504 }))
	m.vars.Set("upstream_errors_total", upstream(func(st ReplicaStatus) int64 { return st.Errors }))
	if cache != nil {
		m.vars.Set("cache_entries", expvar.Func(func() any { return cache.Stats().Entries }))
		m.vars.Set("cache_bytes", expvar.Func(func() any { return cache.Stats().Bytes }))
		m.vars.Set("cache_evictions_total", expvar.Func(func() any { return cache.Stats().Evictions }))
	}
	return m
}
