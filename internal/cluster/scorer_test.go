package cluster

import (
	"math"
	"testing"
)

func TestParseScorers(t *testing.T) {
	cases := []struct {
		spec    string
		names   []string
		weights []float64
		wantNil bool
		wantErr bool
	}{
		{spec: "", wantNil: true},
		{spec: "p2c", wantNil: true},
		{spec: "  p2c  ", wantNil: true},
		{spec: "queue-depth", names: []string{"queue-depth"}, weights: []float64{1}},
		{
			spec:    "class-affinity:3,queue-depth:2",
			names:   []string{"class-affinity", "queue-depth"},
			weights: []float64{3, 2},
		},
		{
			spec:    "least-inflight:0.5, queue-depth:1.5",
			names:   []string{"least-inflight", "queue-depth"},
			weights: []float64{0.5, 1.5},
		},
		{spec: "no-such-scorer", wantErr: true},
		{spec: "queue-depth:zero", wantErr: true},
		{spec: "queue-depth:0", wantErr: true},
		{spec: "queue-depth:-1", wantErr: true},
		{spec: ",", wantErr: true}, // only empty parts
	}
	for _, tc := range cases {
		got, err := ParseScorers(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseScorers(%q): want error, got %v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseScorers(%q): %v", tc.spec, err)
			continue
		}
		if tc.wantNil {
			if got != nil {
				t.Errorf("ParseScorers(%q) = %v, want nil (p2c fallback)", tc.spec, got)
			}
			continue
		}
		if len(got) != len(tc.names) {
			t.Errorf("ParseScorers(%q): %d scorers, want %d", tc.spec, len(got), len(tc.names))
			continue
		}
		for i, ws := range got {
			if ws.Name != tc.names[i] || ws.Weight != tc.weights[i] || ws.Fn == nil {
				t.Errorf("ParseScorers(%q)[%d] = {%s %v}, want {%s %v}",
					tc.spec, i, ws.Name, ws.Weight, tc.names[i], tc.weights[i])
			}
		}
	}
}

func TestQueueDepthScorerPrefersIdle(t *testing.T) {
	fn := builtinScorers["queue-depth"]
	in := RouteInput{Class: "web", Count: 1}
	idle := fn(in, ReplicaStatus{})
	queued := fn(in, ReplicaStatus{QueueDepth: 4})
	flowing := fn(in, ReplicaStatus{InFlightFlows: 4})
	routing := fn(in, ReplicaStatus{InFlight: 4})
	if idle != 1 {
		t.Fatalf("idle score = %v, want 1", idle)
	}
	for name, s := range map[string]float64{"queued": queued, "flowing": flowing, "routing": routing} {
		if math.Abs(s-0.2) > 1e-12 {
			t.Fatalf("%s score = %v, want 0.2 (all load terms equivalent)", name, s)
		}
	}
}

func TestClassAffinityScorer(t *testing.T) {
	fn := builtinScorers["class-affinity"]
	in := RouteInput{Class: "web"}
	if got := fn(in, ReplicaStatus{LastClass: "web"}); got != 1 {
		t.Fatalf("same-class score = %v, want 1", got)
	}
	if got := fn(in, ReplicaStatus{}); got != 0.5 {
		t.Fatalf("cold score = %v, want 0.5", got)
	}
	if got := fn(in, ReplicaStatus{LastClass: "video"}); got != 0 {
		t.Fatalf("cross-class score = %v, want 0", got)
	}
}

func TestLeastInflightScorer(t *testing.T) {
	fn := builtinScorers["least-inflight"]
	in := RouteInput{}
	if a, b := fn(in, ReplicaStatus{InFlight: 0}), fn(in, ReplicaStatus{InFlight: 3}); a <= b {
		t.Fatalf("least-inflight: idle %v should beat busy %v", a, b)
	}
	// Replica-reported load must not leak into this scorer.
	if got := fn(in, ReplicaStatus{QueueDepth: 100}); got != 1 {
		t.Fatalf("queue depth leaked into least-inflight: %v", got)
	}
}

func TestScoreReplicaWeightedSum(t *testing.T) {
	policy, err := ParseScorers("class-affinity:3,queue-depth:2")
	if err != nil {
		t.Fatal(err)
	}
	in := RouteInput{Class: "web"}
	warmIdle := scoreReplica(policy, in, ReplicaStatus{LastClass: "web"})
	if math.Abs(warmIdle-5) > 1e-12 { // 3*1 + 2*1
		t.Fatalf("warm idle = %v, want 5", warmIdle)
	}
	coldIdle := scoreReplica(policy, in, ReplicaStatus{})
	if math.Abs(coldIdle-3.5) > 1e-12 { // 3*0.5 + 2*1
		t.Fatalf("cold idle = %v, want 3.5", coldIdle)
	}
	// Affinity at weight 3 should outrank a moderate queue: a warm
	// replica with 2 queued still beats a cold idle one.
	warmBusy := scoreReplica(policy, in, ReplicaStatus{LastClass: "web", QueueDepth: 2})
	if warmBusy <= coldIdle {
		t.Fatalf("warm busy %v should beat cold idle %v under affinity:3", warmBusy, coldIdle)
	}
}

func TestSplitmix64Spreads(t *testing.T) {
	// The p2c counter spread must not collapse to few replicas: over
	// 1024 consecutive counters mod 8, every residue should appear.
	seen := map[uint64]int{}
	for i := uint64(1); i <= 1024; i++ {
		seen[splitmix64(i)%8]++
	}
	for r := uint64(0); r < 8; r++ {
		if seen[r] == 0 {
			t.Fatalf("residue %d never drawn: %v", r, seen)
		}
	}
}
