package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"trafficdiff/internal/serve"
)

// PoolConfig parameterizes replica health tracking. Zero values take
// the defaults noted on each field.
type PoolConfig struct {
	// ProbeInterval is how often a healthy replica's /readyz?verbose=1
	// is scraped (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 2s).
	ProbeTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential re-probe backoff of
	// an ejected replica: first re-probe after BackoffMin, doubling per
	// consecutive failure up to BackoffMax (defaults 250ms, 8s). One
	// successful probe reinstates the replica immediately.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxInFlight bounds the requests the router keeps in flight on one
	// replica; a replica at the bound is skipped during selection
	// (default 32).
	MaxInFlight int
	// Client overrides the probe/proxy HTTP client (tests).
	Client *http.Client
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 8 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	return c
}

// replica is one upstream traced instance.
type replica struct {
	id  int
	url string

	mu        sync.Mutex
	healthy   bool              // guarded by mu
	fails     int               // guarded by mu — consecutive probe/proxy failures
	nextProbe time.Time         // guarded by mu — earliest next probe while ejected
	ready     serve.ReadyStatus // guarded by mu — last verbose readiness payload
	lastClass string            // guarded by mu — last class routed here (affinity)
	inFlight  int               // guarded by mu — router-side requests on this replica
	removed   bool              // guarded by mu — withdrawn from the pool

	requests  atomic.Int64 // proxied requests attempted
	errors    atomic.Int64 // transport errors + upstream 5xx treated as failures
	status429 atomic.Int64
	status504 atomic.Int64
}

// ReplicaStatus is a point-in-time snapshot of one replica, the input
// to routing scorers and the payload of the router's /replicas
// endpoint.
type ReplicaStatus struct {
	ID      int    `json:"id"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// QueueDepth and InFlightFlows come from the replica's last verbose
	// readiness payload; InFlight is the router's own bounded accounting
	// of requests it currently has on this replica.
	QueueDepth       int    `json:"queue_depth"`
	InFlightFlows    int64  `json:"in_flight_flows"`
	InFlight         int    `json:"router_in_flight"`
	CheckpointDigest string `json:"checkpoint_digest,omitempty"`
	DDIMSteps        int    `json:"ddim_steps"`
	Precision        string `json:"precision,omitempty"`
	LastClass        string `json:"last_class,omitempty"`
	Requests         int64  `json:"requests_total"`
	Errors           int64  `json:"errors_total"`
	Status429        int64  `json:"status_429_total"`
	Status504        int64  `json:"status_504_total"`
}

// Pool tracks the replica set and its health. Replicas are probed on a
// fixed cadence via /readyz?verbose=1; a failed probe (or a transport
// failure observed by the proxy) ejects the replica, and re-probes at
// exponentially backed-off intervals reinstate it on the first
// success.
type Pool struct {
	cfg    PoolConfig
	client *http.Client

	mu       sync.Mutex
	replicas []*replica // guarded by mu
	nextID   int        // guarded by mu

	kick   chan struct{}
	stopCh chan struct{}
	wg     sync.WaitGroup
	probes atomic.Int64
}

// NewPool starts a pool with no replicas and its probe loop running.
// Callers must eventually Close it.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	p := &Pool{
		cfg:    cfg,
		client: client,
		kick:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.probeLoop()
	return p
}

// Close stops the probe loop. It does not touch the replicas
// themselves (the scaler owns managed processes).
func (p *Pool) Close() {
	close(p.stopCh)
	p.wg.Wait()
}

// Add registers a replica by base URL (e.g. "http://127.0.0.1:8080").
// It starts ejected and joins the candidate set at its first
// successful probe, which is triggered immediately.
func (p *Pool) Add(url string) {
	r := &replica{url: url}
	p.mu.Lock()
	r.id = p.nextID
	p.nextID++
	p.replicas = append(p.replicas, r)
	p.mu.Unlock()
	p.Kick()
}

// Remove withdraws the replica with the given URL: it stops being a
// routing candidate at once (requests already proxied to it finish).
// Reports whether a replica was removed.
func (p *Pool) Remove(url string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.replicas {
		if r.url == url {
			p.replicas = append(p.replicas[:i], p.replicas[i+1:]...)
			r.mu.Lock()
			r.removed = true
			r.mu.Unlock()
			return true
		}
	}
	return false
}

// Kick schedules an immediate probe round (non-blocking).
func (p *Pool) Kick() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// Snapshot returns the current replica set, healthy or not, in id
// order.
func (p *Pool) Snapshot() []ReplicaStatus {
	var out []ReplicaStatus
	for _, r := range p.all() {
		out = append(out, r.status())
	}
	return out
}

// status snapshots one replica.
func (r *replica) status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStatus{
		ID:               r.id,
		URL:              r.url,
		Healthy:          r.healthy,
		QueueDepth:       r.ready.QueueDepth,
		InFlightFlows:    r.ready.InFlightFlows,
		InFlight:         r.inFlight,
		CheckpointDigest: r.ready.CheckpointDigest,
		DDIMSteps:        r.ready.DDIMSteps,
		Precision:        r.ready.Precision,
		LastClass:        r.lastClass,
		Requests:         r.requests.Load(),
		Errors:           r.errors.Load(),
		Status429:        r.status429.Load(),
		Status504:        r.status504.Load(),
	}
}

// all returns the replica slice under the pool lock.
func (p *Pool) all() []*replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*replica(nil), p.replicas...)
}

// Healthy counts replicas currently in the candidate set.
func (p *Pool) Healthy() int {
	n := 0
	for _, r := range p.all() {
		r.mu.Lock()
		if r.healthy {
			n++
		}
		r.mu.Unlock()
	}
	return n
}

// Size counts all registered replicas, healthy or not.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.replicas)
}

// CacheCoordinates returns the (checkpoint digest, DDIM steps,
// precision) triple every healthy replica agrees on, or ok=false while
// replicas disagree, report no digest, or none are healthy. The router
// only keys its cache under consensus — a mixed-configuration pool
// (including one mixing int8 and fp32 replicas) must not alias
// entries. Replicas predating the precision field report "" and agree
// only with each other; the proxy normalizes "" to "fp32" when keying.
func (p *Pool) CacheCoordinates() (digest string, ddimSteps int, precision string, ok bool) {
	seen := false
	for _, r := range p.all() {
		r.mu.Lock()
		d, steps, prec, healthy := r.ready.CheckpointDigest, r.ready.DDIMSteps, r.ready.Precision, r.healthy
		r.mu.Unlock()
		if !healthy {
			continue
		}
		if d == "" {
			return "", 0, "", false
		}
		if !seen {
			digest, ddimSteps, precision, seen = d, steps, prec, true
			continue
		}
		if digest != d || ddimSteps != steps || precision != prec {
			return "", 0, "", false
		}
	}
	return digest, ddimSteps, precision, seen
}

// acquire reserves an in-flight slot on the replica, refusing when it
// is unhealthy, withdrawn, or at the per-replica bound.
func (p *Pool) acquire(r *replica) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.healthy || r.removed || r.inFlight >= p.cfg.MaxInFlight {
		return false
	}
	r.inFlight++
	return true
}

// release returns a slot taken by acquire, recording the class routed
// there for affinity scoring.
func (p *Pool) release(r *replica, class string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inFlight--
	if class != "" {
		r.lastClass = class
	}
}

// noteProxyFailure records a transport-level proxy failure: the
// replica is ejected exactly as if a probe had failed, so the next
// request doesn't retry a dead upstream before the probe loop notices.
func (p *Pool) noteProxyFailure(r *replica) {
	r.errors.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.healthy = false
	r.fails++
	r.nextProbe = time.Now().Add(p.backoff(r.fails))
}

// backoff maps consecutive failures to the ejection re-probe delay.
func (p *Pool) backoff(fails int) time.Duration {
	d := p.cfg.BackoffMin
	for i := 1; i < fails && d < p.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > p.cfg.BackoffMax {
		d = p.cfg.BackoffMax
	}
	return d
}

// probeLoop scrapes every replica due for a probe, on the configured
// cadence plus explicit kicks (replica added, scaler event).
func (p *Pool) probeLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-t.C:
		case <-p.kick:
		}
		p.probeDue(time.Now())
	}
}

// probeDue probes, concurrently, every replica whose next probe time
// has arrived (healthy replicas are always due).
func (p *Pool) probeDue(now time.Time) {
	var wg sync.WaitGroup
	for _, r := range p.all() {
		r.mu.Lock()
		due := r.healthy || !now.Before(r.nextProbe)
		r.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			p.probeOne(r)
		}(r)
	}
	wg.Wait()
	p.probes.Add(1)
}

// probeOne scrapes one replica's verbose readiness and applies the
// outcome: success reinstates (or refreshes) it, failure ejects it
// with exponential backoff.
func (p *Pool) probeOne(r *replica) {
	st, err := p.fetchReady(r.url)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.healthy = false
		r.fails++
		r.nextProbe = time.Now().Add(p.backoff(r.fails))
		return
	}
	r.healthy = true
	r.fails = 0
	r.ready = *st
}

// fetchReady performs one verbose readiness scrape.
func (p *Pool) fetchReady(base string) (*serve.ReadyStatus, error) {
	resp, err := p.client.Get(base + "/readyz?verbose=1")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("readyz: status %d", resp.StatusCode)
	}
	var st serve.ReadyStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("readyz: decoding body: %w", err)
	}
	return &st, nil
}
