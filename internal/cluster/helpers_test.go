package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trafficdiff/internal/serve"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// fakeReplica is an httptest-backed stand-in for one traced instance:
// /readyz?verbose=1 reports configurable coordinates and /v1/generate
// answers with a deterministic body that is a pure function of the
// request plus (digest, ddim, salt) — so two fakes configured alike are
// byte-identical, mimicking seeded-generation purity.
type fakeReplica struct {
	srv *httptest.Server

	mu         sync.Mutex
	digest     string
	ddim       int
	precision  string // "" reported as fp32, like a real traced
	queueDepth int
	readyFail  bool
	genStatus  int // 0 → 200
	retryAfter string
	salt       string
	block      chan struct{} // when non-nil, generate waits for a receive

	genCalls atomic.Int64
}

func newFakeReplica(t *testing.T, digest string, ddim int) *fakeReplica {
	t.Helper()
	f := &fakeReplica{digest: digest, ddim: ddim}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", f.handleReadyz)
	mux.HandleFunc("/v1/generate", f.handleGenerate)
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) url() string { return f.srv.URL }

func (f *fakeReplica) set(mutate func(*fakeReplica)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mutate(f)
}

func (f *fakeReplica) handleReadyz(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	fail, digest, ddim, prec, depth := f.readyFail, f.digest, f.ddim, f.precisionLocked(), f.queueDepth
	f.mu.Unlock()
	if fail {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("verbose") != "1" {
		fmt.Fprintln(w, "ready")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(serve.ReadyStatus{
		Status:           "ready",
		QueueDepth:       depth,
		CheckpointDigest: digest,
		DDIMSteps:        ddim,
		Precision:        prec,
	})
}

// precisionLocked reads the effective precision; callers hold f.mu.
func (f *fakeReplica) precisionLocked() string {
	if f.precision == "" {
		return "fp32"
	}
	return f.precision
}

func (f *fakeReplica) handleGenerate(w http.ResponseWriter, r *http.Request) {
	f.genCalls.Add(1)
	f.mu.Lock()
	status, retryAfter, digest, ddim, prec, salt, block := f.genStatus, f.retryAfter, f.digest, f.ddim, f.precisionLocked(), f.salt, f.block
	f.mu.Unlock()
	if block != nil {
		select {
		case <-block:
		case <-r.Context().Done():
			return
		}
	}
	switch status {
	case 0, http.StatusOK:
	case http.StatusTooManyRequests:
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		http.Error(w, "queue full", status)
		return
	default:
		http.Error(w, "upstream says no", status)
		return
	}
	var req routeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seed := "unseeded"
	if req.Seed != nil {
		seed = strconv.FormatUint(*req.Seed, 10)
	}
	body := fmt.Sprintf("gen|%s|%s|%d|%s|%d|%s|%s|%s", digest, req.Class, req.Count, seed, ddim, prec, req.Format, salt)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Traced-Checkpoint", digest)
	w.Header().Set("X-Traced-DDIM-Steps", strconv.Itoa(ddim))
	w.Header().Set("X-Traced-Precision", prec)
	if req.Seed != nil {
		w.Header().Set("X-Traced-Seed", seed)
	}
	w.Header().Set("X-Traced-Flows", strconv.Itoa(req.Count))
	_, _ = w.Write([]byte(body))
}

// newTestPool builds a fast-probing pool and registers every fake.
func newTestPool(t *testing.T, cfg PoolConfig, reps ...*fakeReplica) *Pool {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 10 * time.Millisecond
	}
	if cfg.BackoffMin == 0 {
		cfg.BackoffMin = 10 * time.Millisecond
	}
	p := NewPool(cfg)
	t.Cleanup(p.Close)
	for _, f := range reps {
		p.Add(f.url())
	}
	return p
}

// newTestRouter serves a Router over the pool and returns its base URL.
func newTestRouter(t *testing.T, p *Pool, cfg Config) (*Router, string) {
	t.Helper()
	rt := NewRouter(p, cfg)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts.URL
}

// postJSON fires one POST /v1/generate and returns status, body, header.
func postJSON(t *testing.T, base, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// fetchMetricsMap decodes the router's /metrics JSON.
func fetchMetricsMap(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// metricInt pulls a top-level numeric metric.
func metricInt(t *testing.T, m map[string]any, name string) int64 {
	t.Helper()
	v, ok := m[name].(float64)
	if !ok {
		t.Fatalf("metric %q missing or non-numeric: %v", name, m[name])
	}
	return int64(v)
}
