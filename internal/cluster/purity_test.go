package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/serve"
)

// pureEngine is a serve.Engine whose output is a pure function of
// (class, seeds): the property the response cache's correctness rests
// on. It also exposes a DDIM budget the way core.Engine does, so serve
// reports it on /readyz?verbose=1 and response headers.
type pureEngine struct {
	classes []string
	ddim    int
}

func (e *pureEngine) Classes() []string       { return append([]string(nil), e.classes...) }
func (e *pureEngine) Stats() core.EngineStats { return core.EngineStats{} }
func (e *pureEngine) DDIMSteps() int          { return e.ddim }
func (e *pureEngine) Generate(ctx context.Context, class string, seeds []uint64, onAdmit func()) (*core.GenerateResult, error) {
	if onAdmit != nil {
		onAdmit()
	}
	res := &core.GenerateResult{}
	for _, s := range seeds {
		data := make([]byte, 16)
		binary.BigEndian.PutUint64(data, s)
		data[8] = byte(e.ddim) // DDIM budget shapes the bytes, as sampling depth does in the real engine
		res.Flows = append(res.Flows, &flow.Flow{
			Label:   class,
			Packets: []*packet.Packet{{Timestamp: time.Unix(0, 0).UTC(), Data: data}},
		})
		res.Matrices = append(res.Matrices, nprint.NewMatrix(1))
	}
	return res, nil
}

// newServeReplica stands up a real serve.Server over a pureEngine.
func newServeReplica(t *testing.T, digest string, ddim int, seedBase uint64) *httptest.Server {
	t.Helper()
	s := serve.NewWithEngine(
		&pureEngine{classes: []string{"web", "video"}, ddim: ddim},
		serve.Config{CheckpointDigest: digest, SeedBase: seedBase},
	)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestCacheHitByteIdentity is the cache-correctness property test: for
// every (class, count, seed, format, DDIM budget) coordinate, the
// router's cache hit must be byte-identical both to its own first
// (replica-served) response and to a direct replica round trip — over
// real serve.Server replicas, not fakes.
func TestCacheHitByteIdentity(t *testing.T) {
	for _, ddim := range []int{6, 12} {
		digest := fmt.Sprintf("sha256:feedface%02d", ddim)
		r1 := newServeReplica(t, digest, ddim, 1)
		r2 := newServeReplica(t, digest, ddim, 2)
		p := newTestPool(t, PoolConfig{})
		p.Add(r1.URL)
		p.Add(r2.URL)
		waitUntil(t, 5*time.Second, "both replicas healthy", func() bool { return p.Healthy() == 2 })
		_, base := newTestRouter(t, p, Config{})

		for _, class := range []string{"web", "video"} {
			for _, count := range []int{1, 3} {
				for _, seed := range []uint64{1, 42, 1 << 40} {
					for _, format := range []string{"pcap", "csv"} {
						req := fmt.Sprintf(`{"class":%q,"count":%d,"seed":%d,"format":%q}`, class, count, seed, format)

						status, missBody, hdr := postJSON(t, base, req)
						if status != 200 || hdr.Get("X-Cache") != "miss" {
							t.Fatalf("%s: first request status=%d X-Cache=%q", req, status, hdr.Get("X-Cache"))
						}

						status, hitBody, hdr := postJSON(t, base, req)
						if status != 200 || hdr.Get("X-Cache") != "hit" {
							t.Fatalf("%s: repeat status=%d X-Cache=%q", req, status, hdr.Get("X-Cache"))
						}
						if !bytes.Equal(missBody, hitBody) {
							t.Fatalf("%s: cache hit differs from replica-served response", req)
						}
						if hdr.Get("X-Traced-DDIM-Steps") != fmt.Sprint(ddim) {
							t.Fatalf("%s: hit DDIM header = %q, want %d", req, hdr.Get("X-Traced-DDIM-Steps"), ddim)
						}
						if hdr.Get("X-Traced-Checkpoint") != digest {
							t.Fatalf("%s: hit checkpoint header = %q, want %q", req, hdr.Get("X-Traced-Checkpoint"), digest)
						}

						// Direct round trips against both replicas: every
						// replica (and therefore the cache) agrees byte for
						// byte, because seeded generation is pure.
						for _, rep := range []*httptest.Server{r1, r2} {
							status, direct, _ := postJSON(t, rep.URL, req)
							if status != 200 {
								t.Fatalf("%s: direct replica status=%d", req, status)
							}
							if !bytes.Equal(direct, hitBody) {
								t.Fatalf("%s: replica %s round trip differs from cache hit", req, rep.URL)
							}
						}
					}
				}
			}
		}
	}
}

// TestUnseededNeverCached: without a client seed each replica derives
// its own seed chain (SeedBase differs per replica), so responses are
// not content-addressed and must always bypass the cache.
func TestUnseededNeverCached(t *testing.T) {
	digest := "sha256:feedface"
	r1 := newServeReplica(t, digest, 6, 1)
	r2 := newServeReplica(t, digest, 6, 2)
	p := newTestPool(t, PoolConfig{})
	p.Add(r1.URL)
	p.Add(r2.URL)
	waitUntil(t, 5*time.Second, "both replicas healthy", func() bool { return p.Healthy() == 2 })
	_, base := newTestRouter(t, p, Config{})

	req := `{"class":"web","count":1,"format":"pcap"}`
	for i := 0; i < 4; i++ {
		status, _, hdr := postJSON(t, base, req)
		if status != 200 {
			t.Fatalf("unseeded request %d: status=%d", i, status)
		}
		if got := hdr.Get("X-Cache"); got != "miss" {
			t.Fatalf("unseeded request %d served from cache: X-Cache=%q", i, got)
		}
		if hdr.Get("X-Traced-Seed") == "" {
			t.Fatalf("unseeded request %d: replica did not report its derived seed", i)
		}
	}
	m := fetchMetricsMap(t, base)
	if metricInt(t, m, "cache_bypass_total") != 4 {
		t.Fatalf("cache_bypass_total = %d, want 4", metricInt(t, m, "cache_bypass_total"))
	}
	if metricInt(t, m, "cache_hits_total") != 0 {
		t.Fatalf("cache_hits_total = %d, want 0", metricInt(t, m, "cache_hits_total"))
	}
}

// TestServeReadyVerbose locks the replica side of the contract: the
// verbose readiness payload carries exactly the coordinates the router
// keys its cache on.
func TestServeReadyVerbose(t *testing.T) {
	ts := newServeReplica(t, "sha256:cafe", 9, 1)

	// Bare probe keeps the plain-text contract.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("bare readyz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/readyz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("verbose readyz Content-Type = %q", ct)
	}
	body = readAll(t, resp)
	for _, want := range []string{
		`"status":"ready"`, `"checkpoint_digest":"sha256:cafe"`, `"ddim_steps":9`,
		`"queue_depth":0`, `"in_flight_flows":0`, `"uptime_ms"`, `"web"`, `"video"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("verbose readyz missing %s: %s", want, body)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
