package cluster

import (
	"fmt"
	"testing"
)

func testResp(n int) *CachedResponse {
	return &CachedResponse{Body: make([]byte, n), ContentType: "application/octet-stream"}
}

func testKey(seed uint64) CacheKey {
	return CacheKey{Digest: "sha256:aa", Class: "web", Count: 1, Seed: seed, DDIMSteps: 6, Precision: "fp32", Format: "pcap"}
}

func TestCacheGetPut(t *testing.T) {
	c := NewCache(8, 1<<20)
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, testResp(10))
	got, ok := c.Get(k)
	if !ok || len(got.Body) != 10 {
		t.Fatalf("Get after Put: ok=%v body=%d", ok, len(got.Body))
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 10 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// Every field of CacheKey must participate in identity: responses from
// different checkpoints, DDIM budgets, precisions, classes, counts,
// seeds, or formats may never alias.
func TestCacheKeyDistinctPerField(t *testing.T) {
	base := testKey(1)
	variants := []CacheKey{base}
	for _, mutate := range []func(*CacheKey){
		func(k *CacheKey) { k.Digest = "sha256:bb" },
		func(k *CacheKey) { k.Class = "video" },
		func(k *CacheKey) { k.Count = 2 },
		func(k *CacheKey) { k.Seed = 2 },
		func(k *CacheKey) { k.DDIMSteps = 12 },
		func(k *CacheKey) { k.Precision = "int8" },
		func(k *CacheKey) { k.Format = "csv" },
	} {
		k := base
		mutate(&k)
		variants = append(variants, k)
	}
	c := NewCache(64, 1<<20)
	for i, k := range variants {
		c.Put(k, testResp(i+1))
	}
	if st := c.Stats(); st.Entries != len(variants) {
		t.Fatalf("entries = %d, want %d distinct", st.Entries, len(variants))
	}
	for i, k := range variants {
		got, ok := c.Get(k)
		if !ok || len(got.Body) != i+1 {
			t.Fatalf("variant %d: ok=%v body=%d want %d", i, ok, len(got.Body), i+1)
		}
	}
}

func TestCacheEvictsByEntryCount(t *testing.T) {
	c := NewCache(2, 1<<20)
	c.Put(testKey(1), testResp(1))
	c.Put(testKey(2), testResp(1))
	c.Put(testKey(3), testResp(1))
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("coldest entry survived entry-count eviction")
	}
	for _, s := range []uint64{2, 3} {
		if _, ok := c.Get(testKey(s)); !ok {
			t.Fatalf("seed %d evicted unexpectedly", s)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheEvictsByBytes(t *testing.T) {
	c := NewCache(100, 100)
	c.Put(testKey(1), testResp(60))
	c.Put(testKey(2), testResp(60)) // 120 > 100 → seed 1 evicted
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("byte budget not enforced")
	}
	if st := c.Stats(); st.Bytes != 60 || st.Entries != 1 {
		t.Fatalf("stats after byte eviction: %+v", st)
	}
}

func TestCacheRejectsOversizeBody(t *testing.T) {
	c := NewCache(10, 50)
	c.Put(testKey(1), testResp(51))
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversize body stored: %+v", st)
	}
}

// Re-putting an existing key refreshes recency without duplicating the
// entry (same key means same content: it is content-addressed).
func TestCachePutRefreshesRecency(t *testing.T) {
	c := NewCache(2, 1<<20)
	c.Put(testKey(1), testResp(1))
	c.Put(testKey(2), testResp(1))
	c.Put(testKey(1), testResp(1)) // 1 becomes MRU
	c.Put(testKey(3), testResp(1)) // evicts 2, not 1
	if _, ok := c.Get(testKey(1)); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if _, ok := c.Get(testKey(2)); ok {
		t.Fatal("cold entry survived")
	}
}

func TestCacheDrop(t *testing.T) {
	c := NewCache(8, 1<<20)
	c.Put(testKey(1), testResp(10))
	c.Drop(testKey(1))
	c.Drop(testKey(2)) // absent: no-op
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("entry survived Drop")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats after Drop: %+v", st)
	}
}

func TestCacheDefaultsBounds(t *testing.T) {
	c := NewCache(0, 0)
	if c.maxEntries != 4096 || c.maxBytes != 256<<20 {
		t.Fatalf("defaults: entries=%d bytes=%d", c.maxEntries, c.maxBytes)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(32, 1<<20)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := testKey(uint64(g*1000 + i%40))
				c.Put(k, testResp(8))
				c.Get(k)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if st := c.Stats(); st.Entries > 32 {
		t.Fatalf("entry bound violated: %+v", st)
	}
}

func TestCacheStatsString(t *testing.T) {
	// Guards the fields the router's expvar gauges read.
	c := NewCache(2, 1<<10)
	c.Put(testKey(1), testResp(4))
	st := c.Stats()
	if s := fmt.Sprintf("%d/%d", st.Entries, st.Bytes); s != "1/4" {
		t.Fatalf("stats = %s, want 1/4", s)
	}
}
