package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// RouteInput is what a scorer may condition on: the request's class
// and flow count.
type RouteInput struct {
	Class string
	Count int
}

// Scorer rates one replica for one request; higher is better. Scorers
// must be pure functions of their inputs so routing decisions are
// explainable from a pool snapshot.
type Scorer func(in RouteInput, r ReplicaStatus) float64

// WeightedScorer is one term of a weighted routing policy.
type WeightedScorer struct {
	Name   string
	Weight float64
	Fn     Scorer
}

// builtinScorers maps policy names (the -routing-scorers vocabulary)
// to their implementations.
//
//   - queue-depth: prefer replicas with shallow admission queues and
//     few in-flight flows — the classic load-balancing term.
//   - class-affinity: prefer the replica that last served this class,
//     so the engine's continuous batch can merge same-class requests
//     into shared denoiser forwards (the BLIS prefix-affinity idiom
//     mapped onto trace classes).
//   - least-inflight: prefer replicas with the fewest router-side
//     in-flight requests, ignoring replica-reported load.
var builtinScorers = map[string]Scorer{
	"queue-depth": func(in RouteInput, r ReplicaStatus) float64 {
		return 1 / (1 + float64(r.QueueDepth) + float64(r.InFlightFlows) + float64(r.InFlight))
	},
	"class-affinity": func(in RouteInput, r ReplicaStatus) float64 {
		switch r.LastClass {
		case in.Class:
			return 1
		case "":
			// A cold replica is a better affinity target than one warm
			// on a different class: claiming it starts a new same-class
			// run instead of breaking an existing one.
			return 0.5
		default:
			return 0
		}
	},
	"least-inflight": func(in RouteInput, r ReplicaStatus) float64 {
		return 1 / (1 + float64(r.InFlight))
	},
}

// ParseScorers parses a -routing-scorers spec like
// "class-affinity:3,queue-depth:2" into a weighted policy. The empty
// spec and the literal "p2c" select the power-of-two-choices fallback
// (nil policy). Unknown names and non-positive weights are errors.
func ParseScorers(spec string) ([]WeightedScorer, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "p2c" {
		return nil, nil
	}
	var out []WeightedScorer
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, found := strings.Cut(part, ":")
		weight := 1.0
		if found {
			w, err := strconv.ParseFloat(weightStr, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: scorer %q: bad weight %q", name, weightStr)
			}
			weight = w
		}
		if weight <= 0 {
			return nil, fmt.Errorf("cluster: scorer %q: weight must be positive", name)
		}
		fn, ok := builtinScorers[name]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown scorer %q (have: class-affinity, queue-depth, least-inflight)", name)
		}
		out = append(out, WeightedScorer{Name: name, Weight: weight, Fn: fn})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty scorer spec %q", spec)
	}
	return out, nil
}

// scoreReplica evaluates the weighted policy for one candidate.
func scoreReplica(scorers []WeightedScorer, in RouteInput, r ReplicaStatus) float64 {
	total := 0.0
	for _, ws := range scorers {
		total += ws.Weight * ws.Fn(in, r)
	}
	return total
}

// splitmix64 is the same mixing function stats.NewRNG seeds with; the
// router uses it to turn a monotone counter into well-spread replica
// picks for power-of-two-choices, with no RNG state shared across
// handler goroutines.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
