// Package cluster implements tracerouter's multi-replica serving tier:
// a replica pool with health probing and backoff ejection (pool.go), a
// pluggable weighted routing policy (scorer.go), a content-addressed
// response cache (cache.go), a queue-depth autoscaler over local traced
// child processes (scaler.go), and the HTTP front tier that ties them
// together (proxy.go).
//
// The cache is the "millions of users" lever: a seeded generation is a
// pure function of (checkpoint digest, class, count, seed, DDIM steps,
// precision), so a repeat seeded request is served from router memory
// without touching a replica at all, byte-identical to what any replica
// would have produced.
package cluster

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// CacheKey is the full coordinate of one seeded response. Every field
// participates in equality: two deployments serving different
// checkpoints (or the same checkpoint at different DDIM budgets) can
// never alias each other's entries.
type CacheKey struct {
	// Digest is the replica checkpoint digest ("sha256:<hex>") the
	// response was generated from.
	Digest string
	Class  string
	Count  int
	Seed   uint64
	// DDIMSteps is the sampler budget the replica reported for the
	// response (0 = full DDPM).
	DDIMSteps int
	// Precision is the inference weight precision the replica reported
	// ("fp32" or "int8"). int8 bytes differ from fp32 bytes for the same
	// digest and seed, so precision must participate in equality.
	Precision string
	// Format is the response encoding ("pcap" or "csv").
	Format string
}

// CachedResponse is the stored body plus the headers needed to replay
// the replica's answer exactly.
type CachedResponse struct {
	Body        []byte
	ContentType string
	Seed        string // X-Traced-Seed
	Flows       string // X-Traced-Flows
	Digest      string // X-Traced-Checkpoint
	DDIMSteps   string // X-Traced-DDIM-Steps
	Precision   string // X-Traced-Precision
}

type cacheEntry struct {
	key  CacheKey
	resp *CachedResponse
}

// Cache is a bounded LRU over content-addressed responses. Both an
// entry count and a byte budget bound it; inserting past either evicts
// from the cold end.
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu    sync.Mutex
	ll    *list.List                 // MRU at front; guarded by mu
	items map[CacheKey]*list.Element // guarded by mu
	bytes int64                      // guarded by mu

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewCache builds a cache bounded by maxEntries entries and maxBytes
// stored body bytes. Non-positive bounds take generous defaults
// (4096 entries, 256 MiB).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[CacheKey]*list.Element{},
	}
}

// Get returns the cached response for k, marking it most recently
// used. The returned response is shared — callers must not mutate it.
func (c *Cache) Get(k CacheKey) (*CachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).resp, true
}

// Put stores resp under k, evicting cold entries to stay under both
// bounds. A body alone larger than the byte budget is not stored.
func (c *Cache) Put(k CacheKey, resp *CachedResponse) {
	size := int64(len(resp.Body))
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		// Same key means same content (it is content-addressed); just
		// refresh recency and keep the existing bytes.
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, resp: resp})
	c.bytes += size
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		cold := c.ll.Back()
		if cold == nil {
			break
		}
		ent := cold.Value.(*cacheEntry)
		c.ll.Remove(cold)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.resp.Body))
		c.evictions.Add(1)
	}
}

// Drop removes k, if present (cache-validation mismatch path).
func (c *Cache) Drop(k CacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= int64(len(ent.resp.Body))
}

// CacheStats is a point-in-time snapshot of the cache's counters.
type CacheStats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats snapshots the cache.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Entries:   entries,
		Bytes:     bytes,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
