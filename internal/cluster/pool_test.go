package cluster

import (
	"testing"
	"time"
)

func TestPoolProbeEjectReinstate(t *testing.T) {
	rep := newFakeReplica(t, "sha256:aa", 6)
	rep.set(func(f *fakeReplica) { f.queueDepth = 3 })
	p := newTestPool(t, PoolConfig{}, rep)

	waitUntil(t, 5*time.Second, "replica healthy", func() bool { return p.Healthy() == 1 })
	snap := p.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	st := snap[0]
	if !st.Healthy || st.CheckpointDigest != "sha256:aa" || st.DDIMSteps != 6 || st.QueueDepth != 3 {
		t.Fatalf("snapshot after probe: %+v", st)
	}

	rep.set(func(f *fakeReplica) { f.readyFail = true })
	waitUntil(t, 5*time.Second, "replica ejected", func() bool { return p.Healthy() == 0 })

	rep.set(func(f *fakeReplica) { f.readyFail = false })
	waitUntil(t, 5*time.Second, "replica reinstated", func() bool { return p.Healthy() == 1 })
}

func TestPoolBackoffDoubles(t *testing.T) {
	p := NewPool(PoolConfig{ProbeInterval: time.Hour, BackoffMin: 250 * time.Millisecond, BackoffMax: 8 * time.Second})
	defer p.Close()
	want := map[int]time.Duration{
		1:  250 * time.Millisecond,
		2:  500 * time.Millisecond,
		3:  time.Second,
		6:  8 * time.Second,
		10: 8 * time.Second, // clamped
	}
	for fails, d := range want {
		if got := p.backoff(fails); got != d {
			t.Errorf("backoff(%d) = %v, want %v", fails, got, d)
		}
	}
}

func TestPoolRemove(t *testing.T) {
	rep := newFakeReplica(t, "sha256:aa", 6)
	p := newTestPool(t, PoolConfig{}, rep)
	waitUntil(t, 5*time.Second, "replica healthy", func() bool { return p.Healthy() == 1 })
	if !p.Remove(rep.url()) {
		t.Fatal("Remove reported no replica")
	}
	if p.Remove(rep.url()) {
		t.Fatal("double Remove reported success")
	}
	if p.Size() != 0 || p.Healthy() != 0 {
		t.Fatalf("pool after Remove: size=%d healthy=%d", p.Size(), p.Healthy())
	}
}

func TestPoolCacheCoordinatesConsensus(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	b := newFakeReplica(t, "sha256:aa", 6)
	p := newTestPool(t, PoolConfig{}, a, b)
	waitUntil(t, 5*time.Second, "both healthy", func() bool { return p.Healthy() == 2 })

	digest, ddim, prec, ok := p.CacheCoordinates()
	if !ok || digest != "sha256:aa" || ddim != 6 || prec != "fp32" {
		t.Fatalf("consensus coordinates: %q %d %q %v", digest, ddim, prec, ok)
	}

	// DDIM disagreement breaks consensus even with identical digests.
	b.set(func(f *fakeReplica) { f.ddim = 12 })
	waitUntil(t, 5*time.Second, "ddim disagreement noticed", func() bool {
		_, _, _, ok := p.CacheCoordinates()
		return !ok
	})

	// Digest disagreement likewise.
	b.set(func(f *fakeReplica) { f.ddim = 6; f.digest = "sha256:bb" })
	waitUntil(t, 5*time.Second, "digest disagreement noticed", func() bool {
		_, _, _, ok := p.CacheCoordinates()
		return !ok
	})

	// Precision disagreement likewise: an int8 replica next to an fp32
	// one produces different bytes for the same seed, so the pool must
	// refuse cache coordinates rather than alias them.
	b.set(func(f *fakeReplica) { f.digest = "sha256:aa"; f.precision = "int8" })
	waitUntil(t, 5*time.Second, "precision disagreement noticed", func() bool {
		_, _, _, ok := p.CacheCoordinates()
		return !ok
	})
	b.set(func(f *fakeReplica) { f.precision = "" })
	waitUntil(t, 5*time.Second, "precision agreement restored", func() bool {
		_, _, prec, ok := p.CacheCoordinates()
		return ok && prec == "fp32"
	})

	// A uniformly int8 pool has consensus — at int8 coordinates.
	a.set(func(f *fakeReplica) { f.precision = "int8" })
	b.set(func(f *fakeReplica) { f.precision = "int8" })
	waitUntil(t, 5*time.Second, "int8 consensus", func() bool {
		digest, ddim, prec, ok := p.CacheCoordinates()
		return ok && digest == "sha256:aa" && ddim == 6 && prec == "int8"
	})
	a.set(func(f *fakeReplica) { f.precision = "" })
	b.set(func(f *fakeReplica) { f.precision = "" })

	// An unidentified replica (no digest) disables caching outright.
	b.set(func(f *fakeReplica) { f.digest = "" })
	waitUntil(t, 5*time.Second, "empty digest noticed", func() bool {
		_, _, _, ok := p.CacheCoordinates()
		return !ok
	})

	// Ejecting the dissenter restores consensus over the remainder.
	b.set(func(f *fakeReplica) { f.readyFail = true })
	waitUntil(t, 5*time.Second, "consensus restored", func() bool {
		digest, ddim, _, ok := p.CacheCoordinates()
		return ok && digest == "sha256:aa" && ddim == 6
	})

	// No healthy replicas at all: no coordinates.
	a.set(func(f *fakeReplica) { f.readyFail = true })
	waitUntil(t, 5*time.Second, "no healthy → no coordinates", func() bool {
		_, _, _, ok := p.CacheCoordinates()
		return !ok
	})
}

func TestPoolAcquireRelease(t *testing.T) {
	p := NewPool(PoolConfig{ProbeInterval: time.Hour, MaxInFlight: 1})
	defer p.Close()
	r := &replica{id: 0, url: "http://x", healthy: true}

	if !p.acquire(r) {
		t.Fatal("acquire on healthy idle replica refused")
	}
	if p.acquire(r) {
		t.Fatal("acquire past MaxInFlight succeeded")
	}
	p.release(r, "web")
	if r.lastClass != "web" {
		t.Fatalf("lastClass = %q after release", r.lastClass)
	}
	if !p.acquire(r) {
		t.Fatal("acquire after release refused")
	}
	p.release(r, "") // empty class must not clobber affinity memory
	if r.lastClass != "web" {
		t.Fatalf("lastClass clobbered: %q", r.lastClass)
	}

	r.healthy = false
	if p.acquire(r) {
		t.Fatal("acquired unhealthy replica")
	}
	r.healthy, r.removed = true, true
	if p.acquire(r) {
		t.Fatal("acquired removed replica")
	}
}

func TestPoolNoteProxyFailureEjects(t *testing.T) {
	p := NewPool(PoolConfig{ProbeInterval: time.Hour, BackoffMin: time.Minute, BackoffMax: time.Minute})
	defer p.Close()
	r := &replica{id: 0, url: "http://x", healthy: true}
	p.mu.Lock()
	p.replicas = append(p.replicas, r)
	p.mu.Unlock()

	p.noteProxyFailure(r)
	st := r.status()
	if st.Healthy || st.Errors != 1 {
		t.Fatalf("replica after proxy failure: %+v", st)
	}
	if r.nextProbe.Before(time.Now().Add(30 * time.Second)) {
		t.Fatalf("nextProbe %v not pushed out by backoff", time.Until(r.nextProbe))
	}
}
