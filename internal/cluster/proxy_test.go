package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMapFailure pins the router's status-mapping table: exhausted
// attempt loops must translate to honest statuses — backpressure stays
// 429 (with the max Retry-After seen), an empty pool is 503, and only
// genuine failures become 502.
func TestMapFailure(t *testing.T) {
	cases := []struct {
		name       string
		fail       routeFailure
		status     int
		retryAfter string
	}{
		{
			name:       "all replicas shed",
			fail:       routeFailure{Healthy: 2, Attempts: 2, Saw429: true, MaxRetryAfter: 7},
			status:     429,
			retryAfter: "7",
		},
		{
			name:       "shed without Retry-After header",
			fail:       routeFailure{Healthy: 1, Attempts: 1, Saw429: true},
			status:     429,
			retryAfter: "1",
		},
		{
			name:       "429 mixed with transport failures is still backpressure",
			fail:       routeFailure{Healthy: 3, Attempts: 3, Saw429: true, MaxRetryAfter: 2, SawTransport: true},
			status:     429,
			retryAfter: "2",
		},
		{
			name:       "no healthy replicas",
			fail:       routeFailure{Healthy: 0, Attempts: 0},
			status:     503,
			retryAfter: "1",
		},
		{
			name:       "healthy but all at the router in-flight bound",
			fail:       routeFailure{Healthy: 2, Attempts: 0},
			status:     429,
			retryAfter: "1",
		},
		{
			name:   "transport failures only",
			fail:   routeFailure{Healthy: 2, Attempts: 2, SawTransport: true},
			status: 502,
		},
	}
	for _, tc := range cases {
		status, ra := mapFailure(tc.fail)
		if status != tc.status || ra != tc.retryAfter {
			t.Errorf("%s: mapFailure(%+v) = (%d, %q), want (%d, %q)",
				tc.name, tc.fail, status, ra, tc.status, tc.retryAfter)
		}
	}
}

func TestRouterProxiesAndCachesSeeded(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	b := newFakeReplica(t, "sha256:aa", 6)
	p := newTestPool(t, PoolConfig{}, a, b)
	waitUntil(t, 5*time.Second, "both healthy", func() bool { return p.Healthy() == 2 })
	_, base := newTestRouter(t, p, Config{})

	req := `{"class":"web","count":2,"seed":42}`
	status, body1, hdr := postJSON(t, base, req)
	if status != 200 || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first seeded request: status=%d X-Cache=%q", status, hdr.Get("X-Cache"))
	}
	if hdr.Get("X-Cluster-Replica") == "" {
		t.Fatal("miss response lacks X-Cluster-Replica")
	}
	upstream := a.genCalls.Load() + b.genCalls.Load()
	if upstream != 1 {
		t.Fatalf("upstream calls after miss = %d, want 1", upstream)
	}

	status, body2, hdr := postJSON(t, base, req)
	if status != 200 || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("repeat seeded request: status=%d X-Cache=%q", status, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit not byte-identical:\n miss: %q\n hit:  %q", body1, body2)
	}
	if hdr.Get("X-Traced-Checkpoint") != "sha256:aa" || hdr.Get("X-Traced-DDIM-Steps") != "6" ||
		hdr.Get("X-Traced-Precision") != "fp32" {
		t.Fatalf("hit lost generation headers: %v", hdr)
	}
	if got := a.genCalls.Load() + b.genCalls.Load(); got != upstream {
		t.Fatalf("cache hit touched a replica: %d calls, want %d", got, upstream)
	}

	// A different seed is a different coordinate: miss again.
	if _, _, hdr := postJSON(t, base, `{"class":"web","count":2,"seed":43}`); hdr.Get("X-Cache") != "miss" {
		t.Fatalf("different seed served from cache: %q", hdr.Get("X-Cache"))
	}

	m := fetchMetricsMap(t, base)
	if metricInt(t, m, "cache_hits_total") != 1 || metricInt(t, m, "cache_misses_total") != 2 {
		t.Fatalf("cache counters: hits=%d misses=%d",
			metricInt(t, m, "cache_hits_total"), metricInt(t, m, "cache_misses_total"))
	}
}

func TestRouterUnseededBypassesCache(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	p := newTestPool(t, PoolConfig{}, a)
	waitUntil(t, 5*time.Second, "healthy", func() bool { return p.Healthy() == 1 })
	_, base := newTestRouter(t, p, Config{})

	for i := 0; i < 3; i++ {
		status, _, hdr := postJSON(t, base, `{"class":"web","count":1}`)
		if status != 200 || hdr.Get("X-Cache") != "miss" {
			t.Fatalf("unseeded request %d: status=%d X-Cache=%q", i, status, hdr.Get("X-Cache"))
		}
	}
	if got := a.genCalls.Load(); got != 3 {
		t.Fatalf("unseeded requests reached replica %d times, want 3", got)
	}
	m := fetchMetricsMap(t, base)
	if metricInt(t, m, "cache_bypass_total") != 3 {
		t.Fatalf("cache_bypass_total = %d, want 3", metricInt(t, m, "cache_bypass_total"))
	}
}

// A pool whose replicas disagree on checkpoint digests must never
// cache: entries could alias across configurations.
func TestRouterMixedPoolDisablesCaching(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	b := newFakeReplica(t, "sha256:bb", 6)
	p := newTestPool(t, PoolConfig{}, a, b)
	waitUntil(t, 5*time.Second, "both healthy", func() bool { return p.Healthy() == 2 })
	_, base := newTestRouter(t, p, Config{})

	req := `{"class":"web","count":1,"seed":7}`
	for i := 0; i < 2; i++ {
		if _, _, hdr := postJSON(t, base, req); hdr.Get("X-Cache") != "miss" {
			t.Fatalf("request %d cached under mixed pool: %q", i, hdr.Get("X-Cache"))
		}
	}
	if got := a.genCalls.Load() + b.genCalls.Load(); got != 2 {
		t.Fatalf("upstream calls = %d, want 2 (no caching)", got)
	}
}

func TestRouterAll429MapsToBackpressure(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	b := newFakeReplica(t, "sha256:aa", 6)
	a.set(func(f *fakeReplica) { f.genStatus = 429; f.retryAfter = "3" })
	b.set(func(f *fakeReplica) { f.genStatus = 429; f.retryAfter = "7" })
	p := newTestPool(t, PoolConfig{}, a, b)
	waitUntil(t, 5*time.Second, "both healthy", func() bool { return p.Healthy() == 2 })
	_, base := newTestRouter(t, p, Config{})

	status, _, hdr := postJSON(t, base, `{"class":"web","count":1,"seed":1}`)
	if status != 429 {
		t.Fatalf("all-replicas-shedding status = %d, want 429 (never 502)", status)
	}
	if hdr.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After = %q, want the max seen (7)", hdr.Get("Retry-After"))
	}
	if a.genCalls.Load() != 1 || b.genCalls.Load() != 1 {
		t.Fatalf("each replica should be tried once: a=%d b=%d", a.genCalls.Load(), b.genCalls.Load())
	}

	m := fetchMetricsMap(t, base)
	if metricInt(t, m, "mapped_429_total") != 1 {
		t.Fatalf("mapped_429_total = %d, want 1", metricInt(t, m, "mapped_429_total"))
	}
	per429, ok := m["upstream_429_total"].(map[string]any)
	if !ok {
		t.Fatalf("upstream_429_total missing: %v", m["upstream_429_total"])
	}
	for _, f := range []*fakeReplica{a, b} {
		if v, _ := per429[f.url()].(float64); v != 1 {
			t.Fatalf("upstream_429_total[%s] = %v, want 1", f.url(), per429[f.url()])
		}
	}
}

func TestRouter504PassesThroughVerbatim(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	a.set(func(f *fakeReplica) { f.genStatus = 504 })
	p := newTestPool(t, PoolConfig{}, a)
	waitUntil(t, 5*time.Second, "healthy", func() bool { return p.Healthy() == 1 })
	_, base := newTestRouter(t, p, Config{})

	status, _, _ := postJSON(t, base, `{"class":"web","count":1,"seed":1}`)
	if status != 504 {
		t.Fatalf("status = %d, want 504 passthrough", status)
	}
	if got := a.genCalls.Load(); got != 1 {
		t.Fatalf("504 retried (%d calls); the deadline already expired upstream", got)
	}
	m := fetchMetricsMap(t, base)
	if metricInt(t, m, "mapped_504_total") != 1 {
		t.Fatalf("mapped_504_total = %d, want 1", metricInt(t, m, "mapped_504_total"))
	}
}

func TestRouterRetriesPast5xx(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	b := newFakeReplica(t, "sha256:aa", 6)
	a.set(func(f *fakeReplica) { f.genStatus = 500 })
	p := newTestPool(t, PoolConfig{}, a, b)
	waitUntil(t, 5*time.Second, "both healthy", func() bool { return p.Healthy() == 2 })
	_, base := newTestRouter(t, p, Config{})

	status, _, hdr := postJSON(t, base, `{"class":"web","count":1,"seed":1}`)
	if status != 200 {
		t.Fatalf("status = %d, want 200 via failover", status)
	}
	if hdr.Get("X-Cluster-Replica") != b.url() {
		t.Fatalf("served by %q, want the healthy replica %q", hdr.Get("X-Cluster-Replica"), b.url())
	}
	// A replica that answered 500 is alive: counted as an error but not
	// ejected (the probe loop owns health).
	for _, st := range p.Snapshot() {
		if st.URL == a.url() && (!st.Healthy || st.Errors != 1) {
			t.Fatalf("5xx replica state: %+v", st)
		}
	}
}

func TestRouterClientErrorsPassThrough(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	b := newFakeReplica(t, "sha256:aa", 6)
	a.set(func(f *fakeReplica) { f.genStatus = 400 })
	b.set(func(f *fakeReplica) { f.genStatus = 400 })
	p := newTestPool(t, PoolConfig{}, a, b)
	waitUntil(t, 5*time.Second, "both healthy", func() bool { return p.Healthy() == 2 })
	_, base := newTestRouter(t, p, Config{})

	status, _, _ := postJSON(t, base, `{"class":"nope","count":1,"seed":1}`)
	if status != 400 {
		t.Fatalf("status = %d, want 400 passthrough", status)
	}
	if got := a.genCalls.Load() + b.genCalls.Load(); got != 1 {
		t.Fatalf("client error retried: %d upstream calls, want 1", got)
	}
}

func TestRouterTransportFailureFailsOverAndEjects(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	b := newFakeReplica(t, "sha256:aa", 6)
	// Long probe interval: health changes only via explicit kicks, so
	// the dead replica stays "healthy" until the proxy discovers it.
	p := newTestPool(t, PoolConfig{ProbeInterval: time.Hour}, a, b)
	waitUntil(t, 5*time.Second, "both healthy", func() bool {
		p.Kick()
		return p.Healthy() == 2
	})
	_, base := newTestRouter(t, p, Config{})

	a.srv.Close() // replica dies between probes

	status, _, hdr := postJSON(t, base, `{"class":"web","count":1,"seed":1}`)
	if status != 200 {
		t.Fatalf("status = %d, want 200 via failover", status)
	}
	if hdr.Get("X-Cluster-Replica") != b.url() {
		t.Fatalf("served by %q, want survivor %q", hdr.Get("X-Cluster-Replica"), b.url())
	}
	// The transport failure ejects the dead replica immediately, ahead
	// of the probe loop.
	for _, st := range p.Snapshot() {
		if st.URL == a.url() && st.Healthy {
			t.Fatal("dead replica still healthy after transport failure")
		}
	}
}

// A client disconnect mid-proxy makes the upstream attempt fail with a
// canceled context. The replica is not at fault: it must not be
// ejected, and the rest of the pool must not be burned through (and
// ejected in turn) with the same dead context.
func TestRouterClientCancelDoesNotEjectReplicas(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	b := newFakeReplica(t, "sha256:aa", 6)
	block := make(chan struct{})
	defer close(block)
	a.set(func(f *fakeReplica) { f.block = block })
	b.set(func(f *fakeReplica) { f.block = block })
	// Health changes only via explicit kicks, so any ejection observed
	// below came from the proxy path.
	p := newTestPool(t, PoolConfig{ProbeInterval: time.Hour}, a, b)
	waitUntil(t, 5*time.Second, "both healthy", func() bool {
		p.Kick()
		return p.Healthy() == 2
	})
	_, base := newTestRouter(t, p, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/generate",
		strings.NewReader(`{"class":"web","count":1,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_ = resp.Body.Close()
		}
		errCh <- err
	}()
	waitUntil(t, 5*time.Second, "request in flight on a replica", func() bool {
		return a.genCalls.Load()+b.genCalls.Load() == 1
	})
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled request unexpectedly succeeded")
	}
	waitUntil(t, 5*time.Second, "client abort recorded", func() bool {
		return metricInt(t, fetchMetricsMap(t, base), "client_aborts_total") == 1
	})
	if got := p.Healthy(); got != 2 {
		t.Fatalf("healthy = %d after client cancel, want 2 (no ejection)", got)
	}
	if got := a.genCalls.Load() + b.genCalls.Load(); got != 1 {
		t.Fatalf("upstream attempts = %d, want 1 (no retries with a dead context)", got)
	}
}

func TestRouterNoHealthyReplicasIs503(t *testing.T) {
	p := NewPool(PoolConfig{ProbeInterval: time.Hour})
	defer p.Close()
	_, base := newTestRouter(t, p, Config{})

	status, _, hdr := postJSON(t, base, `{"class":"web","count":1,"seed":1}`)
	if status != 503 || hdr.Get("Retry-After") != "1" {
		t.Fatalf("empty pool: status=%d Retry-After=%q, want 503/1", status, hdr.Get("Retry-After"))
	}
	m := fetchMetricsMap(t, base)
	if metricInt(t, m, "rejected_total") != 1 {
		t.Fatalf("rejected_total = %d, want 1", metricInt(t, m, "rejected_total"))
	}
}

func TestRouterInFlightBoundIs429(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	block := make(chan struct{})
	a.set(func(f *fakeReplica) { f.block = block })
	p := newTestPool(t, PoolConfig{MaxInFlight: 1}, a)
	waitUntil(t, 5*time.Second, "healthy", func() bool { return p.Healthy() == 1 })
	_, base := newTestRouter(t, p, Config{})

	firstDone := make(chan int, 1)
	go func() {
		status, _, _ := postJSON(t, base, `{"class":"web","count":1,"seed":1}`)
		firstDone <- status
	}()
	waitUntil(t, 5*time.Second, "first request in flight", func() bool {
		return a.genCalls.Load() == 1
	})

	status, _, hdr := postJSON(t, base, `{"class":"web","count":1,"seed":2}`)
	if status != 429 || hdr.Get("Retry-After") != "1" {
		t.Fatalf("at in-flight bound: status=%d Retry-After=%q, want 429/1", status, hdr.Get("Retry-After"))
	}

	close(block)
	if got := <-firstDone; got != 200 {
		t.Fatalf("first request status = %d, want 200", got)
	}
}

func TestRouterValidateHit(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	p := newTestPool(t, PoolConfig{}, a)
	waitUntil(t, 5*time.Second, "healthy", func() bool { return p.Healthy() == 1 })
	_, base := newTestRouter(t, p, Config{ValidateEvery: 1})

	req := `{"class":"web","count":1,"seed":9}`
	if status, _, _ := postJSON(t, base, req); status != 200 {
		t.Fatal("priming miss failed")
	}

	// Every hit re-proves byte-identity against a live replica.
	status, _, hdr := postJSON(t, base, req)
	if status != 200 || hdr.Get("X-Cache") != "hit-validated" {
		t.Fatalf("validated hit: status=%d X-Cache=%q", status, hdr.Get("X-Cache"))
	}
	if got := a.genCalls.Load(); got != 2 {
		t.Fatalf("validation should touch the replica: %d calls, want 2", got)
	}

	// Perturb the replica's output: the next validation must detect the
	// mismatch, drop the entry, and serve the replica's bytes.
	a.set(func(f *fakeReplica) { f.salt = "drifted" })
	status, body, hdr := postJSON(t, base, req)
	if status != 200 {
		t.Fatalf("mismatch validation status = %d", status)
	}
	if hdr.Get("X-Cache") == "hit" || hdr.Get("X-Cache") == "hit-validated" {
		t.Fatalf("mismatched entry served as a hit: %q", hdr.Get("X-Cache"))
	}
	if !bytes.Contains(body, []byte("drifted")) {
		t.Fatalf("mismatch must serve replica bytes, got %q", body)
	}
	m := fetchMetricsMap(t, base)
	if metricInt(t, m, "cache_validation_mismatches_total") != 1 {
		t.Fatalf("cache_validation_mismatches_total = %d, want 1",
			metricInt(t, m, "cache_validation_mismatches_total"))
	}
}

func TestRouterClassAffinityRouting(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	b := newFakeReplica(t, "sha256:aa", 6)
	p := newTestPool(t, PoolConfig{}, a, b)
	waitUntil(t, 5*time.Second, "both healthy", func() bool { return p.Healthy() == 2 })
	policy, err := ParseScorers("class-affinity:1")
	if err != nil {
		t.Fatal(err)
	}
	// Cache disabled so every request exercises routing.
	_, base := newTestRouter(t, p, Config{Scorers: policy, CacheEntries: -1})

	// Ties break toward the lower id: the first "web" lands on replica
	// 0 and warms it; later "web" requests must stick there.
	for i := 0; i < 3; i++ {
		if status, _, _ := postJSON(t, base, `{"class":"web","count":1,"seed":1}`); status != 200 {
			t.Fatalf("request %d failed", i)
		}
	}
	if a.genCalls.Load() != 3 || b.genCalls.Load() != 0 {
		t.Fatalf("affinity spread: a=%d b=%d, want 3/0", a.genCalls.Load(), b.genCalls.Load())
	}
	// A different class prefers the cold replica over breaking the warm
	// run on replica 0.
	if status, _, _ := postJSON(t, base, `{"class":"video","count":1,"seed":1}`); status != 200 {
		t.Fatal("video request failed")
	}
	if b.genCalls.Load() != 1 {
		t.Fatalf("cross-class request should pick the cold replica: b=%d", b.genCalls.Load())
	}
}

func TestRouterReadyzAndReplicas(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	p := newTestPool(t, PoolConfig{}, a)
	waitUntil(t, 5*time.Second, "healthy", func() bool { return p.Healthy() == 1 })
	rt, base := newTestRouter(t, p, Config{})

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close() // status-only check
	if resp.StatusCode != 200 {
		t.Fatalf("readyz = %d with a healthy replica", resp.StatusCode)
	}

	resp, err = http.Get(base + "/readyz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Status   string          `json:"status"`
		Healthy  int             `json:"healthy_replicas"`
		Replicas []ReplicaStatus `json:"replicas"`
	}
	decodeErr := json.NewDecoder(resp.Body).Decode(&payload)
	_ = resp.Body.Close() // body fully decoded above
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if payload.Status != "ready" || payload.Healthy != 1 || len(payload.Replicas) != 1 {
		t.Fatalf("verbose readyz: %+v", payload)
	}

	// Draining refuses new work with a Retry-After and flips readiness.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	status, _, hdr := postJSON(t, base, `{"class":"web","count":1,"seed":1}`)
	if status != 503 || hdr.Get("Retry-After") != "1" {
		t.Fatalf("draining generate: status=%d Retry-After=%q", status, hdr.Get("Retry-After"))
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close() // status-only check
	if resp.StatusCode != 503 {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
}

func TestRouterRejectsBadRequests(t *testing.T) {
	a := newFakeReplica(t, "sha256:aa", 6)
	p := newTestPool(t, PoolConfig{}, a)
	waitUntil(t, 5*time.Second, "healthy", func() bool { return p.Healthy() == 1 })
	_, base := newTestRouter(t, p, Config{})

	if status, _, _ := postJSON(t, base, `{not json`); status != 400 {
		t.Fatalf("malformed body status = %d, want 400", status)
	}
	resp, err := http.Get(base + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close() // status-only check
	if resp.StatusCode != 405 {
		t.Fatalf("GET /v1/generate = %d, want 405", resp.StatusCode)
	}
	if got := a.genCalls.Load(); got != 0 {
		t.Fatalf("bad requests reached the replica %d times", got)
	}
}
