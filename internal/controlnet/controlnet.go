// Package controlnet supplies the controlling component of the
// pipeline (paper §3.1): it derives a per-class protocol template from
// a one-shot real example, feeds it to the denoiser as a conditioning
// image during sampling (through the models' zero-initialized control
// projections — the ControlNet mechanism), and enforces the template's
// hard structural constraints on quantized samples ("the generation
// ensures all packets strictly conform to the dominant protocol
// type").
package controlnet

import (
	"errors"
	"fmt"

	"trafficdiff/internal/imagerep"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/tensor"
)

// ColState classifies one nprint bit column across the example flow.
type ColState uint8

// Column states.
const (
	// ColFree columns vary across packets: generation is unconstrained.
	ColFree ColState = iota
	// ColVacant columns are vacant in every example packet (headers
	// the class's protocol does not carry).
	ColVacant
	// ColContent columns hold a bit (0/1) in every example packet.
	ColContent
)

// ErrEmptyExample reports a template built from a zero-row matrix.
var ErrEmptyExample = errors.New("controlnet: example flow has no packets")

// Template captures the structural constraints of one traffic class.
type Template struct {
	State []ColState // per bit column
	// Fill is the majority bit per content column, used to repair
	// cells the sampler left vacant.
	Fill []int8
	// Constant marks content columns whose bit value is identical in
	// every example packet — the class-invariant structure (protocol
	// constants, TTL, TOS, option layout) the one-shot control can
	// enforce outright.
	Constant []bool
	// Proto is the example's dominant transport protocol.
	Proto packet.IPProtocol
}

// FromExample derives a template from a one-shot example flow in
// nprint form.
func FromExample(m *nprint.Matrix) (*Template, error) {
	if m.NumRows == 0 {
		return nil, ErrEmptyExample
	}
	t := &Template{
		State:    make([]ColState, nprint.BitsPerPacket),
		Fill:     make([]int8, nprint.BitsPerPacket),
		Constant: make([]bool, nprint.BitsPerPacket),
	}
	for c := 0; c < nprint.BitsPerPacket; c++ {
		vacant, ones, zeros := 0, 0, 0
		for r := 0; r < m.NumRows; r++ {
			switch m.Row(r)[c] {
			case nprint.Vacant:
				vacant++
			case nprint.One:
				ones++
			default:
				zeros++
			}
		}
		switch {
		case vacant == m.NumRows:
			t.State[c] = ColVacant
			t.Fill[c] = nprint.Vacant
		case vacant == 0:
			t.State[c] = ColContent
			if ones >= zeros {
				t.Fill[c] = nprint.One
			} else {
				t.Fill[c] = nprint.Zero
			}
			t.Constant[c] = ones == m.NumRows || zeros == m.NumRows
		default:
			t.State[c] = ColFree
			t.Fill[c] = nprint.Zero
		}
	}
	t.Proto = dominantProto(t.State)
	return t, nil
}

// dominantProto infers the protocol from which transport section has
// content columns.
func dominantProto(state []ColState) packet.IPProtocol {
	active := func(off, bits int) bool {
		for c := off; c < off+bits; c++ {
			if state[c] != ColVacant {
				return true
			}
		}
		return false
	}
	switch {
	case active(nprint.TCPOffset, nprint.TCPBits):
		return packet.ProtoTCP
	case active(nprint.UDPOffset, nprint.UDPBits):
		return packet.ProtoUDP
	case active(nprint.ICMPOffset, nprint.ICMPBits):
		return packet.ProtoICMP
	default:
		return 0
	}
}

// ControlImage renders the template as a full-resolution one-row
// conditioning pattern: +1 for content columns, -1 for vacant, 0 for
// free.
func (t *Template) ControlImage() *imagerep.Image {
	im := imagerep.NewImage(1, nprint.BitsPerPacket)
	for c, s := range t.State {
		switch s {
		case ColContent:
			im.Set(0, c, 1)
		case ColVacant:
			im.Set(0, c, -1)
		}
	}
	return im
}

// ControlTensor produces the conditioning image at the model's
// resolution: the one-row pattern replicated to h' rows and
// mean-pooled down by (fh, fw) to [1, h, w]. fh*h rows and fw*w
// columns must equal the nprint geometry used for training.
func (t *Template) ControlTensor(h, w, fh, fw int) (*tensor.Tensor, error) {
	if w*fw != nprint.BitsPerPacket {
		return nil, fmt.Errorf("controlnet: w*fw = %d, want %d", w*fw, nprint.BitsPerPacket)
	}
	full := imagerep.NewImage(h*fh, nprint.BitsPerPacket)
	one := t.ControlImage()
	for r := 0; r < full.H; r++ {
		for c := 0; c < full.W; c++ {
			full.Set(r, c, one.At(0, c))
		}
	}
	down, err := imagerep.Downscale(full, fh, fw)
	if err != nil {
		return nil, err
	}
	return tensor.FromSlice(down.Pix, 1, h, w), nil
}

// Project enforces the template on a quantized nprint matrix in place:
// vacant columns are vacated, content columns that sampled Vacant get
// the column's fill bit. It returns the number of cells changed — the
// "repair distance" diagnostics report.
func (t *Template) Project(m *nprint.Matrix) int {
	changed := 0
	for r := 0; r < m.NumRows; r++ {
		row := m.Row(r)
		for c, s := range t.State {
			switch s {
			case ColVacant:
				if row[c] != nprint.Vacant {
					row[c] = nprint.Vacant
					changed++
				}
			case ColContent:
				if row[c] == nprint.Vacant {
					row[c] = t.Fill[c]
					changed++
				}
			}
		}
	}
	return changed
}

// ProjectConstants additionally pins the template's class-invariant
// (constant) content columns to their example bit value on every
// active (non-padding) row — the strong form of one-shot structural
// control. It returns the number of cells changed.
func (t *Template) ProjectConstants(m *nprint.Matrix) int {
	changed := 0
	for r := 0; r < m.NumRows; r++ {
		row := m.Row(r)
		if nprint.SectionVacant(row, 0, nprint.BitsPerPacket) {
			continue // padding row: stays vacant
		}
		for c, isConst := range t.Constant {
			if isConst && row[c] != t.Fill[c] {
				row[c] = t.Fill[c]
				changed++
			}
		}
	}
	return changed
}

// Compliance reports the fraction of constrained cells (vacant or
// content columns) that already satisfy the template, in [0,1]. A
// matrix that Project has run on is always fully compliant.
func (t *Template) Compliance(m *nprint.Matrix) float64 {
	if m.NumRows == 0 {
		return 1
	}
	constrained, ok := 0, 0
	for r := 0; r < m.NumRows; r++ {
		row := m.Row(r)
		for c, s := range t.State {
			switch s {
			case ColVacant:
				constrained++
				if row[c] == nprint.Vacant {
					ok++
				}
			case ColContent:
				constrained++
				if row[c] != nprint.Vacant {
					ok++
				}
			}
		}
	}
	if constrained == 0 {
		return 1
	}
	return float64(ok) / float64(constrained)
}

// ProtocolCompliance reports the fraction of rows whose populated
// transport section matches the template's dominant protocol — the
// Figure 2 property ("all packets adhere to the TCP protocol type").
func (t *Template) ProtocolCompliance(m *nprint.Matrix) float64 {
	if m.NumRows == 0 {
		return 1
	}
	var off, bits int
	switch t.Proto {
	case packet.ProtoTCP:
		off, bits = nprint.TCPOffset, nprint.TCPBits
	case packet.ProtoUDP:
		off, bits = nprint.UDPOffset, nprint.UDPBits
	case packet.ProtoICMP:
		off, bits = nprint.ICMPOffset, nprint.ICMPBits
	default:
		return 0
	}
	match := 0
	for r := 0; r < m.NumRows; r++ {
		row := m.Row(r)
		if !nprint.SectionVacant(row, off, bits) && othersVacant(row, off) {
			match++
		}
	}
	return float64(match) / float64(m.NumRows)
}

func othersVacant(row []int8, keepOff int) bool {
	sections := [][2]int{
		{nprint.TCPOffset, nprint.TCPBits},
		{nprint.UDPOffset, nprint.UDPBits},
		{nprint.ICMPOffset, nprint.ICMPBits},
	}
	for _, s := range sections {
		if s[0] == keepOff {
			continue
		}
		if !nprint.SectionVacant(row, s[0], s[1]) {
			return false
		}
	}
	return true
}
