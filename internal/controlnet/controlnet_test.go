package controlnet

import (
	"errors"
	"testing"
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/workload"
)

func tcpExample(t testing.TB) *nprint.Matrix {
	t.Helper()
	g := workload.NewGenerator(1)
	g.MaxPackets = 8
	p, _ := workload.ProfileByName("amazon")
	return nprint.FromFlow(g.GenerateFlow(p), 8)
}

func udpExample(t testing.TB) *nprint.Matrix {
	t.Helper()
	g := workload.NewGenerator(2)
	g.MaxPackets = 8
	p, _ := workload.ProfileByName("teams")
	return nprint.FromFlow(g.GenerateFlow(p), 8)
}

func TestFromExampleTCP(t *testing.T) {
	tpl, err := FromExample(tcpExample(t))
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Proto != packet.ProtoTCP {
		t.Fatalf("proto = %v, want TCP", tpl.Proto)
	}
	// UDP and ICMP sections must be vacant columns.
	for c := nprint.UDPOffset; c < nprint.UDPOffset+nprint.UDPBits; c++ {
		if tpl.State[c] != ColVacant {
			t.Fatalf("udp column %d state = %d", c, tpl.State[c])
		}
	}
	// IP version bits (first 4 columns: 0100) are content.
	for c := 0; c < 4; c++ {
		if tpl.State[c] != ColContent {
			t.Fatalf("version column %d state = %d", c, tpl.State[c])
		}
	}
	// Version nibble fill = 0100.
	if tpl.Fill[0] != 0 || tpl.Fill[1] != 1 || tpl.Fill[2] != 0 || tpl.Fill[3] != 0 {
		t.Errorf("version fill = %v", tpl.Fill[:4])
	}
}

func TestFromExampleUDP(t *testing.T) {
	tpl, err := FromExample(udpExample(t))
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Proto != packet.ProtoUDP {
		t.Fatalf("proto = %v, want UDP", tpl.Proto)
	}
	for c := nprint.TCPOffset; c < nprint.TCPOffset+nprint.TCPBits; c++ {
		if tpl.State[c] != ColVacant {
			t.Fatalf("tcp column %d should be vacant for teams", c)
		}
	}
}

func TestFromExampleEmpty(t *testing.T) {
	_, err := FromExample(nprint.NewMatrix(0))
	if !errors.Is(err, ErrEmptyExample) {
		t.Fatalf("err = %v", err)
	}
}

func TestProjectRepairsViolations(t *testing.T) {
	tpl, _ := FromExample(tcpExample(t))
	m := tcpExample(t)
	// Corrupt: activate a UDP column and vacate a version bit.
	m.Row(0)[nprint.UDPOffset] = nprint.One
	m.Row(0)[1] = nprint.Vacant

	if tpl.Compliance(m) >= 1 {
		t.Fatal("corruption not detected")
	}
	changed := tpl.Project(m)
	if changed < 2 {
		t.Fatalf("changed = %d, want >= 2", changed)
	}
	if got := tpl.Compliance(m); got != 1 {
		t.Fatalf("post-project compliance = %v", got)
	}
	if m.Row(0)[nprint.UDPOffset] != nprint.Vacant {
		t.Error("udp violation not vacated")
	}
	if m.Row(0)[1] != nprint.One {
		t.Error("version bit not refilled")
	}
}

func TestProjectIdempotent(t *testing.T) {
	tpl, _ := FromExample(tcpExample(t))
	m := tcpExample(t)
	m.Row(0)[nprint.UDPOffset] = nprint.One
	tpl.Project(m)
	if again := tpl.Project(m); again != 0 {
		t.Fatalf("second project changed %d cells", again)
	}
}

func TestProtocolCompliance(t *testing.T) {
	tpl, _ := FromExample(tcpExample(t))
	m := tcpExample(t)
	if got := tpl.ProtocolCompliance(m); got != 1 {
		t.Fatalf("clean flow compliance = %v", got)
	}
	// Turn row 0 into a UDP-ish row: vacate TCP, populate UDP.
	row := m.Row(0)
	for c := nprint.TCPOffset; c < nprint.TCPOffset+nprint.TCPBits; c++ {
		row[c] = nprint.Vacant
	}
	for c := nprint.UDPOffset; c < nprint.UDPOffset+nprint.UDPBits; c++ {
		row[c] = nprint.Zero
	}
	want := float64(m.NumRows-1) / float64(m.NumRows)
	if got := tpl.ProtocolCompliance(m); got != want {
		t.Fatalf("compliance = %v, want %v", got, want)
	}
}

func TestControlImageValues(t *testing.T) {
	tpl, _ := FromExample(tcpExample(t))
	im := tpl.ControlImage()
	if im.H != 1 || im.W != nprint.BitsPerPacket {
		t.Fatalf("shape %dx%d", im.H, im.W)
	}
	if im.At(0, nprint.UDPOffset) != -1 {
		t.Error("vacant column should be -1")
	}
	if im.At(0, 1) != 1 { // version bit 1 is content
		t.Error("content column should be +1")
	}
}

func TestControlTensorShape(t *testing.T) {
	tpl, _ := FromExample(tcpExample(t))
	ct, err := tpl.ControlTensor(8, 68, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 8, 68}
	for i := range want {
		if ct.Shape[i] != want[i] {
			t.Fatalf("shape = %v", ct.Shape)
		}
	}
	// Values stay in [-1, 1] after pooling.
	for _, v := range ct.Data {
		if v < -1 || v > 1 {
			t.Fatalf("control value %v out of range", v)
		}
	}
}

func TestControlTensorRejectsBadGeometry(t *testing.T) {
	tpl, _ := FromExample(tcpExample(t))
	if _, err := tpl.ControlTensor(8, 60, 2, 16); err == nil {
		t.Fatal("expected geometry error")
	}
}

func TestComplianceEmptyMatrix(t *testing.T) {
	tpl, _ := FromExample(tcpExample(t))
	if tpl.Compliance(nprint.NewMatrix(0)) != 1 || tpl.ProtocolCompliance(nprint.NewMatrix(0)) != 1 {
		t.Fatal("empty matrix should be trivially compliant")
	}
}

func TestTemplateSurvivesRoundTripThroughPackets(t *testing.T) {
	// Project + decode must yield packets that all carry the dominant
	// protocol — the replayability property.
	tpl, _ := FromExample(tcpExample(t))
	m := tcpExample(t)
	m.Row(2)[nprint.UDPOffset+3] = nprint.One // protocol violation
	tpl.Project(m)
	pkts, skipped, err := nprint.ToPackets(m, nprint.DecodeOptions{Repair: true, Start: time.Unix(0, 0)})
	if err != nil || skipped != 0 {
		t.Fatalf("decode: err=%v skipped=%d", err, skipped)
	}
	f := &flow.Flow{Packets: pkts}
	if f.DominantProtocol() != packet.ProtoTCP {
		t.Fatal("projected flow lost TCP dominance")
	}
	for i, p := range pkts {
		if p.TCP == nil {
			t.Fatalf("packet %d not TCP after projection", i)
		}
	}
}
