package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is a committed inventory of accepted findings. It lets a
// new analyzer land with a zero-NEW-findings CI gate before its
// pre-existing findings are swept: tracelint subtracts baselined
// findings from its output and fails only on the remainder.
//
// Entries are keyed by (analyzer, file, message) — deliberately not by
// line, so unrelated edits that shift code do not invalidate the
// baseline — with a count bounding how many identical findings the
// file may carry. Adding one more instance of a baselined finding
// therefore still fails the gate.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry matches findings of one analyzer/file/message shape.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Count is how many findings this entry absorbs (default 1).
	Count int `json:"count,omitempty"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error, so repos without one need no flag plumbing.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline snapshots findings as a baseline file, merging
// identical findings into counted entries sorted for stable diffs.
func WriteBaseline(path string, findings []Finding) error {
	counts := map[string]*BaselineEntry{}
	var order []string
	for _, f := range findings {
		key := baselineKey(f.Analyzer, f.File(), f.Message)
		if e, ok := counts[key]; ok {
			e.Count++
			continue
		}
		counts[key] = &BaselineEntry{Analyzer: f.Analyzer, File: f.File(), Message: f.Message, Count: 1}
		order = append(order, key)
	}
	sort.Strings(order)
	b := Baseline{Entries: make([]BaselineEntry, 0, len(order))}
	for _, key := range order {
		e := *counts[key]
		if e.Count == 1 {
			e.Count = 0 // omitempty: default is 1
		}
		b.Entries = append(b.Entries, e)
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply splits findings into the ones not covered by the baseline
// (returned) and the number it absorbed. Findings arrive sorted by
// position, so when a file has more instances of a shape than its
// budget, the later ones surface.
func (b *Baseline) Apply(findings []Finding) (fresh []Finding, baselined int) {
	budget := map[string]int{}
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey(e.Analyzer, e.File, e.Message)] += n
	}
	for _, f := range findings {
		key := baselineKey(f.Analyzer, f.File(), f.Message)
		if budget[key] > 0 {
			budget[key]--
			baselined++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, baselined
}
