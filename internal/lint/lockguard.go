package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces `// guarded by mu` field annotations: every
// access to an annotated field must happen either inside a lexical
// Lock()/RLock() scope on the named mutex (with the same receiver
// base), or in a function annotated `//tracelint:holds mu` whose
// callers are documented to hold the lock.
//
// This statically pins the exact race class PR 3 shipped and then
// fixed: Synthesizer.SetDDIMSteps mutated the sampling config while
// concurrent Generate calls read it without synchronization — a data
// race the race detector only sees when schedules interleave, while a
// torn read corrupts the determinism contract every time. With the
// mutable field annotated, reintroducing an unguarded read fails lint
// deterministically at compile-review time.
//
// The lock-scope check is lexical, not flow-sensitive: inside one
// function body, a Lock/RLock on `base.mu` opens the scope, a
// non-deferred Unlock/RUnlock closes it, and a deferred Unlock keeps
// it open to the end of the function — the three shapes this codebase
// uses. Cleverer locking belongs behind a `//tracelint:holds`
// annotation or an explicit allow directive.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `guarded by mu` are only accessed under that lock",
	Run:  runLockGuard,
}

// guardedRe matches the field annotation: `// guarded by mu`
// anywhere in the field's doc or trailing comment.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// lockDelta classifies mutex method calls by their effect on the
// lexical lock depth.
var lockDelta = map[string]int{"Lock": 1, "RLock": 1, "Unlock": -1, "RUnlock": -1}

func runLockGuard(pass *Pass) {
	info := pass.Pkg.Info
	// guarded maps each annotated field object to its mutex field name.
	guarded := map[types.Object]string{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := fieldGuardAnnotation(field)
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guarded[obj] = mutex
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}

	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLockGuard(pass, fd, guarded)
		}
	}
}

// fieldGuardAnnotation returns the mutex name from a field's
// `guarded by mu` comment, or "".
func fieldGuardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockEvent is one Lock/Unlock call on a specific `base.mu` inside a
// function body, in source order.
type lockEvent struct {
	pos   token.Pos
	base  string
	mutex string
	delta int
}

func checkFuncLockGuard(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	info := pass.Pkg.Info
	holds := map[string]bool{}
	if args, ok := funcDirective(fd, holdsPrefix); ok {
		for _, name := range strings.Fields(args) {
			holds[name] = true
		}
	}

	// Pass 1: collect lock events. Deferred Unlocks hold the scope open
	// to function end, so they contribute no closing event.
	var events []lockEvent
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[ds.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		delta, ok := lockDelta[sel.Sel.Name]
		if !ok {
			return true
		}
		// The receiver must itself be `base.mutexField`.
		mutexSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base := exprString(mutexSel.X)
		if base == "" {
			return true
		}
		if delta < 0 && deferredCalls[call] {
			return true
		}
		events = append(events, lockEvent{pos: call.Pos(), base: base, mutex: mutexSel.Sel.Name, delta: delta})
		return true
	})

	// Pass 2: check guarded-field accesses against the events.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		mutex, isGuarded := guarded[obj]
		if !isGuarded {
			return true
		}
		if holds[mutex] {
			return true
		}
		base := exprString(sel.X)
		depth := 0
		for _, ev := range events {
			if ev.pos < sel.Pos() && ev.base == base && ev.mutex == mutex {
				depth += ev.delta
			}
		}
		if depth > 0 {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"take "+base+"."+mutex+".Lock()/RLock() around the access, or annotate the function //tracelint:holds "+mutex,
			"field %q is guarded by %q but accessed outside its lock scope", sel.Sel.Name, mutex)
		return true
	})
}

// exprString renders simple receiver chains (s, s.inner, (s).inner)
// for matching lock receivers against field-access bases; anything
// more exotic returns "" and is treated as unprotected.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}
