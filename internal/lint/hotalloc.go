package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotAlloc statically enforces the zero-steady-state-allocation
// contract of the batched sampler (PR 4): a function annotated
//
//	//tracelint:hotpath
//
// — and every function it reaches through same-module static calls —
// must not contain allocation sites. TestSampleSteadyStateAllocs
// asserts the aggregate allocation count at runtime; this analyzer
// names the offending line the moment an allocation is introduced,
// before anyone runs the benchmark.
//
// Reported site classes: make, new, append outside the
// capacity-reuse idiom (append(x[:0], ...)), composite literals,
// closure construction (func literals), string concatenation, and
// interface boxing at call arguments or conversions. Dynamic calls
// (interface methods, func values like the denoiser ForwardFunc) are
// not followed — the annotation boundary is the static call graph.
// Failure paths are exempt: nothing inside a panic(...) argument is
// checked, since the process is already tearing down.
//
// Deliberate allocations (arena-miss fallbacks, memoized first-use
// tables, parallel-path closures gated behind a work threshold) are
// suppressed in place with a reasoned directive:
//
//	//tracelint:allow hotalloc — arena miss: first step only, pooled after
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "functions marked //tracelint:hotpath (and their same-module callees) must not allocate",
	RunModule: runHotAlloc,
}

// hotFuncDecl pairs a function declaration with its package.
type hotFuncDecl struct {
	fd  *ast.FuncDecl
	pkg *Package
}

func runHotAlloc(mp *ModulePass) {
	// Index every function declaration in the module.
	index := map[*types.Func]hotFuncDecl{}
	var roots []*types.Func
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			if isTestFile(pkg, f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				index[fn] = hotFuncDecl{fd, pkg}
				if _, hot := funcDirective(fd, hotpathDirective); hot {
					roots = append(roots, fn)
				}
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	// Propagate hotness through same-module static calls. origin maps
	// each hot function to the annotated root that reached it first
	// (deterministic: roots sorted, callees in source order).
	origin := map[*types.Func]string{}
	queue := make([]*types.Func, 0, len(roots))
	for _, fn := range roots {
		origin[fn] = fn.Name()
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		hf := index[fn]
		for _, callee := range staticCallees(hf.pkg.Info, hf.fd) {
			if _, inModule := index[callee]; !inModule {
				continue
			}
			if _, seen := origin[callee]; seen {
				continue
			}
			origin[callee] = origin[fn]
			queue = append(queue, callee)
		}
	}

	hot := make([]*types.Func, 0, len(origin))
	for fn := range origin {
		hot = append(hot, fn)
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].FullName() < hot[j].FullName() })
	for _, fn := range hot {
		checkHotFunc(mp, index[fn], fn.Name(), origin[fn])
	}
}

// staticCallees returns the same-module functions fd calls directly,
// in source order. Interface methods and func values resolve to
// objects outside the declaration index, so dynamic dispatch is
// naturally excluded.
func staticCallees(info *types.Info, fd *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			out = append(out, fn)
		}
		return true
	})
	return out
}

const hotAllocHint = "hoist the allocation out of the hot loop, reuse a pooled buffer, or suppress with //tracelint:allow hotalloc — reason"

// checkHotFunc reports every allocation site in one hot function.
func checkHotFunc(mp *ModulePass, hf hotFuncDecl, name, root string) {
	info := hf.pkg.Info
	report := func(pos token.Pos, what string) {
		via := ""
		if name != root {
			via = " (reached from //tracelint:hotpath root " + root + ")"
		}
		mp.Reportf(hf.pkg, pos, hotAllocHint,
			"%s in hot path %s%s", what, name, via)
	}
	ast.Inspect(hf.fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, x) {
				// Failure path: the process is tearing down.
				return false
			}
			switch builtinName(info, x) {
			case "make":
				report(x.Pos(), "make")
			case "new":
				report(x.Pos(), "new")
			case "append":
				// append(x[:0], ...) is the sanctioned buffer-reuse
				// idiom; any other append may grow past capacity.
				if len(x.Args) > 0 {
					if _, reuse := ast.Unparen(x.Args[0]).(*ast.SliceExpr); !reuse {
						report(x.Pos(), "append beyond capacity")
					}
				}
			default:
				checkBoxing(info, x, report)
			}
		case *ast.CompositeLit:
			report(x.Pos(), "composite literal")
			return false // inner literals are part of this site
		case *ast.FuncLit:
			report(x.Pos(), "closure construction")
			return true // the closure body runs on the hot path too
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(info, x.X) && info.Types[x].Value == nil {
				report(x.OpPos, "string concatenation")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(info, x.Lhs[0]) {
				report(x.TokPos, "string concatenation")
			}
		}
		return true
	})
}

// checkBoxing reports call arguments where a concrete value converts
// to an interface parameter (heap-boxing the value), and explicit
// conversions to interface types.
func checkBoxing(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	// Explicit conversion: T(x) where T is an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			report(call.Args[0].Pos(), "interface boxing")
		}
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt != nil && types.IsInterface(pt) && boxes(info, arg) {
			report(arg.Pos(), "interface boxing")
		}
	}
}

// boxes reports whether passing arg to an interface slot allocates: a
// concrete, non-nil, non-constant value does.
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// isStringExpr reports whether e has string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// builtinName returns the name of the builtin a call targets, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return ""
	}
	return id.Name
}

// isPanicCall reports whether the call is the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	return builtinName(info, call) == "panic"
}
