package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags dropped error returns in internal/ and cmd/ packages:
// a call whose error result is discarded as an expression statement, or
// assigned to the blank identifier without an adjacent comment saying
// why. A swallowed write error means a truncated pcap or checkpoint
// that the experiment harness then silently evaluates — the failure
// shows up as a wrong table number, far from the cause.
//
// Calls that cannot fail are exempt: fmt.Print* to stdout, fmt.Fprint*
// to a *bytes.Buffer, *strings.Builder, os.Stdout or os.Stderr, and
// methods on *bytes.Buffer / *strings.Builder (documented to always
// return nil errors). Deferred calls are exempt from the general
// dropped-error check, with one targeted exception: `defer f.Close()`
// on an *os.File opened writable in the same function (os.Create, or
// os.OpenFile with a write flag) is flagged, because Close is where
// buffered write errors finally surface — deferring it without looking
// at the result ships a truncated pcap or checkpoint as a success.
// Read-only files (os.Open) are exempt: their Close error carries no
// data-loss signal.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "forbid silently dropped error returns in internal/ and cmd/",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "/internal/") && !strings.Contains(pass.Pkg.Path, "/cmd/") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		commentLines := commentLineSet(pass.Pkg, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if idx := errorResultIndex(info, call); idx >= 0 && !infallibleCall(info, call) {
					pass.Reportf(call.Pos(),
						"handle the error, or assign to _ with a comment explaining why it is safe to drop",
						"error result of %s is silently discarded", calleeLabel(call))
				}
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, info, stmt, commentLines)
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkDeferClose(pass, info, fd)
			}
		}
	}
}

// checkDeferClose flags `defer f.Close()` when f is an *os.File the
// function itself opened writable. Close flushes; its error is the
// only notification that buffered bytes never reached the disk.
func checkDeferClose(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Pass 1: objects bound to writable opens in this function.
	writable := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isWritableOpen(info, call) {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				writable[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				writable[obj] = true
			}
		}
		return true
	})
	if len(writable) == 0 {
		return
	}

	// Pass 2: deferred Close calls on those objects.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := ds.Call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !writable[info.Uses[id]] {
			return true
		}
		pass.Reportf(ds.Pos(),
			"close explicitly and propagate the error (e.g. `if err := f.Close(); err != nil`), or fold it into a named return",
			"deferred Close on writable file %q discards the flush error", id.Name)
		return true
	})
}

// isWritableOpen reports whether the call opens a file for writing:
// os.Create, or os.OpenFile whose flag expression names a write flag.
func isWritableOpen(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "Create":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		return flagNamesWrite(call.Args[1])
	}
	return false
}

// writeFlagNames are the os.O_* flags that make an open writable.
var writeFlagNames = map[string]bool{
	"O_WRONLY": true, "O_RDWR": true, "O_APPEND": true, "O_TRUNC": true, "O_CREATE": true,
}

// flagNamesWrite walks a flag expression (typically `os.O_X|os.O_Y`)
// looking for any write-implying O_* constant by name.
func flagNamesWrite(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && writeFlagNames[sel.Sel.Name] {
			found = true
		}
		if id, ok := n.(*ast.Ident); ok && writeFlagNames[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// checkBlankErrAssign flags `_ = fallibleCall()` shapes with no
// adjacent comment justifying the drop.
func checkBlankErrAssign(pass *Pass, info *types.Info, stmt *ast.AssignStmt, commentLines map[int]bool) {
	line := pass.Pkg.Fset.Position(stmt.Pos()).Line
	if commentLines[line] || commentLines[line-1] {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	for i, lhs := range stmt.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		if len(stmt.Rhs) == len(stmt.Lhs) {
			t = info.TypeOf(stmt.Rhs[i])
		} else if tuple, ok := info.TypeOf(stmt.Rhs[0]).(*types.Tuple); ok && i < tuple.Len() {
			t = tuple.At(i).Type()
		}
		if t == nil || !types.Identical(t, errType) {
			continue
		}
		if len(stmt.Rhs) == len(stmt.Lhs) {
			if call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr); ok && infallibleCall(info, call) {
				continue
			}
		}
		pass.Reportf(id.Pos(),
			"handle the error, or add a comment on this or the previous line explaining the drop",
			"error is assigned to _ without a justifying comment")
	}
}

// errorResultIndex returns the index of the first error result of the
// call, or -1 if it cannot fail (or is not a plain function call).
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return -1 // builtin or conversion
	}
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return i
		}
	}
	return -1
}

// infallibleCall reports whether the call is on the documented
// never-fails list.
func infallibleCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return isInfallibleWriter(recv.Type())
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	name := fn.Name()
	if name == "Print" || name == "Printf" || name == "Println" {
		return true
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		return infallibleWriterExpr(info, call.Args[0])
	}
	return false
}

// infallibleWriterExpr reports whether the writer expression is
// os.Stdout, os.Stderr, or a value of an infallible writer type.
func infallibleWriterExpr(info *types.Info, expr ast.Expr) bool {
	if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "os" {
				return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
			}
		}
	}
	return isInfallibleWriter(info.TypeOf(expr))
}

// isInfallibleWriter reports whether t is *bytes.Buffer or
// *strings.Builder, whose Write methods are documented to return nil
// errors.
func isInfallibleWriter(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// calleeFunc resolves the called function or method, if statically
// known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeLabel renders the callee for a diagnostic.
func calleeLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// commentLineSet records every line of f that carries a comment.
func commentLineSet(pkg *Package, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			start := pkg.Fset.Position(c.Pos()).Line
			end := pkg.Fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				lines[l] = true
			}
		}
	}
	return lines
}
