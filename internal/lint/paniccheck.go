package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicCheck flags panic calls in internal/ packages. A panic inside
// the library layer tears down a whole generation run — in a server
// setting, one malformed flow kills every in-flight request sharing the
// process. Library code returns errors; panics are reserved for
// programmer-error invariants.
//
// Two escape hatches exist. The tensor kernels (internal/tensor,
// internal/nn) panic on shape mismatches by design: they sit in the
// training hot loop where an error return per matmul would be both
// unusable and slow, exactly like Go's own slice bounds checks. Other
// sites can justify themselves in place with
// `//tracelint:allow paniccheck — reason`.
var PanicCheck = &Analyzer{
	Name: "paniccheck",
	Doc:  "forbid panic() in internal/ packages outside shape-invariant kernels",
	Run:  runPanicCheck,
}

// panicExemptSuffixes are package-path suffixes of the shape-invariant
// kernel packages allowed to panic.
var panicExemptSuffixes = []string{"internal/tensor", "internal/nn"}

func runPanicCheck(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "/internal/") {
		return
	}
	for _, suffix := range panicExemptSuffixes {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			return
		}
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "panic" {
				return true
			}
			pass.Reportf(call.Pos(),
				"return an error, or annotate a true invariant with //tracelint:allow paniccheck — reason",
				"panic in library package %s tears down the whole process", pass.Pkg.Types.Name())
			return true
		})
	}
}
