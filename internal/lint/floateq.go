package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != where either operand is floating-point, in
// non-test code. Exact float comparison is the classic source of
// platform- and optimization-dependent behavior (x87 vs SSE rounding,
// FMA contraction): a branch on `a == b` can take different sides on
// different builds, which breaks bit-level reproducibility of the
// synthesis pipeline. Compare through stats.ApproxEqual or an explicit
// threshold instead; annotate deliberate exact sentinel checks.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point operands outside tests",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatType(info.TypeOf(be.X)) && !isFloatType(info.TypeOf(be.Y)) {
				return true
			}
			// Two compile-time constants compare exactly by definition.
			if info.Types[be.X].Value != nil && info.Types[be.Y].Value != nil {
				return true
			}
			pass.Reportf(be.OpPos,
				"use stats.ApproxEqual(a, b, tol), an explicit threshold, or annotate a deliberate sentinel check",
				"floating-point %s comparison is not reproducible across platforms", be.Op)
			return true
		})
	}
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
