package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTime bans wall-clock reads in data-path packages: time.Now,
// time.Since and time.Until. The reproduction's contract is that
// identical inputs yield identical bytes — PR 5 fixed exactly this bug
// in pcap2nprint, where a time.Now() default epoch made the same
// nprint matrix produce a different pcap on every run. Timestamps in
// the data path must derive from fixed epochs, config, or seeded
// draws; arithmetic on time.Time values already in hand (Add, Sub) is
// fine because it introduces no ambient input.
//
// Observation-only timing (a progress hook measuring steps/s that
// provably does not feed back into outputs) is annotated in place:
//
//	//tracelint:allow walltime — observation-only progress timing
//
// Serving, eval and benchmark layers measure real latency by design
// and are exempt by configuration (walltimeSuffixes).
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Since/Until in data-path packages",
	Run:  runWallTime,
}

// walltimeSuffixes are the package-path suffixes of the data-path
// packages where wall-clock reads are banned. serve/eval/benchjson are
// deliberately absent: they measure latency as a product feature. The
// testdata suffix routes the fixture package through the analyzer.
var walltimeSuffixes = []string{
	"internal/diffusion",
	"internal/core",
	"internal/nn",
	"internal/tensor",
	"internal/stats",
	"internal/imagerep",
	"internal/packet",
	"internal/pcap",
	"internal/nprint",
	"lint/testdata/src/walltime",
}

// wallClockFuncs are the ambient-input functions of package time.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallTime(pass *Pass) {
	onPath := false
	for _, suffix := range walltimeSuffixes {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			onPath = true
			break
		}
	}
	if !onPath {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg, ok := info.Uses[id].(*types.PkgName); !ok || pkg.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(call.Pos(),
				"derive timestamps from a fixed epoch, config, or a seeded draw; annotate observation-only timing",
				"time.%s reads the wall clock in data-path package %s: identical inputs would stop producing identical bytes", sel.Sel.Name, pass.Pkg.Types.Name())
			return true
		})
	}
}
