// Package atomicmix is a tracelint fixture: fields accessed through
// sync/atomic in one place and plainly in another.
package atomicmix

import "sync/atomic"

type gen struct {
	calls uint64
	// plain is never touched atomically; ordinary access is fine.
	plain uint64
}

// next advances the counter atomically — this marks calls as an
// atomic field for the whole package.
func (g *gen) next() uint64 {
	return atomic.AddUint64(&g.calls, 1)
}

// loaded reads it atomically too: fine.
func (g *gen) loaded() uint64 {
	return atomic.LoadUint64(&g.calls)
}

// edit reproduces the Deblur/Translate bug: a plain increment and a
// plain read racing with the atomic adds in next.
func (g *gen) edit() uint64 {
	g.calls++      // want `field "calls" is accessed atomically`
	return g.calls // want `field "calls" is accessed atomically`
}

// editJustified shows the explicit escape hatch for a deliberate
// single-goroutine phase (e.g. construction before publication).
func (g *gen) editJustified() uint64 {
	return g.calls //tracelint:allow atomicmix — fixture: pre-publication, no concurrent access yet
}

// bump only ever touches plain plainly: no findings.
func (g *gen) bump() uint64 {
	g.plain++
	return g.plain
}
