// Package floateq is a tracelint fixture: exact float comparison.
package floateq

func compare(a, b float64, f float32, x, y int) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if float64(f) != b { // want `floating-point != comparison`
		return false
	}
	if x == y { // integers compare exactly: no finding
		return true
	}
	const c = 1.5
	_ = c == 1.5 // two compile-time constants: no finding
	//tracelint:allow floateq — deliberate exact sentinel, fixture negative case
	_ = a == 0
	return false
}
