// Package hotalloc is a tracelint fixture: allocation sites in
// //tracelint:hotpath functions and their same-module callees.
package hotalloc

type point struct{ x, y int }

// sink and value become hot transitively through root's calls; neither
// allocates.
func sink(v interface{}) { _ = v }

func value() int { return len("fixture") }

//tracelint:hotpath
func root(buf []int, s1, s2 string) string {
	m := make([]int, 8) // want `make in hot path root`
	_ = m
	p := new(point) // want `new in hot path root`
	_ = p
	buf = append(buf, 1)     // want `append beyond capacity in hot path root`
	buf = append(buf[:0], 2) // the sanctioned reuse idiom: no growth past capacity
	q := point{x: 1, y: 2}   // want `composite literal in hot path root`
	_ = q
	f := func() {} // want `closure construction in hot path root`
	f()
	out := s1 + s2 // want `string concatenation in hot path root`
	out += s1      // want `string concatenation in hot path root`
	sink(value())  // want `interface boxing in hot path root`
	helper()
	if len(buf) > 99 {
		// Allocation sites inside panic arguments are exempt: the
		// process is already tearing down.
		panic(point{x: len(buf)})
	}
	return out
}

// helper is hot because root calls it.
func helper() []byte {
	return make([]byte, 4) // want `make in hot path helper`
}

// warm shows the reasoned escape hatch for a deliberate allocation.
//
//tracelint:hotpath
func warm() *point {
	//tracelint:allow hotalloc — fixture: first-call-only setup, memoized by the caller
	return &point{x: 1}
}

// cold is not reachable from any hotpath root: allocate freely.
func cold() []int {
	return make([]int, 16)
}
