// Package rngescape is a tracelint fixture: RNG streams crossing
// goroutine boundaries.
package rngescape

import (
	"trafficdiff/internal/stats"
)

func use(r *stats.RNG) { _ = r.Float64() }

// badCapture shares one generator with a spawned closure.
func badCapture(root *stats.RNG) {
	go func() {
		_ = root.Float64() // want `captured by a goroutine closure`
	}()
}

// badFanOut hands the same generator to two goroutines.
func badFanOut(root *stats.RNG) {
	go use(root)
	go use(root) // want `passed to 2 goroutines`
}

// goodSplit derives a private stream per goroutine before spawning:
// the captured variable's only assignment is a Split() call.
func goodSplit(root *stats.RNG) {
	for i := 0; i < 4; i++ {
		r := root.Split()
		go func() {
			_ = r.Float64()
		}()
	}
}

// goodRange distributes pre-split streams; each iteration variable is
// a distinct generator.
func goodRange(root *stats.RNG) {
	rngs := make([]*stats.RNG, 4)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	for _, r := range rngs {
		go use(r)
	}
}

// goodSingle passes a generator to exactly one goroutine, which then
// owns it.
func goodSingle(root *stats.RNG) {
	go use(root)
}

// badWorkerPoolShared is the bounded worker-pool shape (semaphore +
// per-task goroutine) with a shared generator captured by every worker
// — the bug the parallel sampling/postprocessing layer must not have.
func badWorkerPoolShared(root *stats.RNG, n int) {
	sem := make(chan struct{}, 4)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			_ = root.Float64() // want `captured by a goroutine closure`
		}()
	}
}

// goodWorkerPoolPreSplit is the sanctioned pool shape: one stream per
// task split off sequentially before any worker starts, indexed by the
// task id inside the closure.
func goodWorkerPoolPreSplit(root *stats.RNG, n int) {
	rngs := make([]*stats.RNG, n)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	sem := make(chan struct{}, 4)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem }()
			r := rngs[i]
			_ = r.Float64()
		}(i)
	}
}
