// Package randimport is a tracelint fixture: banned randomness imports.
package randimport

import (
	crand "crypto/rand" // want `import of "crypto/rand" is banned`
	mrand "math/rand"   // want `import of "math/rand" is banned`

	"trafficdiff/internal/stats"
)

// Uses keep the imports alive so the fixture type-checks.
var (
	_ = crand.Reader
	_ = mrand.Int
	_ = stats.NewRNG // the sanctioned source of randomness: no finding
)
