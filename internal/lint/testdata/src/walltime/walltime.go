// Package walltime is a tracelint fixture: wall-clock reads in a
// data-path package. The package path ends in lint/testdata/src/walltime,
// which walltimeSuffixes routes through the analyzer.
package walltime

import "time"

// epoch is the fixed, reproducible base time the data path should use.
var epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock in data-path package walltime`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since reads the wall clock in data-path package walltime`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time.Until reads the wall clock in data-path package walltime`
}

// derived arithmetic on times already in hand introduces no ambient
// input and is fine.
func derived(i int) time.Time {
	return epoch.Add(time.Duration(i) * time.Second)
}

// observed is the sanctioned escape hatch: timing that provably never
// feeds back into outputs, suppressed with a reasoned directive.
func observed() time.Time {
	//tracelint:allow walltime — observation-only timing for this fixture
	return time.Now()
}
