// Package paniccheck is a tracelint fixture: panics in library code.
package paniccheck

func bad(n int) {
	if n < 0 {
		panic("negative") // want `panic in library package paniccheck`
	}
}

func allowed(n int) {
	if n < 0 {
		//tracelint:allow paniccheck — fixture-sanctioned invariant check
		panic("negative")
	}
}
