// Package lockguard is a tracelint fixture: `guarded by mu` field
// annotations versus lexical lock scopes.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// incLocked holds the lock across the access: fine.
func (c *counter) incLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// incScoped uses a paired Lock/Unlock: the access sits inside the
// lexical scope, the one after Unlock does not.
func (c *counter) incScoped() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `field "n" is guarded by "mu" but accessed outside its lock scope`
}

// incUnlocked never takes the lock.
func (c *counter) incUnlocked() {
	c.n++ // want `field "n" is guarded by "mu" but accessed outside its lock scope`
}

// nLocked is documented to run with the lock already held; the holds
// annotation transfers the obligation to the callers.
//
//tracelint:holds mu
func (c *counter) nLocked() int {
	return c.n
}

// nRacyButJustified shows the explicit escape hatch.
func (c *counter) nRacyButJustified() int {
	return c.n //tracelint:allow lockguard — fixture: approximate read tolerated by the caller
}

// synth reproduces the PR-3 race shape: a mutable sampling parameter
// behind an RWMutex, written under the write lock by a setter and read
// by the generate path. The unguarded read below is the regression this
// fixture pins — reintroducing it in core.Synthesizer fails lint the
// same way.
type synth struct {
	mu    sync.RWMutex
	steps int // guarded by mu
}

func (s *synth) SetSteps(n int) {
	s.mu.Lock()
	s.steps = n
	s.mu.Unlock()
}

// snapshot reads under the read lock: fine.
func (s *synth) snapshot() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.steps
}

// generate forgets the read lock — the SetDDIMSteps/Generate race.
func (s *synth) generate() int {
	return s.steps // want `field "steps" is guarded by "mu" but accessed outside its lock scope`
}
