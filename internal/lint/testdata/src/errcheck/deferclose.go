// Fixture for the defer-Close check: Close on a file opened writable
// is where buffered write errors surface, so deferring it without
// looking at the result drops them.
package errcheck

import (
	"fmt"
	"io"
	"os"
)

func writeDropped(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close on writable file "f" discards the flush error`
	_, err = f.Write(data)
	return err
}

func appendDropped(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close on writable file "f" discards the flush error`
	_, err = fmt.Fprintln(f, "entry")
	return err
}

// readOnly is exempt: an os.Open Close error carries no data-loss
// signal.
func readOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// explicitClose is the sanctioned shape: the error propagates.
func explicitClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		// Best-effort cleanup on the error path; the write error wins.
		_ = f.Close()
		return err
	}
	return f.Close()
}

// bestEffort shows the reasoned escape hatch.
func bestEffort(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() //tracelint:allow errcheck — fixture: scratch file, contents never read back
	_, err = fmt.Fprintln(f, "scratch")
	return err
}
