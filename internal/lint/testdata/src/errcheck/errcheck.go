// Package errcheck is a tracelint fixture: dropped error returns.
//
// The blank-assignment expectations use the want+N offset form: a
// comment on the assignment's own (or previous) line would count as
// the justifying comment and exempt the site.
package errcheck

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func failPair() (int, error) { return 0, errors.New("boom") }

func drops() {
	fail() // want `error result of fail is silently discarded`

	// want+2 `assigned to _ without a justifying comment`

	_ = fail()

	// want+2 `assigned to _ without a justifying comment`

	_, _ = failPair()
}

// handler covers the http.Handler write shape the serving layer uses:
// ResponseWriter.Write returns (int, error) like any io.Writer, so a
// bare call or an uncommented blank assignment is still a dropped
// error — the client may have hung up mid-body.
func handler(w http.ResponseWriter, data []byte) {
	w.Write(data) // want `error result of w.Write is silently discarded`

	// want+2 `assigned to _ without a justifying comment`

	_, _ = w.Write(data)

	// Best-effort trailer: the status line is already on the wire, so
	// there is no channel left to report a broken connection on.
	_, _ = w.Write(data)
}

func checked() error {
	if err := fail(); err != nil {
		return err
	}
	// Deliberately ignored: this comment is the sanctioned escape hatch.
	_ = fail()
	fmt.Println("stdout convenience writes are exempt")
	fmt.Fprintln(os.Stderr, "and stderr diagnostics")
	var b strings.Builder
	fmt.Fprintf(&b, "a strings.Builder cannot fail")
	var buf bytes.Buffer
	buf.WriteString("nor can a bytes.Buffer")
	return nil
}
