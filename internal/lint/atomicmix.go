package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix enforces all-or-nothing atomicity per field: once any code
// in a package accesses a field through sync/atomic (atomic.AddUint64,
// atomic.LoadUint64, ...), every other access to that field must be
// atomic too. A mixed plain load can observe a torn or stale value and
// a mixed plain store can lose an atomic increment — and unlike a
// straight data race, the mix often "works" under the race detector's
// schedules while corrupting counters in production.
//
// The shape this catches in this repo: core.Synthesizer.genCalls is
// atomically incremented by concurrent Generate calls; a plain
// `s.genCalls++` added elsewhere (as the Deblur/Translate path once
// did) silently races with them. Fields of dedicated atomic types
// (atomic.Bool, atomic.Uint64) are immune by construction and outside
// this analyzer's scope.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	info := pass.Pkg.Info
	// atomicFields maps each field object accessed via sync/atomic to
	// one representative call position (for the diagnostic).
	atomicFields := map[types.Object]token.Pos{}
	// atomicArgSites are the exact &x.f selector nodes appearing inside
	// sync/atomic call arguments — exempt from the plain-access pass.
	atomicArgSites := map[*ast.SelectorExpr]bool{}

	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := info.Uses[sel.Sel]
				if obj == nil || !isStructField(obj) {
					continue
				}
				if _, seen := atomicFields[obj]; !seen {
					atomicFields[obj] = call.Pos()
				}
				atomicArgSites[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	type plainAccess struct {
		sel *ast.SelectorExpr
		obj types.Object
	}
	var plains []plainAccess
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgSites[sel] {
				return true
			}
			obj := info.Uses[sel.Sel]
			if _, isAtomic := atomicFields[obj]; !isAtomic {
				return true
			}
			plains = append(plains, plainAccess{sel, obj})
			return true
		})
	}
	sort.Slice(plains, func(i, j int) bool { return plains[i].sel.Pos() < plains[j].sel.Pos() })
	for _, p := range plains {
		atomicPos := pass.Pkg.Fset.Position(atomicFields[p.obj])
		pass.Reportf(p.sel.Sel.Pos(),
			"use the matching sync/atomic load/store/add, or drop atomics for this field entirely",
			"field %q is accessed atomically (e.g. %s:%d) but plainly here: mixed access races",
			p.sel.Sel.Name, relFile(pass, atomicPos.Filename), atomicPos.Line)
	}
}

// isAtomicCall reports whether the call targets package sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// isStructField reports whether obj is a struct field variable.
func isStructField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}

// relFile renders a filename relative to the module root for
// diagnostics.
func relFile(pass *Pass, file string) string {
	if rel, ok := cutPathPrefix(file, pass.moduleRoot); ok {
		return rel
	}
	return file
}

func cutPathPrefix(file, root string) (string, bool) {
	if len(file) > len(root) && file[:len(root)] == root && (file[len(root)] == '/' || file[len(root)] == '\\') {
		return file[len(root)+1:], true
	}
	return "", false
}
