// Package lint implements tracelint, a project-specific static
// analysis framework over the trafficdiff module built on go/ast and
// go/types alone.
//
// The pipeline's headline guarantee is bit-level determinism: the same
// seed must yield the same synthetic pcap and the same table numbers on
// every platform — and the serving layer must stay correct under heavy
// concurrent traffic. The analyzers in this package mechanically
// enforce the coding invariants those guarantees rest on:
//
//   - randimport: all randomness flows through internal/stats.RNG;
//     math/rand and crypto/rand imports are banned in non-test code.
//   - rngescape: a *stats.RNG must not be shared across goroutines;
//     each goroutine takes its own Split() stream.
//   - floateq: no ==/!= on floating-point operands outside tests.
//   - errcheck: no silently dropped error returns in internal/ and
//     cmd/, including `defer f.Close()` on files opened for writing.
//   - paniccheck: no panic() in internal/ packages outside the tensor
//     shape-invariant kernels.
//   - walltime: no wall-clock reads (time.Now / time.Since /
//     time.Until) in data-path packages; identical inputs must yield
//     identical bytes regardless of when they run.
//   - lockguard: a field annotated `// guarded by mu` is only touched
//     inside a lexical mu.Lock()/RLock() scope or in a function
//     annotated `//tracelint:holds mu`.
//   - atomicmix: a field accessed through sync/atomic anywhere must be
//     accessed atomically everywhere — no mixed plain loads/stores.
//   - hotalloc: functions annotated `//tracelint:hotpath` (and
//     everything they reach through same-module static calls) must not
//     contain allocation sites.
//
// A finding can be suppressed at a specific site with a directive
// comment naming the analyzer and a justification:
//
//	//tracelint:allow paniccheck — documented API invariant, mirrors math/rand
//
// The directive applies to findings on its own line or, for a
// standalone comment line, the line directly below it. Findings that
// predate an analyzer can instead be recorded in a committed baseline
// file (see baseline.go), so a new analyzer lands with a
// zero-new-findings CI gate without a same-PR sweep.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Analyzer names the pass that produced the finding.
	Analyzer string `json:"analyzer"`
	// Pos is "file:line:col" with the file relative to the module root.
	Pos string `json:"pos"`
	// Message states what is wrong.
	Message string `json:"message"`
	// Hint suggests how to fix it.
	Hint string `json:"hint,omitempty"`

	line, col int
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	return s
}

// File returns the module-relative file of the finding.
func (f Finding) File() string { return posFile(f.Pos) }

// Analyzer is one self-contained static-analysis pass. Exactly one of
// Run and RunModule is set: Run is invoked once per package (passes
// over distinct packages may run in parallel), RunModule once with
// every loaded package (for analyses that follow edges across package
// boundaries, like hotalloc's call graph).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// RunModule analyzers see the whole module at once.
	RunModule func(*ModulePass)
}

// All returns every tracelint analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RandImport, RNGEscape, FloatEq, ErrCheck, PanicCheck,
		WallTime, LockGuard, AtomicMix, HotAlloc,
	}
}

// Select resolves -enable/-disable comma lists against the registry:
// an empty enable list means "all analyzers", then disable names are
// removed. Unknown names are errors so a typo cannot silently skip a
// gate.
func Select(enable, disable string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	picked := All()
	if enable != "" {
		picked = nil
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			picked = append(picked, a)
		}
	}
	if disable != "" {
		drop := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			drop[name] = true
		}
		kept := picked[:0]
		for _, a := range picked {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		picked = kept
	}
	return picked, nil
}

// Pass carries one (package, analyzer) pairing and collects findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// ModulePath is the module being analyzed ("trafficdiff").
	ModulePath string

	moduleRoot string
	allows     map[string]map[int][]string // file -> line -> allowed analyzer names
	findings   *[]Finding
}

// Reportf records a finding at pos unless a tracelint:allow directive
// covers that line.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.allowed(position.Filename, position.Line) {
		return
	}
	file := position.Filename
	if rel, err := filepath.Rel(p.moduleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      fmt.Sprintf("%s:%d:%d", file, position.Line, position.Column),
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
		line:     position.Line,
		col:      position.Column,
	})
}

func (p *Pass) allowed(file string, line int) bool {
	for _, name := range p.allows[file][line] {
		if name == p.Analyzer.Name || name == "all" {
			return true
		}
	}
	return false
}

// ModulePass is the module-wide analogue of Pass: one analyzer over
// every loaded package. Reporting goes through the per-package Pass so
// allow directives and position rendering behave identically.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	// ModulePath is the module being analyzed.
	ModulePath string

	passes map[*Package]*Pass
}

// Reportf records a finding at pos inside pkg unless an allow
// directive covers the line.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, hint, format string, args ...any) {
	mp.passes[pkg].Reportf(pos, hint, format, args...)
}

// directivePrefix starts a suppression comment: //tracelint:allow name…
const directivePrefix = "tracelint:allow"

// hotpathDirective marks a function whose steady-state loop must not
// allocate: //tracelint:hotpath
const hotpathDirective = "tracelint:hotpath"

// holdsPrefix marks a function documented to be called with a lock
// already held: //tracelint:holds mu
const holdsPrefix = "tracelint:holds"

// directiveText extracts the text of a tracelint directive with the
// given name from one comment, or "" and false. The justification
// after an em-dash or "--" is dropped.
func directiveText(c *ast.Comment, name string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, name)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	for _, sep := range []string{"—", "--"} {
		if i := strings.Index(rest, sep); i >= 0 {
			rest = rest[:i]
		}
	}
	return strings.TrimSpace(rest), true
}

// funcDirective scans a function's doc comment for the named tracelint
// directive and returns its argument text.
func funcDirective(fd *ast.FuncDecl, name string) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		if text, ok := directiveText(c, name); ok {
			return text, ok
		}
	}
	return "", false
}

// collectAllows maps file -> line -> analyzers suppressed on that line.
// A trailing comment suppresses its own line; a standalone comment line
// suppresses the next line.
func collectAllows(pkg *Package) map[string]map[int][]string {
	allows := map[string]map[int][]string{}
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		fileAllows := allows[tf.Name()]
		if fileAllows == nil {
			fileAllows = map[int][]string{}
			allows[tf.Name()] = fileAllows
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directiveText(c, directivePrefix)
				if !ok {
					continue
				}
				names := strings.Fields(rest)
				if len(names) == 0 {
					continue
				}
				// A trailing directive guards its own line; a standalone
				// directive guards the line below. Without source text the
				// two are indistinguishable, so the directive covers both.
				pos := pkg.Fset.Position(c.Pos())
				fileAllows[pos.Line] = append(fileAllows[pos.Line], names...)
				fileAllows[pos.Line+1] = append(fileAllows[pos.Line+1], names...)
			}
		}
	}
	return allows
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving findings sorted by position. Per-package analyzers run in
// parallel across packages (each analyzer only reads its package);
// module-wide analyzers run concurrently with them over the full set.
func RunAnalyzers(moduleRoot, modulePath string, pkgs []*Package, analyzers []*Analyzer) []Finding {
	allowsByPkg := make(map[*Package]map[string]map[int][]string, len(pkgs))
	for _, pkg := range pkgs {
		allowsByPkg[pkg] = collectAllows(pkg)
	}
	var pkgAnalyzers, modAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			modAnalyzers = append(modAnalyzers, a)
		} else {
			pkgAnalyzers = append(pkgAnalyzers, a)
		}
	}

	var (
		mu       sync.Mutex
		findings []Finding
		wg       sync.WaitGroup
	)
	for _, pkg := range pkgs {
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			var local []Finding
			for _, a := range pkgAnalyzers {
				a.Run(&Pass{
					Analyzer:   a,
					Pkg:        pkg,
					ModulePath: modulePath,
					moduleRoot: moduleRoot,
					allows:     allowsByPkg[pkg],
					findings:   &local,
				})
			}
			mu.Lock()
			findings = append(findings, local...)
			mu.Unlock()
		}(pkg)
	}
	for _, a := range modAnalyzers {
		wg.Add(1)
		go func(a *Analyzer) {
			defer wg.Done()
			var local []Finding
			mp := &ModulePass{
				Analyzer:   a,
				Pkgs:       pkgs,
				ModulePath: modulePath,
				passes:     make(map[*Package]*Pass, len(pkgs)),
			}
			for _, pkg := range pkgs {
				mp.passes[pkg] = &Pass{
					Analyzer:   a,
					Pkg:        pkg,
					ModulePath: modulePath,
					moduleRoot: moduleRoot,
					allows:     allowsByPkg[pkg],
					findings:   &local,
				}
			}
			a.RunModule(mp)
			mu.Lock()
			findings = append(findings, local...)
			mu.Unlock()
		}(a)
	}
	wg.Wait()

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if af, bf := posFile(a.Pos), posFile(b.Pos); af != bf {
			return af < bf
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// posFile strips the ":line:col" suffix from a finding position.
func posFile(pos string) string {
	if i := strings.LastIndexByte(pos, ':'); i >= 0 {
		if j := strings.LastIndexByte(pos[:i], ':'); j >= 0 {
			return pos[:j]
		}
	}
	return pos
}

// isTestFile reports whether the file holding pos is a _test.go file.
// The loader skips test files, but fixture packages may include them.
func isTestFile(pkg *Package, f *ast.File) bool {
	tf := pkg.Fset.File(f.Pos())
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}
