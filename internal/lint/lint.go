// Package lint implements tracelint, a project-specific static
// analysis pass over the trafficdiff module built on go/ast and
// go/types alone.
//
// The pipeline's headline guarantee is bit-level determinism: the same
// seed must yield the same synthetic pcap and the same table numbers on
// every platform. The analyzers in this package mechanically enforce
// the coding invariants that guarantee rests on:
//
//   - randimport: all randomness flows through internal/stats.RNG;
//     math/rand and crypto/rand imports are banned in non-test code.
//   - rngescape: a *stats.RNG must not be shared across goroutines;
//     each goroutine takes its own Split() stream.
//   - floateq: no ==/!= on floating-point operands outside tests.
//   - errcheck: no silently dropped error returns in internal/ and cmd/.
//   - paniccheck: no panic() in internal/ packages outside the tensor
//     shape-invariant kernels.
//
// A finding can be suppressed at a specific site with a directive
// comment naming the analyzer and a justification:
//
//	//tracelint:allow paniccheck — documented API invariant, mirrors math/rand
//
// The directive applies to findings on its own line or, for a
// standalone comment line, the line directly below it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Analyzer names the pass that produced the finding.
	Analyzer string `json:"analyzer"`
	// Pos is "file:line:col" with the file relative to the module root.
	Pos string `json:"pos"`
	// Message states what is wrong.
	Message string `json:"message"`
	// Hint suggests how to fix it.
	Hint string `json:"hint,omitempty"`

	line, col int
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	return s
}

// Analyzer is one self-contained static-analysis pass. Run is invoked
// once per package and reports through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every tracelint analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{RandImport, RNGEscape, FloatEq, ErrCheck, PanicCheck}
}

// Pass carries one (package, analyzer) pairing and collects findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// ModulePath is the module being analyzed ("trafficdiff").
	ModulePath string

	moduleRoot string
	allows     map[string]map[int][]string // file -> line -> allowed analyzer names
	findings   *[]Finding
}

// Reportf records a finding at pos unless a tracelint:allow directive
// covers that line.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.allowed(position.Filename, position.Line) {
		return
	}
	file := position.Filename
	if rel, err := filepath.Rel(p.moduleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      fmt.Sprintf("%s:%d:%d", file, position.Line, position.Column),
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
		line:     position.Line,
		col:      position.Column,
	})
}

func (p *Pass) allowed(file string, line int) bool {
	for _, name := range p.allows[file][line] {
		if name == p.Analyzer.Name || name == "all" {
			return true
		}
	}
	return false
}

// directivePrefix starts a suppression comment: //tracelint:allow name…
const directivePrefix = "tracelint:allow"

// collectAllows maps file -> line -> analyzers suppressed on that line.
// A trailing comment suppresses its own line; a standalone comment line
// suppresses the next line.
func collectAllows(pkg *Package) map[string]map[int][]string {
	allows := map[string]map[int][]string{}
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		fileAllows := allows[tf.Name()]
		if fileAllows == nil {
			fileAllows = map[int][]string{}
			allows[tf.Name()] = fileAllows
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				// Drop the justification after an em-dash or "--".
				for _, sep := range []string{"—", "--"} {
					if i := strings.Index(rest, sep); i >= 0 {
						rest = rest[:i]
					}
				}
				names := strings.Fields(rest)
				if len(names) == 0 {
					continue
				}
				// A trailing directive guards its own line; a standalone
				// directive guards the line below. Without source text the
				// two are indistinguishable, so the directive covers both.
				pos := pkg.Fset.Position(c.Pos())
				fileAllows[pos.Line] = append(fileAllows[pos.Line], names...)
				fileAllows[pos.Line+1] = append(fileAllows[pos.Line+1], names...)
			}
		}
	}
	return allows
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving findings sorted by position.
func RunAnalyzers(moduleRoot, modulePath string, pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer:   a,
				Pkg:        pkg,
				ModulePath: modulePath,
				moduleRoot: moduleRoot,
				allows:     allows,
				findings:   &findings,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if af, bf := posFile(a.Pos), posFile(b.Pos); af != bf {
			return af < bf
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// posFile strips the ":line:col" suffix from a finding position.
func posFile(pos string) string {
	if i := strings.LastIndexByte(pos, ':'); i >= 0 {
		if j := strings.LastIndexByte(pos[:i], ':'); j >= 0 {
			return pos[:j]
		}
	}
	return pos
}

// isTestFile reports whether the file holding pos is a _test.go file.
// The loader skips test files, but fixture packages may include them.
func isTestFile(pkg *Package, f *ast.File) bool {
	tf := pkg.Fset.File(f.Pos())
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}
