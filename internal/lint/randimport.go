package lint

import (
	"strconv"
)

// RandImport bans math/rand, math/rand/v2 and crypto/rand imports in
// non-test code. Every random draw must flow through internal/stats.RNG
// so that one seed determines the whole pipeline: math/rand's global
// source is process-wide mutable state, and crypto/rand is
// nondeterministic by construction — either silently breaks the
// same-seed-same-pcap guarantee the experiments depend on.
var RandImport = &Analyzer{
	Name: "randimport",
	Doc:  "forbid math/rand and crypto/rand imports outside tests",
	Run:  runRandImport,
}

var bannedRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func runRandImport(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if bannedRandImports[path] {
				pass.Reportf(imp.Pos(),
					"draw from a seeded *stats.RNG (internal/stats) instead",
					"import of %q is banned in non-test code: randomness must be seeded and deterministic", path)
			}
		}
	}
}
