package lint

import (
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one loader per test binary so the standard
// library is type-checked from source only once.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// want is one expected diagnostic parsed from a fixture comment.
type want struct {
	file   string
	line   int
	substr string
	seen   bool
}

// wantRe matches a want expectation in a comment: the word "want",
// optionally "+N" to shift the expected line N lines below the
// comment, then the expected message substring in backquotes.
var wantRe = regexp.MustCompile("want(\\+[0-9]+)? `([^`]+)`")

func parseWants(pkg *Package) []*want {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				wants = append(wants, &want{
					file:   pos.Filename,
					line:   pos.Line + offset,
					substr: m[2],
				})
			}
		}
	}
	return wants
}

// runFixture applies one analyzer to one fixture package and checks
// the findings against the fixture's want comments, both directions.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	l := fixtureLoader(t)
	pkg, err := l.Load(l.ModulePath() + "/internal/lint/testdata/src/" + name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	findings := RunAnalyzers(l.ModuleRoot(), l.ModulePath(), []*Package{pkg}, []*Analyzer{a})
	wants := parseWants(pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}

	for _, f := range findings {
		file, line := findingSite(t, l, f)
		matched := false
		for _, w := range wants {
			if !w.seen && filepath.Base(w.file) == filepath.Base(file) &&
				w.line == line && strings.Contains(f.Message, w.substr) {
				w.seen = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.seen {
			t.Errorf("missing finding at %s:%d containing %q", filepath.Base(w.file), w.line, w.substr)
		}
	}
}

// findingSite splits a finding position into file and line.
func findingSite(t *testing.T, l *Loader, f Finding) (string, int) {
	t.Helper()
	parts := strings.Split(f.Pos, ":")
	if len(parts) < 3 {
		t.Fatalf("malformed finding position %q", f.Pos)
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		t.Fatalf("malformed finding position %q: %v", f.Pos, err)
	}
	return strings.Join(parts[:len(parts)-2], ":"), line
}

func TestRandImportFixture(t *testing.T) { runFixture(t, RandImport, "randimport") }
func TestRNGEscapeFixture(t *testing.T)  { runFixture(t, RNGEscape, "rngescape") }
func TestFloatEqFixture(t *testing.T)    { runFixture(t, FloatEq, "floateq") }
func TestErrCheckFixture(t *testing.T)   { runFixture(t, ErrCheck, "errcheck") }
func TestPanicCheckFixture(t *testing.T) { runFixture(t, PanicCheck, "paniccheck") }

// TestLoaderResolvesModulePackages checks that the zero-dependency
// loader can type-check a real module package and expose its types.
func TestLoaderResolvesModulePackages(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.Load(l.ModulePath() + "/internal/stats")
	if err != nil {
		t.Fatalf("loading internal/stats: %v", err)
	}
	obj := pkg.Types.Scope().Lookup("RNG")
	if obj == nil {
		t.Fatal("internal/stats has no RNG type")
	}
	if !isRNGPointer(types.NewPointer(obj.Type())) {
		t.Fatal("isRNGPointer does not recognize *stats.RNG")
	}
}
