package lint

import (
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one loader per test binary so the standard
// library is type-checked from source only once.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// want is one expected diagnostic parsed from a fixture comment.
type want struct {
	file   string
	line   int
	substr string
	seen   bool
}

// wantRe matches a want expectation in a comment: the word "want",
// optionally "+N" to shift the expected line N lines below the
// comment, then the expected message substring in backquotes.
var wantRe = regexp.MustCompile("want(\\+[0-9]+)? `([^`]+)`")

func parseWants(pkg *Package) []*want {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				wants = append(wants, &want{
					file:   pos.Filename,
					line:   pos.Line + offset,
					substr: m[2],
				})
			}
		}
	}
	return wants
}

// runFixture applies one analyzer to one fixture package and checks
// the findings against the fixture's want comments, both directions.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	l := fixtureLoader(t)
	pkg, err := l.Load(l.ModulePath() + "/internal/lint/testdata/src/" + name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	findings := RunAnalyzers(l.ModuleRoot(), l.ModulePath(), []*Package{pkg}, []*Analyzer{a})
	wants := parseWants(pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}

	for _, f := range findings {
		file, line := findingSite(t, l, f)
		matched := false
		for _, w := range wants {
			if !w.seen && filepath.Base(w.file) == filepath.Base(file) &&
				w.line == line && strings.Contains(f.Message, w.substr) {
				w.seen = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.seen {
			t.Errorf("missing finding at %s:%d containing %q", filepath.Base(w.file), w.line, w.substr)
		}
	}
}

// findingSite splits a finding position into file and line.
func findingSite(t *testing.T, l *Loader, f Finding) (string, int) {
	t.Helper()
	parts := strings.Split(f.Pos, ":")
	if len(parts) < 3 {
		t.Fatalf("malformed finding position %q", f.Pos)
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		t.Fatalf("malformed finding position %q: %v", f.Pos, err)
	}
	return strings.Join(parts[:len(parts)-2], ":"), line
}

func TestRandImportFixture(t *testing.T) { runFixture(t, RandImport, "randimport") }
func TestRNGEscapeFixture(t *testing.T)  { runFixture(t, RNGEscape, "rngescape") }
func TestFloatEqFixture(t *testing.T)    { runFixture(t, FloatEq, "floateq") }
func TestErrCheckFixture(t *testing.T)   { runFixture(t, ErrCheck, "errcheck") }
func TestPanicCheckFixture(t *testing.T) { runFixture(t, PanicCheck, "paniccheck") }
func TestWallTimeFixture(t *testing.T)   { runFixture(t, WallTime, "walltime") }
func TestLockGuardFixture(t *testing.T)  { runFixture(t, LockGuard, "lockguard") }
func TestAtomicMixFixture(t *testing.T)  { runFixture(t, AtomicMix, "atomicmix") }
func TestHotAllocFixture(t *testing.T)   { runFixture(t, HotAlloc, "hotalloc") }

func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\", \"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	picked, err := Select("walltime, lockguard", "")
	if err != nil || len(picked) != 2 || picked[0].Name != "walltime" || picked[1].Name != "lockguard" {
		t.Fatalf("Select enable list = %v, err %v", picked, err)
	}
	without, err := Select("", "hotalloc")
	if err != nil || len(without) != len(All())-1 {
		t.Fatalf("Select disable list = %d analyzers, err %v", len(without), err)
	}
	for _, a := range without {
		if a.Name == "hotalloc" {
			t.Fatal("disabled analyzer still selected")
		}
	}
	if _, err := Select("nosuch", ""); err == nil {
		t.Fatal("unknown enable name did not error")
	}
	if _, err := Select("", "nosuch"); err == nil {
		t.Fatal("unknown disable name did not error")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Analyzer: "walltime", Pos: "internal/a/a.go:10:2", Message: "m1"},
		{Analyzer: "walltime", Pos: "internal/a/a.go:20:2", Message: "m1"},
		{Analyzer: "errcheck", Pos: "internal/b/b.go:5:1", Message: "m2"},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (identical findings merge)", len(b.Entries))
	}

	// The exact recorded findings are fully absorbed.
	fresh, baselined := b.Apply(findings)
	if len(fresh) != 0 || baselined != 3 {
		t.Fatalf("Apply on recorded set: %d fresh, %d baselined; want 0, 3", len(fresh), baselined)
	}

	// One more instance of a baselined shape exceeds its budget.
	extra := append(append([]Finding(nil), findings...),
		Finding{Analyzer: "walltime", Pos: "internal/a/a.go:30:2", Message: "m1"})
	fresh, baselined = b.Apply(extra)
	if len(fresh) != 1 || baselined != 3 {
		t.Fatalf("Apply past budget: %d fresh, %d baselined; want 1, 3", len(fresh), baselined)
	}

	// A brand-new shape surfaces untouched.
	fresh, _ = b.Apply([]Finding{{Analyzer: "floateq", Pos: "x.go:1:1", Message: "new"}})
	if len(fresh) != 1 {
		t.Fatalf("new shape absorbed by unrelated baseline")
	}
}

func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || len(b.Entries) != 0 {
		t.Fatalf("missing baseline: %v entries, err %v; want empty, nil", b, err)
	}
}

// BenchmarkLintModule measures a full cold lint of the module: load +
// type-check every package, then run all analyzers. This is the number
// `make lint` pays; the loader's export-data stdlib importer and
// parallel type-checking are what keep it in single-digit seconds.
func BenchmarkLintModule(b *testing.B) {
	root, err := filepath.Abs("../..")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		if f := RunAnalyzers(l.ModuleRoot(), l.ModulePath(), pkgs, All()); len(f) > 0 {
			b.Fatalf("module has %d findings", len(f))
		}
	}
}

// TestLoaderResolvesModulePackages checks that the zero-dependency
// loader can type-check a real module package and expose its types.
func TestLoaderResolvesModulePackages(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.Load(l.ModulePath() + "/internal/stats")
	if err != nil {
		t.Fatalf("loading internal/stats: %v", err)
	}
	obj := pkg.Types.Scope().Lookup("RNG")
	if obj == nil {
		t.Fatal("internal/stats has no RNG type")
	}
	if !isRNGPointer(types.NewPointer(obj.Type())) {
		t.Fatal("isRNGPointer does not recognize *stats.RNG")
	}
}
