package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one type-checked package of the module under analysis.
// Only non-test files are loaded: test code is exempt from every
// analyzer, and `go test -race ./...` covers its concurrency.
type Package struct {
	// Path is the import path, e.g. "trafficdiff/internal/stats".
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library: module-internal imports resolve recursively
// through the loader itself, and standard-library imports resolve
// through compiled export data from the go build cache (falling back
// to the compiler's source importer when the go command is
// unavailable).
//
// The loader is safe for concurrent use. LoadAll parses every package
// in parallel and type-checks them concurrently in dependency order,
// so a full-module load scales with GOMAXPROCS instead of walking the
// import graph one package at a time.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string

	// stdMu serializes the underlying importer: neither the gc
	// export-data importer nor the source importer is documented safe
	// for concurrent use. stdCache memoizes completed imports so the
	// steady state never touches the lock-protected importer at all.
	stdMu    sync.Mutex
	std      types.Importer
	stdCache sync.Map // import path -> *types.Package

	mu      sync.Mutex
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at moduleRoot
// (the directory containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: abs,
		modulePath: modPath,
		std:        newStdImporter(fset, abs),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// newStdImporter builds the standard-library importer. The fast path
// reads compiled export data out of the go build cache (one `go list
// -export` invocation enumerates it), which resolves a package like
// net/http in microseconds instead of type-checking its sources — the
// dominant cost of a lint run before v2. When the go command is
// missing or fails, the zero-dependency source importer remains the
// fallback.
func newStdImporter(fset *token.FileSet, dir string) types.Importer {
	exports, err := stdExportData(dir)
	if err != nil {
		return importer.ForCompiler(fset, "source", nil)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// stdExportData maps every standard-library import path to its export
// data file in the build cache.
func stdExportData(dir string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", "std")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list -export: %w", err)
	}
	exports := map[string]string{}
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if ok && file != "" {
			exports[path] = file
		}
	}
	if len(exports) == 0 {
		return nil, fmt.Errorf("lint: go list -export returned no export data")
	}
	return exports, nil
}

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleRoot returns the absolute directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// Fset returns the file set shared by every loaded package.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// parsedPkg is one package's sources between the parse and type-check
// stages of LoadAll.
type parsedPkg struct {
	path  string
	dir   string
	files []*ast.File
	// deps lists module-internal imports (edges of the scheduling DAG).
	deps []string
	err  error
}

// LoadAll loads every package under the module root, skipping testdata
// trees and hidden directories. Packages come back sorted by import
// path so analysis output is deterministic.
//
// The load runs in two concurrent stages: every package's sources are
// parsed in parallel (token.FileSet is synchronized), then packages
// are type-checked by a worker pool in dependency order — a package
// starts the moment its module-internal imports are done, so
// independent subtrees of the import graph check simultaneously.
func (l *Loader) LoadAll() ([]*Package, error) {
	paths, dirs, err := l.discover()
	if err != nil {
		return nil, err
	}

	// Stage 1: parse all packages in parallel.
	parsed := make([]*parsedPkg, len(paths))
	var wg sync.WaitGroup
	for i := range paths {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parsed[i] = l.parseDir(paths[i], dirs[i])
		}(i)
	}
	wg.Wait()
	byPath := map[string]*parsedPkg{}
	for _, p := range parsed {
		if p.err != nil {
			return nil, p.err
		}
		byPath[p.path] = p
	}

	// Stage 2: type-check in dependency order with a worker pool.
	if err := l.checkAll(parsed, byPath); err != nil {
		return nil, err
	}

	out := make([]*Package, 0, len(parsed))
	l.mu.Lock()
	for _, p := range parsed {
		out = append(out, l.pkgs[p.path])
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// discover walks the module tree and returns every package's import
// path and directory, sorted by path.
func (l *Loader) discover() (paths, dirs []string, err error) {
	seen := map[string]bool{}
	err = filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.moduleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(l.moduleRoot, dir)
		if err != nil {
			return err
		}
		ip := l.modulePath
		if rel != "." {
			ip = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		if !seen[ip] {
			seen[ip] = true
			paths = append(paths, ip)
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Sort(&pathDirSort{paths, dirs})
	return paths, dirs, nil
}

// pathDirSort sorts parallel path/dir slices by path.
type pathDirSort struct{ paths, dirs []string }

func (s *pathDirSort) Len() int           { return len(s.paths) }
func (s *pathDirSort) Less(i, j int) bool { return s.paths[i] < s.paths[j] }
func (s *pathDirSort) Swap(i, j int) {
	s.paths[i], s.paths[j] = s.paths[j], s.paths[i]
	s.dirs[i], s.dirs[j] = s.dirs[j], s.dirs[i]
}

// parseDir parses every non-test .go file of one package directory and
// records its module-internal imports.
func (l *Loader) parseDir(path, dir string) *parsedPkg {
	p := &parsedPkg{path: path, dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		p.err = err
		return p
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("lint: no buildable Go files in %s", dir)
		return p
	}
	sort.Slice(p.files, func(i, j int) bool {
		return l.fset.File(p.files[i].Pos()).Name() < l.fset.File(p.files[j].Pos()).Name()
	})
	depSet := map[string]bool{}
	for _, f := range p.files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == l.modulePath || strings.HasPrefix(ip, l.modulePath+"/") {
				depSet[ip] = true
			}
		}
	}
	for ip := range depSet {
		p.deps = append(p.deps, ip)
	}
	sort.Strings(p.deps)
	return p
}

// checkAll type-checks every parsed package with a worker pool,
// releasing each package the moment its module-internal deps finish.
func (l *Loader) checkAll(parsed []*parsedPkg, byPath map[string]*parsedPkg) error {
	// Dependency bookkeeping. Deps outside the discovered set (e.g. a
	// fixture importing a module package when only fixtures are loaded)
	// type-check on demand through Load inside the worker.
	waiting := map[string]int{}
	dependents := map[string][]string{}
	for _, p := range parsed {
		for _, dep := range p.deps {
			if _, known := byPath[dep]; known {
				waiting[p.path]++
				dependents[dep] = append(dependents[dep], p.path)
			}
		}
	}
	ready := make(chan *parsedPkg, len(parsed))
	for _, p := range parsed {
		if waiting[p.path] == 0 {
			ready <- p
		}
	}

	var (
		mu       sync.Mutex
		firstErr error
		done     int
		closed   bool
	)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(parsed) {
		workers = len(parsed)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ready {
				_, err := l.check(p.path, p.dir, p.files)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				done++
				if err == nil {
					for _, dep := range dependents[p.path] {
						waiting[dep]--
						if waiting[dep] == 0 {
							ready <- byPath[dep]
						}
					}
				}
				// Close when everything finished or an error makes the
				// remaining packages unreachable.
				if !closed && (done == len(parsed) || firstErr != nil) {
					closed = true
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if done != len(parsed) {
		return fmt.Errorf("lint: import cycle among module packages")
	}
	return nil
}

// Load type-checks the package at the given module-internal import
// path, loading its module-internal dependencies first. Used for
// single-package loads (fixture tests); LoadAll is the parallel path.
func (l *Loader) Load(path string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	if l.loading[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.loading, path)
		l.mu.Unlock()
	}()

	dir := l.moduleRoot
	if path != l.modulePath {
		rel, ok := strings.CutPrefix(path, l.modulePath+"/")
		if !ok {
			return nil, fmt.Errorf("lint: %s is outside module %s", path, l.modulePath)
		}
		dir = filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
	}
	parsed := l.parseDir(path, dir)
	if parsed.err != nil {
		return nil, parsed.err
	}
	return l.check(path, dir, parsed.files)
}

// check type-checks one parsed package and caches it. Concurrent
// checks of distinct packages are safe: the file set is synchronized,
// completed dependency packages are immutable, and the stdlib importer
// is serialized behind its own lock.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	l.mu.Unlock()

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.mu.Lock()
	if prev, ok := l.pkgs[path]; ok {
		// Another goroutine finished first; keep its result so every
		// importer sees one canonical *types.Package per path.
		p = prev
	} else {
		l.pkgs[path] = p
	}
	l.mu.Unlock()
	return p, nil
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if cached, ok := l.stdCache.Load(path); ok {
		return cached.(*types.Package), nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	if cached, ok := l.stdCache.Load(path); ok {
		return cached.(*types.Package), nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.stdCache.Store(path, pkg)
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
