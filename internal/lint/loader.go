package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
// Only non-test files are loaded: test code is exempt from every
// analyzer, and `go test -race ./...` covers its concurrency.
type Package struct {
	// Path is the import path, e.g. "trafficdiff/internal/stats".
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library: module-internal imports resolve recursively
// through the loader itself, and standard-library imports resolve
// through the compiler's source importer.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader for the module rooted at moduleRoot
// (the directory containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: abs,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleRoot returns the absolute directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// Fset returns the file set shared by every loaded package.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll loads every package under the module root, skipping testdata
// trees and hidden directories. Packages come back sorted by import
// path so analysis output is deterministic.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.moduleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.moduleRoot, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := l.modulePath
		if rel != "." {
			ip = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Package
	seen := map[string]bool{}
	for _, ip := range paths {
		if seen[ip] {
			continue
		}
		seen[ip] = true
		pkg, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Load type-checks the package at the given module-internal import
// path, loading its module-internal dependencies first.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.moduleRoot
	if path != l.modulePath {
		rel, ok := strings.CutPrefix(path, l.modulePath+"/")
		if !ok {
			return nil, fmt.Errorf("lint: %s is outside module %s", path, l.modulePath)
		}
		dir = filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.fset.File(files[i].Pos()).Name() < l.fset.File(files[j].Pos()).Name()
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
