package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RNGEscape flags a *stats.RNG that crosses a goroutine boundary
// unsafely: captured by a `go` statement's closure, or handed to more
// than one goroutine. The xoshiro generator is deliberately unlocked
// for speed, so concurrent draws race on its 256-bit state — the race
// detector only catches that when schedules interleave, while the
// deterministic-output guarantee is corrupted every time. The safe
// pattern is one Split() stream per goroutine, derived sequentially
// before any goroutine starts.
var RNGEscape = &Analyzer{
	Name: "rngescape",
	Doc:  "forbid sharing a *stats.RNG across goroutines without Split()",
	Run:  runRNGEscape,
}

func runRNGEscape(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncForRNGEscape(pass, fd)
		}
	}
}

func checkFuncForRNGEscape(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	// Every position where an RNG object is handed to a goroutine,
	// keyed by the variable, in source order.
	passedTo := map[types.Object][]token.Pos{}
	var passedOrder []types.Object

	recordPass := func(obj types.Object, pos token.Pos) {
		if _, seen := passedTo[obj]; !seen {
			passedOrder = append(passedOrder, obj)
		}
		passedTo[obj] = append(passedTo[obj], pos)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		call := g.Call
		// RNG receivers and arguments travel into the new goroutine.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := rngObject(info, sel.X); obj != nil {
				recordPass(obj, sel.X.Pos())
			}
		}
		for _, arg := range call.Args {
			if obj := rngObject(info, arg); obj != nil {
				recordPass(obj, arg.Pos())
			}
		}
		// RNG variables captured by a spawned closure.
		if fl, ok := call.Fun.(*ast.FuncLit); ok {
			reported := map[types.Object]bool{}
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || !isRNGPointer(obj.Type()) || reported[obj] {
					return true
				}
				// Only free variables count: anything declared inside
				// the closure (params, locals) is goroutine-private.
				if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
					return true
				}
				if splitOrigin(pass, fd, obj) {
					return true
				}
				reported[obj] = true
				pass.Reportf(id.Pos(),
					"derive a per-goroutine stream with Split() before the go statement",
					"*stats.RNG %q is captured by a goroutine closure; concurrent draws race on the generator state", obj.Name())
				return true
			})
		}
		return true
	})

	for _, obj := range passedOrder {
		positions := passedTo[obj]
		if len(positions) < 2 {
			continue
		}
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		pass.Reportf(positions[1],
			"give each goroutine its own Split() stream",
			"*stats.RNG %q is passed to %d goroutines; concurrent draws race on the generator state", obj.Name(), len(positions))
	}
}

// rngObject returns the variable behind expr if it is a plain
// identifier of type *stats.RNG.
func rngObject(info *types.Info, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil || !isRNGPointer(obj.Type()) {
		return nil
	}
	return obj
}

// isRNGPointer reports whether t is *stats.RNG.
func isRNGPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/stats")
}

// splitOrigin reports whether every assignment to obj inside fd is a
// Split() call or a range over a slice of pre-split streams — the two
// shapes that guarantee the captured value is goroutine-private.
func splitOrigin(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	info := pass.Pkg.Info
	assigns := 0
	allSafe := true
	ast.Inspect(fd, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) {
					continue
				}
				assigns++
				if len(stmt.Rhs) == len(stmt.Lhs) && isSplitCall(stmt.Rhs[i]) {
					continue
				}
				allSafe = false
			}
		case *ast.ValueSpec:
			for i, name := range stmt.Names {
				if info.Defs[name] != obj {
					continue
				}
				assigns++
				if i < len(stmt.Values) && isSplitCall(stmt.Values[i]) {
					continue
				}
				allSafe = false
			}
		case *ast.RangeStmt:
			id, ok := stmt.Value.(*ast.Ident)
			if !ok || info.Defs[id] != obj {
				return true
			}
			// Ranging over []*stats.RNG distributes pre-split streams;
			// each iteration variable is a distinct generator.
			assigns++
			t := info.TypeOf(stmt.X)
			if t == nil {
				allSafe = false
				return true
			}
			switch u := t.Underlying().(type) {
			case *types.Slice:
				if !isRNGPointer(u.Elem()) {
					allSafe = false
				}
			case *types.Array:
				if !isRNGPointer(u.Elem()) {
					allSafe = false
				}
			default:
				allSafe = false
			}
		}
		return true
	})
	return assigns > 0 && allSafe
}

// isSplitCall matches r.Split() for any receiver expression.
func isSplitCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Split"
}
