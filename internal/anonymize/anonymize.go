// Package anonymize provides prefix-preserving IP address
// anonymization (the Crypto-PAn construction of Xu et al.) and
// trace-level sanitization. The paper's opening motivation is that
// real traces cannot be shared due to "business confidentiality and
// privacy constraints"; this package supplies the conventional
// mitigation for comparison and for sanitizing the real fine-tuning
// captures the pipeline stores next to synthetic output.
//
// Prefix preservation means two addresses sharing a k-bit prefix map
// to anonymized addresses sharing exactly a k-bit prefix, so subnet
// structure (and routing-level analysis) survives while identities do
// not.
package anonymize

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
)

// Anonymizer applies deterministic, key-dependent prefix-preserving
// anonymization to IPv4 addresses.
type Anonymizer struct {
	block cipher.Block
	// pad is the Crypto-PAn padding block derived from the key.
	pad [16]byte
}

// New derives an anonymizer from an arbitrary-length secret key.
func New(key []byte) (*Anonymizer, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("anonymize: empty key")
	}
	sum := sha256.Sum256(key)
	block, err := aes.NewCipher(sum[:16])
	if err != nil {
		return nil, err
	}
	a := &Anonymizer{block: block}
	block.Encrypt(a.pad[:], sum[16:32])
	return a, nil
}

// Addr anonymizes one IPv4 address prefix-preservingly: output bit i
// is input bit i XOR f(input bits 0..i-1), with f a PRF built from
// AES.
func (a *Anonymizer) Addr(ip [4]byte) [4]byte {
	addr := uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
	var result uint32
	var input, output [16]byte
	for i := 0; i < 32; i++ {
		// First i bits of the original address, zero-padded, mixed
		// with the pad so distinct prefixes yield distinct PRF inputs.
		prefix := uint32(0)
		if i > 0 {
			prefix = addr >> (32 - i) << (32 - i)
		}
		copy(input[:], a.pad[:])
		input[0] ^= byte(prefix >> 24)
		input[1] ^= byte(prefix >> 16)
		input[2] ^= byte(prefix >> 8)
		input[3] ^= byte(prefix)
		input[4] ^= byte(i) // include position to separate prefix lengths
		a.block.Encrypt(output[:], input[:])
		flip := uint32(output[0] >> 7) // PRF's first bit
		bit := (addr >> (31 - i)) & 1
		result |= (bit ^ flip) << (31 - i)
	}
	return [4]byte{byte(result >> 24), byte(result >> 16), byte(result >> 8), byte(result)}
}

// Packet rewrites a packet's IPv4 addresses in place (both the decoded
// struct and the raw bytes, with checksums recomputed) and returns it.
// Non-IPv4 packets pass through unchanged.
func (a *Anonymizer) Packet(p *packet.Packet) *packet.Packet {
	if p.IPv4 == nil {
		return p
	}
	src := a.Addr(p.IPv4.SrcIP)
	dst := a.Addr(p.IPv4.DstIP)
	var b packet.Builder
	ip := *p.IPv4
	ip.SrcIP, ip.DstIP = src, dst
	switch {
	case p.TCP != nil:
		tcp := *p.TCP
		return b.BuildTCP(p.Timestamp, ip, tcp, p.Payload)
	case p.UDP != nil:
		udp := *p.UDP
		return b.BuildUDP(p.Timestamp, ip, udp, p.Payload)
	case p.ICMP != nil:
		icmp := *p.ICMP
		return b.BuildICMP(p.Timestamp, ip, icmp, p.Payload)
	default:
		return p
	}
}

// Flow returns an anonymized copy of a flow.
func (a *Anonymizer) Flow(f *flow.Flow) *flow.Flow {
	out := &flow.Flow{Label: f.Label}
	for _, p := range f.Packets {
		out.Append(a.Packet(p))
	}
	if len(out.Packets) > 0 {
		if k, ok := flow.KeyOf(out.Packets[0]); ok {
			out.Key = k
		}
	}
	return out
}

// SharedPrefixLen returns the length of the common bit prefix of two
// IPv4 addresses — the quantity anonymization must preserve.
func SharedPrefixLen(a, b [4]byte) int {
	x := (uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])) ^
		(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	n := 0
	for i := 31; i >= 0; i-- {
		if x>>(uint(i))&1 != 0 {
			break
		}
		n++
	}
	return n
}
