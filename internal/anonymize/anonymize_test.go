package anonymize

import (
	"testing"
	"testing/quick"
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/workload"
)

func newA(t *testing.T, key string) *Anonymizer {
	t.Helper()
	a, err := New([]byte(key))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsEmptyKey(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestAddrDeterministic(t *testing.T) {
	a := newA(t, "secret")
	ip := [4]byte{192, 168, 1, 42}
	if a.Addr(ip) != a.Addr(ip) {
		t.Fatal("anonymization not deterministic")
	}
	b := newA(t, "secret")
	if a.Addr(ip) != b.Addr(ip) {
		t.Fatal("same key produced different mappings")
	}
	c := newA(t, "other-key")
	if a.Addr(ip) == c.Addr(ip) {
		t.Fatal("different keys produced identical mapping (collision unlikely)")
	}
}

func TestAddrChangesAddress(t *testing.T) {
	a := newA(t, "k")
	changed := 0
	for i := 0; i < 64; i++ {
		ip := [4]byte{10, byte(i), 0, 1}
		if a.Addr(ip) != ip {
			changed++
		}
	}
	if changed < 60 {
		t.Fatalf("only %d/64 addresses changed", changed)
	}
}

// The defining property: shared prefixes are preserved exactly.
func TestQuickPrefixPreservation(t *testing.T) {
	a := newA(t, "prefix-key")
	f := func(x, y [4]byte) bool {
		want := SharedPrefixLen(x, y)
		got := SharedPrefixLen(a.Addr(x), a.Addr(y))
		return want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInjective(t *testing.T) {
	// Prefix preservation implies injectivity; spot-check it directly.
	a := newA(t, "inj")
	seen := map[[4]byte][4]byte{}
	f := func(ip [4]byte) bool {
		out := a.Addr(ip)
		if prev, ok := seen[out]; ok && prev != ip {
			return false
		}
		seen[out] = ip
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPrefixLen(t *testing.T) {
	cases := []struct {
		a, b [4]byte
		want int
	}{
		{[4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 1}, 32},
		{[4]byte{10, 0, 0, 0}, [4]byte{10, 0, 0, 1}, 31},
		{[4]byte{10, 0, 0, 0}, [4]byte{11, 0, 0, 0}, 7},
		{[4]byte{0, 0, 0, 0}, [4]byte{128, 0, 0, 0}, 0},
	}
	for _, c := range cases {
		if got := SharedPrefixLen(c.a, c.b); got != c.want {
			t.Errorf("SharedPrefixLen(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPacketRewriteKeepsValidity(t *testing.T) {
	a := newA(t, "pkt")
	g := workload.NewGenerator(1)
	g.MaxPackets = 12
	for _, class := range []string{"amazon", "teams", "other"} {
		p, _ := workload.ProfileByName(class)
		f := g.GenerateFlow(p)
		anon := a.Flow(f)
		if len(anon.Packets) != len(f.Packets) {
			t.Fatalf("%s: packet count changed", class)
		}
		for i, pk := range anon.Packets {
			re, err := packet.Decode(pk.Data, pk.Timestamp)
			if err != nil {
				t.Fatalf("%s packet %d undecodable after anonymization: %v", class, i, err)
			}
			orig := f.Packets[i]
			if re.IPv4.SrcIP == orig.IPv4.SrcIP && re.IPv4.DstIP == orig.IPv4.DstIP {
				t.Fatalf("%s packet %d addresses unchanged", class, i)
			}
			// Transport metadata survives.
			if re.TransportProtocol() != orig.TransportProtocol() {
				t.Fatalf("%s packet %d protocol changed", class, i)
			}
			if orig.TCP != nil && (re.TCP.SrcPort != orig.TCP.SrcPort || re.TCP.Seq != orig.TCP.Seq) {
				t.Fatalf("%s packet %d TCP fields changed", class, i)
			}
			if !pk.Timestamp.Equal(orig.Timestamp) {
				t.Fatalf("%s packet %d timestamp changed", class, i)
			}
		}
	}
}

func TestFlowKeyConsistency(t *testing.T) {
	// All packets of one flow must still form one flow after
	// anonymization (the same src maps to the same output everywhere).
	a := newA(t, "flowkey")
	g := workload.NewGenerator(2)
	g.MaxPackets = 16
	p, _ := workload.ProfileByName("netflix")
	f := g.GenerateFlow(p)
	anon := a.Flow(f)
	tb := flow.NewTable()
	for _, pk := range anon.Packets {
		tb.Add(pk)
	}
	if tb.Len() != 1 {
		t.Fatalf("anonymized flow split into %d flows", tb.Len())
	}
}

func TestNonIPPassthrough(t *testing.T) {
	a := newA(t, "x")
	raw := make([]byte, 20) // not IPv4
	p, _ := packet.Decode(raw, time.Unix(0, 0))
	if a.Packet(p) != p {
		t.Fatal("non-IP packet should pass through unchanged")
	}
}
