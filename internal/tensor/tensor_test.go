package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"trafficdiff/internal/stats"
)

func almostEqual(a, b float32) bool { return math.Abs(float64(a-b)) < 1e-4 }

func TestNewAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || len(x.Data) != 24 {
		t.Fatalf("len = %d", x.Len())
	}
	if x.Dim(1) != 3 {
		t.Fatalf("dim = %d", x.Dim(1))
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0)
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesStorage(t *testing.T) {
	x := New(2, 3)
	v := x.Reshape(3, 2)
	v.Data[0] = 7
	if x.Data[0] != 7 {
		t.Fatal("reshape copied storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := New(2)
	c := x.Clone()
	c.Data[0] = 1
	if x.Data[0] != 0 {
		t.Fatal("clone shares storage")
	}
}

func TestMatMulReference(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if !almostEqual(c.Data[i], want[i]) {
			t.Fatalf("matmul = %v", c.Data)
		}
	}
}

// naiveMatMul is the reference implementation used to cross-check the
// optimized kernels property-style.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

func TestQuickMatMulMatchesNaive(t *testing.T) {
	r := stats.NewRNG(1)
	f := func(seed uint64) bool {
		m, k, n := 1+int(seed%4), 1+int(seed/4%5), 1+int(seed/20%3)
		a := New(m, k).Randn(r, 1)
		b := New(k, n).Randn(r, 1)
		got, want := MatMul(a, b), naiveMatMul(a, b)
		for i := range want.Data {
			if !almostEqual(got.Data[i], want.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulATB(t *testing.T) {
	r := stats.NewRNG(2)
	a := New(4, 3).Randn(r, 1) // k=4, m=3
	b := New(4, 2).Randn(r, 1) // k=4, n=2
	got := MatMulATB(a, b)
	// Reference: transpose a then naive.
	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Data[j*4+i] = a.Data[i*3+j]
		}
	}
	want := naiveMatMul(at, b)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i]) {
			t.Fatalf("ATB mismatch: %v vs %v", got.Data, want.Data)
		}
	}
}

func TestMatMulABT(t *testing.T) {
	r := stats.NewRNG(3)
	a := New(3, 4).Randn(r, 1)
	b := New(2, 4).Randn(r, 1)
	got := MatMulABT(a, b)
	bt := New(4, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			bt.Data[j*2+i] = b.Data[i*4+j]
		}
	}
	want := naiveMatMul(a, bt)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i]) {
			t.Fatalf("ABT mismatch")
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestAddInto(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	a.AddInto(b)
	if a.Data[0] != 11 || a.Data[1] != 22 {
		t.Fatalf("AddInto = %v", a.Data)
	}
}

func TestRandnMoments(t *testing.T) {
	r := stats.NewRNG(4)
	x := New(10000).Randn(r, 2)
	var sum, sq float64
	for _, v := range x.Data {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	mean := sum / 10000
	std := math.Sqrt(sq/10000 - mean*mean)
	if math.Abs(mean) > 0.1 || math.Abs(std-2) > 0.1 {
		t.Fatalf("mean=%v std=%v", mean, std)
	}
}

func TestFillZero(t *testing.T) {
	x := New(3)
	x.Fill(5)
	if x.Data[1] != 5 {
		t.Fatal("fill failed")
	}
	x.Zero()
	if x.Data[1] != 0 {
		t.Fatal("zero failed")
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Error("equal shapes misreported")
	}
	if New(2, 3).SameShape(New(3, 2)) || New(2).SameShape(New(2, 1)) {
		t.Error("unequal shapes misreported")
	}
}
