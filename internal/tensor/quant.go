package tensor

import (
	"fmt"
	"math"
)

// This file is the int8 weight-quantized kernel family: per-output-
// channel symmetric quantization of a fp32 weight matrix plus the
// int8-weight x fp32-activation GEMM and convolution epilogue the
// inference path runs against it. Activations and accumulation stay
// fp32; only the weight bytes shrink 4x, which is where an inference
// GEMM's memory traffic lives (the activations are one row, the
// weights are the whole matrix).
//
// Determinism contract: identical to parallel.go. Every output element
// is a single sequential dot product over the contraction index — the
// per-row scale multiplies the finished sum once — so sharding the
// independent dimension never reorders accumulation, and results are
// bit-identical at GOMAXPROCS=1 and GOMAXPROCS=N.

// QuantizedMat is a per-row symmetrically quantized weight matrix:
// row o of the original fp32 matrix is approximately
// float32(Weights[o][i]) * Scales[o]. Rows here are output channels —
// both the Linear weight layout [out, in] and the conv weight layout
// [OutC, C*KH*KW] put the output channel on the row axis, so per-row
// scales are per-output-channel scales for every consumer.
type QuantizedMat struct {
	Rows, Cols int
	// Weights holds row-major int8 codes in [-127, 127] (the symmetric
	// range; -128 is never produced so negation stays exact).
	Weights []int8
	// Scales holds one fp32 dequantization scale per row.
	Scales []float32
}

// QuantizeSymmetric quantizes a fp32 matrix w [rows, cols] to int8
// with one symmetric scale per row: scale_o = maxabs(w[o,:]) / 127,
// code = round(w/scale) clamped to [-127, 127]. A row of exact zeros
// gets scale 1 and all-zero codes, so zero-initialized layers
// (ControlNet zero convs, zero-init output heads) round-trip exactly.
func QuantizeSymmetric(w *Tensor) *QuantizedMat {
	if len(w.Shape) != 2 {
		panic(fmt.Sprintf("tensor: QuantizeSymmetric wants a matrix, got %v", w.Shape))
	}
	rows, cols := w.Shape[0], w.Shape[1]
	q := &QuantizedMat{
		Rows: rows, Cols: cols,
		Weights: make([]int8, rows*cols),
		Scales:  make([]float32, rows),
	}
	for o := 0; o < rows; o++ {
		src := w.Data[o*cols : (o+1)*cols]
		var maxAbs float32
		for _, v := range src {
			a := v
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		//tracelint:allow floateq — exact-zero row check: scale is maxAbs/127, zero only for an all-zero row, where any positive scale dequantizes exactly
		if scale == 0 {
			scale = 1
		}
		q.Scales[o] = scale
		dst := q.Weights[o*cols : (o+1)*cols]
		inv := 1 / float64(scale)
		for i, v := range src {
			code := math.RoundToEven(float64(v) * inv)
			if code > 127 {
				code = 127
			} else if code < -127 {
				code = -127
			}
			dst[i] = int8(code)
		}
	}
	return q
}

// Dequantize expands the codes back to a fp32 matrix — the reference
// the round-trip error-bound tests check against, not an inference
// path.
func (q *QuantizedMat) Dequantize() *Tensor {
	t := New(q.Rows, q.Cols)
	for o := 0; o < q.Rows; o++ {
		s := q.Scales[o]
		src := q.Weights[o*q.Cols : (o+1)*q.Cols]
		dst := t.Data[o*q.Cols : (o+1)*q.Cols]
		for i, c := range src {
			dst[i] = float32(c) * s
		}
	}
	return t
}

// MatMulABTQInto computes C = A·Bqᵀ for fp32 A [m,k] and quantized Bq
// [n,k] into c [m,n]: the quantized twin of MatMulABTInto, which is
// what Linear layers run (W is stored [out, in]). Each element is an
// overwriting fp32 dot product over int8 codes, scaled once by the
// output channel's scale, so c need not be zeroed. Sharded and
// bit-deterministic exactly like the fp32 family.
//
//tracelint:hotpath
func MatMulABTQInto(c, a *Tensor, b *QuantizedMat) {
	m, k := a.Shape[0], a.Shape[1]
	if b.Cols != k {
		panic(fmt.Sprintf("tensor: matmulABTQ %v x [%d %d]", a.Shape, b.Rows, b.Cols))
	}
	n := b.Rows
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulABTQ out %v, want [%d %d]", c.Shape, m, n))
	}
	// Serial fast path before any closure is built, same as the fp32
	// kernels: the closure pair heap-allocates, which an inference loop
	// would pay every step.
	if !parallelOK(m * k * n) {
		matmulABTQRows(c.Data, a.Data, b.Weights, b.Scales, 0, m, k, n)
		return
	}
	dispatch(m*k*n, m, n,
		func(lo, hi int) { matmulABTQRows(c.Data, a.Data, b.Weights, b.Scales, lo, hi, k, n) },    //tracelint:allow hotalloc — parallel path only, gated by parallelOK
		func(lo, hi int) { matmulABTQCols(c.Data, a.Data, b.Weights, b.Scales, m, k, n, lo, hi) }) //tracelint:allow hotalloc — parallel path only, gated by parallelOK
}

// matmulABTQRows computes rows [lo, hi) of C = A·Bqᵀ. Each element is
// one sequential dot product (p strictly increasing), so there is no
// accumulation to reorder; the per-channel scale multiplies the
// finished sum exactly once.
func matmulABTQRows(c, a []float32, bq []int8, scales []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := bq[j*k : (j+1)*k]
			var sum float32
			for p := range ai {
				sum += ai[p] * float32(bj[p])
			}
			ci[j] = sum * scales[j]
		}
	}
}

// matmulABTQCols computes columns [jlo, jhi) of every row of C = A·Bqᵀ,
// element-for-element identical to matmulABTQRows.
func matmulABTQCols(c, a []float32, bq []int8, scales []float32, m, k, n, jlo, jhi int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := jlo; j < jhi; j++ {
			bj := bq[j*k : (j+1)*k]
			var sum float32
			for p := range ai {
				sum += ai[p] * float32(bj[p])
			}
			ci[j] = sum * scales[j]
		}
	}
}

// Conv2DQ computes the forward convolution of x [N,C,H,W] against
// per-output-channel quantized weights qw [OutC, C*KH*KW] and fp32
// bias b [OutC], returning [N,OutC,OH,OW]: the quantized twin of
// Conv2D's fused epilogue. It is inference-only — no im2col matrix is
// returned because no backward pass ever runs against int8 weights.
//
//tracelint:hotpath
func Conv2DQ(x *Tensor, qw *QuantizedMat, b *Tensor, s ConvSpec) *Tensor {
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	if qw.Rows != s.OutC || qw.Cols != s.InC*s.KH*s.KW {
		panic(fmt.Sprintf("tensor: conv2dq weights [%d %d] for spec %+v", qw.Rows, qw.Cols, s))
	}
	cols := Im2Col(x, s)
	y := New(n, s.OutC, oh, ow)
	spatial := oh * ow
	rows := n * spatial
	rowLen := cols.Shape[1]
	//tracelint:allow hotalloc — one closure per conv call, amortized over the whole epilogue
	kernel := func(lo, hi int) {
		convEpilogueRowsQ(y.Data, cols.Data, qw.Weights, qw.Scales, b.Data, s.OutC, spatial, rowLen, lo, hi)
	}
	if !parallelOK(rows * s.OutC * rowLen) {
		kernel(0, rows)
	} else {
		shard(rows, kernel)
	}
	return y
}

// convEpilogueRowsQ is convEpilogueRows against int8 weights: im2col
// rows [lo, hi) times the transposed quantized weights, each dot
// product scaled once by its output channel's scale, plus bias,
// scattered to the [N, OutC, OH, OW] position. Every output cell is
// written exactly once by the worker that owns its row.
func convEpilogueRowsQ(y, cols []float32, wq []int8, scales, bias []float32, outC, spatial, rowLen, lo, hi int) {
	for r := lo; r < hi; r++ {
		bIdx, p := r/spatial, r%spatial
		cr := cols[r*rowLen : (r+1)*rowLen]
		out := y[bIdx*outC*spatial:]
		for o := 0; o < outC; o++ {
			wo := wq[o*rowLen : (o+1)*rowLen]
			var sum float32
			for q := range cr {
				sum += cr[q] * float32(wo[q])
			}
			out[o*spatial+p] = sum*scales[o] + bias[o]
		}
	}
}
