package tensor

import "fmt"

// ConvSpec describes a 2D convolution's geometry.
type ConvSpec struct {
	InC, OutC int
	KH, KW    int
	Stride    int
	Pad       int
}

// OutSize returns the spatial output size for an input of h x w.
func (s ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*s.Pad-s.KH)/s.Stride + 1
	ow = (w+2*s.Pad-s.KW)/s.Stride + 1
	return oh, ow
}

// Im2Col unrolls x [N,C,H,W] into columns [N*OH*OW, C*KH*KW] so the
// convolution becomes a matrix multiply against the [OutC, C*KH*KW]
// weight matrix.
func Im2Col(x *Tensor, s ConvSpec) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != s.InC {
		panic(fmt.Sprintf("tensor: im2col channels %d != spec %d", c, s.InC))
	}
	oh, ow := s.OutSize(h, w)
	cols := New(n*oh*ow, c*s.KH*s.KW)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := cols.Data[row*cols.Shape[1]:]
				idx := 0
				for ch := 0; ch < c; ch++ {
					cbase := base + ch*h*w
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.Stride + ky - s.Pad
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.Stride + kx - s.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								dst[idx] = x.Data[cbase+iy*w+ix]
							}
							idx++
						}
					}
				}
				row++
			}
		}
	}
	return cols
}

// Col2Im scatters column gradients back to input space (the adjoint of
// Im2Col). h and w are the original spatial dims.
func Col2Im(cols *Tensor, s ConvSpec, n, h, w int) *Tensor {
	c := s.InC
	oh, ow := s.OutSize(h, w)
	x := New(n, c, h, w)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := cols.Data[row*cols.Shape[1]:]
				idx := 0
				for ch := 0; ch < c; ch++ {
					cbase := base + ch*h*w
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.Stride + ky - s.Pad
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.Stride + kx - s.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								x.Data[cbase+iy*w+ix] += src[idx]
							}
							idx++
						}
					}
				}
				row++
			}
		}
	}
	return x
}

// Conv2D computes a forward convolution of x [N,C,H,W] with weights
// w [OutC, C*KH*KW] and bias b [OutC], returning [N,OutC,OH,OW]. It
// also returns the im2col matrix for reuse in the backward pass.
func Conv2D(x, w, b *Tensor, s ConvSpec) (y, cols *Tensor) {
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	cols = Im2Col(x, s)
	// out[rows, OutC] = cols · wᵀ
	out := MatMulABT(cols, w)
	y = New(n, s.OutC, oh, ow)
	// Transpose [N*OH*OW, OutC] -> [N, OutC, OH, OW], adding bias.
	spatial := oh * ow
	for bIdx := 0; bIdx < n; bIdx++ {
		for p := 0; p < spatial; p++ {
			row := out.Data[(bIdx*spatial+p)*s.OutC:]
			for o := 0; o < s.OutC; o++ {
				y.Data[bIdx*s.OutC*spatial+o*spatial+p] = row[o] + b.Data[o]
			}
		}
	}
	return y, cols
}

// Conv2DBackward computes input, weight and bias gradients for Conv2D.
// dy is [N,OutC,OH,OW]; cols is the matrix returned by Conv2D.
func Conv2DBackward(dy, cols, w *Tensor, s ConvSpec, n, h, wd int) (dx, dw, db *Tensor) {
	oh, ow := s.OutSize(h, wd)
	spatial := oh * ow
	// Re-layout dy to [N*OH*OW, OutC].
	dyT := New(n*spatial, s.OutC)
	for bIdx := 0; bIdx < n; bIdx++ {
		for o := 0; o < s.OutC; o++ {
			src := dy.Data[bIdx*s.OutC*spatial+o*spatial:]
			for p := 0; p < spatial; p++ {
				dyT.Data[(bIdx*spatial+p)*s.OutC+o] = src[p]
			}
		}
	}
	// dw [OutC, C*KH*KW] = dyTᵀ · cols
	dw = MatMulATB(dyT, cols)
	// db [OutC] = column sums of dyT.
	db = New(s.OutC)
	for r := 0; r < dyT.Shape[0]; r++ {
		row := dyT.Data[r*s.OutC:]
		for o := 0; o < s.OutC; o++ {
			db.Data[o] += row[o]
		}
	}
	// dcols = dyT · w, then scatter back.
	dcols := MatMul(dyT, w)
	dx = Col2Im(dcols, s, n, h, wd)
	return dx, dw, db
}
