package tensor

import "fmt"

// ConvSpec describes a 2D convolution's geometry.
type ConvSpec struct {
	InC, OutC int
	KH, KW    int
	Stride    int
	Pad       int
}

// OutSize returns the spatial output size for an input of h x w.
func (s ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*s.Pad-s.KH)/s.Stride + 1
	ow = (w+2*s.Pad-s.KW)/s.Stride + 1
	return oh, ow
}

// Im2Col unrolls x [N,C,H,W] into columns [N*OH*OW, C*KH*KW] so the
// convolution becomes a matrix multiply against the [OutC, C*KH*KW]
// weight matrix. Output rows are independent gathers, sharded across
// GOMAXPROCS workers.
func Im2Col(x *Tensor, s ConvSpec) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != s.InC {
		panic(fmt.Sprintf("tensor: im2col channels %d != spec %d", c, s.InC))
	}
	oh, ow := s.OutSize(h, w)
	rows := n * oh * ow
	rowLen := c * s.KH * s.KW
	cols := New(rows, rowLen)
	kernel := func(lo, hi int) { im2colRows(cols.Data, x.Data, s, c, h, w, oh, ow, lo, hi) } //tracelint:allow hotalloc — one closure per conv call, amortized over the whole im2col gather
	if !parallelOK(rows * rowLen) {
		kernel(0, rows)
	} else {
		shard(rows, kernel)
	}
	return cols
}

// im2colRows gathers output rows [lo, hi); each row is owned by exactly
// one worker.
func im2colRows(dst, x []float32, s ConvSpec, c, h, w, oh, ow, lo, hi int) {
	rowLen := c * s.KH * s.KW
	for row := lo; row < hi; row++ {
		b := row / (oh * ow)
		rem := row % (oh * ow)
		oy, ox := rem/ow, rem%ow
		base := b * c * h * w
		d := dst[row*rowLen:]
		idx := 0
		for ch := 0; ch < c; ch++ {
			cbase := base + ch*h*w
			for ky := 0; ky < s.KH; ky++ {
				iy := oy*s.Stride + ky - s.Pad
				for kx := 0; kx < s.KW; kx++ {
					ix := ox*s.Stride + kx - s.Pad
					if iy >= 0 && iy < h && ix >= 0 && ix < w {
						d[idx] = x[cbase+iy*w+ix]
					}
					idx++
				}
			}
		}
	}
}

// Col2Im scatters column gradients back to input space (the adjoint of
// Im2Col). h and w are the original spatial dims. Kernel windows
// overlap within an image, so the shardable unit is the batch index:
// each worker owns whole images and scatters its rows in the serial
// kernel's order, keeping accumulation per input cell bit-identical.
func Col2Im(cols *Tensor, s ConvSpec, n, h, w int) *Tensor {
	c := s.InC
	oh, ow := s.OutSize(h, w)
	x := New(n, c, h, w)
	kernel := func(blo, bhi int) { col2imBatches(x.Data, cols.Data, s, c, h, w, oh, ow, blo, bhi) }
	if !parallelOK(n*oh*ow*c*s.KH*s.KW) || n == 1 {
		kernel(0, n)
	} else {
		shard(n, kernel)
	}
	return x
}

// col2imBatches scatters the rows of images [blo, bhi); different
// images never share input cells.
func col2imBatches(x, cols []float32, s ConvSpec, c, h, w, oh, ow, blo, bhi int) {
	rowLen := c * s.KH * s.KW
	for b := blo; b < bhi; b++ {
		base := b * c * h * w
		row := b * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := cols[row*rowLen:]
				idx := 0
				for ch := 0; ch < c; ch++ {
					cbase := base + ch*h*w
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.Stride + ky - s.Pad
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.Stride + kx - s.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								x[cbase+iy*w+ix] += src[idx]
							}
							idx++
						}
					}
				}
				row++
			}
		}
	}
}

// Conv2D computes a forward convolution of x [N,C,H,W] with weights
// w [OutC, C*KH*KW] and bias b [OutC], returning [N,OutC,OH,OW]. It
// also returns the im2col matrix for reuse in the backward pass.
//
// The matmul against the weights, the bias add and the
// [N*OH*OW, OutC] → [N, OutC, OH, OW] transpose are fused into one
// sharded pass: each worker computes whole output rows (dot products in
// sequential order, exactly like MatMulABT) and writes them, plus bias,
// straight into their transposed positions — no intermediate [rows,
// OutC] tensor and no second sweep over the output.
func Conv2D(x, w, b *Tensor, s ConvSpec) (y, cols *Tensor) {
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	cols = Im2Col(x, s)
	y = New(n, s.OutC, oh, ow)
	spatial := oh * ow
	rows := n * spatial
	rowLen := cols.Shape[1]
	kernel := func(lo, hi int) {
		convEpilogueRows(y.Data, cols.Data, w.Data, b.Data, s.OutC, spatial, rowLen, lo, hi)
	}
	if !parallelOK(rows * s.OutC * rowLen) {
		kernel(0, rows)
	} else {
		shard(rows, kernel)
	}
	return y, cols
}

// convEpilogueRows computes im2col rows [lo, hi) times the transposed
// weights, adds the bias, and scatters each result to its [N, OutC, OH,
// OW] position. Every output cell is written exactly once by the worker
// that owns its row.
func convEpilogueRows(y, cols, w, bias []float32, outC, spatial, rowLen, lo, hi int) {
	for r := lo; r < hi; r++ {
		bIdx, p := r/spatial, r%spatial
		cr := cols[r*rowLen : (r+1)*rowLen]
		out := y[bIdx*outC*spatial:]
		for o := 0; o < outC; o++ {
			wo := w[o*rowLen : (o+1)*rowLen]
			var sum float32
			for q := range cr {
				sum += cr[q] * wo[q]
			}
			out[o*spatial+p] = sum + bias[o]
		}
	}
}

// Conv2DBackward computes input, weight and bias gradients for Conv2D.
// dy is [N,OutC,OH,OW]; cols is the matrix returned by Conv2D.
func Conv2DBackward(dy, cols, w *Tensor, s ConvSpec, n, h, wd int) (dx, dw, db *Tensor) {
	oh, ow := s.OutSize(h, wd)
	spatial := oh * ow
	// Re-layout dy to [N*OH*OW, OutC], sharded over images (each image
	// writes a disjoint row block).
	dyT := New(n*spatial, s.OutC)
	relayout := func(blo, bhi int) {
		for bIdx := blo; bIdx < bhi; bIdx++ {
			for o := 0; o < s.OutC; o++ {
				src := dy.Data[bIdx*s.OutC*spatial+o*spatial:]
				for p := 0; p < spatial; p++ {
					dyT.Data[(bIdx*spatial+p)*s.OutC+o] = src[p]
				}
			}
		}
	}
	if !parallelOK(n * s.OutC * spatial) {
		relayout(0, n)
	} else {
		shard(n, relayout)
	}
	// dw [OutC, C*KH*KW] = dyTᵀ · cols
	dw = MatMulATB(dyT, cols)
	// db [OutC] = column sums of dyT.
	db = New(s.OutC)
	for r := 0; r < dyT.Shape[0]; r++ {
		row := dyT.Data[r*s.OutC:]
		for o := 0; o < s.OutC; o++ {
			db.Data[o] += row[o]
		}
	}
	// dcols = dyT · w, then scatter back.
	dcols := MatMul(dyT, w)
	dx = Col2Im(dcols, s, n, h, wd)
	return dx, dw, db
}
