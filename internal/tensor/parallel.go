package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel kernel layer: every heavy kernel (matrix
// multiply variants, im2col/col2im, the fused Conv2D epilogue) shards
// its *independent* work — output rows, output columns, batch images —
// across a goroutine pool sized by GOMAXPROCS.
//
// Determinism contract: sharding never reorders the floating-point
// accumulation that produces any single output element. Each element's
// value is a sum over the contraction index p, and every kernel below
// visits p in strictly increasing order no matter how the independent
// dimension is split. Workers write disjoint index ranges of the output
// slice, so results are bit-identical at GOMAXPROCS=1 and GOMAXPROCS=N
// and the race detector stays clean. See DESIGN.md "Parallel kernels &
// determinism under GOMAXPROCS".

// minParallelWork is the approximate number of fused multiply-adds (or
// equivalent element operations) below which a kernel runs serially:
// goroutine dispatch costs on the order of microseconds, so small ops
// must not pay it.
const minParallelWork = 1 << 17

// kBlock is the contraction-axis tile: panels of B this tall stay hot
// in cache while a row block of the output accumulates. Tiles are
// visited in increasing order, which preserves per-element accumulation
// order exactly.
const kBlock = 256

// workers returns the shard count for parallel kernels.
func workers() int { return runtime.GOMAXPROCS(0) }

// serialDepth counts active serial regions: explicit Serial() calls
// plus kernels currently executing sharded workers. While it is
// non-zero, dispatch runs every kernel on the calling goroutine —
// code that is already inside a parallel region (a shard worker, or a
// caller-owned worker pool wrapped in Serial) never spawns a second
// layer of goroutines to contend with the first. The flag is advisory
// and process-wide; it changes only how work is scheduled, never what
// any kernel computes, so results stay bit-identical either way.
var serialDepth atomic.Int32

// Serial runs fn with the parallel kernel layer disabled: every tensor
// kernel invoked while any Serial region is active executes on its
// calling goroutine. Wrap the per-item body of a caller-owned worker
// pool in Serial when each item's tensor ops are small — the pool
// already saturates the CPUs, and intra-kernel sharding on top of it
// only adds dispatch overhead and contention (the PR 2 regression).
func Serial(fn func()) {
	serialDepth.Add(1)
	defer serialDepth.Add(-1)
	fn()
}

// shard splits [0, n) into one contiguous block per worker and runs fn
// on each block concurrently, blocking until all complete. fn must
// write only state owned by its block. While workers run, nested
// kernel calls (e.g. a fused epilogue invoking a matmul) see a
// non-zero serialDepth and stay on their worker goroutine.
func shard(n int, fn func(lo, hi int)) {
	w := workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	serialDepth.Add(1)
	defer serialDepth.Add(-1)
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		//tracelint:allow hotalloc — parallel path only: shard is unreachable below the parallelOK work threshold
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelOK reports whether a kernel costing work multiply-adds
// should shard: the op is large enough to amortize goroutine dispatch,
// more than one worker exists, and no Serial region or enclosing
// sharded kernel is active.
func parallelOK(work int) bool {
	return work >= minParallelWork && workers() > 1 && serialDepth.Load() == 0
}

// dispatch runs a kernel over an output of rows x cols elements costing
// work multiply-adds: serially when small (or when a Serial region /
// enclosing sharded kernel is active), sharded over rows when there
// are enough of them to feed every worker, and sharded over columns
// otherwise (the batch-1 inference shape: one row, wide output). Both
// kernels must produce bit-identical elements; only the split differs.
func dispatch(work, rows, cols int, rowKernel, colKernel func(lo, hi int)) {
	if !parallelOK(work) {
		rowKernel(0, rows)
		return
	}
	if rows >= workers() {
		shard(rows, rowKernel)
		return
	}
	shard(cols, colKernel)
}

// --- C = A·B -----------------------------------------------------------

// matmulRows computes rows [lo, hi) of C = A·B with C pre-zeroed, in
// cache-blocked ikj order. For each element, the contraction index p
// advances strictly monotonically (tile by tile, then within the tile),
// so accumulation order matches the serial kernel exactly.
func matmulRows(c, a, b []float32, lo, hi, k, n int) {
	for p0 := 0; p0 < k; p0 += kBlock {
		p1 := p0 + kBlock
		if p1 > k {
			p1 = k
		}
		for i := lo; i < hi; i++ {
			ci := c[i*n : (i+1)*n]
			ai := a[i*k : (i+1)*k]
			for p := p0; p < p1; p++ {
				av := ai[p]
				//tracelint:allow floateq — exact-zero sparse skip: av*x adds exactly 0, so skipping is lossless; an epsilon here would change results
				if av == 0 {
					continue
				}
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	}
}

// matmulCols computes columns [jlo, jhi) of every row of C = A·B. Same
// per-element accumulation order as matmulRows: p strictly increasing.
func matmulCols(c, a, b []float32, m, k, n, jlo, jhi int) {
	for i := 0; i < m; i++ {
		ci := c[i*n+jlo : i*n+jhi]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			//tracelint:allow floateq — exact-zero sparse skip, see matmulRows
			if av == 0 {
				continue
			}
			bp := b[p*n+jlo : p*n+jhi]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// --- C = Aᵀ·B ----------------------------------------------------------

// matmulATBRows computes rows [lo, hi) of C = Aᵀ·B (A is [k,m], so row
// i of C reads column i of A). p increases strictly per element.
func matmulATBRows(c, a, b []float32, lo, hi, k, m, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			//tracelint:allow floateq — exact-zero sparse skip, see matmulRows
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// matmulATBCols computes columns [jlo, jhi) of C = Aᵀ·B in the serial
// kernel's p-outer order (A rows stream sequentially); per element the
// accumulation is still p-increasing.
func matmulATBCols(c, a, b []float32, k, m, n, jlo, jhi int) {
	for p := 0; p < k; p++ {
		ap := a[p*m : (p+1)*m]
		bp := b[p*n+jlo : p*n+jhi]
		for i, av := range ap {
			//tracelint:allow floateq — exact-zero sparse skip, see matmulRows
			if av == 0 {
				continue
			}
			cs := c[i*n+jlo : i*n+jhi]
			for j, bv := range bp {
				cs[j] += av * bv
			}
		}
	}
}

// --- C = A·Bᵀ ----------------------------------------------------------

// matmulABTRows computes rows [lo, hi) of C = A·Bᵀ. Each element is one
// sequential dot product, so there is no accumulation to reorder.
func matmulABTRows(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var sum float32
			for p := range ai {
				sum += ai[p] * bj[p]
			}
			ci[j] = sum
		}
	}
}

// matmulABTCols computes columns [jlo, jhi) of every row of C = A·Bᵀ.
func matmulABTCols(c, a, b []float32, m, k, n, jlo, jhi int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := jlo; j < jhi; j++ {
			bj := b[j*k : (j+1)*k]
			var sum float32
			for p := range ai {
				sum += ai[p] * bj[p]
			}
			ci[j] = sum
		}
	}
}
