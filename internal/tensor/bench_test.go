package tensor

import (
	"fmt"
	"testing"

	"trafficdiff/internal/stats"
)

// Substrate micro-benchmarks for the parallel kernel layer. These feed
// `make bench-json` (BENCH_kernels.json) alongside the §4 speed benches
// in the repo root.

var benchMatMulSizes = []struct{ m, k, n int }{
	{8, 2176, 128},   // MLP hidden forward, training batch
	{128, 2176, 128}, // wide batch
	{256, 256, 256},  // square reference point
	{1, 2176, 128},   // batch-1 inference row
}

func BenchmarkMatMul(b *testing.B) {
	r := stats.NewRNG(1)
	for _, sz := range benchMatMulSizes {
		a := New(sz.m, sz.k).Randn(r, 1)
		bb := New(sz.k, sz.n).Randn(r, 1)
		b.Run(fmt.Sprintf("%dx%dx%d", sz.m, sz.k, sz.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMul(a, bb)
			}
		})
	}
}

func BenchmarkMatMulABT(b *testing.B) {
	r := stats.NewRNG(2)
	for _, sz := range benchMatMulSizes {
		a := New(sz.m, sz.k).Randn(r, 1)
		bb := New(sz.n, sz.k).Randn(r, 1)
		b.Run(fmt.Sprintf("%dx%dx%d", sz.m, sz.k, sz.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulABT(a, bb)
			}
		})
	}
}

func BenchmarkMatMulATB(b *testing.B) {
	r := stats.NewRNG(3)
	for _, sz := range benchMatMulSizes {
		a := New(sz.k, sz.m).Randn(r, 1)
		bb := New(sz.k, sz.n).Randn(r, 1)
		b.Run(fmt.Sprintf("%dx%dx%d", sz.m, sz.k, sz.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulATB(a, bb)
			}
		})
	}
}

func BenchmarkIm2Col(b *testing.B) {
	r := stats.NewRNG(4)
	spec := ConvSpec{InC: 32, OutC: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(8, 32, 16, 136).Randn(r, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(x, spec)
	}
}

func BenchmarkConv2D(b *testing.B) {
	r := stats.NewRNG(5)
	spec := ConvSpec{InC: 32, OutC: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(8, 32, 16, 136).Randn(r, 1)
	w := New(32, 32*3*3).Randn(r, 0.1)
	bias := New(32).Randn(r, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, bias, spec)
	}
}
