package tensor

import (
	"fmt"
	"runtime"
	"testing"

	"trafficdiff/internal/stats"
)

// The parallel kernel layer's hard contract is exact (bit-level)
// equivalence with the serial reference at every GOMAXPROCS value —
// not approximate equality. These tests pin that contract across odd
// shapes (1×N, N×1, sizes that are not multiples of the k tile or the
// worker count) and across worker counts.

// --- serial references: the pre-parallel kernels, verbatim -----------

func refMatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		ci := c.Data[i*n : (i+1)*n]
		ai := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
	return c
}

func refMatMulATB(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

func refMatMulABT(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var sum float32
			for p := range ai {
				sum += ai[p] * bj[p]
			}
			ci[j] = sum
		}
	}
	return c
}

func refIm2Col(x *Tensor, s ConvSpec) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, w)
	cols := New(n*oh*ow, c*s.KH*s.KW)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := cols.Data[row*cols.Shape[1]:]
				idx := 0
				for ch := 0; ch < c; ch++ {
					cbase := base + ch*h*w
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.Stride + ky - s.Pad
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.Stride + kx - s.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								dst[idx] = x.Data[cbase+iy*w+ix]
							}
							idx++
						}
					}
				}
				row++
			}
		}
	}
	return cols
}

func refCol2Im(cols *Tensor, s ConvSpec, n, h, w int) *Tensor {
	c := s.InC
	oh, ow := s.OutSize(h, w)
	x := New(n, c, h, w)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := cols.Data[row*cols.Shape[1]:]
				idx := 0
				for ch := 0; ch < c; ch++ {
					cbase := base + ch*h*w
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.Stride + ky - s.Pad
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.Stride + kx - s.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								x.Data[cbase+iy*w+ix] += src[idx]
							}
							idx++
						}
					}
				}
				row++
			}
		}
	}
	return x
}

func refConv2D(x, w, b *Tensor, s ConvSpec) *Tensor {
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	cols := refIm2Col(x, s)
	out := refMatMulABT(cols, w)
	y := New(n, s.OutC, oh, ow)
	spatial := oh * ow
	for bIdx := 0; bIdx < n; bIdx++ {
		for p := 0; p < spatial; p++ {
			row := out.Data[(bIdx*spatial+p)*s.OutC:]
			for o := 0; o < s.OutC; o++ {
				y.Data[bIdx*s.OutC*spatial+o*spatial+p] = row[o] + b.Data[o]
			}
		}
	}
	return y
}

// --- helpers ---------------------------------------------------------

// randTensor fills a tensor with noise plus exact zeros, so the sparse
// skip path is exercised.
func randTensor(r *stats.RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		if r.Bool(0.1) {
			continue // exact zero
		}
		t.Data[i] = float32(r.NormFloat64())
	}
	return t
}

// requireIdentical fails unless got and want match bit-for-bit.
func requireIdentical(t *testing.T, got, want *Tensor, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (exact)", label, i, got.Data[i], want.Data[i])
		}
	}
}

// withGOMAXPROCS runs fn under each of the given worker counts.
func withGOMAXPROCS(t *testing.T, counts []int, fn func(t *testing.T)) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, c := range counts {
		runtime.GOMAXPROCS(c)
		t.Run(fmt.Sprintf("procs=%d", c), fn)
	}
}

// matmulShapes covers degenerate rows/cols, shapes below and above the
// serial threshold, and sizes that are not multiples of kBlock or any
// worker count.
var matmulShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 513},   // single row, wide: column-shard path
	{513, 7, 1},   // single column output
	{1, 300, 300}, // k spans two tiles on one row
	{3, 257, 129}, // k just past one tile, odd everything
	{8, 64, 64},   // small, below threshold: serial path
	{65, 2176, 5}, // tall-thin above threshold
	{12, 2176, 128}, // the MLP training shape
}

func TestMatMulMatchesSerialReference(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 2, 3, 8}, func(t *testing.T) {
		r := stats.NewRNG(42)
		for _, sh := range matmulShapes {
			a := randTensor(r, sh.m, sh.k)
			b := randTensor(r, sh.k, sh.n)
			requireIdentical(t, MatMul(a, b), refMatMul(a, b),
				fmt.Sprintf("MatMul %dx%dx%d", sh.m, sh.k, sh.n))
		}
	})
}

func TestMatMulATBMatchesSerialReference(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 2, 3, 8}, func(t *testing.T) {
		r := stats.NewRNG(43)
		for _, sh := range matmulShapes {
			a := randTensor(r, sh.k, sh.m)
			b := randTensor(r, sh.k, sh.n)
			requireIdentical(t, MatMulATB(a, b), refMatMulATB(a, b),
				fmt.Sprintf("MatMulATB %dx%dx%d", sh.m, sh.k, sh.n))
		}
	})
}

func TestMatMulABTMatchesSerialReference(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 2, 3, 8}, func(t *testing.T) {
		r := stats.NewRNG(44)
		for _, sh := range matmulShapes {
			a := randTensor(r, sh.m, sh.k)
			b := randTensor(r, sh.n, sh.k)
			requireIdentical(t, MatMulABT(a, b), refMatMulABT(a, b),
				fmt.Sprintf("MatMulABT %dx%dx%d", sh.m, sh.k, sh.n))
		}
	})
}

// convShapes mixes strides, pads, odd spatial dims, and batch sizes
// around the worker count.
var convShapes = []struct {
	n, c, h, w int
	s          ConvSpec
}{
	{1, 1, 5, 5, ConvSpec{InC: 1, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}},
	{2, 3, 9, 7, ConvSpec{InC: 3, OutC: 5, KH: 3, KW: 3, Stride: 2, Pad: 1}},
	{3, 2, 16, 136, ConvSpec{InC: 2, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}}, // model-sized
	{5, 1, 1, 31, ConvSpec{InC: 1, OutC: 2, KH: 1, KW: 3, Stride: 1, Pad: 1}},   // single-row images
}

func TestIm2ColCol2ImMatchSerialReference(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 2, 3, 8}, func(t *testing.T) {
		r := stats.NewRNG(45)
		for ci, cs := range convShapes {
			x := randTensor(r, cs.n, cs.c, cs.h, cs.w)
			cols := Im2Col(x, cs.s)
			requireIdentical(t, cols, refIm2Col(x, cs.s), fmt.Sprintf("Im2Col case %d", ci))
			grad := randTensor(r, cols.Shape[0], cols.Shape[1])
			requireIdentical(t, Col2Im(grad, cs.s, cs.n, cs.h, cs.w),
				refCol2Im(grad, cs.s, cs.n, cs.h, cs.w), fmt.Sprintf("Col2Im case %d", ci))
		}
	})
}

func TestConv2DFusedEpilogueMatchesSerialReference(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 2, 3, 8}, func(t *testing.T) {
		r := stats.NewRNG(46)
		for ci, cs := range convShapes {
			x := randTensor(r, cs.n, cs.c, cs.h, cs.w)
			w := randTensor(r, cs.s.OutC, cs.c*cs.s.KH*cs.s.KW)
			b := randTensor(r, cs.s.OutC)
			y, _ := Conv2D(x, w, b, cs.s)
			requireIdentical(t, y, refConv2D(x, w, b, cs.s), fmt.Sprintf("Conv2D case %d", ci))
		}
	})
}

// TestKernelsIdenticalAcrossWorkerCounts is the direct GOMAXPROCS=1 vs
// GOMAXPROCS=N statement: one big op computed at both settings, bytes
// compared.
func TestKernelsIdenticalAcrossWorkerCounts(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	r := stats.NewRNG(47)
	a := randTensor(r, 123, 517)
	b := randTensor(r, 517, 89)
	bT := randTensor(r, 89, 517)

	runtime.GOMAXPROCS(1)
	serialAB := MatMul(a, b)
	serialABT := MatMulABT(a, bT)
	for _, procs := range []int{2, 4, 16} {
		runtime.GOMAXPROCS(procs)
		requireIdentical(t, MatMul(a, b), serialAB, fmt.Sprintf("MatMul procs=%d", procs))
		requireIdentical(t, MatMulABT(a, bT), serialABT, fmt.Sprintf("MatMulABT procs=%d", procs))
	}
}
