// Package tensor provides the dense float32 tensor type and the
// numeric kernels (matrix multiply, convolution via im2col) that the
// nn autodiff package builds on. It is deliberately small: just what a
// CPU-trained DDPM and GAN need, with reference-checked kernels.
package tensor

import (
	"fmt"

	"trafficdiff/internal/stats"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %v", shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data with the given shape, validating the size.
func FromSlice(data []float32, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Len() {
		panic(fmt.Sprintf("tensor: %d elements for shape %v", len(data), shape))
	}
	return t
}

// Len returns the total element count.
func (t *Tensor) Len() int {
	n := 1
	for _, s := range t.Shape {
		n *= s
	}
	return n
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: append([]float32(nil), t.Data...)}
}

// Reshape returns a view with a new shape sharing storage. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Len() != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v", t.Shape, shape))
	}
	return v
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Randn fills the tensor with N(0, std) noise.
func (t *Tensor) Randn(r *stats.RNG, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64() * std)
	}
	return t
}

// AddInto accumulates o into t elementwise.
func (t *Tensor) AddInto(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddInto size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// MatMul computes C = A·B for A [m,k] and B [k,n], writing into a new
// [m,n] tensor.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmul %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	matmulInto(c.Data, a.Data, b.Data, m, k, n)
	return c
}

// matmulInto computes C += A·B with C pre-zeroed by the caller, using
// an ikj loop order for cache-friendly access.
func matmulInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			//tracelint:allow floateq — exact-zero sparse skip: av*x adds exactly 0, so skipping is lossless; an epsilon here would change results
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatMulATB computes C = Aᵀ·B for A [k,m] and B [k,n] → C [m,n].
func MatMulATB(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmulATB %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			//tracelint:allow floateq — exact-zero sparse skip, see matmulInto
			if av == 0 {
				continue
			}
			ci := c.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatMulABT computes C = A·Bᵀ for A [m,k] and B [n,k] → C [m,n].
func MatMulABT(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmulABT %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var sum float32
			for p := range ai {
				sum += ai[p] * bj[p]
			}
			ci[j] = sum
		}
	}
	return c
}
