// Package tensor provides the dense float32 tensor type and the
// numeric kernels (matrix multiply, convolution via im2col) that the
// nn autodiff package builds on. It is deliberately small: just what a
// CPU-trained DDPM and GAN need, with reference-checked kernels.
package tensor

import (
	"fmt"

	"trafficdiff/internal/stats"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %v", shape))
		}
		n *= s
	}
	//tracelint:allow hotalloc — construction API: hot callers reuse storage through the nn.Tape arena
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data with the given shape, validating the size.
func FromSlice(data []float32, shape ...int) *Tensor {
	//tracelint:allow hotalloc — header-only wrapper over caller storage; hot callers cache the returned header
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Len() {
		panic(fmt.Sprintf("tensor: %d elements for shape %v", len(data), shape))
	}
	return t
}

// Len returns the total element count.
func (t *Tensor) Len() int {
	n := 1
	for _, s := range t.Shape {
		n *= s
	}
	return n
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: append([]float32(nil), t.Data...)}
}

// Reshape returns a view with a new shape sharing storage. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	//tracelint:allow hotalloc — header-only view sharing storage; the arena rewrap path pays it rarely
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Len() != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v", t.Shape, shape))
	}
	return v
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Randn fills the tensor with N(0, std) noise.
func (t *Tensor) Randn(r *stats.RNG, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64() * std)
	}
	return t
}

// AddInto accumulates o into t elementwise.
//
//tracelint:hotpath
func (t *Tensor) AddInto(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddInto size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// MatMul computes C = A·B for A [m,k] and B [k,n], writing into a new
// [m,n] tensor. Output rows (or columns, when the batch is narrow) are
// sharded across GOMAXPROCS workers; results are bit-identical at any
// worker count (see parallel.go).
func MatMul(a, b *Tensor) *Tensor {
	c := New(a.Shape[0], b.Shape[1])
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A·B into c, which must be [m,n] and
// zero-filled (the kernels accumulate). Lets callers with an arena
// (nn.Tape reuse) avoid reallocating the output every step.
//
//tracelint:hotpath
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmul %v x %v", a.Shape, b.Shape))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul out %v, want [%d %d]", c.Shape, m, n))
	}
	// Serial fast path before any closure is built: the kernel closure
	// pair heap-allocates, which an inference loop pays every step.
	if !parallelOK(m * k * n) {
		matmulRows(c.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	dispatch(m*k*n, m, n,
		func(lo, hi int) { matmulRows(c.Data, a.Data, b.Data, lo, hi, k, n) },    //tracelint:allow hotalloc — parallel path only, gated by parallelOK
		func(lo, hi int) { matmulCols(c.Data, a.Data, b.Data, m, k, n, lo, hi) }) //tracelint:allow hotalloc — parallel path only, gated by parallelOK
}

// MatMulATB computes C = Aᵀ·B for A [k,m] and B [k,n] → C [m,n],
// sharded like MatMul.
func MatMulATB(a, b *Tensor) *Tensor {
	c := New(a.Shape[1], b.Shape[1])
	MatMulATBInto(c, a, b)
	return c
}

// MatMulATBInto computes C = Aᵀ·B into a zero-filled c [m,n].
//
//tracelint:hotpath
func MatMulATBInto(c, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmulATB %v x %v", a.Shape, b.Shape))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulATB out %v, want [%d %d]", c.Shape, m, n))
	}
	if !parallelOK(m * k * n) {
		matmulATBRows(c.Data, a.Data, b.Data, 0, m, k, m, n)
		return
	}
	dispatch(m*k*n, m, n,
		func(lo, hi int) { matmulATBRows(c.Data, a.Data, b.Data, lo, hi, k, m, n) }, //tracelint:allow hotalloc — parallel path only, gated by parallelOK
		func(lo, hi int) { matmulATBCols(c.Data, a.Data, b.Data, k, m, n, lo, hi) }) //tracelint:allow hotalloc — parallel path only, gated by parallelOK
}

// MatMulABT computes C = A·Bᵀ for A [m,k] and B [n,k] → C [m,n],
// sharded like MatMul.
func MatMulABT(a, b *Tensor) *Tensor {
	c := New(a.Shape[0], b.Shape[0])
	MatMulABTInto(c, a, b)
	return c
}

// MatMulABTInto computes C = A·Bᵀ into c [m,n]. Each element is an
// overwriting dot product, so c need not be zeroed.
//
//tracelint:hotpath
func MatMulABTInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmulABT %v x %v", a.Shape, b.Shape))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulABT out %v, want [%d %d]", c.Shape, m, n))
	}
	if !parallelOK(m * k * n) {
		matmulABTRows(c.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	dispatch(m*k*n, m, n,
		func(lo, hi int) { matmulABTRows(c.Data, a.Data, b.Data, lo, hi, k, n) },    //tracelint:allow hotalloc — parallel path only, gated by parallelOK
		func(lo, hi int) { matmulABTCols(c.Data, a.Data, b.Data, m, k, n, lo, hi) }) //tracelint:allow hotalloc — parallel path only, gated by parallelOK
}
