package tensor

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"trafficdiff/internal/stats"
)

// --- quantize/dequantize round-trip bounds ---------------------------

// quantBound is the symmetric-quantization error bound for one row:
// |w - dq| <= scale/2 + eps, where scale = maxabs(row)/127 and eps
// absorbs one fp32 rounding of the dequantization multiply.
func quantBound(scale float32) float64 {
	return float64(scale)/2 + 1e-6*float64(scale)
}

// checkRoundTrip asserts the per-row quantization invariants on w:
// codes in [-127, 127], per-element error within half a quantization
// step, and exact zeros preserved.
func checkRoundTrip(t *testing.T, w *Tensor) {
	t.Helper()
	q := QuantizeSymmetric(w)
	dq := q.Dequantize()
	rows, cols := w.Shape[0], w.Shape[1]
	for o := 0; o < rows; o++ {
		scale := q.Scales[o]
		if !(scale > 0) {
			t.Fatalf("row %d: non-positive scale %v", o, scale)
		}
		bound := quantBound(scale)
		for i := 0; i < cols; i++ {
			code := q.Weights[o*cols+i]
			if code < -127 || code > 127 {
				t.Fatalf("row %d col %d: code %d outside symmetric range", o, i, code)
			}
			orig := float64(w.Data[o*cols+i])
			got := float64(dq.Data[o*cols+i])
			if diff := math.Abs(orig - got); diff > bound {
				t.Fatalf("row %d col %d: |%v - %v| = %v > bound %v (scale %v)",
					o, i, orig, got, diff, bound, scale)
			}
			if orig == 0 && got != 0 {
				t.Fatalf("row %d col %d: exact zero dequantized to %v", o, i, got)
			}
		}
	}
}

func TestQuantizeRoundTripErrorBound(t *testing.T) {
	r := stats.NewRNG(3)
	for _, shape := range [][2]int{{1, 1}, {3, 7}, {64, 128}, {17, 513}} {
		w := randTensor(r, shape[0], shape[1])
		checkRoundTrip(t, w)
	}
}

func TestQuantizeZeroRowIsExact(t *testing.T) {
	w := New(4, 16)
	// Row 2 gets values; rows 0,1,3 stay exactly zero (the zero-init
	// output-head / ControlNet zero-conv case).
	for i := 0; i < 16; i++ {
		w.Data[2*16+i] = float32(i-8) / 3
	}
	q := QuantizeSymmetric(w)
	dq := q.Dequantize()
	for _, row := range []int{0, 1, 3} {
		for i := 0; i < 16; i++ {
			if dq.Data[row*16+i] != 0 {
				t.Fatalf("zero row %d dequantized to %v at col %d", row, dq.Data[row*16+i], i)
			}
		}
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	// Quantizing an already-quantized (dequantized) matrix must be
	// lossless: every value sits exactly on a code point.
	r := stats.NewRNG(9)
	w := randTensor(r, 12, 40)
	dq := QuantizeSymmetric(w).Dequantize()
	dq2 := QuantizeSymmetric(dq).Dequantize()
	requireIdentical(t, dq2, dq, "double quantization")
}

func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add(float64(0), float64(1), float64(-1), float64(0.5))
	f.Add(float64(1e-30), float64(1e30), float64(-1e30), float64(3.14))
	f.Add(float64(127), float64(-127), float64(126.5), float64(0.001))
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		vals := []float64{a, b, c, d}
		w := New(1, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > math.MaxFloat32 {
				t.Skip("non-finite or out-of-range input")
			}
			w.Data[i] = float32(v)
		}
		q := QuantizeSymmetric(w)
		dq := q.Dequantize()
		bound := quantBound(q.Scales[0])
		for i := range w.Data {
			if diff := math.Abs(float64(w.Data[i]) - float64(dq.Data[i])); diff > bound {
				t.Fatalf("col %d: error %v > bound %v", i, diff, bound)
			}
		}
	})
}

// --- quantized GEMM --------------------------------------------------

// refMatMulABTQ is the scalar reference for C = A·Bqᵀ.
func refMatMulABTQ(a *Tensor, b *QuantizedMat) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	c := New(m, b.Rows)
	for i := 0; i < m; i++ {
		for j := 0; j < b.Rows; j++ {
			var sum float32
			for p := 0; p < k; p++ {
				sum += a.Data[i*k+p] * float32(b.Weights[j*k+p])
			}
			c.Data[i*b.Rows+j] = sum * b.Scales[j]
		}
	}
	return c
}

func TestMatMulABTQMatchesSerialReference(t *testing.T) {
	r := stats.NewRNG(21)
	withGOMAXPROCS(t, []int{1, 2, 3, 8}, func(t *testing.T) {
		for _, sh := range [][3]int{{1, 513, 96}, {7, 64, 64}, {64, 517, 89}, {3, 1, 5}} {
			a := randTensor(r, sh[0], sh[1])
			b := QuantizeSymmetric(randTensor(r, sh[2], sh[1]))
			got := New(sh[0], sh[2])
			MatMulABTQInto(got, a, b)
			requireIdentical(t, got, refMatMulABTQ(a, b),
				fmt.Sprintf("MatMulABTQ %v procs=%d", sh, runtime.GOMAXPROCS(0)))
		}
	})
}

func TestMatMulABTQIdenticalAcrossWorkerCounts(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	r := stats.NewRNG(22)
	a := randTensor(r, 123, 517)
	b := QuantizeSymmetric(randTensor(r, 89, 517))

	runtime.GOMAXPROCS(1)
	serial := New(123, 89)
	MatMulABTQInto(serial, a, b)
	for _, procs := range []int{2, 4, 16} {
		runtime.GOMAXPROCS(procs)
		got := New(123, 89)
		MatMulABTQInto(got, a, b)
		requireIdentical(t, got, serial, fmt.Sprintf("MatMulABTQ procs=%d", procs))
	}
}

// TestMatMulABTQTracksDequantizedFP32 bounds the quantized GEMM against
// the fp32 GEMM over the dequantized weights. The two are not
// bit-identical (the scale factors out of the int8 dot product instead
// of multiplying into every term), so the contract is a per-element
// bound that scales with the dot-product length.
func TestMatMulABTQTracksDequantizedFP32(t *testing.T) {
	r := stats.NewRNG(23)
	a := randTensor(r, 16, 256)
	bq := QuantizeSymmetric(randTensor(r, 48, 256))
	got := New(16, 48)
	MatMulABTQInto(got, a, bq)
	want := MatMulABT(a, bq.Dequantize())
	k := float64(256)
	for i := range want.Data {
		g, w := float64(got.Data[i]), float64(want.Data[i])
		// fp32 relative rounding per accumulation step, scaled by the
		// magnitude of the operands.
		tol := 1e-5 * k
		if math.Abs(g-w) > tol {
			t.Fatalf("element %d: quantized %v vs dequantized-fp32 %v (tol %v)", i, g, w, tol)
		}
	}
}

// --- quantized conv --------------------------------------------------

func TestConv2DQMatchesSerialReference(t *testing.T) {
	r := stats.NewRNG(31)
	spec := ConvSpec{InC: 3, OutC: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := randTensor(r, 2, 3, 12, 16)
	qw := QuantizeSymmetric(randTensor(r, 5, 3*3*3))
	bias := randTensor(r, 5)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(1)
	serial := Conv2DQ(x, qw, bias, spec)
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		requireIdentical(t, Conv2DQ(x, qw, bias, spec), serial,
			fmt.Sprintf("Conv2DQ procs=%d", procs))
	}
	// And against the fp32 conv over dequantized weights, within the
	// factored-scale tolerance.
	y, _ := Conv2D(x, qw.Dequantize(), bias, spec)
	for i := range y.Data {
		if diff := math.Abs(float64(serial.Data[i]) - float64(y.Data[i])); diff > 1e-4 {
			t.Fatalf("element %d: quantized %v vs dequantized-fp32 %v", i, serial.Data[i], y.Data[i])
		}
	}
}
