package tensor

import (
	"math"
	"testing"

	"trafficdiff/internal/stats"
)

// naiveConv2D is a direct convolution used to verify the im2col path.
func naiveConv2D(x, w, b *Tensor, s ConvSpec) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	y := New(n, s.OutC, oh, ow)
	for bi := 0; bi < n; bi++ {
		for o := 0; o < s.OutC; o++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := b.Data[o]
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < s.KH; ky++ {
							for kx := 0; kx < s.KW; kx++ {
								iy := oy*s.Stride + ky - s.Pad
								ix := ox*s.Stride + kx - s.Pad
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								xv := x.Data[((bi*c+ch)*h+iy)*wd+ix]
								wv := w.Data[o*c*s.KH*s.KW+(ch*s.KH+ky)*s.KW+kx]
								sum += xv * wv
							}
						}
					}
					y.Data[((bi*s.OutC+o)*oh+oy)*ow+ox] = sum
				}
			}
		}
	}
	return y
}

func TestConv2DMatchesNaive(t *testing.T) {
	r := stats.NewRNG(1)
	for _, tc := range []struct {
		spec    ConvSpec
		n, h, w int
	}{
		{ConvSpec{InC: 1, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}, 2, 4, 5},
		{ConvSpec{InC: 3, OutC: 4, KH: 3, KW: 3, Stride: 2, Pad: 1}, 1, 6, 6},
		{ConvSpec{InC: 2, OutC: 1, KH: 1, KW: 1, Stride: 1, Pad: 0}, 2, 3, 3},
		{ConvSpec{InC: 1, OutC: 3, KH: 5, KW: 3, Stride: 1, Pad: 2}, 1, 5, 4},
	} {
		x := New(tc.n, tc.spec.InC, tc.h, tc.w).Randn(r, 1)
		w := New(tc.spec.OutC, tc.spec.InC*tc.spec.KH*tc.spec.KW).Randn(r, 1)
		b := New(tc.spec.OutC).Randn(r, 1)
		got, _ := Conv2D(x, w, b, tc.spec)
		want := naiveConv2D(x, w, b, tc.spec)
		if !got.SameShape(want) {
			t.Fatalf("spec %+v: shape %v vs %v", tc.spec, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-3 {
				t.Fatalf("spec %+v: cell %d = %v, want %v", tc.spec, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestCol2ImAdjointOfIm2Col(t *testing.T) {
	// The adjoint test: <Im2Col(x), y> == <x, Col2Im(y)> for random x, y.
	r := stats.NewRNG(2)
	s := ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}
	n, h, w := 2, 4, 4
	x := New(n, s.InC, h, w).Randn(r, 1)
	cols := Im2Col(x, s)
	y := New(cols.Shape[0], cols.Shape[1]).Randn(r, 1)

	var lhs float64
	for i := range cols.Data {
		lhs += float64(cols.Data[i]) * float64(y.Data[i])
	}
	back := Col2Im(y, s, n, h, w)
	var rhs float64
	for i := range x.Data {
		rhs += float64(x.Data[i]) * float64(back.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestConv2DBackwardNumericGradient(t *testing.T) {
	r := stats.NewRNG(3)
	s := ConvSpec{InC: 1, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	n, h, wd := 1, 3, 3
	x := New(n, s.InC, h, wd).Randn(r, 0.5)
	w := New(s.OutC, s.InC*s.KH*s.KW).Randn(r, 0.5)
	b := New(s.OutC).Randn(r, 0.5)

	// Loss = sum(y). Then dy = ones.
	loss := func() float64 {
		y, _ := naiveLoss(x, w, b, s)
		return y
	}
	y, cols := Conv2D(x, w, b, s)
	dy := New(y.Shape...)
	dy.Fill(1)
	dx, dw, db := Conv2DBackward(dy, cols, w, s, n, h, wd)

	const eps = 1e-2
	check := func(name string, param *Tensor, grad *Tensor) {
		for i := 0; i < param.Len(); i += 3 { // sample every third element
			orig := param.Data[i]
			param.Data[i] = orig + eps
			up := loss()
			param.Data[i] = orig - eps
			down := loss()
			param.Data[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-float64(grad.Data[i])) > 1e-2*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s[%d]: numeric %v vs analytic %v", name, i, num, grad.Data[i])
			}
		}
	}
	check("x", x, dx)
	check("w", w, dw)
	check("b", b, db)
}

func naiveLoss(x, w, b *Tensor, s ConvSpec) (float64, *Tensor) {
	y := naiveConv2D(x, w, b, s)
	var sum float64
	for _, v := range y.Data {
		sum += float64(v)
	}
	return sum, y
}

func TestConvSpecOutSize(t *testing.T) {
	s := ConvSpec{InC: 1, OutC: 1, KH: 3, KW: 3, Stride: 2, Pad: 1}
	oh, ow := s.OutSize(8, 8)
	if oh != 4 || ow != 4 {
		t.Fatalf("out = %dx%d", oh, ow)
	}
}
