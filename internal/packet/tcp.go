package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCPFlags is the 8-bit TCP flags field (plus the reserved bits nprint
// tracks individually).
type TCPFlags uint16

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << 0
	FlagSYN TCPFlags = 1 << 1
	FlagRST TCPFlags = 1 << 2
	FlagPSH TCPFlags = 1 << 3
	FlagACK TCPFlags = 1 << 4
	FlagURG TCPFlags = 1 << 5
	FlagECE TCPFlags = 1 << 6
	FlagCWR TCPFlags = 1 << 7
	FlagNS  TCPFlags = 1 << 8
)

// String renders the set flags, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagURG, "URG"}, {FlagECE, "ECE"}, {FlagCWR, "CWR"}, {FlagNS, "NS"},
	}
	var set []string
	for _, n := range names {
		if f&n.bit != 0 {
			set = append(set, n.name)
		}
	}
	if len(set) == 0 {
		return "none"
	}
	return strings.Join(set, "|")
}

// TCP is a TCP segment header. Options are raw bytes; nprint encodes
// the full 60-byte option-capable header (480 bits).
type TCP struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words
	Flags      TCPFlags
	Window     uint16
	Checksum   uint16
	Urgent     uint16
	Options    []byte

	// PayloadBytes is the segment payload, set by DecodeFromBytes.
	PayloadBytes []byte
}

// HeaderLen returns the header length in bytes implied by DataOffset.
func (t *TCP) HeaderLen() int { return int(t.DataOffset) * 4 }

// DecodeFromBytes parses a TCP header from data.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return fmt.Errorf("%w: %d bytes for tcp header", ErrTruncated, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	if t.DataOffset < 5 {
		return fmt.Errorf("%w: tcp data offset %d < 5", ErrMalformed, t.DataOffset)
	}
	hlen := int(t.DataOffset) * 4
	if len(data) < hlen {
		return fmt.Errorf("%w: data offset %d needs %d bytes, have %d", ErrTruncated, t.DataOffset, hlen, len(data))
	}
	t.Flags = TCPFlags(binary.BigEndian.Uint16(data[12:14]) & 0x01ff)
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	if hlen > 20 {
		t.Options = data[20:hlen]
	} else {
		t.Options = nil
	}
	t.PayloadBytes = data[hlen:]
	return nil
}

// SerializeTo appends the header (with recomputed DataOffset and
// pseudo-header Checksum) followed by payload to buf. src and dst are
// the enclosing IPv4 addresses used for the checksum.
func (t *TCP) SerializeTo(buf []byte, payload []byte, src, dst [4]byte) []byte {
	opts := t.Options
	if len(opts)%4 != 0 {
		padded := make([]byte, (len(opts)+3)/4*4)
		copy(padded, opts)
		opts = padded
	}
	hlen := 20 + len(opts)
	t.DataOffset = uint8(hlen / 4)

	start := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, t.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, t.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, t.Seq)
	buf = binary.BigEndian.AppendUint32(buf, t.Ack)
	offFlags := uint16(t.DataOffset)<<12 | uint16(t.Flags)&0x01ff
	buf = binary.BigEndian.AppendUint16(buf, offFlags)
	buf = binary.BigEndian.AppendUint16(buf, t.Window)
	buf = append(buf, 0, 0) // checksum placeholder
	buf = binary.BigEndian.AppendUint16(buf, t.Urgent)
	buf = append(buf, opts...)
	buf = append(buf, payload...)
	t.Checksum = PseudoHeaderChecksum(src, dst, ProtoTCP, buf[start:])
	binary.BigEndian.PutUint16(buf[start+16:], t.Checksum)
	return buf
}
