package packet

import (
	"fmt"
	"time"
)

// Builder assembles complete Ethernet/IPv4 frames from layer structs.
// It serializes top-down (the opposite order of gopacket's prepend
// buffer) because the closed layer set lets each layer size itself
// without look-ahead.
type Builder struct {
	// Eth defaults for every built frame. EtherType is forced to IPv4.
	Eth Ethernet
}

// BuildTCP assembles an Ethernet+IPv4+TCP frame. The ip.Protocol,
// lengths, and checksums are computed; payload may be nil.
func (b *Builder) BuildTCP(ts time.Time, ip IPv4, tcp TCP, payload []byte) *Packet {
	ip.Protocol = ProtoTCP
	seg := tcp.SerializeTo(nil, payload, ip.SrcIP, ip.DstIP)
	return b.finish(ts, ip, seg)
}

// BuildUDP assembles an Ethernet+IPv4+UDP frame.
func (b *Builder) BuildUDP(ts time.Time, ip IPv4, udp UDP, payload []byte) *Packet {
	ip.Protocol = ProtoUDP
	seg := udp.SerializeTo(nil, payload, ip.SrcIP, ip.DstIP)
	return b.finish(ts, ip, seg)
}

// BuildICMP assembles an Ethernet+IPv4+ICMPv4 frame.
func (b *Builder) BuildICMP(ts time.Time, ip IPv4, icmp ICMPv4, payload []byte) *Packet {
	ip.Protocol = ProtoICMP
	seg := icmp.SerializeTo(nil, payload)
	return b.finish(ts, ip, seg)
}

func (b *Builder) finish(ts time.Time, ip IPv4, ipPayload []byte) *Packet {
	ipBytes := ip.SerializeTo(nil, ipPayload)
	eth := b.Eth
	eth.EtherType = EtherTypeIPv4
	frame := eth.SerializeTo(nil, ipBytes)
	p, err := Decode(frame, ts)
	if err != nil {
		// The builder controls every byte, so a decode failure here is
		// a bug in this package, not bad input.
		//tracelint:allow paniccheck — round-trip self-check of builder output, unreachable on any input
		panic(fmt.Sprintf("packet: built frame failed to decode: %v", err))
	}
	return p
}
