package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv4Flag holds the three-bit flags field of an IPv4 header.
type IPv4Flag uint8

// IPv4 header flags.
const (
	IPv4MoreFragments IPv4Flag = 1 << 0
	IPv4DontFragment  IPv4Flag = 1 << 1
	IPv4EvilBit       IPv4Flag = 1 << 2
)

// IPv4 is an IPv4 header. Options are kept as raw bytes; nprint
// encodes the full 60-byte option-capable header (480 bits) so options
// must round-trip.
type IPv4 struct {
	Version    uint8 // always 4 on serialize
	IHL        uint8 // header length in 32-bit words
	TOS        uint8
	Length     uint16 // total length including header
	ID         uint16
	Flags      IPv4Flag
	FragOffset uint16 // 13 bits, in 8-byte units
	TTL        uint8
	Protocol   IPProtocol
	Checksum   uint16
	SrcIP      [4]byte
	DstIP      [4]byte
	Options    []byte

	// PayloadBytes is the IP payload, set by DecodeFromBytes, bounded
	// by the header's Length field when it is credible.
	PayloadBytes []byte
}

// Src returns the source address as a netip.Addr.
func (ip *IPv4) Src() netip.Addr { return netip.AddrFrom4(ip.SrcIP) }

// Dst returns the destination address as a netip.Addr.
func (ip *IPv4) Dst() netip.Addr { return netip.AddrFrom4(ip.DstIP) }

// HeaderLen returns the header length in bytes implied by IHL.
func (ip *IPv4) HeaderLen() int { return int(ip.IHL) * 4 }

// DecodeFromBytes parses an IPv4 header from data.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return fmt.Errorf("%w: %d bytes for ipv4 header", ErrTruncated, len(data))
	}
	ip.Version = data[0] >> 4
	ip.IHL = data[0] & 0x0f
	if ip.Version != 4 {
		return fmt.Errorf("%w: ip version %d", ErrMalformed, ip.Version)
	}
	if ip.IHL < 5 {
		return fmt.Errorf("%w: ihl %d < 5", ErrMalformed, ip.IHL)
	}
	hlen := int(ip.IHL) * 4
	if len(data) < hlen {
		return fmt.Errorf("%w: ihl %d needs %d bytes, have %d", ErrTruncated, ip.IHL, hlen, len(data))
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	flagsFrag := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = IPv4Flag(flagsFrag >> 13)
	ip.FragOffset = flagsFrag & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	if hlen > 20 {
		ip.Options = data[20:hlen]
	} else {
		ip.Options = nil
	}
	end := len(data)
	if total := int(ip.Length); total >= hlen && total <= len(data) {
		end = total
	}
	ip.PayloadBytes = data[hlen:end]
	return nil
}

// SerializeTo appends the header (with recomputed IHL, Length and
// Checksum) followed by payload to buf and returns the extended slice.
func (ip *IPv4) SerializeTo(buf []byte, payload []byte) []byte {
	opts := ip.Options
	if len(opts)%4 != 0 {
		// Pad options to a 32-bit boundary with End-of-Options.
		padded := make([]byte, (len(opts)+3)/4*4)
		copy(padded, opts)
		opts = padded
	}
	hlen := 20 + len(opts)
	ip.IHL = uint8(hlen / 4)
	ip.Version = 4
	ip.Length = uint16(hlen + len(payload))

	start := len(buf)
	buf = append(buf, (4<<4)|ip.IHL, ip.TOS)
	buf = binary.BigEndian.AppendUint16(buf, ip.Length)
	buf = binary.BigEndian.AppendUint16(buf, ip.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	buf = append(buf, ip.TTL, byte(ip.Protocol))
	buf = append(buf, 0, 0) // checksum placeholder
	buf = append(buf, ip.SrcIP[:]...)
	buf = append(buf, ip.DstIP[:]...)
	buf = append(buf, opts...)
	ip.Checksum = Checksum(buf[start:])
	binary.BigEndian.PutUint16(buf[start+10:], ip.Checksum)
	return append(buf, payload...)
}

// VerifyChecksum reports whether the checksum in a decoded header is
// consistent with the header bytes.
func (ip *IPv4) VerifyChecksum(headerBytes []byte) bool {
	return Checksum(headerBytes) == 0
}
