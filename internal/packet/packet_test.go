package packet

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var testTime = time.Date(2023, 11, 28, 12, 0, 0, 0, time.UTC)

func sampleIP() IPv4 {
	return IPv4{
		TOS:   0,
		ID:    0x1234,
		Flags: IPv4DontFragment,
		TTL:   64,
		SrcIP: [4]byte{10, 0, 0, 1},
		DstIP: [4]byte{192, 168, 1, 2},
	}
}

func TestBuildDecodeTCPRoundTrip(t *testing.T) {
	var b Builder
	tcp := TCP{
		SrcPort: 443, DstPort: 51234,
		Seq: 1000, Ack: 2000,
		Flags:  FlagSYN | FlagACK,
		Window: 65535,
		Options: []byte{
			2, 4, 0x05, 0xb4, // MSS 1460
			1, 1, // NOPs
			3, 3, 7, // window scale
			0, // pad to 12 -> already multiple? 9 bytes -> padded
		},
	}
	payload := []byte("hello")
	p := b.BuildTCP(testTime, sampleIP(), tcp, payload)

	if p.TCP == nil {
		t.Fatal("no TCP layer after round trip")
	}
	if p.TCP.SrcPort != 443 || p.TCP.DstPort != 51234 {
		t.Errorf("ports = %d,%d", p.TCP.SrcPort, p.TCP.DstPort)
	}
	if p.TCP.Seq != 1000 || p.TCP.Ack != 2000 {
		t.Errorf("seq/ack = %d/%d", p.TCP.Seq, p.TCP.Ack)
	}
	if p.TCP.Flags != FlagSYN|FlagACK {
		t.Errorf("flags = %v", p.TCP.Flags)
	}
	if string(p.Payload) != "hello" {
		t.Errorf("payload = %q", p.Payload)
	}
	if p.TransportProtocol() != ProtoTCP {
		t.Errorf("transport = %v", p.TransportProtocol())
	}
}

func TestBuildDecodeUDPRoundTrip(t *testing.T) {
	var b Builder
	udp := UDP{SrcPort: 3478, DstPort: 50000}
	p := b.BuildUDP(testTime, sampleIP(), udp, []byte{1, 2, 3, 4})
	if p.UDP == nil {
		t.Fatal("no UDP layer")
	}
	if p.UDP.SrcPort != 3478 || p.UDP.DstPort != 50000 {
		t.Errorf("ports = %d,%d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	if p.UDP.Length != 12 {
		t.Errorf("udp length = %d, want 12", p.UDP.Length)
	}
	if len(p.Payload) != 4 {
		t.Errorf("payload len = %d", len(p.Payload))
	}
}

func TestBuildDecodeICMPRoundTrip(t *testing.T) {
	var b Builder
	var icmp ICMPv4
	icmp.Type = ICMPEchoRequest
	icmp.SetEcho(7, 42)
	p := b.BuildICMP(testTime, sampleIP(), icmp, []byte("ping"))
	if p.ICMP == nil {
		t.Fatal("no ICMP layer")
	}
	if p.ICMP.Type != ICMPEchoRequest || p.ICMP.ID() != 7 || p.ICMP.Seq() != 42 {
		t.Errorf("icmp = %+v", p.ICMP)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	var b Builder
	p := b.BuildUDP(testTime, sampleIP(), UDP{SrcPort: 1, DstPort: 2}, nil)
	hlen := p.IPv4.HeaderLen()
	header := p.Data[EthernetHeaderLen : EthernetHeaderLen+hlen]
	if Checksum(header) != 0 {
		t.Error("IPv4 checksum does not verify")
	}
}

func TestTCPChecksumValid(t *testing.T) {
	var b Builder
	ip := sampleIP()
	p := b.BuildTCP(testTime, ip, TCP{SrcPort: 80, DstPort: 8080, Flags: FlagACK}, []byte("data!"))
	seg := p.Data[EthernetHeaderLen+p.IPv4.HeaderLen():]
	if PseudoHeaderChecksum(ip.SrcIP, ip.DstIP, ProtoTCP, seg) != 0 {
		t.Error("TCP pseudo-header checksum does not verify")
	}
}

func TestUDPChecksumValid(t *testing.T) {
	var b Builder
	ip := sampleIP()
	p := b.BuildUDP(testTime, ip, UDP{SrcPort: 53, DstPort: 5353}, []byte("q"))
	seg := p.Data[EthernetHeaderLen+p.IPv4.HeaderLen():]
	// Verification of a correct UDP checksum sums to 0 or the packet
	// used the 0xffff substitution.
	if got := PseudoHeaderChecksum(ip.SrcIP, ip.DstIP, ProtoUDP, seg); got != 0 && p.UDP.Checksum != 0xffff {
		t.Errorf("UDP checksum does not verify: %04x", got)
	}
}

func TestDecodeTruncatedEthernet(t *testing.T) {
	_, err := Decode([]byte{1, 2, 3}, testTime)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestDecodeTruncatedIPv4(t *testing.T) {
	var b Builder
	p := b.BuildUDP(testTime, sampleIP(), UDP{}, nil)
	cut := p.Data[:EthernetHeaderLen+10]
	got, err := Decode(cut, testTime)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if got.Eth == nil {
		t.Error("ethernet layer should still decode")
	}
	if got.TruncatedAt != "ipv4" {
		t.Errorf("TruncatedAt = %q", got.TruncatedAt)
	}
}

func TestDecodeTruncatedTCP(t *testing.T) {
	var b Builder
	p := b.BuildTCP(testTime, sampleIP(), TCP{SrcPort: 1, DstPort: 2}, nil)
	// Keep eth + full IP header + 10 bytes of TCP. The IP Length field
	// will exceed the available bytes, so the decoder falls back to
	// slice bounds and TCP decode fails.
	cut := p.Data[:EthernetHeaderLen+p.IPv4.HeaderLen()+10]
	got, err := Decode(cut, testTime)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if got.IPv4 == nil || got.TruncatedAt != "tcp" {
		t.Errorf("partial decode: ipv4=%v truncatedAt=%q", got.IPv4 != nil, got.TruncatedAt)
	}
}

func TestDecodeMalformedIHL(t *testing.T) {
	var b Builder
	p := b.BuildUDP(testTime, sampleIP(), UDP{}, nil)
	raw := append([]byte(nil), p.Data...)
	raw[EthernetHeaderLen] = 4<<4 | 3 // IHL=3 is impossible
	_, err := Decode(raw, testTime)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestDecodeNonIPv4EtherType(t *testing.T) {
	frame := make([]byte, 20)
	frame[12], frame[13] = 0x86, 0xdd // IPv6 ethertype
	p, err := Decode(frame, testTime)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if p.IPv4 != nil {
		t.Error("should not decode IPv4 for IPv6 ethertype")
	}
	if len(p.Payload) != 6 {
		t.Errorf("payload len = %d", len(p.Payload))
	}
}

func TestIPv4OptionsRoundTrip(t *testing.T) {
	var b Builder
	ip := sampleIP()
	ip.Options = []byte{7, 7, 8, 0, 0, 0, 0, 0} // record-route style, 8 bytes
	p := b.BuildUDP(testTime, ip, UDP{SrcPort: 9, DstPort: 10}, nil)
	if p.IPv4.IHL != 7 {
		t.Errorf("IHL = %d, want 7", p.IPv4.IHL)
	}
	if len(p.IPv4.Options) != 8 || p.IPv4.Options[0] != 7 {
		t.Errorf("options = %v", p.IPv4.Options)
	}
}

func TestTCPFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Errorf("flags string = %q", s)
	}
	if s := TCPFlags(0).String(); s != "none" {
		t.Errorf("zero flags string = %q", s)
	}
}

func TestProtocolString(t *testing.T) {
	cases := map[IPProtocol]string{ProtoTCP: "TCP", ProtoUDP: "UDP", ProtoICMP: "ICMP", 99: "IPProtocol(99)"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint8(p), p.String(), want)
		}
	}
}

func TestMACAddrString(t *testing.T) {
	m := MACAddr{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("mac = %q", m.String())
	}
}

// Property: any TCP header we can describe round-trips through
// serialize+decode with all fields preserved.
func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint16, window, urgent uint16, ttl uint8, id uint16, payloadByte uint8, payloadLen uint8) bool {
		var b Builder
		ip := sampleIP()
		ip.TTL = ttl
		ip.ID = id
		in := TCP{
			SrcPort: srcPort, DstPort: dstPort,
			Seq: seq, Ack: ack,
			Flags:  TCPFlags(flags) & 0x1ff,
			Window: window, Urgent: urgent,
		}
		payload := make([]byte, int(payloadLen))
		for i := range payload {
			payload[i] = payloadByte
		}
		p := b.BuildTCP(testTime, ip, in, payload)
		out := p.TCP
		return out != nil &&
			out.SrcPort == in.SrcPort && out.DstPort == in.DstPort &&
			out.Seq == in.Seq && out.Ack == in.Ack &&
			out.Flags == in.Flags &&
			out.Window == in.Window && out.Urgent == in.Urgent &&
			p.IPv4.TTL == ttl && p.IPv4.ID == id &&
			len(p.Payload) == int(payloadLen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization is deterministic — building the same layers
// twice yields identical bytes.
func TestQuickSerializeDeterministic(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq uint32) bool {
		var b Builder
		in := TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Flags: FlagACK}
		p1 := b.BuildTCP(testTime, sampleIP(), in, nil)
		p2 := b.BuildTCP(testTime, sampleIP(), in, nil)
		return string(p1.Data) == string(p2.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("checksum = %04x, want 220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0xab}
	if got := Checksum(data); got != ^uint16(0xab00) {
		t.Errorf("odd checksum = %04x", got)
	}
}

func TestIPv4VerifyChecksum(t *testing.T) {
	var b Builder
	p := b.BuildUDP(testTime, sampleIP(), UDP{SrcPort: 1, DstPort: 2}, nil)
	hdr := p.Data[EthernetHeaderLen : EthernetHeaderLen+p.IPv4.HeaderLen()]
	if !p.IPv4.VerifyChecksum(hdr) {
		t.Fatal("valid header fails verification")
	}
	bad := append([]byte(nil), hdr...)
	bad[8] ^= 0x5a
	if p.IPv4.VerifyChecksum(bad) {
		t.Fatal("corrupted header passes verification")
	}
}

func TestIPv4AddrAccessors(t *testing.T) {
	ip := sampleIP()
	if ip.Src().String() != "10.0.0.1" || ip.Dst().String() != "192.168.1.2" {
		t.Fatalf("addr accessors: %v -> %v", ip.Src(), ip.Dst())
	}
}

func TestDecodeRespectsIPLengthBound(t *testing.T) {
	// Extra trailing bytes beyond the IP total length (Ethernet
	// padding) must not leak into the payload.
	var b Builder
	p := b.BuildUDP(testTime, sampleIP(), UDP{SrcPort: 5, DstPort: 6}, []byte{1, 2, 3})
	padded := append(append([]byte(nil), p.Data...), 0, 0, 0, 0, 0, 0)
	re, err := Decode(padded, testTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Payload) != 3 {
		t.Fatalf("payload = %d bytes, padding leaked", len(re.Payload))
	}
}
