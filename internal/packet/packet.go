// Package packet implements decoding and serialization of the packet
// layers the nprint representation covers: Ethernet, IPv4, TCP, UDP,
// and ICMPv4.
//
// The design follows the gopacket idioms: each layer type implements
// DecodeFromBytes to parse itself out of a byte slice and SerializeTo
// to append its wire form to a buffer, and a Packet bundles the decoded
// layer stack with capture metadata. Unlike gopacket, the layer set is
// closed (exactly the protocols nprint encodes), which lets decoding be
// allocation-light and the bit-level round trip be total.
package packet

import (
	"errors"
	"fmt"
	"time"
)

// IPProtocol is the IPv4 protocol number of the transport layer.
type IPProtocol uint8

// Transport protocol numbers used by the nprint representation.
const (
	ProtoICMP IPProtocol = 1
	ProtoTCP  IPProtocol = 6
	ProtoUDP  IPProtocol = 17
)

// String returns the conventional protocol name.
func (p IPProtocol) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("IPProtocol(%d)", uint8(p))
	}
}

// EtherType identifies the network-layer protocol in an Ethernet frame.
type EtherType uint16

// EtherTypeIPv4 is the only ethertype the pipeline generates.
const EtherTypeIPv4 EtherType = 0x0800

// Decoding errors. Errors wrap ErrTruncated or ErrMalformed so callers
// can classify failures with errors.Is.
var (
	// ErrTruncated reports that the input ended before the layer's
	// fixed header or declared length.
	ErrTruncated = errors.New("packet: truncated input")
	// ErrMalformed reports that a header field holds an impossible
	// value (e.g. IPv4 IHL < 5).
	ErrMalformed = errors.New("packet: malformed header")
)

// Packet is a decoded packet: the raw bytes plus the parsed layer
// stack. Layers not present in the packet are nil.
type Packet struct {
	// Timestamp is the capture or synthesis time.
	Timestamp time.Time
	// Data is the full frame as captured.
	Data []byte

	Eth  *Ethernet
	IPv4 *IPv4
	TCP  *TCP
	UDP  *UDP
	ICMP *ICMPv4

	// Payload is the application payload after the deepest decoded
	// header, if any.
	Payload []byte

	// TruncatedAt names the layer at which decoding stopped due to an
	// error, or is empty if the whole packet decoded.
	TruncatedAt string
}

// TransportProtocol returns the transport protocol of the packet, or 0
// if it has no IPv4 layer.
func (p *Packet) TransportProtocol() IPProtocol {
	if p.IPv4 == nil {
		return 0
	}
	return p.IPv4.Protocol
}

// Length returns the captured frame length in bytes.
func (p *Packet) Length() int { return len(p.Data) }

// Decode parses an Ethernet frame into a Packet. Decoding is
// best-effort past the first error: the layers parsed so far are
// retained and TruncatedAt names the failing layer, mirroring
// gopacket's ErrorLayer behaviour so that partially corrupt captures
// remain usable.
func Decode(data []byte, ts time.Time) (*Packet, error) {
	p := &Packet{Timestamp: ts, Data: data}

	var eth Ethernet
	if err := eth.DecodeFromBytes(data); err != nil {
		p.TruncatedAt = "ethernet"
		return p, fmt.Errorf("ethernet: %w", err)
	}
	p.Eth = &eth
	if eth.EtherType != EtherTypeIPv4 {
		p.Payload = eth.PayloadBytes
		return p, nil
	}

	var ip IPv4
	if err := ip.DecodeFromBytes(eth.PayloadBytes); err != nil {
		p.TruncatedAt = "ipv4"
		return p, fmt.Errorf("ipv4: %w", err)
	}
	p.IPv4 = &ip

	switch ip.Protocol {
	case ProtoTCP:
		var tcp TCP
		if err := tcp.DecodeFromBytes(ip.PayloadBytes); err != nil {
			p.TruncatedAt = "tcp"
			return p, fmt.Errorf("tcp: %w", err)
		}
		p.TCP = &tcp
		p.Payload = tcp.PayloadBytes
	case ProtoUDP:
		var udp UDP
		if err := udp.DecodeFromBytes(ip.PayloadBytes); err != nil {
			p.TruncatedAt = "udp"
			return p, fmt.Errorf("udp: %w", err)
		}
		p.UDP = &udp
		p.Payload = udp.PayloadBytes
	case ProtoICMP:
		var icmp ICMPv4
		if err := icmp.DecodeFromBytes(ip.PayloadBytes); err != nil {
			p.TruncatedAt = "icmp"
			return p, fmt.Errorf("icmp: %w", err)
		}
		p.ICMP = &icmp
		p.Payload = icmp.PayloadBytes
	default:
		p.Payload = ip.PayloadBytes
	}
	return p, nil
}
