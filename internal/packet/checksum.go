package packet

import "encoding/binary"

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	return finishChecksum(sumWords(0, data))
}

func sumWords(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func finishChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// PseudoHeaderChecksum computes the TCP/UDP checksum over the IPv4
// pseudo-header (src, dst, protocol, segment length) followed by the
// segment bytes.
func PseudoHeaderChecksum(src, dst [4]byte, proto IPProtocol, segment []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = byte(proto)
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(segment)))
	sum := sumWords(0, pseudo[:])
	sum = sumWords(sum, segment)
	return finishChecksum(sum)
}
