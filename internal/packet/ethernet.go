package packet

import (
	"encoding/binary"
	"fmt"
)

// MACAddr is a 48-bit Ethernet hardware address.
type MACAddr [6]byte

// String formats the address in colon-hex notation.
func (m MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EthernetHeaderLen is the length of an untagged Ethernet II header.
const EthernetHeaderLen = 14

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	DstMAC    MACAddr
	SrcMAC    MACAddr
	EtherType EtherType

	// PayloadBytes is the frame payload, set by DecodeFromBytes.
	PayloadBytes []byte
}

// DecodeFromBytes parses an Ethernet II header from data.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return fmt.Errorf("%w: %d bytes for ethernet header", ErrTruncated, len(data))
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.PayloadBytes = data[EthernetHeaderLen:]
	return nil
}

// SerializeTo appends the header followed by payload to buf and
// returns the extended slice.
func (e *Ethernet) SerializeTo(buf []byte, payload []byte) []byte {
	buf = append(buf, e.DstMAC[:]...)
	buf = append(buf, e.SrcMAC[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(e.EtherType))
	return append(buf, payload...)
}
