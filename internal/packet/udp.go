package packet

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// UDP is a UDP datagram header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload
	Checksum uint16

	// PayloadBytes is the datagram payload, set by DecodeFromBytes,
	// bounded by the Length field when it is credible.
	PayloadBytes []byte
}

// DecodeFromBytes parses a UDP header from data.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return fmt.Errorf("%w: %d bytes for udp header", ErrTruncated, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := len(data)
	if total := int(u.Length); total >= UDPHeaderLen && total <= len(data) {
		end = total
	}
	u.PayloadBytes = data[UDPHeaderLen:end]
	return nil
}

// SerializeTo appends the header (with recomputed Length and
// pseudo-header Checksum) followed by payload to buf.
func (u *UDP) SerializeTo(buf []byte, payload []byte, src, dst [4]byte) []byte {
	u.Length = uint16(UDPHeaderLen + len(payload))
	start := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, u.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, u.DstPort)
	buf = binary.BigEndian.AppendUint16(buf, u.Length)
	buf = append(buf, 0, 0) // checksum placeholder
	buf = append(buf, payload...)
	u.Checksum = PseudoHeaderChecksum(src, dst, ProtoUDP, buf[start:])
	if u.Checksum == 0 {
		u.Checksum = 0xffff // RFC 768: zero means "no checksum"
	}
	binary.BigEndian.PutUint16(buf[start+6:], u.Checksum)
	return buf
}
