package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMPv4HeaderLen is the length of the fixed ICMPv4 header part nprint
// encodes (type, code, checksum, rest-of-header).
const ICMPv4HeaderLen = 8

// ICMPv4 message types used by the workload generator.
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// ICMPv4 is an ICMPv4 message header.
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	// RestOfHeader holds the 4 type-specific bytes (identifier and
	// sequence for echo messages).
	RestOfHeader [4]byte

	// PayloadBytes is the message body, set by DecodeFromBytes.
	PayloadBytes []byte
}

// ID returns the echo identifier for echo messages.
func (i *ICMPv4) ID() uint16 { return binary.BigEndian.Uint16(i.RestOfHeader[0:2]) }

// Seq returns the echo sequence number for echo messages.
func (i *ICMPv4) Seq() uint16 { return binary.BigEndian.Uint16(i.RestOfHeader[2:4]) }

// SetEcho fills RestOfHeader with an echo identifier and sequence.
func (i *ICMPv4) SetEcho(id, seq uint16) {
	binary.BigEndian.PutUint16(i.RestOfHeader[0:2], id)
	binary.BigEndian.PutUint16(i.RestOfHeader[2:4], seq)
}

// DecodeFromBytes parses an ICMPv4 header from data.
func (i *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ICMPv4HeaderLen {
		return fmt.Errorf("%w: %d bytes for icmp header", ErrTruncated, len(data))
	}
	i.Type = data[0]
	i.Code = data[1]
	i.Checksum = binary.BigEndian.Uint16(data[2:4])
	copy(i.RestOfHeader[:], data[4:8])
	i.PayloadBytes = data[ICMPv4HeaderLen:]
	return nil
}

// SerializeTo appends the header (with recomputed Checksum) followed
// by payload to buf.
func (i *ICMPv4) SerializeTo(buf []byte, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, i.Type, i.Code, 0, 0)
	buf = append(buf, i.RestOfHeader[:]...)
	buf = append(buf, payload...)
	i.Checksum = Checksum(buf[start:])
	binary.BigEndian.PutUint16(buf[start+2:], i.Checksum)
	return buf
}
