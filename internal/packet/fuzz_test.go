package packet

import (
	"testing"
	"time"
)

// FuzzDecode asserts the decoder never panics and that whatever it
// does decode re-serializes into a decodable frame. Runs its seed
// corpus under plain `go test`; `go test -fuzz=FuzzDecode` explores
// further.
func FuzzDecode(f *testing.F) {
	// Seed with a valid TCP frame and interesting corruptions.
	var b Builder
	ip := IPv4{TTL: 64, SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}}
	valid := b.BuildTCP(time.Unix(0, 0), ip, TCP{SrcPort: 80, DstPort: 443, Flags: FlagSYN}, []byte("x")).Data
	f.Add(valid)
	f.Add(valid[:20])
	f.Add([]byte{})
	short := append([]byte(nil), valid...)
	short[14] = 0x45 | 0x0a // weird IHL nibble
	f.Add(short)
	udp := b.BuildUDP(time.Unix(0, 0), ip, UDP{SrcPort: 53, DstPort: 53}, nil).Data
	f.Add(udp)
	icmpFrame := func() []byte {
		var ic ICMPv4
		ic.Type = ICMPEchoRequest
		return b.BuildICMP(time.Unix(0, 0), ip, ic, nil).Data
	}()
	f.Add(icmpFrame)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data, time.Unix(0, 0))
		if p == nil {
			t.Fatal("Decode returned nil packet")
		}
		if err != nil {
			return // partial decode is fine; no panic is the property
		}
		// Fully decoded IPv4 packets must re-serialize losslessly
		// enough to decode again.
		if p.IPv4 == nil {
			return
		}
		var rb Builder
		rb.Eth = *p.Eth
		var re *Packet
		switch {
		case p.TCP != nil:
			re = rb.BuildTCP(p.Timestamp, *p.IPv4, *p.TCP, p.Payload)
		case p.UDP != nil:
			re = rb.BuildUDP(p.Timestamp, *p.IPv4, *p.UDP, p.Payload)
		case p.ICMP != nil:
			re = rb.BuildICMP(p.Timestamp, *p.IPv4, *p.ICMP, p.Payload)
		default:
			return
		}
		if re.IPv4 == nil {
			t.Fatal("rebuilt packet lost IPv4 layer")
		}
		if re.IPv4.TTL != p.IPv4.TTL || re.IPv4.Protocol != p.IPv4.Protocol {
			t.Fatal("rebuilt packet changed header fields")
		}
	})
}
