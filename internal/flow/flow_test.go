package flow

import (
	"testing"
	"testing/quick"
	"time"

	"trafficdiff/internal/packet"
)

var t0 = time.Date(2023, 11, 28, 10, 0, 0, 0, time.UTC)

func tcpPacket(t *testing.T, srcIP, dstIP [4]byte, srcPort, dstPort uint16, ts time.Time) *packet.Packet {
	t.Helper()
	var b packet.Builder
	ip := packet.IPv4{TTL: 64, SrcIP: srcIP, DstIP: dstIP}
	return b.BuildTCP(ts, ip, packet.TCP{SrcPort: srcPort, DstPort: dstPort, Flags: packet.FlagACK}, nil)
}

func udpPacket(t *testing.T, srcIP, dstIP [4]byte, srcPort, dstPort uint16, ts time.Time) *packet.Packet {
	t.Helper()
	var b packet.Builder
	ip := packet.IPv4{TTL: 64, SrcIP: srcIP, DstIP: dstIP}
	return b.BuildUDP(ts, ip, packet.UDP{SrcPort: srcPort, DstPort: dstPort}, nil)
}

func TestKeyDirectionSymmetry(t *testing.T) {
	a := [4]byte{10, 0, 0, 1}
	b := [4]byte{10, 0, 0, 2}
	p1 := tcpPacket(t, a, b, 1000, 443, t0)
	p2 := tcpPacket(t, b, a, 443, 1000, t0)
	k1, ok1 := KeyOf(p1)
	k2, ok2 := KeyOf(p2)
	if !ok1 || !ok2 {
		t.Fatal("KeyOf failed")
	}
	if k1 != k2 {
		t.Fatalf("directions map to different keys: %v vs %v", k1, k2)
	}
}

func TestQuickKeySymmetry(t *testing.T) {
	f := func(a, b [4]byte, pa, pb uint16) bool {
		p1 := tcpPacket(t, a, b, pa, pb, t0)
		p2 := tcpPacket(t, b, a, pb, pa, t0)
		k1, _ := KeyOf(p1)
		k2, _ := KeyOf(p2)
		return k1 == k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentPortsDifferentFlows(t *testing.T) {
	a := [4]byte{10, 0, 0, 1}
	b := [4]byte{10, 0, 0, 2}
	tb := NewTable()
	tb.Add(tcpPacket(t, a, b, 1000, 443, t0))
	tb.Add(tcpPacket(t, a, b, 1001, 443, t0))
	if tb.Len() != 2 {
		t.Fatalf("flows = %d, want 2", tb.Len())
	}
}

func TestTCPAndUDPSame5TupleAreDistinct(t *testing.T) {
	a := [4]byte{1, 1, 1, 1}
	b := [4]byte{2, 2, 2, 2}
	tb := NewTable()
	tb.Add(tcpPacket(t, a, b, 53, 53, t0))
	tb.Add(udpPacket(t, a, b, 53, 53, t0))
	if tb.Len() != 2 {
		t.Fatalf("TCP and UDP collapsed into %d flow(s)", tb.Len())
	}
}

func TestNonIPDropped(t *testing.T) {
	frame := make([]byte, 20) // ethertype 0 => not IPv4
	p, _ := packet.Decode(frame, t0)
	tb := NewTable()
	if tb.Add(p) {
		t.Error("non-IP packet accepted")
	}
	if tb.Dropped != 1 {
		t.Errorf("Dropped = %d", tb.Dropped)
	}
}

func TestFlowMetrics(t *testing.T) {
	a := [4]byte{10, 0, 0, 1}
	b := [4]byte{10, 0, 0, 2}
	tb := NewTable()
	tb.Add(tcpPacket(t, a, b, 1000, 443, t0))
	tb.Add(tcpPacket(t, b, a, 443, 1000, t0.Add(time.Second)))
	tb.Add(tcpPacket(t, a, b, 1000, 443, t0.Add(3*time.Second)))
	flows := tb.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	f := flows[0]
	if len(f.Packets) != 3 {
		t.Fatalf("packets = %d", len(f.Packets))
	}
	if f.Duration() != 3*time.Second {
		t.Errorf("duration = %v", f.Duration())
	}
	if !f.Start().Equal(t0) {
		t.Errorf("start = %v", f.Start())
	}
	if f.Bytes() <= 0 {
		t.Errorf("bytes = %d", f.Bytes())
	}
}

func TestDominantProtocol(t *testing.T) {
	a := [4]byte{10, 0, 0, 1}
	b := [4]byte{10, 0, 0, 2}
	f := &Flow{}
	f.Append(tcpPacket(t, a, b, 1, 2, t0))
	f.Append(tcpPacket(t, a, b, 1, 2, t0))
	f.Append(udpPacket(t, a, b, 1, 2, t0))
	if got := f.DominantProtocol(); got != packet.ProtoTCP {
		t.Errorf("dominant = %v, want TCP", got)
	}
}

func TestEmptyFlowZeroValues(t *testing.T) {
	f := &Flow{}
	if !f.Start().IsZero() || f.Duration() != 0 || f.Bytes() != 0 {
		t.Error("empty flow has non-zero metrics")
	}
}

func TestFlowsSortedByStart(t *testing.T) {
	a := [4]byte{10, 0, 0, 1}
	b := [4]byte{10, 0, 0, 2}
	tb := NewTable()
	tb.Add(tcpPacket(t, a, b, 2000, 443, t0.Add(time.Minute)))
	tb.Add(tcpPacket(t, a, b, 1000, 443, t0))
	sorted := tb.FlowsSortedByStart()
	if len(sorted) != 2 || !sorted[0].Start().Equal(t0) {
		t.Fatal("not sorted by start")
	}
}

func TestGetAndInsertionOrder(t *testing.T) {
	a := [4]byte{10, 0, 0, 1}
	b := [4]byte{10, 0, 0, 2}
	tb := NewTable()
	p := tcpPacket(t, a, b, 7, 8, t0)
	tb.Add(p)
	k, _ := KeyOf(p)
	if tb.Get(k) == nil {
		t.Fatal("Get returned nil for known key")
	}
	if tb.Get(Key{}) != nil {
		t.Fatal("Get returned flow for unknown key")
	}
}

func TestEndpointString(t *testing.T) {
	e := Endpoint{IP: [4]byte{192, 168, 0, 1}, Port: 8080}
	if e.String() != "192.168.0.1:8080" {
		t.Errorf("endpoint = %q", e.String())
	}
}
