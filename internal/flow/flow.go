// Package flow groups packets into bidirectional 5-tuple flows, the
// unit of data the synthesis pipeline trains on and generates (one
// flow = one nprint image).
package flow

import (
	"fmt"
	"sort"
	"time"

	"trafficdiff/internal/packet"
)

// Endpoint is one side of a flow.
type Endpoint struct {
	IP   [4]byte
	Port uint16
}

// String formats the endpoint as ip:port.
func (e Endpoint) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", e.IP[0], e.IP[1], e.IP[2], e.IP[3], e.Port)
}

func (e Endpoint) less(o Endpoint) bool {
	for i := range e.IP {
		if e.IP[i] != o.IP[i] {
			return e.IP[i] < o.IP[i]
		}
	}
	return e.Port < o.Port
}

// Key is a direction-normalized 5-tuple: the lexicographically smaller
// endpoint is always A, so packets of both directions of a
// conversation map to the same Key (cf. gopacket's symmetric
// Flow.FastHash).
type Key struct {
	A, B  Endpoint
	Proto packet.IPProtocol
}

// String formats the key for logs and map dumps.
func (k Key) String() string {
	return fmt.Sprintf("%s %s<->%s", k.Proto, k.A, k.B)
}

// KeyOf extracts the normalized flow key from a decoded packet. ok is
// false for packets without an IPv4 layer. ICMP flows key on the
// addresses alone (ports zero).
func KeyOf(p *packet.Packet) (k Key, ok bool) {
	if p.IPv4 == nil {
		return Key{}, false
	}
	src := Endpoint{IP: p.IPv4.SrcIP}
	dst := Endpoint{IP: p.IPv4.DstIP}
	switch {
	case p.TCP != nil:
		src.Port, dst.Port = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		src.Port, dst.Port = p.UDP.SrcPort, p.UDP.DstPort
	}
	k = Key{A: src, B: dst, Proto: p.IPv4.Protocol}
	if k.B.less(k.A) {
		k.A, k.B = k.B, k.A
	}
	return k, true
}

// Flow is an ordered collection of packets sharing a Key.
type Flow struct {
	Key     Key
	Packets []*packet.Packet
	// Label is the application class, when known (set by the workload
	// generator or a classifier).
	Label string
}

// Append adds a packet, keeping arrival order.
func (f *Flow) Append(p *packet.Packet) { f.Packets = append(f.Packets, p) }

// Start returns the first packet's timestamp, or the zero time for an
// empty flow.
func (f *Flow) Start() time.Time {
	if len(f.Packets) == 0 {
		return time.Time{}
	}
	return f.Packets[0].Timestamp
}

// Duration returns last-first packet time.
func (f *Flow) Duration() time.Duration {
	if len(f.Packets) < 2 {
		return 0
	}
	return f.Packets[len(f.Packets)-1].Timestamp.Sub(f.Packets[0].Timestamp)
}

// Bytes returns the total captured bytes across packets.
func (f *Flow) Bytes() int {
	total := 0
	for _, p := range f.Packets {
		total += p.Length()
	}
	return total
}

// DominantProtocol returns the transport protocol carried by the
// majority of the flow's packets. The paper's controllability analysis
// (Figure 2) checks that synthetic flows preserve this per class.
func (f *Flow) DominantProtocol() packet.IPProtocol {
	counts := map[packet.IPProtocol]int{}
	for _, p := range f.Packets {
		counts[p.TransportProtocol()]++
	}
	var best packet.IPProtocol
	bestN := -1
	for proto, n := range counts {
		if n > bestN || (n == bestN && proto < best) {
			best, bestN = proto, n
		}
	}
	return best
}

// Table assembles packets into flows by key.
type Table struct {
	flows map[Key]*Flow
	order []Key // insertion order for deterministic iteration
	// Dropped counts packets that had no IPv4 layer and were ignored.
	Dropped int
}

// NewTable returns an empty flow table.
func NewTable() *Table {
	return &Table{flows: make(map[Key]*Flow)}
}

// Add routes one packet into its flow, creating the flow if needed.
// It reports whether the packet was accepted.
func (t *Table) Add(p *packet.Packet) bool {
	k, ok := KeyOf(p)
	if !ok {
		t.Dropped++
		return false
	}
	f, ok := t.flows[k]
	if !ok {
		f = &Flow{Key: k}
		t.flows[k] = f
		t.order = append(t.order, k)
	}
	f.Append(p)
	return true
}

// Len returns the number of distinct flows.
func (t *Table) Len() int { return len(t.flows) }

// Get returns the flow for key, or nil.
func (t *Table) Get(k Key) *Flow { return t.flows[k] }

// Flows returns all flows in first-seen order.
func (t *Table) Flows() []*Flow {
	out := make([]*Flow, 0, len(t.order))
	for _, k := range t.order {
		out = append(out, t.flows[k])
	}
	return out
}

// FlowsSortedByStart returns flows ordered by first-packet timestamp
// (ties broken by key string for determinism).
func (t *Table) FlowsSortedByStart() []*Flow {
	out := t.Flows()
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := out[i].Start(), out[j].Start()
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}
