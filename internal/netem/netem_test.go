package netem

import (
	"testing"
	"testing/quick"
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/workload"
)

func sampleFlow(t testing.TB, n int) *flow.Flow {
	t.Helper()
	g := workload.NewGenerator(1)
	g.MaxPackets = n
	p, _ := workload.ProfileByName("netflix")
	return g.GenerateFlow(p)
}

func TestCleanIsIdentityish(t *testing.T) {
	f := sampleFlow(t, 20)
	out, st, err := Apply(f, Clean)
	if err != nil {
		t.Fatal(err)
	}
	if st.In != st.Out || st.Dropped != 0 || st.Duplicated != 0 {
		t.Fatalf("clean stats %+v", st)
	}
	for i := range f.Packets {
		if !out.Packets[i].Timestamp.Equal(f.Packets[i].Timestamp) {
			t.Fatal("clean condition changed timestamps")
		}
		if &out.Packets[i].Data[0] != &f.Packets[i].Data[0] {
			t.Fatal("payload bytes should be shared")
		}
	}
}

func TestInputFlowUnmodified(t *testing.T) {
	f := sampleFlow(t, 10)
	orig := make([]time.Time, len(f.Packets))
	for i, p := range f.Packets {
		orig[i] = p.Timestamp
	}
	_, _, err := Apply(f, Condition{Latency: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range f.Packets {
		if !p.Timestamp.Equal(orig[i]) {
			t.Fatal("Apply mutated the input flow")
		}
	}
}

func TestLatencyShiftsAllPackets(t *testing.T) {
	f := sampleFlow(t, 10)
	out, st, err := Apply(f, Condition{Latency: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Packets {
		want := f.Packets[i].Timestamp.Add(50 * time.Millisecond)
		if !out.Packets[i].Timestamp.Equal(want) {
			t.Fatalf("packet %d ts = %v, want %v", i, out.Packets[i].Timestamp, want)
		}
	}
	if st.AddedDelay != 50*time.Millisecond {
		t.Errorf("added delay = %v", st.AddedDelay)
	}
}

func TestLossRateDropsApproximately(t *testing.T) {
	f := sampleFlow(t, 0) // full profile length
	// Build a long flow by concatenating several.
	for i := 0; i < 5; i++ {
		extra := sampleFlow(t, 0)
		f.Packets = append(f.Packets, extra.Packets...)
	}
	n := len(f.Packets)
	if n < 100 {
		t.Skip("flow too short")
	}
	_, st, err := Apply(f, Condition{LossRate: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(st.Dropped) / float64(n)
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("loss fraction %v far from 0.3 (n=%d)", frac, n)
	}
}

func TestJitterMonotoneWithoutReorder(t *testing.T) {
	f := sampleFlow(t, 30)
	out, _, err := Apply(f, Condition{Jitter: 100 * time.Millisecond, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out.Packets); i++ {
		if out.Packets[i].Timestamp.Before(out.Packets[i-1].Timestamp) {
			t.Fatal("non-reorder condition produced reordering")
		}
	}
}

func TestThroughputCapPacesBytes(t *testing.T) {
	f := sampleFlow(t, 30)
	const bps = 100_000.0
	out, _, err := Apply(f, Condition{ThroughputBps: bps})
	if err != nil {
		t.Fatal(err)
	}
	start := out.Packets[0].Timestamp
	cum := 0
	for i, p := range out.Packets {
		if i == 0 {
			cum += p.Length()
			continue
		}
		elapsed := p.Timestamp.Sub(start).Seconds()
		// Cumulative bytes before this packet must fit the cap.
		if float64(cum) > bps*elapsed+1 {
			t.Fatalf("packet %d violates pacing: %d bytes in %.4fs", i, cum, elapsed)
		}
		cum += p.Length()
	}
	// The paced flow must be slower than the original.
	if out.Duration() <= f.Duration() {
		t.Error("throughput cap did not extend the flow")
	}
}

func TestDuplicate(t *testing.T) {
	f := sampleFlow(t, 40)
	out, st, err := Apply(f, Condition{Duplicate: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicated == 0 {
		t.Fatal("no duplicates at 50% rate")
	}
	if len(out.Packets) != st.In+st.Duplicated {
		t.Fatalf("out=%d in=%d dup=%d", len(out.Packets), st.In, st.Duplicated)
	}
}

func TestValidation(t *testing.T) {
	f := sampleFlow(t, 5)
	bad := []Condition{
		{LossRate: -0.1},
		{LossRate: 1},
		{Duplicate: 1},
		{Latency: -time.Second},
		{ThroughputBps: -1},
	}
	for i, c := range bad {
		if _, _, err := Apply(f, c); err == nil {
			t.Errorf("condition %d should fail validation", i)
		}
	}
}

func TestApplyAllAggregates(t *testing.T) {
	flows := []*flow.Flow{sampleFlow(t, 10), sampleFlow(t, 10)}
	out, st, err := ApplyAll(flows, Condition{Latency: time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || st.In != 20 {
		t.Fatalf("out=%d in=%d", len(out), st.In)
	}
}

func TestQuickLossNeverNegativeOutput(t *testing.T) {
	fl := sampleFlow(t, 12)
	fn := func(seed uint64, lossPct uint8) bool {
		c := Condition{LossRate: float64(lossPct%90) / 100, Seed: seed}
		out, st, err := Apply(fl, c)
		if err != nil {
			return false
		}
		return st.Out == len(out.Packets) && st.Out+st.Dropped == st.In
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, c := range []Condition{Clean, Broadband, Cellular, Congested} {
		if err := c.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}
