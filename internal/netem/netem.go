// Package netem applies network-condition transformations to flows —
// the paper's §4 "network condition transfers: transferring across
// varying network conditions such as latency, throughput, and loss
// rate". Conditions rewrite a flow's timing and packet survival while
// leaving header contents untouched, so a trace synthesized under one
// condition can be re-rendered under another (e.g. generating
// "congested Netflix" from clean Netflix).
package netem

import (
	"fmt"
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/stats"
)

// Condition describes the emulated path.
type Condition struct {
	// Latency adds a constant one-way delay to every packet.
	Latency time.Duration
	// Jitter adds zero-mean Gaussian noise with this standard
	// deviation to each packet's delay (delays never reorder packets
	// below; see Reorder).
	Jitter time.Duration
	// LossRate drops each packet independently with this probability
	// in [0,1).
	LossRate float64
	// ThroughputBps caps the flow's bytes/second; packets are delayed
	// so the cumulative byte curve never exceeds it (token-bucket
	// pacing with unbounded queue). Zero means unlimited.
	ThroughputBps float64
	// Reorder allows jitter to reorder packets; when false, timestamps
	// are forced monotone after jitter (FIFO path).
	Reorder bool
	// Duplicate duplicates each packet with this probability in [0,1).
	Duplicate float64

	Seed uint64
}

// Validate checks the condition's parameter ranges.
func (c Condition) Validate() error {
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("netem: loss rate %v out of [0,1)", c.LossRate)
	}
	if c.Duplicate < 0 || c.Duplicate >= 1 {
		return fmt.Errorf("netem: duplicate rate %v out of [0,1)", c.Duplicate)
	}
	if c.Latency < 0 || c.Jitter < 0 {
		return fmt.Errorf("netem: negative latency/jitter")
	}
	if c.ThroughputBps < 0 {
		return fmt.Errorf("netem: negative throughput cap")
	}
	return nil
}

// Stats summarizes what a condition did to a flow.
type Stats struct {
	In, Out    int
	Dropped    int
	Duplicated int
	// AddedDelay is the mean extra delay across surviving packets.
	AddedDelay time.Duration
}

// Apply returns a new flow with the condition applied. The input flow
// is not modified; packet payload bytes are shared (headers are
// immutable in this pipeline).
func Apply(f *flow.Flow, c Condition) (*flow.Flow, Stats, error) {
	var st Stats
	if err := c.Validate(); err != nil {
		return nil, st, err
	}
	r := stats.NewRNG(c.Seed)
	out := &flow.Flow{Key: f.Key, Label: f.Label}
	st.In = len(f.Packets)

	var (
		budgetStart time.Time
		sentBytes   float64
		lastTS      time.Time
		totalDelay  time.Duration
	)
	if len(f.Packets) > 0 {
		budgetStart = f.Packets[0].Timestamp
	}
	emit := func(p *packet.Packet, ts time.Time) {
		// Throughput pacing: delay until the byte budget allows.
		if c.ThroughputBps > 0 {
			earliest := budgetStart.Add(time.Duration(sentBytes / c.ThroughputBps * float64(time.Second)))
			if ts.Before(earliest) {
				ts = earliest
			}
			sentBytes += float64(p.Length())
		}
		if !c.Reorder && ts.Before(lastTS) {
			ts = lastTS
		}
		lastTS = ts
		cp := *p
		cp.Timestamp = ts
		out.Append(&cp)
	}

	for _, p := range f.Packets {
		if c.LossRate > 0 && r.Bool(c.LossRate) {
			st.Dropped++
			continue
		}
		delay := c.Latency
		if c.Jitter > 0 {
			j := time.Duration(r.NormFloat64() * float64(c.Jitter))
			if delay+j < 0 {
				j = -delay
			}
			delay += j
		}
		totalDelay += delay
		emit(p, p.Timestamp.Add(delay))
		if c.Duplicate > 0 && r.Bool(c.Duplicate) {
			st.Duplicated++
			emit(p, p.Timestamp.Add(delay+time.Microsecond))
		}
	}
	st.Out = len(out.Packets)
	if n := st.In - st.Dropped; n > 0 {
		st.AddedDelay = totalDelay / time.Duration(n)
	}
	return out, st, nil
}

// ApplyAll maps Apply over a batch, deriving per-flow seeds.
func ApplyAll(flows []*flow.Flow, c Condition) ([]*flow.Flow, Stats, error) {
	var agg Stats
	out := make([]*flow.Flow, 0, len(flows))
	for i, f := range flows {
		ci := c
		ci.Seed = c.Seed + uint64(i)*0x9e3779b97f4a7c15
		nf, st, err := Apply(f, ci)
		if err != nil {
			return nil, agg, err
		}
		agg.In += st.In
		agg.Out += st.Out
		agg.Dropped += st.Dropped
		agg.Duplicated += st.Duplicated
		agg.AddedDelay += st.AddedDelay
		out = append(out, nf)
	}
	if len(flows) > 0 {
		agg.AddedDelay /= time.Duration(len(flows))
	}
	return out, agg, nil
}

// Presets for common path conditions.
var (
	// Clean is a no-op condition.
	Clean = Condition{}
	// Broadband is a typical cable path: 20ms latency, mild jitter.
	Broadband = Condition{Latency: 20 * time.Millisecond, Jitter: 2 * time.Millisecond}
	// Cellular is a loaded LTE path: higher latency, jitter and loss.
	Cellular = Condition{Latency: 60 * time.Millisecond, Jitter: 15 * time.Millisecond, LossRate: 0.01}
	// Congested adds heavy loss and a throughput cap.
	Congested = Condition{Latency: 80 * time.Millisecond, Jitter: 30 * time.Millisecond, LossRate: 0.05, ThroughputBps: 250_000}
)
