package core

import "sync"

// postQueue is the bounded hand-off between the step loop and the post
// workers. Unlike a channel it is not FIFO: pop returns the job with
// the fewest flows (ties in arrival order), so a 1-flow probe's cheap
// post-processing is never stuck behind bulk 8-flow jobs — the same
// least-work-first policy the step-row budget applies to denoising.
// push blocks when the queue is full, preserving the channel version's
// backpressure on the step loop.
type postQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	jobs     []*engineJob
	limit    int
	closed   bool
}

func newPostQueue(limit int) *postQueue {
	q := &postQueue{limit: limit}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// push enqueues a completed job, blocking while the queue is full.
// Pushing after close is a programming error upstream and the job is
// dropped; the step loop closes the queue only after its last push.
func (q *postQueue) push(job *engineJob) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) >= q.limit && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return
	}
	q.jobs = append(q.jobs, job)
	q.notEmpty.Signal()
}

// pop removes and returns the smallest queued job, blocking while the
// queue is empty. It returns nil once the queue is closed and drained.
func (q *postQueue) pop() *engineJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.jobs) == 0 {
		return nil
	}
	best := 0
	for i, j := range q.jobs[1:] {
		if len(j.seeds) < len(q.jobs[best].seeds) {
			best = i + 1
		}
	}
	job := q.jobs[best]
	// Preserve arrival order among the rest so equal-size jobs stay
	// FIFO, and drop the vacated tail reference.
	last := len(q.jobs) - 1
	copy(q.jobs[best:], q.jobs[best+1:])
	q.jobs[last] = nil
	q.jobs = q.jobs[:last]
	q.notFull.Signal()
	return job
}

// close wakes every waiter; pending jobs still drain through pop.
func (q *postQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
