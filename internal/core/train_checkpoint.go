package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"

	"trafficdiff/internal/diffusion"
	"trafficdiff/internal/nn"
)

// Training phases of a LoRA fine-tune; single-phase configurations
// (UNet, UseLoRA=false) only ever checkpoint phaseBase.
const (
	phaseBase     = 0
	phaseFineTune = 1
)

// trainCheckpointVersion is the mid-run training checkpoint envelope
// version.
const trainCheckpointVersion = 1

// defaultCheckpointEvery is the step interval used when a checkpoint
// path is set but no interval was chosen.
const defaultCheckpointEvery = 50

// trainEnvelope heads a crash-safe mid-run training checkpoint file.
// It pins the configuration and class vocabulary the run was started
// with (resuming under a different config would silently diverge) and
// records which phase the trainer state belongs to. The envelope is
// followed by, in order: the frozen base weights (phaseFineTune only,
// as a weights-only nn checkpoint — the fine-tune trainer state covers
// only the adapter parameters it trains) and the diffusion.Trainer
// state (a Version-2 nn checkpoint).
type trainEnvelope struct {
	Version int
	Config  Config
	Classes []string
	Phase   int
	// BaseLosses is the completed base-phase loss curve, carried so a
	// resumed run can still report the full training history
	// (phaseFineTune only).
	BaseLosses []float64
}

// writeTrainCheckpoint atomically writes the mid-run training
// checkpoint to path: the full state is written to a temp file in the
// same directory, synced, and renamed over path, so a crash at any
// point leaves either the previous checkpoint or the new one — never
// a torn file.
func (s *Synthesizer) writeTrainCheckpoint(path string, phase int, baseLosses []float64, tr *diffusion.Trainer) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: creating checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	env := trainEnvelope{
		Version: trainCheckpointVersion, Config: s.cfg, Classes: s.classes,
		Phase: phase, BaseLosses: baseLosses,
	}
	err = gob.NewEncoder(w).Encode(env)
	if err == nil && phase == phaseFineTune {
		err = nn.SaveParams(w, s.base.Params())
	}
	if err == nil {
		err = tr.Checkpoint(w)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Best-effort cleanup of the torn temp file; the write error is
		// what the caller needs to see.
		_ = os.Remove(tmp)
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: committing checkpoint: %w", err)
	}
	return nil
}

// openTrainCheckpoint opens a mid-run checkpoint, decodes its
// envelope, and returns a reader positioned at the streams that
// follow (base weights for phaseFineTune, then trainer state). The
// caller must invoke the returned close function when done. A single
// buffered reader is shared across the gob streams for the same
// reason core.Load shares one: a per-decoder buffer would read ahead
// past the stream boundary.
func openTrainCheckpoint(path string) (*trainEnvelope, *bufio.Reader, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: opening checkpoint: %w", err)
	}
	br := bufio.NewReader(f)
	var env trainEnvelope
	if err := gob.NewDecoder(br).Decode(&env); err != nil {
		// Read-only file: a close failure cannot lose data, and the
		// decode error is the one worth reporting.
		_ = f.Close()
		return nil, nil, nil, fmt.Errorf("core: decoding checkpoint envelope: %w", err)
	}
	if env.Version != trainCheckpointVersion {
		_ = f.Close() // read-only file; the version error is what matters
		return nil, nil, nil, fmt.Errorf("core: unsupported training checkpoint version %d", env.Version)
	}
	if env.Phase != phaseBase && env.Phase != phaseFineTune {
		_ = f.Close() // read-only file; the phase error is what matters
		return nil, nil, nil, fmt.Errorf("core: training checkpoint has unknown phase %d", env.Phase)
	}
	return &env, br, f.Close, nil
}

// validateResume checks that a checkpoint was produced by a run with
// this synthesizer's exact configuration and class vocabulary —
// resuming under different settings would not continue the same
// trajectory, it would silently train a different model.
func (s *Synthesizer) validateResume(env *trainEnvelope) error {
	if env.Config != s.cfg {
		return fmt.Errorf("core: resume checkpoint was written under a different config")
	}
	if len(env.Classes) != len(s.classes) {
		return fmt.Errorf("core: resume checkpoint has %d classes, synthesizer has %d", len(env.Classes), len(s.classes))
	}
	for i := range env.Classes {
		if env.Classes[i] != s.classes[i] {
			return fmt.Errorf("core: resume checkpoint class %d is %q, synthesizer has %q", i, env.Classes[i], s.classes[i])
		}
	}
	return nil
}
