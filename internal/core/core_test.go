package core

import (
	"strings"
	"testing"
	"time"

	"trafficdiff/internal/diffusion"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/workload"
)

// fastConfig keeps unit tests quick while exercising the whole
// pipeline.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows = 16
	cfg.DownH = 2
	cfg.DownW = 16 // model 8 x 68
	cfg.Hidden = 64
	cfg.TimeSteps = 40
	cfg.BaseSteps = 40
	cfg.FineTuneSteps = 60
	cfg.Batch = 8
	cfg.DDIMSteps = 8
	return cfg
}

func trainingFlows(t testing.TB, classes []string, perClass int) map[string][]*flow.Flow {
	t.Helper()
	ds, err := workload.Generate(workload.Config{
		Seed: 11, FlowsPerClass: perClass, Only: classes, MaxPacketsPerFlow: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		out[f.Label] = append(out[f.Label], f)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := New(cfg, nil); err == nil {
		t.Error("no classes should fail")
	}
	bad := cfg
	bad.Rows = 10 // not divisible by DownH=2? 10/2=5 ok; make DownH 3
	bad.DownH = 3
	if _, err := New(bad, []string{"a"}); err == nil {
		t.Error("non-divisible rows should fail")
	}
	bad2 := cfg
	bad2.DownW = 7
	if _, err := New(bad2, []string{"a"}); err == nil {
		t.Error("bad DownW should fail")
	}
	if _, err := New(cfg, []string{"a", "a"}); err == nil {
		t.Error("duplicate classes should fail")
	}
	bad3 := cfg
	bad3.TimeSteps = 1
	if _, err := New(bad3, []string{"a"}); err == nil {
		t.Error("tiny TimeSteps should fail")
	}
	bad4 := cfg
	bad4.Arch = ArchUNet
	bad4.UseLoRA = true
	if _, err := New(bad4, []string{"a"}); err == nil {
		t.Error("UNet+LoRA should fail")
	}
}

func TestPromptEncoding(t *testing.T) {
	s, err := New(fastConfig(), []string{"netflix", "teams"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Prompt("teams")
	if err != nil || p != "Type-1" {
		t.Fatalf("prompt = %q, err %v", p, err)
	}
	if _, err := s.Prompt("nope"); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestEncodeFlowShape(t *testing.T) {
	s, _ := New(fastConfig(), []string{"netflix"})
	fl := trainingFlows(t, []string{"netflix"}, 1)["netflix"][0]
	im, err := s.EncodeFlow(fl)
	if err != nil {
		t.Fatal(err)
	}
	h, w := s.ModelShape()
	if im.Shape[0] != 1 || im.Shape[1] != h || im.Shape[2] != w {
		t.Fatalf("encoded shape %v, want [1 %d %d]", im.Shape, h, w)
	}
	// Values within the representable range.
	for _, v := range im.Data {
		if v < -1 || v > 1 {
			t.Fatalf("encoded value %v out of [-1,1]", v)
		}
	}
}

func TestGenerateBeforeTrainingFails(t *testing.T) {
	s, _ := New(fastConfig(), []string{"netflix"})
	if _, err := s.Generate("netflix", 1); err == nil {
		t.Fatal("generate before fine-tune should fail")
	}
}

func TestFineTuneRequiresAllClasses(t *testing.T) {
	s, _ := New(fastConfig(), []string{"netflix", "teams"})
	flows := trainingFlows(t, []string{"netflix"}, 2)
	if _, err := s.FineTune(flows); err == nil || !strings.Contains(err.Error(), "teams") {
		t.Fatalf("missing class should fail naming the class, got %v", err)
	}
}

func TestEndToEndPipeline(t *testing.T) {
	classes := []string{"amazon", "teams"}
	s, err := New(fastConfig(), classes)
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.FineTune(trainingFlows(t, classes, 6))
	if err != nil {
		t.Fatal(err)
	}
	if report.Images != 12 {
		t.Errorf("trained on %d images, want 12", report.Images)
	}
	if len(report.BaseLosses) == 0 || len(report.FineTuneLosses) == 0 {
		t.Error("missing loss curves")
	}
	if !s.Trained() {
		t.Fatal("synthesizer should report trained")
	}

	// Amazon: generated flows must be all-TCP (the Figure 2 property).
	res, err := s.Generate("amazon", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 3 {
		t.Fatalf("flows = %d", len(res.Flows))
	}
	tpl, _ := s.Template("amazon")
	for i, m := range res.Matrices {
		if c := tpl.ProtocolCompliance(m); c != 1 {
			t.Errorf("matrix %d protocol compliance = %v after projection", i, c)
		}
	}
	for _, f := range res.Flows {
		if f.Label != "amazon" {
			t.Errorf("label = %q", f.Label)
		}
		for _, p := range f.Packets {
			if p.TCP == nil {
				t.Fatal("amazon generated a non-TCP packet")
			}
		}
	}

	// Teams: all-UDP.
	resT, err := s.Generate("teams", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range resT.Flows {
		for _, p := range f.Packets {
			if p.UDP == nil {
				t.Fatal("teams generated a non-UDP packet")
			}
		}
	}
}

func TestGenerateBalancedDistribution(t *testing.T) {
	classes := []string{"amazon", "teams"}
	s, _ := New(fastConfig(), classes)
	if _, err := s.FineTune(trainingFlows(t, classes, 4)); err != nil {
		t.Fatal(err)
	}
	flows, err := s.GenerateBalanced(3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, f := range flows {
		counts[f.Label]++
	}
	if counts["amazon"] != 3 || counts["teams"] != 3 {
		t.Fatalf("balanced counts = %v", counts)
	}

	skewed, err := s.GenerateWithDistribution(map[string]int{"amazon": 4, "teams": 1})
	if err != nil {
		t.Fatal(err)
	}
	counts = map[string]int{}
	for _, f := range skewed {
		counts[f.Label]++
	}
	if counts["amazon"] != 4 || counts["teams"] != 1 {
		t.Fatalf("skewed counts = %v", counts)
	}
}

func TestGenerateVariety(t *testing.T) {
	// Successive calls must not repeat the identical flows (seeds
	// advance per call).
	classes := []string{"amazon"}
	s, _ := New(fastConfig(), classes)
	if _, err := s.FineTune(trainingFlows(t, classes, 4)); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Generate("amazon", 1)
	b, _ := s.Generate("amazon", 1)
	if len(a.Matrices) == 0 || len(b.Matrices) == 0 {
		t.Fatal("no matrices")
	}
	same := true
	for i := range a.Matrices[0].Data {
		if a.Matrices[0].Data[i] != b.Matrices[0].Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two generation calls produced identical matrices")
	}
}

func TestNoLoRAPath(t *testing.T) {
	cfg := fastConfig()
	cfg.UseLoRA = false
	cfg.BaseSteps = 30
	cfg.FineTuneSteps = 30
	classes := []string{"amazon"}
	s, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FineTune(trainingFlows(t, classes, 3)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Generate("amazon", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 {
		t.Fatal("no flow generated")
	}
}

func TestUNetPath(t *testing.T) {
	cfg := fastConfig()
	cfg.Arch = ArchUNet
	cfg.UseLoRA = false
	cfg.Hidden = 6
	cfg.BaseSteps = 8
	cfg.FineTuneSteps = 8
	cfg.Batch = 4
	cfg.DDIMSteps = 4
	classes := []string{"teams"}
	s, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FineTune(trainingFlows(t, classes, 2)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Generate("teams", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Flows[0].Packets {
		if p.UDP == nil {
			t.Fatal("UNet teams flow not UDP")
		}
	}
}

func TestScheduleKindPlumbed(t *testing.T) {
	cfg := fastConfig()
	cfg.Schedule = diffusion.ScheduleLinear
	s, err := New(cfg, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if s.sched.Kind != diffusion.ScheduleLinear {
		t.Fatal("schedule kind not plumbed")
	}
}

func TestGeneratedFlowsAreReplayable(t *testing.T) {
	// Every generated packet must be a fully decodable frame (valid
	// checksums are recomputed during back-transform).
	classes := []string{"amazon"}
	s, _ := New(fastConfig(), classes)
	if _, err := s.FineTune(trainingFlows(t, classes, 4)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Generate("amazon", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		if len(f.Packets) == 0 {
			t.Fatal("empty generated flow")
		}
		for _, p := range f.Packets {
			re, err := packet.Decode(p.Data, p.Timestamp)
			if err != nil {
				t.Fatalf("generated packet not decodable: %v", err)
			}
			if re.IPv4 == nil {
				t.Fatal("generated packet lacks IPv4")
			}
		}
	}
}

func TestGenerateWithDistributionSkipsZeroCounts(t *testing.T) {
	classes := []string{"amazon", "teams"}
	s, _ := New(fastConfig(), classes)
	if _, err := s.FineTune(trainingFlows(t, classes, 3)); err != nil {
		t.Fatal(err)
	}
	flows, err := s.GenerateWithDistribution(map[string]int{"amazon": 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if f.Label != "amazon" {
			t.Fatalf("unexpected class %q", f.Label)
		}
	}
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
}

func TestClassesAndModelShapeAccessors(t *testing.T) {
	cfg := fastConfig()
	s, _ := New(cfg, []string{"a", "b"})
	cs := s.Classes()
	if len(cs) != 2 || cs[0] != "a" {
		t.Fatalf("classes = %v", cs)
	}
	cs[0] = "mutated"
	if s.Classes()[0] != "a" {
		t.Fatal("Classes leaked internal slice")
	}
	h, w := s.ModelShape()
	if h != cfg.Rows/cfg.DownH || w != 1088/cfg.DownW {
		t.Fatalf("model shape %dx%d", h, w)
	}
}

func TestSetDDIMSteps(t *testing.T) {
	classes := []string{"amazon"}
	s, _ := New(fastConfig(), classes)
	if _, err := s.FineTune(trainingFlows(t, classes, 3)); err != nil {
		t.Fatal(err)
	}
	s.SetDDIMSteps(0) // full DDPM path must also work
	res, err := s.Generate("amazon", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 {
		t.Fatal("DDPM generation failed")
	}
}

func TestGeneratedTimestampsFollowClassDistribution(t *testing.T) {
	classes := []string{"teams"}
	s, _ := New(fastConfig(), classes)
	flows := trainingFlows(t, classes, 5)
	if _, err := s.FineTune(flows); err != nil {
		t.Fatal(err)
	}
	res, err := s.Generate("teams", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		var distinct bool
		var prev time.Duration = -1
		for i := 1; i < len(f.Packets); i++ {
			gap := f.Packets[i].Timestamp.Sub(f.Packets[i-1].Timestamp)
			if gap <= 0 {
				t.Fatal("non-positive generated gap")
			}
			if prev >= 0 && gap != prev {
				distinct = true
			}
			prev = gap
		}
		if len(f.Packets) > 4 && !distinct {
			t.Fatal("generated gaps are all identical — empirical timing not applied")
		}
	}
}
