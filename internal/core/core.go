// Package core implements the paper's primary contribution: the
// text-to-traffic synthesis pipeline (§3.1). A Synthesizer
//
//  1. converts real labeled flows into nprint bit matrices and renders
//     them as resolution-scaled images (red=1 / green=0 / grey=-1),
//  2. trains a base diffusion model unconditionally ("the text-to-image
//     base model"), then fine-tunes LoRA adapters plus encoded class
//     ("Type-0", "Type-1", …) word embeddings for class coverage,
//  3. derives one-shot protocol templates per class and feeds them to
//     the denoiser as ControlNet-style conditioning during sampling,
//  4. samples class-prompted images with classifier-free guidance,
//     color-processes (quantizes) them back onto {-1,0,1}, projects
//     the hard protocol constraints, and back-transforms the result
//     through nprint into replayable packets.
//
// The Stable Diffusion 1.5 base model is substituted by a from-scratch
// DDPM (see package diffusion); every other component matches the
// paper's architecture one-to-one.
package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trafficdiff/internal/controlnet"
	"trafficdiff/internal/diffusion"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/heuristic"
	"trafficdiff/internal/imagerep"
	"trafficdiff/internal/lora"
	"trafficdiff/internal/nn"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// Arch selects the denoiser architecture.
type Arch int

// Architectures.
const (
	// ArchMLP is the fast fully-connected denoiser (default).
	ArchMLP Arch = iota
	// ArchUNet is the convolutional U-Net denoiser.
	ArchUNet
)

// Config parameterizes a Synthesizer.
type Config struct {
	// Rows is the full-resolution packet rows per flow image (the
	// paper uses up to 1024; experiments here default to 32 to stay
	// CPU-friendly). Must be divisible by DownH.
	Rows int
	// DownH and DownW are the resolution-scaling factors applied to
	// rows and bit columns; the model trains at
	// (Rows/DownH) x (1088/DownW). DownW must divide 1088; 8 keeps
	// pixel boundaries byte-aligned.
	DownH, DownW int

	Arch Arch
	// Hidden is the MLP width or the U-Net base channel count.
	Hidden int
	// UseAttention attaches mid-stage self-attention to the U-Net
	// denoiser (ignored for the MLP).
	UseAttention bool

	Schedule  diffusion.ScheduleKind
	TimeSteps int

	// BaseSteps trains the unconditional base model; FineTuneSteps
	// trains LoRA adapters + class embeddings with the base frozen.
	// With UseLoRA=false the base trains conditionally for
	// BaseSteps+FineTuneSteps instead.
	BaseSteps     int
	FineTuneSteps int
	Batch         int
	LR            float64
	DropCond      float64
	ClipNorm      float64
	// EMADecay, when > 0, samples from an exponential moving average
	// of the trained weights (standard DDPM practice).
	EMADecay float64

	UseLoRA   bool
	LoRARank  int
	LoRAAlpha float64

	UseControlNet bool
	// ConstantSnap pins class-invariant header bits (columns constant
	// across the one-shot example's packets) to the template value
	// after quantization — the strong form of one-shot control.
	ConstantSnap  bool
	GuidanceScale float64
	// DDIMSteps > 0 samples with DDIM at that many steps; otherwise
	// full DDPM ancestral sampling.
	DDIMSteps int

	Seed uint64
}

// DefaultConfig returns the settings used throughout the experiments:
// byte-aligned resolution scaling, cosine schedule, LoRA fine-tuning
// and ControlNet guidance enabled.
func DefaultConfig() Config {
	return Config{
		Rows: 32, DownH: 2, DownW: 8,
		Arch: ArchMLP, Hidden: 192,
		Schedule: diffusion.ScheduleCosine, TimeSteps: 120,
		BaseSteps: 250, FineTuneSteps: 350, Batch: 16,
		LR: 2e-3, DropCond: 0.1, ClipNorm: 5,
		UseLoRA: true, LoRARank: 8, LoRAAlpha: 16,
		UseControlNet: true, ConstantSnap: true, GuidanceScale: 2, DDIMSteps: 15,
		Seed: 1,
	}
}

// Synthesizer is the trained text-to-traffic pipeline.
//
// Once training (FineTune or Load) has completed, Generate,
// GenerateSeeded and GenerateWithFlowSeeds are safe for concurrent use:
// sampling reads model parameters, templates and distributions without
// mutating them, and the only post-construction config mutation
// (SetDDIMSteps) synchronizes with generation through mu. FineTune
// itself must not run concurrently with generation.
type Synthesizer struct {
	mu sync.RWMutex
	// ddimSteps is the only piece of configuration that mutates after
	// construction (SetDDIMSteps); every generation call merges it into
	// its config snapshot under the read lock.
	ddimSteps int // guarded by mu
	// precision records the inference weight precision SetPrecision
	// installed ("" means the fp32 default). Unlike ddimSteps it is a
	// load-time setting: SetPrecision must complete before any
	// generation starts.
	precision string // guarded by mu
	// cfg is immutable once New returns; read it freely.
	cfg     Config
	classes []string
	index   map[string]int

	base    *diffusion.MLPDenoiser
	unet    *diffusion.UNetDenoiser
	adapted *lora.AdaptedMLP
	sched   *diffusion.Schedule

	templates map[int]*controlnet.Template
	controls  map[int]*tensor.Tensor
	// gapDists holds each class's empirical inter-arrival distribution
	// (milliseconds), fitted from the fine-tuning flows; the nprint
	// representation carries no timing, so back-transform samples
	// realistic gaps from here instead of a fixed interval.
	gapDists map[int]*heuristic.Empirical

	// genCalls is accessed atomically; it sequences the batch seeds of
	// unseeded Generate calls.
	genCalls uint64
}

// TrainReport summarizes FineTune.
type TrainReport struct {
	BaseLosses     []float64
	FineTuneLosses []float64
	// Images is the number of training images used.
	Images int
}

// New validates cfg and builds an untrained Synthesizer over the given
// class names (the "prompt vocabulary": class i is prompted as
// "Type-i", mirroring the paper's encoded prompts).
func New(cfg Config, classes []string) (*Synthesizer, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("core: need at least one class")
	}
	if cfg.Rows <= 0 || cfg.DownH <= 0 || cfg.DownW <= 0 {
		return nil, fmt.Errorf("core: non-positive geometry in config")
	}
	if cfg.Rows%cfg.DownH != 0 {
		return nil, fmt.Errorf("core: Rows %d not divisible by DownH %d", cfg.Rows, cfg.DownH)
	}
	if nprint.BitsPerPacket%cfg.DownW != 0 {
		return nil, fmt.Errorf("core: DownW %d does not divide %d", cfg.DownW, nprint.BitsPerPacket)
	}
	if cfg.TimeSteps < 2 {
		return nil, fmt.Errorf("core: TimeSteps must be >= 2")
	}
	h := cfg.Rows / cfg.DownH
	w := nprint.BitsPerPacket / cfg.DownW
	if cfg.Arch == ArchUNet && (h%2 != 0 || w%2 != 0) {
		return nil, fmt.Errorf("core: UNet needs even model dims, got %dx%d", h, w)
	}
	if cfg.UseLoRA && cfg.Arch == ArchUNet {
		return nil, fmt.Errorf("core: LoRA fine-tuning is implemented for the MLP denoiser")
	}

	s := &Synthesizer{
		cfg:       cfg,
		ddimSteps: cfg.DDIMSteps,
		classes:   append([]string(nil), classes...),
		index:     map[string]int{},
		sched:     diffusion.NewSchedule(cfg.Schedule, cfg.TimeSteps),
		templates: map[int]*controlnet.Template{},
		controls:  map[int]*tensor.Tensor{},
		gapDists:  map[int]*heuristic.Empirical{},
	}
	for i, c := range classes {
		if _, dup := s.index[c]; dup {
			return nil, fmt.Errorf("core: duplicate class %q", c)
		}
		s.index[c] = i
	}
	r := stats.NewRNG(cfg.Seed)
	k := len(classes)
	switch cfg.Arch {
	case ArchMLP:
		s.base = diffusion.NewMLPDenoiser(r, h, w, cfg.Hidden, k)
	case ArchUNet:
		s.unet = diffusion.NewUNetDenoiser(r, h, w, cfg.Hidden, k)
		if cfg.UseAttention {
			s.unet.EnableAttention(r)
		}
	default:
		return nil, fmt.Errorf("core: unknown arch %d", cfg.Arch)
	}
	return s, nil
}

// Classes returns the prompt vocabulary.
func (s *Synthesizer) Classes() []string { return append([]string(nil), s.classes...) }

// Prompt returns the encoded prompt string for a class ("Type-3"),
// matching the paper's encoded text prompts.
func (s *Synthesizer) Prompt(class string) (string, error) {
	i, ok := s.index[class]
	if !ok {
		return "", fmt.Errorf("core: unknown class %q", class)
	}
	return fmt.Sprintf("Type-%d", i), nil
}

// ModelShape returns the training-resolution image dims.
func (s *Synthesizer) ModelShape() (h, w int) {
	return s.cfg.Rows / s.cfg.DownH, nprint.BitsPerPacket / s.cfg.DownW
}

// EncodeFlow converts one flow to a model-resolution training image
// [1,h,w]. Flows shorter than Rows pad with vacant rows.
func (s *Synthesizer) EncodeFlow(f *flow.Flow) (*tensor.Tensor, error) {
	m := nprint.FromFlow(f, s.cfg.Rows)
	im := imagerep.FromMatrix(m)
	im = imagerep.PadRows(im, s.cfg.Rows, -1)
	down, err := imagerep.Downscale(im, s.cfg.DownH, s.cfg.DownW)
	if err != nil {
		return nil, fmt.Errorf("core: encoding flow: %w", err)
	}
	return tensor.FromSlice(down.Pix, 1, down.H, down.W), nil
}

// TrainProgress is the per-step fine-tuning report passed to a
// FineTuneOptions.Progress hook.
type TrainProgress struct {
	// Phase is "base" during base-model training and "finetune" during
	// LoRA adapter training.
	Phase string
	// Step is the 0-based step just completed within the phase;
	// TotalSteps is the phase's step budget.
	Step, TotalSteps int
	Loss, GradNorm   float64
	StepsPerSec      float64
}

// FineTuneOptions controls crash-safety and observability of a
// fine-tuning run. The zero value trains exactly like FineTune always
// has: no checkpoints, no resume, no progress reports.
type FineTuneOptions struct {
	// CheckpointPath, when non-empty, periodically writes a crash-safe
	// mid-run training checkpoint to this path (atomic
	// write-temp-then-rename), every CheckpointEvery steps and once at
	// each phase boundary. A run killed at any step can be resumed
	// from the file with ResumeFrom and will converge to bit-identical
	// final weights.
	CheckpointPath string
	// CheckpointEvery is the step interval between checkpoints; values
	// <= 0 default to 50.
	CheckpointEvery int
	// ResumeFrom, when non-empty, restores the mid-run checkpoint at
	// this path and continues training from its captured step. The
	// synthesizer must have been built with the same config and
	// classes, and the training flows must be the same.
	ResumeFrom string
	// Progress, when non-nil, is called after every optimizer step.
	// Reporting-only: it does not affect the training trajectory or
	// checkpoint bytes.
	Progress func(TrainProgress)
}

// FineTune trains the pipeline on labeled flows. Every class in the
// vocabulary must have at least one flow (its one-shot ControlNet
// template comes from the first).
func (s *Synthesizer) FineTune(flowsByClass map[string][]*flow.Flow) (*TrainReport, error) {
	return s.FineTuneWithOptions(flowsByClass, FineTuneOptions{})
}

// FineTuneWithOptions is FineTune with crash-safe checkpointing,
// resume, and per-step progress reporting. See FineTuneOptions.
func (s *Synthesizer) FineTuneWithOptions(flowsByClass map[string][]*flow.Flow, opts FineTuneOptions) (*TrainReport, error) {
	// Per-class preparation (template derivation, control tensors, flow
	// encoding, gap fitting) touches only that class's flows, so classes
	// fan out across a worker pool into indexed slots; the merge below
	// runs in class order (first error in class order wins), so results
	// are identical at any GOMAXPROCS. The shared maps are written only
	// during the sequential merge.
	type classPrep struct {
		tpl    *controlnet.Template
		ctrl   *tensor.Tensor
		images []*tensor.Tensor
		labels []int
		dist   *heuristic.Empirical
		err    error
	}
	preps := make([]classPrep, len(s.classes))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, class := range s.classes {
		flows := flowsByClass[class]
		if len(flows) == 0 {
			return nil, fmt.Errorf("core: class %q has no training flows", class)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(ci int, class string, flows []*flow.Flow) {
			defer wg.Done()
			defer func() { <-sem }()
			p := &preps[ci]
			// One-shot protocol template from the first example.
			tpl, err := controlnet.FromExample(nprint.FromFlow(flows[0], s.cfg.Rows))
			if err != nil {
				p.err = fmt.Errorf("core: template for %q: %w", class, err)
				return
			}
			p.tpl = tpl
			h, w := s.ModelShape()
			ctrl, err := tpl.ControlTensor(h, w, s.cfg.DownH, s.cfg.DownW)
			if err != nil {
				p.err = fmt.Errorf("core: control tensor for %q: %w", class, err)
				return
			}
			p.ctrl = ctrl

			var gaps []float64
			for _, f := range flows {
				im, err := s.EncodeFlow(f)
				if err != nil {
					p.err = err
					return
				}
				p.images = append(p.images, im)
				p.labels = append(p.labels, ci)
				for i := 1; i < len(f.Packets); i++ {
					g := f.Packets[i].Timestamp.Sub(f.Packets[i-1].Timestamp).Seconds() * 1000
					if g >= 0 {
						gaps = append(gaps, g)
					}
				}
			}
			if len(gaps) == 0 {
				gaps = []float64{2}
			}
			p.dist = heuristic.NewEmpirical(gaps)
		}(s.index[class], class, flows)
	}
	wg.Wait()

	set := &diffusion.TrainSet{}
	for ci := range preps {
		if preps[ci].err != nil {
			return nil, preps[ci].err
		}
		s.templates[ci] = preps[ci].tpl
		s.controls[ci] = preps[ci].ctrl
		s.gapDists[ci] = preps[ci].dist
		set.Images = append(set.Images, preps[ci].images...)
		set.Labels = append(set.Labels, preps[ci].labels...)
	}

	report := &TrainReport{Images: len(set.Images)}
	var controls map[int]*tensor.Tensor
	if s.cfg.UseControlNet {
		controls = s.controls
	}

	// A resume checkpoint's envelope decides which phase the trainer
	// state belongs to; the shared reader is then handed to exactly
	// that phase's trainer. Completed earlier phases are skipped —
	// their effect on the weights is part of the checkpoint.
	var env *trainEnvelope
	var resumeR io.Reader
	if opts.ResumeFrom != "" {
		e, br, closeCkpt, err := openTrainCheckpoint(opts.ResumeFrom)
		if err != nil {
			return nil, err
		}
		defer closeCkpt()
		if err := s.validateResume(e); err != nil {
			return nil, err
		}
		env, resumeR = e, br
	}
	phaseRestore := func(phase int) io.Reader {
		if env != nil && env.Phase == phase {
			return resumeR
		}
		return nil
	}

	if s.cfg.Arch == ArchUNet || !s.cfg.UseLoRA {
		model := diffusion.Denoiser(s.base)
		if s.cfg.Arch == ArchUNet {
			model = s.unet
		}
		losses, err := s.trainPhase(model, set, diffusion.TrainConfig{
			Steps: s.cfg.BaseSteps + s.cfg.FineTuneSteps, Batch: s.cfg.Batch,
			LR: s.cfg.LR, DropCond: s.cfg.DropCond, ClipNorm: s.cfg.ClipNorm,
			Seed: s.cfg.Seed + 1, Controls: controls, EMADecay: s.cfg.EMADecay,
		}, phaseBase, "base", nil, opts, phaseRestore(phaseBase))
		report.BaseLosses = losses
		return report, err
	}

	if env != nil && env.Phase == phaseFineTune {
		// The base phase completed before the checkpoint was taken; its
		// final weights ride along in the checkpoint instead of being
		// retrained.
		if err := nn.LoadParams(resumeR, s.base.Params()); err != nil {
			return nil, fmt.Errorf("core: restoring base weights: %w", err)
		}
		report.BaseLosses = env.BaseLosses
	} else if s.cfg.BaseSteps > 0 {
		// Phase 1: unconditional base training (the "pretrained base
		// model" analog — it learns generic traffic-image structure with
		// no class vocabulary).
		losses, err := s.trainPhase(s.base, set, diffusion.TrainConfig{
			Steps: s.cfg.BaseSteps, Batch: s.cfg.Batch,
			LR: s.cfg.LR, DropCond: 1.0, // always unconditional
			ClipNorm: s.cfg.ClipNorm, Seed: s.cfg.Seed + 1, Controls: controls,
		}, phaseBase, "base", nil, opts, phaseRestore(phaseBase))
		report.BaseLosses = losses
		if err != nil {
			return report, err
		}
	}

	// Phase 2: LoRA adapters + fresh class embeddings, base frozen.
	r := stats.NewRNG(s.cfg.Seed + 2)
	s.adapted = lora.NewAdaptedMLP(r, s.base, s.cfg.LoRARank, s.cfg.LoRAAlpha, len(s.classes))
	losses, err := s.trainPhase(s.adapted, set, diffusion.TrainConfig{
		Steps: s.cfg.FineTuneSteps, Batch: s.cfg.Batch,
		LR: s.cfg.LR, DropCond: s.cfg.DropCond, ClipNorm: s.cfg.ClipNorm,
		Seed: s.cfg.Seed + 3, FreezeBase: true, ExtraParams: s.adapted.Params(),
		Controls: controls, EMADecay: s.cfg.EMADecay,
	}, phaseFineTune, "finetune", report.BaseLosses, opts, phaseRestore(phaseFineTune))
	report.FineTuneLosses = losses
	return report, err
}

// trainPhase runs one training phase step-by-step through a
// diffusion.Trainer, optionally restoring mid-run state first and
// writing a crash-safe checkpoint every opts.CheckpointEvery steps
// plus once at the phase boundary. baseLosses is the prior phase's
// completed loss curve, carried into each checkpoint's envelope so a
// resumed run still reports full history.
func (s *Synthesizer) trainPhase(model diffusion.Denoiser, set *diffusion.TrainSet, tcfg diffusion.TrainConfig, phase int, phaseName string, baseLosses []float64, opts FineTuneOptions, restore io.Reader) ([]float64, error) {
	if opts.Progress != nil {
		hook, total := opts.Progress, tcfg.Steps
		tcfg.Progress = func(p diffusion.Progress) {
			hook(TrainProgress{
				Phase: phaseName, Step: p.Step, TotalSteps: total,
				Loss: p.Loss, GradNorm: p.GradNorm, StepsPerSec: p.StepsPerSec,
			})
		}
	}
	tr, err := diffusion.NewTrainer(model, s.sched, set, tcfg)
	if err != nil {
		return nil, err
	}
	if restore != nil {
		if err := tr.Restore(restore); err != nil {
			return nil, fmt.Errorf("core: restoring %s-phase trainer: %w", phaseName, err)
		}
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	checkpointing := opts.CheckpointPath != ""
	for !tr.Done() {
		if err := tr.Step(); err != nil {
			return tr.Losses(), err
		}
		if checkpointing && !tr.Done() && tr.StepCount()%every == 0 {
			if err := s.writeTrainCheckpoint(opts.CheckpointPath, phase, baseLosses, tr); err != nil {
				return tr.Losses(), err
			}
		}
	}
	if checkpointing {
		// The phase-boundary checkpoint: taken before Finish (EMA
		// install), so resuming from it re-enters here with Done()
		// already true and proceeds straight to the next phase.
		if err := s.writeTrainCheckpoint(opts.CheckpointPath, phase, baseLosses, tr); err != nil {
			return tr.Losses(), err
		}
	}
	tr.Finish()
	return tr.Losses(), nil
}

// model returns the denoiser used for sampling.
func (s *Synthesizer) model() diffusion.Denoiser {
	switch {
	case s.adapted != nil:
		return s.adapted
	case s.unet != nil:
		return s.unet
	default:
		return s.base
	}
}

// Trained reports whether FineTune has run (templates exist).
func (s *Synthesizer) Trained() bool { return len(s.templates) == len(s.classes) }

// GenerateResult carries one synthesis call's outputs and diagnostics.
type GenerateResult struct {
	Flows []*flow.Flow
	// Matrices are the quantized, projected nprint matrices (one per
	// flow) — Figure 2 renders these.
	Matrices []*nprint.Matrix
	// Repaired counts cells changed by constraint projection.
	Repaired int
	// SkippedRows counts undecodable rows dropped in back-transform.
	SkippedRows int
	// RawCompliance is the strict per-row template protocol compliance
	// before projection (a row counts only if its transport section is
	// populated and the others are fully vacant).
	RawCompliance float64
	// RawCellCompliance is the per-cell template compliance before
	// projection — a smoother diagnostic of how much structure the
	// model learned versus what projection had to repair.
	RawCellCompliance float64
}

// genEpoch is the fixed base timestamp stamped onto synthesized flows.
var genEpoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// lookupClass resolves a class name and checks the pipeline is trained.
func (s *Synthesizer) lookupClass(class string) (int, error) {
	ci, ok := s.index[class]
	if !ok {
		return 0, fmt.Errorf("core: unknown class %q", class)
	}
	if !s.Trained() {
		return 0, fmt.Errorf("core: synthesizer not fine-tuned")
	}
	return ci, nil
}

// configSnapshot copies cfg with the live DDIM budget merged in under
// the read lock, so generation works from a consistent view even while
// SetDDIMSteps runs concurrently.
func (s *Synthesizer) configSnapshot() Config {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cfg := s.cfg
	cfg.DDIMSteps = s.ddimSteps
	return cfg
}

// Generate synthesizes n flows of the given class: prompt-conditioned
// sampling, color processing, constraint projection, back-transform.
// Each call atomically advances an internal counter so successive
// calls draw distinct batches; for replayable output use
// GenerateSeeded instead.
func (s *Synthesizer) Generate(class string, n int) (*GenerateResult, error) {
	ci, err := s.lookupClass(class)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: n must be positive")
	}
	calls := atomic.AddUint64(&s.genCalls, 1)
	cfg := s.configSnapshot()
	scfg := diffusion.SampleConfig{N: n, Seed: cfg.Seed ^ (calls * 0x9e3779b97f4a7c15)}

	// Timestamp gaps come from per-flow RNG streams split off
	// sequentially before any worker starts (same discipline as
	// rf.Train); flows in one batch start one second apart.
	tsRoot := stats.NewRNG(cfg.Seed ^ calls ^ 0x7ad3c1)
	tsRNGs := make([]*stats.RNG, n)
	starts := make([]time.Time, n)
	for i := range tsRNGs {
		tsRNGs[i] = tsRoot.Split()
		starts[i] = genEpoch.Add(time.Duration(i) * time.Second)
	}
	return s.generate(ci, class, cfg, scfg, tsRNGs, starts)
}

// DeriveFlowSeeds expands a request-level root seed into n per-flow
// seeds. Flow i's seed depends only on (root, i), so equal root seeds
// map to identical per-flow seeds on every replica.
func DeriveFlowSeeds(root uint64, n int) []uint64 {
	r := stats.NewRNG(root)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = r.Uint64()
	}
	return seeds
}

// GenerateSeeded synthesizes n flows of the given class from an
// explicit root seed. Unlike Generate it does not advance internal
// state: the output is a pure function of (checkpoint, class, n, seed),
// so the same request replays bit-identically on any replica serving
// the same checkpoint.
func (s *Synthesizer) GenerateSeeded(class string, n int, seed uint64) (*GenerateResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: n must be positive")
	}
	return s.GenerateWithFlowSeeds(class, DeriveFlowSeeds(seed, n))
}

// GenerateWithFlowSeeds synthesizes one flow per seed. Each flow is a
// pure function of its own seed — independent of how flows are batched
// — which lets a serving layer coalesce concurrent same-class requests
// into a single diffusion sampling call and still answer every seeded
// request with bit-identical bytes (see internal/serve).
func (s *Synthesizer) GenerateWithFlowSeeds(class string, flowSeeds []uint64) (*GenerateResult, error) {
	ci, err := s.lookupClass(class)
	if err != nil {
		return nil, err
	}
	n := len(flowSeeds)
	if n == 0 {
		return nil, fmt.Errorf("core: need at least one flow seed")
	}
	cfg := s.configSnapshot()
	scfg := diffusion.SampleConfig{N: n, FlowSeeds: append([]uint64(nil), flowSeeds...)}
	tsRNGs := make([]*stats.RNG, n)
	starts := make([]time.Time, n)
	for i, fs := range flowSeeds {
		// The timestamp stream roots at a constant offset of the flow
		// seed: independent of the noise stream, yet still a pure
		// function of the flow seed. Every flow starts at the epoch so
		// its bytes do not depend on batch position.
		tsRNGs[i] = stats.NewRNG(fs ^ 0x7ad3c1)
		starts[i] = genEpoch
	}
	return s.generate(ci, class, cfg, scfg, tsRNGs, starts)
}

// generate runs sampling plus post-processing for one class batch.
// scfg carries N and the noise-seed layout; class/guidance/control are
// filled in here. tsRNGs and starts give each flow its timestamp
// stream and base time. diffusion.Sample runs its batched-timestep
// path — one denoiser forward per step over all n flows — so larger
// batches amortize per-step costs while each flow's bytes stay a pure
// function of its seed.
func (s *Synthesizer) generate(ci int, class string, cfg Config, scfg diffusion.SampleConfig, tsRNGs []*stats.RNG, starts []time.Time) (*GenerateResult, error) {
	scfg.Class = ci
	scfg.GuidanceScale = cfg.GuidanceScale
	scfg.DDIMSteps = cfg.DDIMSteps
	if cfg.UseControlNet {
		scfg.Control = s.controls[ci]
	}
	samples, err := diffusion.Sample(s.model(), s.sched, scfg)
	if err != nil {
		return nil, err
	}
	return s.postprocess(ci, class, cfg, samples.Data, tsRNGs, starts)
}

// postprocess turns n sampled model-resolution images (packed in
// samples, one h*w row per flow) into replayable flows: upscale,
// quantize, constraint projection, nprint back-transform, timestamp
// stamping. It is the half of generation shared by the batch path
// (generate) and the continuous-batching Engine, which receives its
// samples from an incremental step scheduler instead of one Sample
// call. Work is independent per flow: each worker owns one result
// slot, and the aggregation below runs sequentially in flow order, so
// the result is identical at any GOMAXPROCS.
func (s *Synthesizer) postprocess(ci int, class string, cfg Config, samples []float32, tsRNGs []*stats.RNG, starts []time.Time) (*GenerateResult, error) {
	n := len(tsRNGs)
	tpl := s.templates[ci]
	h, w := s.ModelShape()
	d := h * w

	type flowResult struct {
		m          *nprint.Matrix
		fl         *flow.Flow
		repaired   int
		skipped    int
		compliance float64
		cell       float64
		err        error
	}
	slots := make([]flowResult, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			slot := &slots[i]
			im := &imagerep.Image{H: h, W: w, Pix: samples[i*d : (i+1)*d]}
			up, err := imagerep.Upscale(im, cfg.DownH, cfg.DownW)
			if err != nil {
				slot.err = err
				return
			}
			imagerep.Quantize(up) // "color processing"
			m, err := imagerep.ToMatrix(up)
			if err != nil {
				slot.err = err
				return
			}
			slot.compliance = tpl.ProtocolCompliance(m)
			slot.cell = tpl.Compliance(m)
			slot.repaired = tpl.Project(m)
			if cfg.ConstantSnap {
				slot.repaired += tpl.ProjectConstants(m)
			}
			start := starts[i]
			pkts, skipped, err := nprint.ToPackets(m, nprint.DecodeOptions{
				Repair:   true,
				Start:    start,
				Interval: 2 * time.Millisecond,
			})
			if err != nil {
				slot.err = fmt.Errorf("core: back-transform: %w", err)
				return
			}
			s.stampTimestamps(pkts, ci, start, tsRNGs[i])
			slot.skipped = skipped
			slot.m = m
			slot.fl = &flow.Flow{Label: class, Packets: pkts}
		}(i)
	}
	wg.Wait()

	res := &GenerateResult{}
	var complianceSum, cellSum float64
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		complianceSum += slots[i].compliance
		cellSum += slots[i].cell
		res.Repaired += slots[i].repaired
		res.SkippedRows += slots[i].skipped
		res.Matrices = append(res.Matrices, slots[i].m)
		res.Flows = append(res.Flows, slots[i].fl)
	}
	res.RawCompliance = complianceSum / float64(n)
	res.RawCellCompliance = cellSum / float64(n)
	return res, nil
}

// GenerateBalanced draws perClass flows for every class — the paper's
// recipe for a balanced synthetic dataset ("invoke the generation
// process an equal number of times for each").
func (s *Synthesizer) GenerateBalanced(perClass int) ([]*flow.Flow, error) {
	counts := map[string]int{}
	for _, c := range s.classes {
		counts[c] = perClass
	}
	return s.GenerateWithDistribution(counts)
}

// GenerateWithDistribution draws the requested number of flows per
// class ("adjust the frequency of invocation for each class to yield
// any desired distribution").
func (s *Synthesizer) GenerateWithDistribution(counts map[string]int) ([]*flow.Flow, error) {
	var out []*flow.Flow
	for _, c := range s.classes {
		n := counts[c]
		if n <= 0 {
			continue
		}
		res, err := s.Generate(c, n)
		if err != nil {
			return nil, fmt.Errorf("core: generating %q: %w", c, err)
		}
		out = append(out, res.Flows...)
	}
	return out, nil
}

// Template exposes a class's protocol template (Figure 2 diagnostics).
func (s *Synthesizer) Template(class string) (*controlnet.Template, error) {
	ci, ok := s.index[class]
	if !ok {
		return nil, fmt.Errorf("core: unknown class %q", class)
	}
	tpl, ok := s.templates[ci]
	if !ok {
		return nil, fmt.Errorf("core: class %q not fine-tuned yet", class)
	}
	return tpl, nil
}

// SetDDIMSteps adjusts the sampler's step budget after construction
// (0 restores full DDPM ancestral sampling). Training is unaffected.
// Safe to call while other goroutines generate: in-flight calls keep
// the snapshot they started with; later calls observe the new value.
func (s *Synthesizer) SetDDIMSteps(steps int) {
	s.mu.Lock()
	s.ddimSteps = steps
	s.mu.Unlock()
}

// DDIMSteps reports the sampler's live step budget (0 = full DDPM
// ancestral sampling). Serving layers export it so a router can key
// response caches on the exact sampling configuration a replica runs.
func (s *Synthesizer) DDIMSteps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ddimSteps
}

// SetPrecision switches inference weight precision ("int8", or
// "fp32"/"off" for the default). Quantization converts the serving
// model's GEMM-heavy layers to per-output-channel int8 once, in
// place; the fp32 weights are retained, so "fp32" reverts. It is a
// load-time operation: call before any generation starts (traced does,
// right after Load), never after FineTune has begun, and never
// concurrently with sampling.
func (s *Synthesizer) SetPrecision(precision string) error {
	p, err := diffusion.ParsePrecision(precision)
	if err != nil {
		return err
	}
	if p == diffusion.PrecisionFP32 {
		s.mu.Lock()
		s.precision = ""
		s.mu.Unlock()
		s.clearQuantized()
		return nil
	}
	q, ok := s.model().(diffusion.Quantizable)
	if !ok {
		return fmt.Errorf("core: %T does not support int8 inference", s.model())
	}
	q.Quantize()
	s.mu.Lock()
	s.precision = p.String()
	s.mu.Unlock()
	return nil
}

// clearQuantized drops any int8 codes so layer Apply returns to the
// byte-identical fp32 path (the fp32 weights were never touched).
func (s *Synthesizer) clearQuantized() {
	if s.base != nil {
		s.base.Unquantize()
	}
	if s.unet != nil {
		s.unet.Unquantize()
	}
}

// Precision reports the inference weight precision generation runs at
// ("fp32" unless SetPrecision installed another). Serving layers
// advertise it so the cluster tier can key caches and consensus on it
// — int8 and fp32 bytes for the same checkpoint digest must never mix.
func (s *Synthesizer) Precision() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.precision == "" {
		return diffusion.PrecisionFP32.String()
	}
	return s.precision
}

// stampTimestamps rewrites the packets' timestamps with gaps sampled
// from the class's fitted inter-arrival distribution. r is the flow's
// private stream, so flows in one call draw distinct gap sequences.
func (s *Synthesizer) stampTimestamps(pkts []*packet.Packet, ci int, start time.Time, r *stats.RNG) {
	dist := s.gapDists[ci]
	if dist == nil || len(pkts) == 0 {
		return
	}
	ts := start
	for _, p := range pkts {
		p.Timestamp = ts
		gap := dist.Sample(r)
		if gap < 0.01 {
			gap = 0.01
		}
		ts = ts.Add(time.Duration(gap * float64(time.Millisecond)))
	}
}
