package core

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/pcap"
	"trafficdiff/internal/workload"
)

// sharedSynth trains one small two-class synthesizer for the whole
// test binary; the seeded generation APIs are stateless, so tests can
// share it freely.
var (
	sharedOnce  sync.Once
	sharedS     *Synthesizer
	sharedErr   error
	sharedClass = []string{"amazon", "teams"}
)

func sharedSynth(t *testing.T) *Synthesizer {
	t.Helper()
	sharedOnce.Do(func() {
		s, err := New(fastConfig(), sharedClass)
		if err != nil {
			sharedErr = err
			return
		}
		ds, err := flowsForShared()
		if err != nil {
			sharedErr = err
			return
		}
		if _, err := s.FineTune(ds); err != nil {
			sharedErr = err
			return
		}
		sharedS = s
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedS
}

func flowsForShared() (map[string][]*flow.Flow, error) {
	ds, err := workload.Generate(workload.Config{
		Seed: 11, FlowsPerClass: 4, Only: sharedClass, MaxPacketsPerFlow: 16,
	})
	if err != nil {
		return nil, err
	}
	out := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		out[f.Label] = append(out[f.Label], f)
	}
	return out, nil
}

// pcapBytes serializes flows exactly the way the serving layer does, so
// byte-equality here is the same property the network contract promises.
func pcapBytes(t *testing.T, flows []*flow.Flow) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	for _, fl := range flows {
		for _, p := range fl.Packets {
			if err := w.WritePacket(p.Timestamp, p.Data); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

// TestConcurrentGenerateAcrossClasses exercises the server usage
// pattern under the race detector: many goroutines generating across
// classes while SetDDIMSteps runs concurrently. (The value written is
// the one already configured, so outputs stay deterministic; the test
// is about synchronization, not variety.)
func TestConcurrentGenerateAcrossClasses(t *testing.T) {
	s := sharedSynth(t)
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			class := sharedClass[w%len(sharedClass)]
			if w%3 == 0 {
				s.SetDDIMSteps(fastConfig().DDIMSteps)
			}
			var err error
			if w%2 == 0 {
				_, err = s.GenerateSeeded(class, 1, uint64(1000+w))
			} else {
				_, err = s.Generate(class, 1)
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestGenerateSeededDeterministic is the replay contract: the same
// (class, n, seed) triple produces bit-identical pcap bytes, while a
// different seed produces different ones.
func TestGenerateSeededDeterministic(t *testing.T) {
	s := sharedSynth(t)
	a, err := s.GenerateSeeded("amazon", 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.GenerateSeeded("amazon", 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pcapBytes(t, a.Flows), pcapBytes(t, b.Flows)) {
		t.Fatal("same seed produced different pcap bytes")
	}
	c, err := s.GenerateSeeded("amazon", 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pcapBytes(t, a.Flows), pcapBytes(t, c.Flows)) {
		t.Fatal("different seeds produced identical pcap bytes")
	}
}

// TestFlowSeedBatchIndependence is the coalescing-safety property: a
// flow's bytes depend only on its own seed, not on which other flows
// share the sampling batch. The serve coalescer relies on this to
// merge concurrent requests into one diffusion.Sample call.
func TestFlowSeedBatchIndependence(t *testing.T) {
	s := sharedSynth(t)
	seeds := DeriveFlowSeeds(7, 3)
	batch, err := s.GenerateWithFlowSeeds("teams", seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i, fs := range seeds {
		solo, err := s.GenerateWithFlowSeeds("teams", []uint64{fs})
		if err != nil {
			t.Fatal(err)
		}
		got := pcapBytes(t, solo.Flows)
		want := pcapBytes(t, batch.Flows[i:i+1])
		if !bytes.Equal(got, want) {
			t.Fatalf("flow %d differs between batch and solo generation", i)
		}
	}
}

// TestSaveLoadSeededByteIdentical is the checkpoint property test: a
// synthesizer restored with Load(Save(s)) must replay a seeded request
// bit-identically to the original — the guarantee that lets any
// replica serving the same checkpoint answer the same request with the
// same bytes.
func TestSaveLoadSeededByteIdentical(t *testing.T) {
	s := sharedSynth(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range sharedClass {
		for seed := uint64(1); seed <= 3; seed++ {
			orig, err := s.GenerateSeeded(class, 2, seed)
			if err != nil {
				t.Fatal(err)
			}
			re, err := loaded.GenerateSeeded(class, 2, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pcapBytes(t, orig.Flows), pcapBytes(t, re.Flows)) {
				t.Fatalf("class %s seed %d: loaded synthesizer diverged from original", class, seed)
			}
		}
	}
}

// chunkReader hides ReadByte and returns at most chunk bytes per call
// — the shape of a file, pipe, or socket delivering short reads. It
// forces gob.NewDecoder to add its own buffering, whose refills then
// land at arbitrary offsets relative to the snapshot/params stream
// boundary inside the checkpoint.
type chunkReader struct {
	r     io.Reader
	chunk int
}

func (c chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.chunk {
		p = p[:c.chunk]
	}
	return c.r.Read(p)
}

// TestLoadFromPlainReader guards against gob read-ahead eating the
// params stream: the checkpoint holds two consecutive gob streams, and
// a decoder wrapping a non-ByteReader source buffers past the first
// stream's end. Loading must work from a plain io.Reader (and hence
// from the os.File traced and tracegen -load-model pass in), not just
// from in-memory buffers.
func TestLoadFromPlainReader(t *testing.T) {
	s := sharedSynth(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A spread of co-prime chunk sizes so at least one lands a refill
	// across the stream boundary on any checkpoint layout.
	for _, chunk := range []int{997, 1000, 4096, 5003} {
		loaded, err := Load(chunkReader{bytes.NewReader(buf.Bytes()), chunk})
		if err != nil {
			t.Fatalf("load from %d-byte-chunk reader: %v", chunk, err)
		}
		if got, want := loaded.Classes(), s.Classes(); len(got) != len(want) {
			t.Fatalf("chunk %d: loaded %d classes, want %d", chunk, len(got), len(want))
		}
	}
	loaded, err := Load(chunkReader{bytes.NewReader(buf.Bytes()), 997})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fromFile, err := Load(f)
	if err != nil {
		t.Fatalf("load from os.File: %v", err)
	}

	class := sharedClass[0]
	want, err := s.GenerateSeeded(class, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, ld := range map[string]*Synthesizer{"reader": loaded, "file": fromFile} {
		got, err := ld.GenerateSeeded(class, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pcapBytes(t, want.Flows), pcapBytes(t, got.Flows)) {
			t.Fatalf("synthesizer loaded via %s diverged from original", name)
		}
	}
}
