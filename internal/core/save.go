package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"trafficdiff/internal/controlnet"
	"trafficdiff/internal/heuristic"
	"trafficdiff/internal/lora"
	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// snapshot is the serialized synthesizer state.
type snapshot struct {
	Version   int
	Config    Config
	Classes   []string
	Templates map[int]*controlnet.Template
	Controls  map[int]*tensor.Tensor
	GapValues map[int][]float64
	HasLoRA   bool
}

// Save serializes a fine-tuned synthesizer (config, class vocabulary,
// templates, control images and all model parameters) so generation
// can resume in a fresh process without retraining.
func (s *Synthesizer) Save(w io.Writer) error {
	if !s.Trained() {
		return fmt.Errorf("core: cannot save an untrained synthesizer")
	}
	snap := snapshot{
		// configSnapshot, not s.cfg: the saved config must carry the live
		// DDIM budget if SetDDIMSteps changed it since construction.
		Version: 1, Config: s.configSnapshot(), Classes: s.classes,
		Templates: s.templates, Controls: s.controls,
		GapValues: map[int][]float64{},
		HasLoRA:   s.adapted != nil,
	}
	for ci, d := range s.gapDists {
		snap.GapValues[ci] = d.Values()
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return nn.SaveParams(w, s.allParams())
}

// Load reconstructs a synthesizer saved with Save.
func Load(r io.Reader) (*Synthesizer, error) {
	// The stream holds two consecutive gob streams (snapshot, then
	// params). gob.NewDecoder wraps readers that lack ReadByte in its
	// own bufio.Reader, whose read-ahead would swallow the start of the
	// second stream — loading from an *os.File then fails or not
	// depending on where the refills land relative to the boundary.
	// One shared ByteReader keeps every byte visible to both decoders.
	br := bufio.NewReader(r)
	var snap snapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", snap.Version)
	}
	s, err := New(snap.Config, snap.Classes)
	if err != nil {
		return nil, err
	}
	s.templates = snap.Templates
	s.controls = snap.Controls
	for ci, vals := range snap.GapValues {
		if len(vals) > 0 {
			s.gapDists[ci] = heuristic.NewEmpirical(vals)
		}
	}
	if snap.HasLoRA {
		// Rebuild the adapter skeleton; weights come from the checkpoint.
		rr := stats.NewRNG(snap.Config.Seed + 2)
		s.adapted = lora.NewAdaptedMLP(rr, s.base, snap.Config.LoRARank, snap.Config.LoRAAlpha, len(snap.Classes))
	}
	if err := nn.LoadParams(br, s.allParams()); err != nil {
		return nil, err
	}
	return s, nil
}

// allParams returns every parameter the snapshot covers, in a stable
// order.
func (s *Synthesizer) allParams() []*nn.V {
	var ps []*nn.V
	switch {
	case s.unet != nil:
		ps = append(ps, s.unet.Params()...)
	default:
		ps = append(ps, s.base.Params()...)
	}
	if s.adapted != nil {
		ps = append(ps, s.adapted.Params()...)
	}
	return ps
}
