package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// resumeConfig is fastConfig shrunk further: resume tests retrain the
// pipeline once per stashed checkpoint.
func resumeConfig() Config {
	cfg := fastConfig()
	cfg.Hidden = 32
	cfg.BaseSteps = 6
	cfg.FineTuneSteps = 9
	cfg.Batch = 4
	cfg.EMADecay = 0.98
	return cfg
}

// flatParams flattens every model parameter for bitwise comparison.
func flatParams(s *Synthesizer) []float32 {
	var flat []float32
	for _, p := range s.allParams() {
		flat = append(flat, p.X.Data...)
	}
	return flat
}

// TestFineTuneResumeEquivalence simulates a crash at every checkpoint
// boundary of a two-phase (base + LoRA, EMA on) fine-tune: the full
// run writes periodic checkpoints, each distinct on-disk state the run
// passed through is stashed, and a fresh synthesizer resumed from each
// stash must converge to the same final checkpoint file byte-for-byte
// and the same model weights bit-for-bit.
func TestFineTuneResumeEquivalence(t *testing.T) {
	classes := []string{"amazon", "teams"}
	flows := trainingFlows(t, classes, 3)
	cfg := resumeConfig()
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.ckpt")

	// Full uninterrupted run. The progress hook snapshots the
	// checkpoint file at every step boundary: each distinct content is
	// exactly the state a killed run would have found on disk.
	full, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	var stashes [][]byte
	seen := map[string]bool{}
	capture := func(TrainProgress) {
		data, err := os.ReadFile(fullPath)
		if err != nil || seen[string(data)] {
			return
		}
		seen[string(data)] = true
		stashes = append(stashes, data)
	}
	fullReport, err := full.FineTuneWithOptions(flows, FineTuneOptions{
		CheckpointPath: fullPath, CheckpointEvery: 2, Progress: capture,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantFinal, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	capture(TrainProgress{}) // stash the final checkpoint too
	wantParams := flatParams(full)
	if len(stashes) < 4 {
		t.Fatalf("expected several checkpoint states, got %d", len(stashes))
	}

	for i, stash := range stashes {
		resumeFile := filepath.Join(dir, "stash.ckpt")
		if err := os.WriteFile(resumeFile, stash, 0o644); err != nil {
			t.Fatal(err)
		}
		resumedPath := filepath.Join(dir, "resumed.ckpt")
		s, err := New(cfg, classes)
		if err != nil {
			t.Fatal(err)
		}
		report, err := s.FineTuneWithOptions(flows, FineTuneOptions{
			CheckpointPath: resumedPath, CheckpointEvery: 2, ResumeFrom: resumeFile,
		})
		if err != nil {
			t.Fatalf("resume from stash %d: %v", i, err)
		}
		gotFinal, err := os.ReadFile(resumedPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotFinal) != string(wantFinal) {
			t.Fatalf("stash %d: final checkpoint differs from uninterrupted run", i)
		}
		gotParams := flatParams(s)
		if len(gotParams) != len(wantParams) {
			t.Fatalf("stash %d: param count %d, want %d", i, len(gotParams), len(wantParams))
		}
		for j := range wantParams {
			if math.Float32bits(gotParams[j]) != math.Float32bits(wantParams[j]) {
				t.Fatalf("stash %d: param elem %d differs after resume", i, j)
			}
		}
		// The training history is reconstructed in full: the base curve
		// rides along in fine-tune-phase checkpoints.
		if len(report.BaseLosses)+len(report.FineTuneLosses) != len(fullReport.BaseLosses)+len(fullReport.FineTuneLosses) {
			t.Fatalf("stash %d: loss history %d+%d, want %d+%d", i,
				len(report.BaseLosses), len(report.FineTuneLosses),
				len(fullReport.BaseLosses), len(fullReport.FineTuneLosses))
		}
	}
}

// TestFineTuneResumeSinglePhase covers the UseLoRA=false path, where
// the whole run is one conditional training phase.
func TestFineTuneResumeSinglePhase(t *testing.T) {
	classes := []string{"amazon"}
	flows := trainingFlows(t, classes, 3)
	cfg := resumeConfig()
	cfg.UseLoRA = false
	cfg.BaseSteps = 4
	cfg.FineTuneSteps = 4
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.ckpt")

	full, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	var stash []byte
	capture := func(p TrainProgress) {
		if p.Step == 3 { // after the step-3 hook the file holds the step-2 checkpoint
			if data, err := os.ReadFile(fullPath); err == nil {
				stash = data
			}
		}
	}
	if _, err := full.FineTuneWithOptions(flows, FineTuneOptions{
		CheckpointPath: fullPath, CheckpointEvery: 2, Progress: capture,
	}); err != nil {
		t.Fatal(err)
	}
	if stash == nil {
		t.Fatal("no mid-run checkpoint captured")
	}
	wantFinal, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	wantParams := flatParams(full)

	resumeFile := filepath.Join(dir, "stash.ckpt")
	if err := os.WriteFile(resumeFile, stash, 0o644); err != nil {
		t.Fatal(err)
	}
	resumedPath := filepath.Join(dir, "resumed.ckpt")
	s, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FineTuneWithOptions(flows, FineTuneOptions{
		CheckpointPath: resumedPath, CheckpointEvery: 2, ResumeFrom: resumeFile,
	}); err != nil {
		t.Fatal(err)
	}
	gotFinal, err := os.ReadFile(resumedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotFinal) != string(wantFinal) {
		t.Fatal("single-phase resume: final checkpoint differs")
	}
	got := flatParams(s)
	for j := range wantParams {
		if math.Float32bits(got[j]) != math.Float32bits(wantParams[j]) {
			t.Fatalf("single-phase resume: param elem %d differs", j)
		}
	}
}

// TestResumeRejectsMismatch checks the refuse-to-resume guards:
// resuming under a different config or class vocabulary must error
// rather than silently train a different model.
func TestResumeRejectsMismatch(t *testing.T) {
	classes := []string{"amazon", "teams"}
	flows := trainingFlows(t, classes, 2)
	cfg := resumeConfig()
	cfg.BaseSteps = 2
	cfg.FineTuneSteps = 2
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "train.ckpt")

	s, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FineTuneWithOptions(flows, FineTuneOptions{
		CheckpointPath: ckpt, CheckpointEvery: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// Different config.
	other := cfg
	other.LR = cfg.LR * 2
	s2, err := New(other, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.FineTuneWithOptions(flows, FineTuneOptions{ResumeFrom: ckpt}); err == nil {
		t.Error("resume under a different config should fail")
	}

	// Different class vocabulary. The checkpoint's config is identical,
	// so only the class list trips the guard.
	s3, err := New(cfg, []string{"amazon", "meet"})
	if err != nil {
		t.Fatal(err)
	}
	flows3 := trainingFlows(t, []string{"amazon", "meet"}, 2)
	if _, err := s3.FineTuneWithOptions(flows3, FineTuneOptions{ResumeFrom: ckpt}); err == nil {
		t.Error("resume under different classes should fail")
	}

	// Garbage file.
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	s4, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s4.FineTuneWithOptions(flows, FineTuneOptions{ResumeFrom: bad}); err == nil {
		t.Error("resume from garbage should fail")
	}

	// Missing file.
	s5, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s5.FineTuneWithOptions(flows, FineTuneOptions{ResumeFrom: filepath.Join(dir, "absent.ckpt")}); err == nil {
		t.Error("resume from a missing file should fail")
	}
}

// TestCheckpointedTrainingMatchesPlain confirms that turning
// checkpointing on does not change the training trajectory: a run
// with CheckpointPath set produces bit-identical weights to a plain
// FineTune.
func TestCheckpointedTrainingMatchesPlain(t *testing.T) {
	classes := []string{"amazon"}
	flows := trainingFlows(t, classes, 2)
	cfg := resumeConfig()
	cfg.BaseSteps = 3
	cfg.FineTuneSteps = 3

	plain, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.FineTune(flows); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckpt, err := New(cfg, classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.FineTuneWithOptions(flows, FineTuneOptions{
		CheckpointPath: filepath.Join(dir, "train.ckpt"), CheckpointEvery: 1,
	}); err != nil {
		t.Fatal(err)
	}

	a, b := flatParams(plain), flatParams(ckpt)
	if len(a) != len(b) {
		t.Fatal("param layouts differ")
	}
	for j := range a {
		if math.Float32bits(a[j]) != math.Float32bits(b[j]) {
			t.Fatalf("param elem %d differs when checkpointing is on", j)
		}
	}
}
