package core

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

// TestEngineMatchesDirectGenerate is the engine's bit-identity
// contract: concurrent staggered Generate calls through the shared
// continuous batch return byte-for-byte what GenerateWithFlowSeeds
// returns for the same seeds, regardless of which requests shared
// denoiser forwards.
func TestEngineMatchesDirectGenerate(t *testing.T) {
	s := sharedSynth(t)
	eng, err := NewEngine(s, EngineConfig{MaxInFlight: 8, PostWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	type req struct {
		class string
		seeds []uint64
	}
	reqs := make([]req, 9)
	for i := range reqs {
		class := sharedClass[i%len(sharedClass)]
		seeds := DeriveFlowSeeds(uint64(7000+i), 1+i%3)
		reqs[i] = req{class, seeds}
	}

	got := make([][]byte, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r req) {
			defer wg.Done()
			// Stagger arrivals so later requests join a batch that is
			// already mid-denoise.
			time.Sleep(time.Duration(i) * 3 * time.Millisecond)
			res, err := eng.Generate(context.Background(), r.class, r.seeds, nil)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = pcapBytes(t, res.Flows)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i, r := range reqs {
		want, err := s.GenerateWithFlowSeeds(r.class, r.seeds)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[i], pcapBytes(t, want.Flows)) {
			t.Errorf("request %d (%s, %d flows): engine bytes differ from direct GenerateWithFlowSeeds",
				i, r.class, len(r.seeds))
		}
	}
	st := eng.Stats()
	if st.FlowsAdmitted == 0 || st.FlowsCompleted != st.FlowsAdmitted {
		t.Errorf("stats admitted/completed = %d/%d, want equal and positive",
			st.FlowsAdmitted, st.FlowsCompleted)
	}
}

// TestEngineExpiryRetiresFlows is the wasted-work contract at the
// engine level: a request whose context is cancelled after admission
// gets the context error back, and its flows stop consuming denoiser
// forwards at the next step boundary instead of running the rest of
// their step plans as dead work.
func TestEngineExpiryRetiresFlows(t *testing.T) {
	s := sharedSynth(t)
	eng, err := NewEngine(s, EngineConfig{MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		// Cancelling from onAdmit runs in the step loop itself, so the
		// request is deterministically expired at the first boundary
		// after admission — no race against the generation finishing.
		_, err := eng.Generate(ctx, sharedClass[0], DeriveFlowSeeds(1234, 8), cancel)
		done <- err
	}()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled request returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request not answered at the next step boundary")
	}
	st := eng.Stats()
	if st.RequestsExpired != 1 {
		t.Errorf("RequestsExpired = %d, want 1", st.RequestsExpired)
	}
	if st.FlowsRetired+st.FlowsCompleted != 8 {
		t.Errorf("retired+completed = %d+%d, want 8", st.FlowsRetired, st.FlowsCompleted)
	}
	if st.FlowsRetired == 0 {
		t.Error("no flows retired: cancelled request ran to completion as dead work")
	}
	// The full run would cost 8 flows × the DDIM budget; retirement at
	// the cancel boundary must have saved most of it.
	full := uint64(8 * fastConfig().DDIMSteps)
	if st.FlowSteps >= full {
		t.Errorf("FlowSteps = %d, want < %d (retired flows kept consuming forwards)", st.FlowSteps, full)
	}
}

// TestEngineCloseDrains submits a burst, closes, and checks every
// request was answered and new submissions are refused.
func TestEngineCloseDrains(t *testing.T) {
	s := sharedSynth(t)
	eng, err := NewEngine(s, EngineConfig{MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	errs := make(chan error, n)
	admits := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := eng.Generate(context.Background(), sharedClass[i%2],
				DeriveFlowSeeds(uint64(i), 2), func() { admits <- struct{}{} })
			errs <- err
		}(i)
	}
	// Close once the whole burst is admitted and mid-denoise: drain
	// must answer all of it.
	for i := 0; i < n; i++ {
		<-admits
	}
	eng.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("request during drain: %v", err)
		}
	}
	if _, err := eng.Generate(context.Background(), sharedClass[0], []uint64{1}, nil); err == nil {
		t.Error("Generate after Close succeeded, want error")
	}
}

// TestEngineValidation covers the Generate error surface.
func TestEngineValidation(t *testing.T) {
	s := sharedSynth(t)
	eng, err := NewEngine(s, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Generate(context.Background(), "nope", []uint64{1}, nil); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := eng.Generate(context.Background(), sharedClass[0], nil, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	untrained, err := New(fastConfig(), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(untrained, EngineConfig{}); err == nil {
		t.Error("engine over an untrained synthesizer accepted")
	}
}

// TestEngineOversizedRequest checks FIFO-stop admission: a request
// larger than MaxInFlight still runs (alone) instead of deadlocking.
func TestEngineOversizedRequest(t *testing.T) {
	s := sharedSynth(t)
	eng, err := NewEngine(s, EngineConfig{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	seeds := DeriveFlowSeeds(99, 5)
	res, err := eng.Generate(context.Background(), sharedClass[0], seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 5 {
		t.Fatalf("got %d flows, want 5", len(res.Flows))
	}
	want, err := s.GenerateWithFlowSeeds(sharedClass[0], seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pcapBytes(t, res.Flows), pcapBytes(t, want.Flows)) {
		t.Error("oversized request bytes differ from direct generation")
	}
}

// TestEngineExpiredBeforeAdmission checks a request that dies in the
// pending queue is answered with its context error and never admitted.
func TestEngineExpiredBeforeAdmission(t *testing.T) {
	s := sharedSynth(t)
	eng, err := NewEngine(s, EngineConfig{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Occupy the whole cap with a long request, then enqueue a doomed
	// one behind it with an already-cancelled context.
	admitted := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		_, err := eng.Generate(context.Background(), sharedClass[0], DeriveFlowSeeds(1, 2), func() { close(admitted) })
		first <- err
	}()
	<-admitted
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Generate(ctx, sharedClass[0], DeriveFlowSeeds(2, 1), nil); err != context.Canceled {
		t.Fatalf("pre-admission expired request returned %v, want context.Canceled", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("long request: %v", err)
	}
	st := eng.Stats()
	if st.FlowsAdmitted != 2 {
		t.Errorf("FlowsAdmitted = %d, want 2 (expired request must not be admitted)", st.FlowsAdmitted)
	}
	if st.RequestsExpired != 1 {
		t.Errorf("RequestsExpired = %d, want 1", st.RequestsExpired)
	}
}

// TestEngineMixedClassesShareBatch verifies the engine admits requests
// for different classes into one in-flight batch (per-row class
// conditioning makes same-class coalescing unnecessary) and each still
// matches its direct generation.
func TestEngineMixedClassesShareBatch(t *testing.T) {
	s := sharedSynth(t)
	eng, err := NewEngine(s, EngineConfig{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var wg sync.WaitGroup
	results := make([][]byte, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := sharedClass[i%2]
			res, err := eng.Generate(context.Background(), class, DeriveFlowSeeds(uint64(500+i), 2), nil)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = pcapBytes(t, res.Flows)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want, err := s.GenerateWithFlowSeeds(sharedClass[i%2], DeriveFlowSeeds(uint64(500+i), 2))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(results[i], pcapBytes(t, want.Flows)) {
			t.Errorf("request %d (%s): bytes differ from direct generation", i, sharedClass[i%2])
		}
	}
	st := eng.Stats()
	if st.Steps == 0 {
		t.Fatal("no steps recorded")
	}
	if occ := float64(st.FlowSteps) / float64(st.Steps); occ <= 1 {
		t.Logf("mean occupancy %.2f (timing-dependent; >1 means batching happened)", occ)
	}
}
