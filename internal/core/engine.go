package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trafficdiff/internal/diffusion"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// EngineConfig parameterizes a continuous-batching Engine. Zero values
// take the defaults noted on each field.
type EngineConfig struct {
	// MaxInFlight caps the flows simultaneously in the denoising batch
	// (default 16). Requests are admitted from the head of a FIFO while
	// they fit under the cap; a request larger than the whole cap still
	// runs, alone in an otherwise empty engine, so no request can
	// starve.
	MaxInFlight int
	// PostWorkers is the number of goroutines running per-request
	// post-processing (upscale, quantize, projection, back-transform)
	// off the step loop (default 2).
	PostWorkers int
	// MaxStepRows caps the rows advanced per denoiser forward (0 = all
	// in-flight rows every step). When set, each boundary steps the
	// flows whose requests have the least remaining work first
	// (shortest remaining processing time), so a small fresh request
	// reaches its first result through cheap forwards instead of
	// paying for every bulk row in flight; bulk requests drain
	// oldest-first through the remaining capacity. Output bytes are
	// unaffected.
	MaxStepRows int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.PostWorkers <= 0 {
		c.PostWorkers = 2
	}
	return c
}

// EngineStats is a point-in-time snapshot of the engine's work
// counters. FlowSteps/Steps is the mean denoising-batch occupancy.
type EngineStats struct {
	// Steps counts batched denoiser step evaluations; FlowSteps counts
	// flow-rows summed over those steps.
	Steps, FlowSteps uint64
	// FlowsAdmitted/FlowsCompleted/FlowsRetired count flows entering,
	// finishing, and being dropped mid-generation (expired requests).
	FlowsAdmitted, FlowsCompleted, FlowsRetired uint64
	// RequestsExpired counts requests that hit their context deadline,
	// whether before or after admission.
	RequestsExpired uint64
}

// engineResult is what a job's waiter receives.
type engineResult struct {
	res *GenerateResult
	err error
}

// engineJob is one Generate call travelling through the engine.
type engineJob struct {
	ctx     context.Context
	ci      int
	class   string
	cfg     Config // config snapshot taken at submission
	seeds   []uint64
	onAdmit func()

	// samples receives each flow's finished image, packed h*w per flow;
	// the scheduler's per-flow Out buffers alias into it.
	samples   []float32
	ids       []diffusion.FlowID
	remaining int // flows not yet completed (loop-goroutine state)

	// done is buffered so the loop never blocks on a waiter that
	// already gave up.
	done chan engineResult
}

// Engine is the continuous-batching generation engine: a single step
// loop owns a diffusion.Scheduler and feeds it flows from concurrent
// Generate calls, so new requests join the in-flight denoising batch
// at the next timestep boundary instead of waiting for a closed batch
// to finish, and requests whose context expires retire their flows at
// the next boundary instead of running to completion as dead work.
//
// Every flow's bytes stay a pure function of its seed (the scheduler's
// bit-identity contract), so Generate returns exactly what
// Synthesizer.GenerateWithFlowSeeds would for the same seeds, no
// matter which other requests shared its forwards.
//
// Expiry uses only ctx.Err() — the engine itself never reads a clock,
// keeping core free of wall-clock dependences (the walltime lint
// invariant); deadlines are the caller's policy.
type Engine struct {
	synth *Synthesizer
	cfg   EngineConfig

	mu      sync.Mutex
	cond    *sync.Cond   // signals the loop that work arrived or Close was called
	pending []*engineJob // FIFO of submitted, not yet admitted jobs; guarded by mu
	closed  bool         // guarded by mu

	postQ     *postQueue
	loopWG    sync.WaitGroup
	postWG    sync.WaitGroup
	closeOnce sync.Once

	steps, flowSteps    atomic.Uint64
	admitted, completed atomic.Uint64
	retired, reqExpired atomic.Uint64
}

// NewEngine starts an engine over a fine-tuned synthesizer. Callers
// must eventually Close it. The synthesizer's model must not be
// retrained while the engine runs.
func NewEngine(synth *Synthesizer, cfg EngineConfig) (*Engine, error) {
	if !synth.Trained() {
		return nil, fmt.Errorf("core: engine needs a fine-tuned synthesizer")
	}
	e := &Engine{
		synth: synth,
		cfg:   cfg.withDefaults(),
		postQ: newPostQueue(16),
	}
	e.cond = sync.NewCond(&e.mu)
	e.loopWG.Add(1)
	go e.loop()
	for i := 0; i < e.cfg.PostWorkers; i++ {
		e.postWG.Add(1)
		go e.postWorker()
	}
	return e, nil
}

// Classes returns the synthesizer's prompt vocabulary.
func (e *Engine) Classes() []string { return e.synth.Classes() }

// DDIMSteps reports the synthesizer's live DDIM budget; serving layers
// surface it for cache-key derivation.
func (e *Engine) DDIMSteps() int { return e.synth.DDIMSteps() }

// Stats returns a snapshot of the engine's work counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Steps:           e.steps.Load(),
		FlowSteps:       e.flowSteps.Load(),
		FlowsAdmitted:   e.admitted.Load(),
		FlowsCompleted:  e.completed.Load(),
		FlowsRetired:    e.retired.Load(),
		RequestsExpired: e.reqExpired.Load(),
	}
}

// Generate synthesizes one flow per seed, equivalent byte-for-byte to
// Synthesizer.GenerateWithFlowSeeds, but through the shared continuous
// denoising batch: the flows join at the next step boundary and other
// requests keep joining while these run. onAdmit, when non-nil, is
// called from the step loop at the moment the flows enter the batch
// (serving layers measure admission wait with it; it must be fast).
// If ctx expires first, in-flight flows are retired at the next
// boundary and the context error is returned.
func (e *Engine) Generate(ctx context.Context, class string, flowSeeds []uint64, onAdmit func()) (*GenerateResult, error) {
	ci, err := e.synth.lookupClass(class)
	if err != nil {
		return nil, err
	}
	if len(flowSeeds) == 0 {
		return nil, fmt.Errorf("core: need at least one flow seed")
	}
	h, w := e.synth.ModelShape()
	job := &engineJob{
		ctx:       ctx,
		ci:        ci,
		class:     class,
		cfg:       e.synth.configSnapshot(),
		seeds:     append([]uint64(nil), flowSeeds...),
		onAdmit:   onAdmit,
		samples:   make([]float32, len(flowSeeds)*h*w),
		remaining: len(flowSeeds),
		done:      make(chan engineResult, 1),
	}
	if err := e.enqueue(job); err != nil {
		return nil, err
	}
	out := <-job.done
	return out.res, out.err
}

// enqueue appends a job to the pending queue and wakes the step loop,
// refusing once the engine has closed.
func (e *Engine) enqueue(job *engineJob) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("core: engine is closed")
	}
	e.pending = append(e.pending, job)
	e.cond.Signal()
	return nil
}

// Close drains the engine: no new Generate calls are accepted, already
// submitted requests run to completion (or expiry), then the step loop
// and post workers exit. Safe to call more than once.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.cond.Signal()
		e.mu.Unlock()
	})
	e.loopWG.Wait()
	e.postWG.Wait()
}

// loop is the engine's only goroutine touching the scheduler: it
// admits pending jobs under the flow cap, retires expired ones, steps
// the batch, and hands completed jobs to the post workers.
func (e *Engine) loop() {
	defer e.loopWG.Done()
	defer e.postQ.close()
	eng := diffusion.NewScheduler(e.synth.model(), e.synth.sched, nil)
	eng.SetStepRows(e.cfg.MaxStepRows)
	byID := map[diffusion.FlowID]*engineJob{} // active flow → its job
	live := map[*engineJob]struct{}{}         // admitted, unfinished jobs
	inFlight := 0

	for {
		admit, ok := e.takePending(inFlight)
		if !ok {
			return
		}
		for _, job := range admit {
			inFlight += len(job.seeds)
			if !e.admitJob(eng, byID, job) {
				inFlight -= len(job.seeds)
				continue
			}
			live[job] = struct{}{}
			if job.onAdmit != nil {
				job.onAdmit()
			}
		}

		// Retire flows of requests that expired after admission: their
		// rows stop consuming forwards at this boundary.
		for job := range live {
			if job.ctx.Err() == nil {
				continue
			}
			for _, id := range job.ids {
				eng.Retire(id) // no-op for the job's already-completed flows
				delete(byID, id)
			}
			inFlight -= job.remaining
			delete(live, job)
			// Count retired flows at the decision, not after the next
			// Step drops the rows, so a waiter that observes its error
			// also observes the retirement in Stats.
			e.retired.Add(uint64(job.remaining))
			e.reqExpired.Add(1)
			job.done <- engineResult{err: job.ctx.Err()}
		}

		if eng.Active() == 0 {
			continue
		}
		for _, id := range eng.Step() {
			job := byID[id]
			delete(byID, id)
			job.remaining--
			inFlight--
			if job.remaining == 0 {
				delete(live, job)
				// May block when post-processing falls behind — natural
				// backpressure on the step loop. The queue hands workers
				// the smallest job first, so a probe's cheap post never
				// queues behind bulk work.
				e.postQ.push(job)
			}
		}
		st := eng.Stats()
		e.steps.Store(st.Steps)
		e.flowSteps.Store(st.FlowSteps)
		e.completed.Store(st.Completed)
		// Yield the processor at every boundary. The loop is otherwise
		// pure compute and would hold its P for a full scheduler slice
		// (~10ms) spanning many boundaries; on a saturated single-CPU
		// host that slice becomes the floor on request latency, because
		// handler goroutines parked on the network can only run between
		// our yields. One Gosched per boundary caps their wait at one
		// forward instead.
		runtime.Gosched()
	}
}

// takePending blocks until the engine has work — queued jobs or
// in-flight flows — then pops every admissible job off the queue head.
// FIFO-stop admission: admit from the head while the flow cap allows.
// The head is always admitted into an empty engine even when it alone
// exceeds MaxInFlight, so oversized requests run instead of
// deadlocking, and no request can be starved by later smaller ones
// jumping it. Heads that expired while queued are answered here and
// never cost a step. Returns ok=false when the engine is closed and
// fully drained.
func (e *Engine) takePending(inFlight int) (admit []*engineJob, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for !e.closed && len(e.pending) == 0 && inFlight == 0 {
		e.cond.Wait()
	}
	if e.closed && len(e.pending) == 0 && inFlight == 0 {
		return nil, false
	}
	for len(e.pending) > 0 {
		head := e.pending[0]
		if head.ctx.Err() != nil {
			e.popPendingLocked()
			e.reqExpired.Add(1)
			head.done <- engineResult{err: head.ctx.Err()}
			continue
		}
		if inFlight > 0 && inFlight+len(head.seeds) > e.cfg.MaxInFlight {
			break
		}
		e.popPendingLocked()
		admit = append(admit, head)
		inFlight += len(head.seeds)
	}
	return admit, true
}

// popPendingLocked removes the queue head. Caller holds mu.
//
//tracelint:holds mu
func (e *Engine) popPendingLocked() {
	e.pending[0] = nil
	e.pending = e.pending[1:]
}

// admitJob admits every flow of one job into the scheduler, with the
// same per-flow spec GenerateWithFlowSeeds produces: RNG rooted at the
// flow seed, the class's ControlNet conditioning when enabled, and the
// config snapshot's guidance and DDIM budget. Reports whether the job
// was admitted; on an admission error the job's flows are withdrawn
// and its waiter gets the error.
func (e *Engine) admitJob(eng *diffusion.Scheduler, byID map[diffusion.FlowID]*engineJob, job *engineJob) bool {
	h, w := e.synth.ModelShape()
	d := h * w
	var control *tensor.Tensor
	if job.cfg.UseControlNet {
		control = e.synth.controls[job.ci]
	}
	job.ids = make([]diffusion.FlowID, len(job.seeds))
	for i, seed := range job.seeds {
		id, err := eng.Admit(diffusion.FlowSpec{
			Class:         job.ci,
			GuidanceScale: job.cfg.GuidanceScale,
			DDIMSteps:     job.cfg.DDIMSteps,
			RNG:           stats.NewRNG(seed),
			Control:       control,
			Out:           job.samples[i*d : (i+1)*d],
			JobRows:       len(job.seeds),
		})
		if err != nil {
			for _, prev := range job.ids[:i] {
				eng.Retire(prev)
				delete(byID, prev)
			}
			job.done <- engineResult{err: err}
			return false
		}
		job.ids[i] = id
		byID[id] = job
	}
	e.admitted.Add(uint64(len(job.seeds)))
	return true
}

// postWorker turns completed jobs' samples into flows off the step
// loop. The timestamp streams and base times are derived exactly as in
// GenerateWithFlowSeeds — a constant offset of each flow seed, flows
// anchored at the epoch — so engine output is byte-identical to the
// direct call.
func (e *Engine) postWorker() {
	defer e.postWG.Done()
	for job := e.postQ.pop(); job != nil; job = e.postQ.pop() {
		n := len(job.seeds)
		tsRNGs := make([]*stats.RNG, n)
		starts := make([]time.Time, n)
		for i, fs := range job.seeds {
			tsRNGs[i] = stats.NewRNG(fs ^ 0x7ad3c1)
			starts[i] = genEpoch
		}
		res, err := e.synth.postprocess(job.ci, job.class, job.cfg, job.samples, tsRNGs, starts)
		job.done <- engineResult{res: res, err: err}
		runtime.Gosched() // same courtesy as the step loop: don't hog the P between jobs
	}
}
