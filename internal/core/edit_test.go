package core

import (
	"bytes"
	"testing"

	"trafficdiff/internal/nprint"
	"trafficdiff/internal/packet"
)

func TestDeblurRestoresMaskedSection(t *testing.T) {
	classes := []string{"amazon"}
	s, err := New(fastConfig(), classes)
	if err != nil {
		t.Fatal(err)
	}
	flows := trainingFlows(t, classes, 6)
	if _, err := s.FineTune(flows); err != nil {
		t.Fatal(err)
	}
	// Deblur a real flow whose TCP section is declared missing.
	src := flows["amazon"][0]
	res, err := s.Deblur(src, "amazon", []FieldMask{MaskTCP})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 || len(res.Flows[0].Packets) == 0 {
		t.Fatal("no restored flow")
	}
	// Restoration must fill the missing TCP section: every packet TCP.
	for i, p := range res.Flows[0].Packets {
		if p.TCP == nil {
			t.Fatalf("restored packet %d lost TCP", i)
		}
	}
	// Known (unmasked) IPv4 structure is anchored to the source: the
	// restored matrix keeps the IPv4 section populated in rows that
	// correspond to real packets.
	m := res.Matrices[0]
	if nprint.SectionVacant(m.Row(0), nprint.IPv4Offset, nprint.IPv4Bits) {
		t.Fatal("known IPv4 region was destroyed by inpainting")
	}
}

func TestDeblurValidation(t *testing.T) {
	classes := []string{"amazon"}
	s, _ := New(fastConfig(), classes)
	flows := trainingFlows(t, classes, 2)
	src := flows["amazon"][0]
	if _, err := s.Deblur(src, "amazon", []FieldMask{MaskTCP}); err == nil {
		t.Error("untrained deblur should fail")
	}
	if _, err := s.FineTune(flows); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deblur(src, "nope", []FieldMask{MaskTCP}); err == nil {
		t.Error("unknown class should fail")
	}
	if _, err := s.Deblur(src, "amazon", nil); err == nil {
		t.Error("empty mask should fail")
	}
	if _, err := s.Deblur(src, "amazon", []FieldMask{{Off: -1, Bits: 5}}); err == nil {
		t.Error("out-of-bounds mask should fail")
	}
}

func TestTranslateChangesProtocol(t *testing.T) {
	classes := []string{"amazon", "teams"}
	s, err := New(fastConfig(), classes)
	if err != nil {
		t.Fatal(err)
	}
	flows := trainingFlows(t, classes, 6)
	if _, err := s.FineTune(flows); err != nil {
		t.Fatal(err)
	}
	// Translate a TCP Amazon flow into the Teams (UDP) style.
	src := flows["amazon"][0]
	res, err := s.Translate(src, "teams", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Label != "teams" {
		t.Fatalf("label = %q", res.Flows[0].Label)
	}
	for i, p := range res.Flows[0].Packets {
		if p.UDP == nil {
			t.Fatalf("translated packet %d is not UDP (%v)", i, p.TransportProtocol())
		}
	}
}

func TestTranslateValidation(t *testing.T) {
	classes := []string{"amazon", "teams"}
	s, _ := New(fastConfig(), classes)
	flows := trainingFlows(t, classes, 2)
	src := flows["amazon"][0]
	if _, err := s.Translate(src, "teams", 0.5); err == nil {
		t.Error("untrained translate should fail")
	}
	if _, err := s.FineTune(flows); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Translate(src, "nope", 0.5); err == nil {
		t.Error("unknown class should fail")
	}
	if _, err := s.Translate(src, "teams", 0); err == nil {
		t.Error("zero strength should fail")
	}
	if _, err := s.Translate(src, "teams", 1.5); err == nil {
		t.Error("strength > 1 should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	classes := []string{"amazon", "teams"}
	s, err := New(fastConfig(), classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FineTune(trainingFlows(t, classes, 4)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Trained() {
		t.Fatal("loaded synthesizer reports untrained")
	}
	// Same seed state at load time: generation must work and keep the
	// class protocol property.
	res, err := loaded.Generate("amazon", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		for _, p := range f.Packets {
			if p.TCP == nil {
				t.Fatal("loaded model lost protocol control")
			}
		}
	}
	// Direct weight comparison: the first generation seeds differ by
	// call counter, so instead compare a deterministic forward pass.
	if got, want := len(loaded.allParams()), len(s.allParams()); got != want {
		t.Fatalf("param count %d != %d", got, want)
	}
	for i := range s.allParams() {
		a, b := s.allParams()[i].X.Data, loaded.allParams()[i].X.Data
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("param %d elem %d differs after load", i, j)
			}
		}
	}
}

func TestSaveRequiresTraining(t *testing.T) {
	s, _ := New(fastConfig(), []string{"amazon"})
	var buf bytes.Buffer
	if err := s.Save(&buf); err == nil {
		t.Fatal("saving untrained synthesizer should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestDeblurredFlowReplayable(t *testing.T) {
	classes := []string{"teams"}
	s, _ := New(fastConfig(), classes)
	flows := trainingFlows(t, classes, 4)
	if _, err := s.FineTune(flows); err != nil {
		t.Fatal(err)
	}
	res, err := s.Deblur(flows["teams"][0], "teams", []FieldMask{MaskUDP})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Flows[0].Packets {
		if _, err := packet.Decode(p.Data, p.Timestamp); err != nil {
			t.Fatalf("restored packet undecodable: %v", err)
		}
	}
}
