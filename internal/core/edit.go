package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"trafficdiff/internal/diffusion"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/imagerep"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// The paper's §4 research agenda names downstream tasks for a traffic
// foundation model. Two are implemented on top of the trained
// synthesizer:
//
//   - Deblur restores missing/corrupted header sections of a flow
//     ("traffic deblurring");
//   - Translate re-renders a flow under a different class prompt
//     ("traffic-to-traffic translations", e.g. the paper's VPN
//     Netflix + YouTube -> VPN YouTube example).

// FieldMask names a bit-column span of the nprint row considered
// missing/corrupted.
type FieldMask struct {
	Off, Bits int
}

// Standard masks for whole header sections.
var (
	MaskIPv4 = FieldMask{Off: nprint.IPv4Offset, Bits: nprint.IPv4Bits}
	MaskTCP  = FieldMask{Off: nprint.TCPOffset, Bits: nprint.TCPBits}
	MaskUDP  = FieldMask{Off: nprint.UDPOffset, Bits: nprint.UDPBits}
	MaskICMP = FieldMask{Off: nprint.ICMPOffset, Bits: nprint.ICMPBits}
)

// Deblur restores the masked header regions of a flow using the
// trained diffusion model conditioned on the flow's class: the known
// bits anchor the reverse process, the missing region is generated,
// and the class's protocol template is projected before
// back-transforming to packets.
func (s *Synthesizer) Deblur(f *flow.Flow, class string, missing []FieldMask) (*GenerateResult, error) {
	ci, ok := s.index[class]
	if !ok {
		return nil, fmt.Errorf("core: unknown class %q", class)
	}
	if !s.Trained() {
		return nil, fmt.Errorf("core: synthesizer not fine-tuned")
	}
	if len(missing) == 0 {
		return nil, fmt.Errorf("core: no fields masked")
	}
	for _, m := range missing {
		if m.Off < 0 || m.Bits <= 0 || m.Off+m.Bits > nprint.BitsPerPacket {
			return nil, fmt.Errorf("core: mask [%d,%d) out of row bounds", m.Off, m.Off+m.Bits)
		}
	}
	known, err := s.EncodeFlow(f)
	if err != nil {
		return nil, err
	}
	mask := s.pixelMask(missing)

	calls := atomic.AddUint64(&s.genCalls, 1)
	var control *tensor.Tensor
	if s.cfg.UseControlNet {
		control = s.controls[ci]
	}
	img, err := diffusion.Inpaint(s.model(), s.sched, diffusion.InpaintConfig{
		Known: known,
		Mask:  mask,
		Class: ci, GuidanceScale: s.cfg.GuidanceScale,
		Control: control,
		Seed:    s.cfg.Seed ^ (calls * 0x9e3779b97f4a7c15),
	})
	if err != nil {
		return nil, err
	}
	return s.editPostprocess(img, ci, class, calls)
}

// pixelMask maps full-resolution column masks to the model's
// downscaled pixel grid: a pixel is "known" unless any of its covered
// columns is masked missing.
func (s *Synthesizer) pixelMask(missing []FieldMask) []bool {
	h, w := s.ModelShape()
	missingCol := make([]bool, nprint.BitsPerPacket)
	for _, m := range missing {
		for c := m.Off; c < m.Off+m.Bits; c++ {
			missingCol[c] = true
		}
	}
	mask := make([]bool, h*w)
	for px := 0; px < w; px++ {
		known := true
		for c := px * s.cfg.DownW; c < (px+1)*s.cfg.DownW; c++ {
			if missingCol[c] {
				known = false
				break
			}
		}
		for row := 0; row < h; row++ {
			mask[row*w+px] = known
		}
	}
	return mask
}

// Translate re-renders a source flow under the target class's prompt
// with the given strength in (0,1] (the fraction of the noise schedule
// applied — higher discards more of the source's structure).
func (s *Synthesizer) Translate(f *flow.Flow, targetClass string, strength float64) (*GenerateResult, error) {
	ci, ok := s.index[targetClass]
	if !ok {
		return nil, fmt.Errorf("core: unknown class %q", targetClass)
	}
	if !s.Trained() {
		return nil, fmt.Errorf("core: synthesizer not fine-tuned")
	}
	src, err := s.EncodeFlow(f)
	if err != nil {
		return nil, err
	}
	calls := atomic.AddUint64(&s.genCalls, 1)
	var control *tensor.Tensor
	if s.cfg.UseControlNet {
		control = s.controls[ci]
	}
	img, err := diffusion.Translate(s.model(), s.sched, diffusion.TranslateConfig{
		Source:      src,
		TargetClass: ci, Strength: strength,
		GuidanceScale: s.cfg.GuidanceScale,
		Control:       control,
		Seed:          s.cfg.Seed ^ (calls * 0x9e3779b97f4a7c15),
	})
	if err != nil {
		return nil, err
	}
	return s.editPostprocess(img, ci, targetClass, calls)
}

// editPostprocess runs the shared color-process / project / back-transform
// tail on a single sampled image [1,h,w]. calls is the generation
// counter value the caller drew atomically; it seeds the timestamp RNG
// so concurrent edits never share a stream.
func (s *Synthesizer) editPostprocess(img *tensor.Tensor, ci int, label string, calls uint64) (*GenerateResult, error) {
	h, w := s.ModelShape()
	im := &imagerep.Image{H: h, W: w, Pix: img.Data}
	up, err := imagerep.Upscale(im, s.cfg.DownH, s.cfg.DownW)
	if err != nil {
		return nil, err
	}
	imagerep.Quantize(up)
	m, err := imagerep.ToMatrix(up)
	if err != nil {
		return nil, err
	}
	tpl := s.templates[ci]
	res := &GenerateResult{
		RawCompliance:     tpl.ProtocolCompliance(m),
		RawCellCompliance: tpl.Compliance(m),
	}
	res.Repaired = tpl.Project(m)
	if s.cfg.ConstantSnap {
		res.Repaired += tpl.ProjectConstants(m)
	}
	pkts, skipped, err := nprint.ToPackets(m, nprint.DecodeOptions{
		Repair: true, Start: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		Interval: 2 * time.Millisecond,
	})
	if err != nil {
		return nil, fmt.Errorf("core: back-transform: %w", err)
	}
	s.stampTimestamps(pkts, ci, time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		stats.NewRNG(s.cfg.Seed^calls^0x7ad3c1))
	res.SkippedRows = skipped
	res.Matrices = []*nprint.Matrix{m}
	res.Flows = []*flow.Flow{{Label: label, Packets: pkts}}
	return res, nil
}
