package netfunc

import (
	"strings"
	"testing"
	"time"

	"trafficdiff/internal/packet"
	"trafficdiff/internal/workload"
)

func workloadPackets(t testing.TB, class string, flows int) []*packet.Packet {
	t.Helper()
	g := workload.NewGenerator(3)
	g.MaxPackets = 20
	p, ok := workload.ProfileByName(class)
	if !ok {
		t.Fatalf("unknown class %s", class)
	}
	var pkts []*packet.Packet
	for i := 0; i < flows; i++ {
		pkts = append(pkts, g.GenerateFlow(p).Packets...)
	}
	return pkts
}

func TestFlowMonitorCounts(t *testing.T) {
	pkts := workloadPackets(t, "amazon", 3)
	m := NewFlowMonitor()
	st := Replay(pkts, []NF{m})
	if st.Packets != len(pkts) || st.Accepted != len(pkts) {
		t.Fatalf("stats %+v", st)
	}
	if len(m.Flows()) != 3 {
		t.Fatalf("flows = %d, want 3", len(m.Flows()))
	}
	if !strings.Contains(m.Report(), "3 flows") {
		t.Errorf("report = %s", m.Report())
	}
}

func TestChecksumVerifierAcceptsRealTraffic(t *testing.T) {
	for _, class := range []string{"amazon", "teams", "other"} {
		pkts := workloadPackets(t, class, 2)
		v := NewChecksumVerifier()
		st := Replay(pkts, []NF{v})
		if st.Accepted != len(pkts) {
			t.Fatalf("%s: %d of %d packets dropped by checksum verifier: %s",
				class, len(pkts)-st.Accepted, len(pkts), v.Report())
		}
	}
}

func TestChecksumVerifierDropsCorrupted(t *testing.T) {
	pkts := workloadPackets(t, "amazon", 1)
	// Corrupt a byte in the first packet's IP header.
	bad := pkts[0]
	bad.Data[packet.EthernetHeaderLen+8] ^= 0xff
	v := NewChecksumVerifier()
	if v.Process(bad) != Drop {
		t.Fatal("corrupted packet accepted")
	}
}

func TestTCPStateCheckerAcceptsWellFormedFlow(t *testing.T) {
	pkts := workloadPackets(t, "netflix", 2)
	c := NewTCPStateChecker()
	Replay(pkts, []NF{c})
	if c.Violations() != 0 {
		t.Fatalf("well-formed flows produced %d violations: %s", c.Violations(), c.Report())
	}
}

func TestTCPStateCheckerFlagsDataBeforeHandshake(t *testing.T) {
	var b packet.Builder
	ip := packet.IPv4{TTL: 64, SrcIP: [4]byte{1, 1, 1, 1}, DstIP: [4]byte{2, 2, 2, 2}}
	// Data packet with no preceding SYN.
	data := b.BuildTCP(time.Unix(0, 0), ip, packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK | packet.FlagPSH}, []byte("x"))
	c := NewTCPStateChecker()
	if c.Process(data) != Accept { // counting mode: accept but record
		t.Fatal("counting mode should accept")
	}
	if c.Violations() != 1 {
		t.Fatalf("violations = %d", c.Violations())
	}
	strict := NewTCPStateChecker()
	strict.Strict = true
	if strict.Process(data) != Drop {
		t.Fatal("strict mode should drop")
	}
}

func TestTCPStateCheckerSynOnEstablished(t *testing.T) {
	var b packet.Builder
	ip := packet.IPv4{TTL: 64, SrcIP: [4]byte{1, 1, 1, 1}, DstIP: [4]byte{2, 2, 2, 2}}
	ipR := packet.IPv4{TTL: 64, SrcIP: [4]byte{2, 2, 2, 2}, DstIP: [4]byte{1, 1, 1, 1}}
	ts := time.Unix(0, 0)
	c := NewTCPStateChecker()
	c.Process(b.BuildTCP(ts, ip, packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagSYN}, nil))
	c.Process(b.BuildTCP(ts, ipR, packet.TCP{SrcPort: 2, DstPort: 1, Flags: packet.FlagSYN | packet.FlagACK}, nil))
	c.Process(b.BuildTCP(ts, ip, packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK}, nil))
	if c.Violations() != 0 {
		t.Fatalf("handshake flagged: %s", c.Report())
	}
	c.Process(b.BuildTCP(ts, ip, packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagSYN}, nil))
	if c.Violations() != 1 {
		t.Fatalf("SYN on established not flagged: %s", c.Report())
	}
}

func TestRateLimiter(t *testing.T) {
	pkts := workloadPackets(t, "teams", 1)
	if len(pkts) < 6 {
		t.Skip("flow too short for the test")
	}
	rl := NewRateLimiter(5)
	st := Replay(pkts, []NF{rl})
	if st.Accepted != 5 {
		t.Fatalf("accepted %d, want 5", st.Accepted)
	}
	if st.DroppedBy["rate-limiter"] != len(pkts)-5 {
		t.Fatalf("dropped %v", st.DroppedBy)
	}
}

func TestPipelineShortCircuits(t *testing.T) {
	pkts := workloadPackets(t, "zoom", 1)
	rl := NewRateLimiter(0) // drops everything
	m := NewFlowMonitor()
	st := Replay(pkts, []NF{rl, m})
	if st.Accepted != 0 {
		t.Fatal("limiter should drop all")
	}
	if len(m.Flows()) != 0 {
		t.Fatal("monitor saw packets after drop")
	}
}

func TestReportFormatting(t *testing.T) {
	pkts := workloadPackets(t, "amazon", 1)
	pipeline := []NF{NewChecksumVerifier(), NewTCPStateChecker(), NewFlowMonitor()}
	st := Replay(pkts, pipeline)
	rep := Report(st, pipeline)
	for _, want := range []string{"replayed", "checksum-verifier", "tcp-state-checker", "flow-monitor"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
