// Package netfunc provides a small network-function framework used to
// validate that synthetic traces are replayable — one of the paper's
// motivating downstream tasks ("replaying the traffic to test network
// functions") and open challenges (§4). Packets stream through a
// pipeline of NFs (flow monitor, checksum verifier, stateful TCP
// conformance checker, token-bucket rate limiter) that accept or drop
// each packet and report statistics afterwards.
package netfunc

import (
	"fmt"
	"sort"
	"strings"

	"trafficdiff/internal/packet"
)

// Verdict is an NF's per-packet decision.
type Verdict int

// Verdicts.
const (
	Accept Verdict = iota
	Drop
)

// NF is a network function.
type NF interface {
	// Name identifies the function in reports.
	Name() string
	// Process inspects one packet and returns a verdict.
	Process(p *packet.Packet) Verdict
	// Report summarizes what the function observed.
	Report() string
}

// Stats summarizes a replay.
type Stats struct {
	Packets  int
	Accepted int
	// DroppedBy counts drops per NF name.
	DroppedBy map[string]int
}

// Replay streams packets through the pipeline in order. A packet
// dropped by an NF does not reach later NFs.
func Replay(pkts []*packet.Packet, pipeline []NF) Stats {
	st := Stats{DroppedBy: map[string]int{}}
	for _, p := range pkts {
		st.Packets++
		dropped := false
		for _, nf := range pipeline {
			if nf.Process(p) == Drop {
				st.DroppedBy[nf.Name()]++
				dropped = true
				break
			}
		}
		if !dropped {
			st.Accepted++
		}
	}
	return st
}

// Report renders replay stats plus each NF's own report.
func Report(st Stats, pipeline []NF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d packets, %d accepted\n", st.Packets, st.Accepted)
	var names []string
	for n := range st.DroppedBy {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  dropped by %s: %d\n", n, st.DroppedBy[n])
	}
	for _, nf := range pipeline {
		fmt.Fprintf(&b, "%s: %s\n", nf.Name(), nf.Report())
	}
	return b.String()
}
