package netfunc

import (
	"fmt"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
)

// FlowMonitor counts flows, packets and bytes (a NetFlow-exporter
// style passive NF). It never drops.
type FlowMonitor struct {
	table   *flow.Table
	packets int
	bytes   int
}

// NewFlowMonitor returns an empty monitor.
func NewFlowMonitor() *FlowMonitor { return &FlowMonitor{table: flow.NewTable()} }

// Name implements NF.
func (m *FlowMonitor) Name() string { return "flow-monitor" }

// Process implements NF.
func (m *FlowMonitor) Process(p *packet.Packet) Verdict {
	m.table.Add(p)
	m.packets++
	m.bytes += p.Length()
	return Accept
}

// Report implements NF.
func (m *FlowMonitor) Report() string {
	return fmt.Sprintf("%d flows, %d packets, %d bytes", m.table.Len(), m.packets, m.bytes)
}

// Flows exposes the assembled flow table.
func (m *FlowMonitor) Flows() []*flow.Flow { return m.table.Flows() }

// ChecksumVerifier drops packets whose IPv4 or transport checksum does
// not verify — replayed synthetic traffic must carry valid checksums
// to pass middleboxes.
type ChecksumVerifier struct {
	checked, bad int
}

// NewChecksumVerifier returns a fresh verifier.
func NewChecksumVerifier() *ChecksumVerifier { return &ChecksumVerifier{} }

// Name implements NF.
func (v *ChecksumVerifier) Name() string { return "checksum-verifier" }

// Process implements NF.
func (v *ChecksumVerifier) Process(p *packet.Packet) Verdict {
	if p.IPv4 == nil {
		return Accept // not ours to judge
	}
	v.checked++
	hlen := p.IPv4.HeaderLen()
	ipStart := packet.EthernetHeaderLen
	if len(p.Data) < ipStart+hlen {
		v.bad++
		return Drop
	}
	if packet.Checksum(p.Data[ipStart:ipStart+hlen]) != 0 {
		v.bad++
		return Drop
	}
	seg := p.Data[ipStart+hlen:]
	switch {
	case p.TCP != nil:
		if packet.PseudoHeaderChecksum(p.IPv4.SrcIP, p.IPv4.DstIP, packet.ProtoTCP, seg) != 0 {
			v.bad++
			return Drop
		}
	case p.UDP != nil:
		if p.UDP.Checksum != 0 && // zero = checksum disabled (RFC 768)
			packet.PseudoHeaderChecksum(p.IPv4.SrcIP, p.IPv4.DstIP, packet.ProtoUDP, seg) != 0 &&
			p.UDP.Checksum != 0xffff {
			v.bad++
			return Drop
		}
	case p.ICMP != nil:
		if packet.Checksum(seg) != 0 {
			v.bad++
			return Drop
		}
	}
	return Accept
}

// Report implements NF.
func (v *ChecksumVerifier) Report() string {
	return fmt.Sprintf("%d checked, %d bad", v.checked, v.bad)
}

// tcpConnState tracks one direction-normalized flow's handshake
// progress.
type tcpConnState int

const (
	stateNew tcpConnState = iota
	stateSynSeen
	stateSynAckSeen
	stateEstablished
	stateClosed
)

// TCPStateChecker is a stateful conformance monitor: it tracks each
// TCP flow's three-way handshake and counts packets that arrive out of
// protocol order (data before handshake completion, SYN on an
// established flow, traffic after close). In strict mode those packets
// drop; otherwise they are counted only — the diagnostic the paper's
// §4 "replayable synthetic network traces" challenge calls for.
type TCPStateChecker struct {
	// Strict drops non-conforming packets instead of just counting.
	Strict bool

	conns      map[flow.Key]tcpConnState
	violations int
	conforming int
}

// NewTCPStateChecker returns a checker in counting (non-strict) mode.
func NewTCPStateChecker() *TCPStateChecker {
	return &TCPStateChecker{conns: map[flow.Key]tcpConnState{}}
}

// Name implements NF.
func (c *TCPStateChecker) Name() string { return "tcp-state-checker" }

// Process implements NF.
func (c *TCPStateChecker) Process(p *packet.Packet) Verdict {
	if p.TCP == nil {
		return Accept
	}
	k, ok := flow.KeyOf(p)
	if !ok {
		return Accept
	}
	st := c.conns[k]
	fl := p.TCP.Flags
	next := st
	violation := false
	switch st {
	case stateNew:
		if fl&packet.FlagSYN != 0 && fl&packet.FlagACK == 0 {
			next = stateSynSeen
		} else {
			violation = true
		}
	case stateSynSeen:
		switch {
		case fl&packet.FlagSYN != 0 && fl&packet.FlagACK != 0:
			next = stateSynAckSeen
		case fl&packet.FlagSYN != 0:
			// retransmitted SYN: allowed
		default:
			violation = true
		}
	case stateSynAckSeen:
		if fl&packet.FlagACK != 0 && fl&packet.FlagSYN == 0 {
			next = stateEstablished
		} else if fl&packet.FlagSYN != 0 && fl&packet.FlagACK != 0 {
			// retransmitted SYN/ACK: allowed
		} else {
			violation = true
		}
	case stateEstablished:
		switch {
		case fl&packet.FlagSYN != 0:
			violation = true
		case fl&packet.FlagRST != 0:
			next = stateClosed
		case fl&packet.FlagFIN != 0:
			next = stateClosed // simplified: first FIN closes
		}
	case stateClosed:
		// FIN/ACK teardown continues; data is a violation.
		if fl&(packet.FlagFIN|packet.FlagACK|packet.FlagRST) == 0 || len(p.Payload) > 0 {
			violation = true
		}
	}
	if violation {
		c.violations++
		if c.Strict {
			return Drop
		}
	} else {
		c.conforming++
		c.conns[k] = next
	}
	return Accept
}

// Report implements NF.
func (c *TCPStateChecker) Report() string {
	total := c.conforming + c.violations
	rate := 0.0
	if total > 0 {
		rate = float64(c.conforming) / float64(total)
	}
	return fmt.Sprintf("%d tcp packets, %d conforming (%.1f%%), %d violations, %d connections",
		total, c.conforming, 100*rate, c.violations, len(c.conns))
}

// Violations exposes the violation count.
func (c *TCPStateChecker) Violations() int { return c.violations }

// RateLimiter enforces a token-bucket packet rate keyed by flow.
type RateLimiter struct {
	// PacketsPerFlow is the bucket size: packets allowed per flow
	// before drops start (a simple burst limiter for replay tests).
	PacketsPerFlow int

	seen    map[flow.Key]int
	dropped int
}

// NewRateLimiter returns a limiter allowing n packets per flow.
func NewRateLimiter(n int) *RateLimiter {
	return &RateLimiter{PacketsPerFlow: n, seen: map[flow.Key]int{}}
}

// Name implements NF.
func (r *RateLimiter) Name() string { return "rate-limiter" }

// Process implements NF.
func (r *RateLimiter) Process(p *packet.Packet) Verdict {
	k, ok := flow.KeyOf(p)
	if !ok {
		return Accept
	}
	r.seen[k]++
	if r.seen[k] > r.PacketsPerFlow {
		r.dropped++
		return Drop
	}
	return Accept
}

// Report implements NF.
func (r *RateLimiter) Report() string {
	return fmt.Sprintf("limit %d pkts/flow, %d dropped", r.PacketsPerFlow, r.dropped)
}
