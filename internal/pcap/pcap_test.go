package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2023, 11, 28, 9, 30, 0, 123456000, time.UTC)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	packets := [][]byte{
		{1, 2, 3, 4},
		{},
		bytes.Repeat([]byte{0xaa}, 1500),
	}
	for i, p := range packets {
		if err := w.WritePacket(t0.Add(time.Duration(i)*time.Millisecond), p); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("link type = %d", r.LinkType())
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(packets) {
		t.Fatalf("read %d records, want %d", len(recs), len(packets))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Data, packets[i]) {
			t.Errorf("record %d data mismatch", i)
		}
		want := t0.Add(time.Duration(i) * time.Millisecond)
		if !rec.Timestamp.Equal(want) {
			t.Errorf("record %d ts = %v, want %v", i, rec.Timestamp, want)
		}
	}
}

func TestNanosecondResolution(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewNanoWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	ts := t0.Add(789 * time.Nanosecond)
	if err := w.WritePacket(ts, []byte{1}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Nanosecond() {
		t.Error("reader did not detect nanosecond magic")
	}
	rec, err := r.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Timestamp.Equal(ts) {
		t.Errorf("ts = %v, want %v (nanosecond precision lost)", rec.Timestamp, ts)
	}
}

func TestMicrosecondTruncatesNanos(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	ts := t0.Add(789 * time.Nanosecond) // sub-microsecond part must drop
	_ = w.WritePacket(ts, []byte{1})
	r, _ := NewReader(&buf)
	rec, err := r.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Timestamp.Nanosecond()%1000 != 0 {
		t.Errorf("microsecond file kept sub-microsecond precision: %v", rec.Timestamp)
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-construct a big-endian microsecond file with one record.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], 1)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], 1700000000)
	binary.BigEndian.PutUint32(rec[4:8], 42)
	binary.BigEndian.PutUint32(rec[8:12], 3)
	binary.BigEndian.PutUint32(rec[12:16], 3)
	buf.Write(rec[:])
	buf.Write([]byte{9, 8, 7})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp.Unix() != 1700000000 || got.Timestamp.Nanosecond() != 42000 {
		t.Errorf("timestamp = %v", got.Timestamp)
	}
	if !bytes.Equal(got.Data, []byte{9, 8, 7}) {
		t.Errorf("data = %v", got.Data)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 24)))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedFileHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{0xd4, 0xc3}))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestTruncatedRecordBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	_ = w.WritePacket(t0, []byte{1, 2, 3, 4, 5})
	cut := buf.Bytes()[:buf.Len()-2] // drop last 2 payload bytes

	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadRecord()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestTruncatedRecordHeaderKeepsEarlierRecords(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	_ = w.WritePacket(t0, []byte{1, 2, 3})
	_ = w.WritePacket(t0, []byte{4, 5, 6})
	cut := buf.Bytes()[:24+16+3+8] // second record header cut short

	r, _ := NewReader(bytes.NewReader(cut))
	recs, err := r.ReadAll()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Data, []byte{1, 2, 3}) {
		t.Fatalf("earlier records lost: %v", recs)
	}
}

func TestOrigLenPreserved(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	_ = w.WriteRecord(Record{Timestamp: t0, OrigLen: 9000, Data: []byte{1, 2}})
	r, _ := NewReader(&buf)
	rec, err := r.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if rec.OrigLen != 9000 {
		t.Errorf("OrigLen = %d, want 9000", rec.OrigLen)
	}
}

func TestEmptyFileReadAll(t *testing.T) {
	var buf bytes.Buffer
	_, _ = NewWriter(&buf, LinkTypeEthernet)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

// Property: any packet payload round-trips byte-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte, sec uint32, usec uint16) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, LinkTypeEthernet)
		if err != nil {
			return false
		}
		ts := time.Unix(int64(sec), int64(usec)*1000).UTC()
		if err := w.WritePacket(ts, data); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		rec, err := r.ReadRecord()
		if err != nil {
			return false
		}
		return bytes.Equal(rec.Data, data) && rec.Timestamp.Equal(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
