package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestNGWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewNGWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	packets := [][]byte{
		{1, 2, 3},
		{},
		bytes.Repeat([]byte{0x55}, 1501), // odd length exercises padding
	}
	for i, p := range packets {
		ts := t0.Add(time.Duration(i) * time.Millisecond)
		if err := w.WritePacket(ts, p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewNGReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("link type = %d", r.LinkType())
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(packets) {
		t.Fatalf("read %d records, want %d", len(recs), len(packets))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Data, packets[i]) {
			t.Errorf("record %d data mismatch (%d vs %d bytes)", i, len(rec.Data), len(packets[i]))
		}
		want := t0.Add(time.Duration(i) * time.Millisecond)
		if !rec.Timestamp.Equal(want) {
			t.Errorf("record %d ts = %v, want %v", i, rec.Timestamp, want)
		}
	}
}

func TestNGRejectsClassicPcap(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	_ = w.WritePacket(t0, []byte{1})
	if _, err := NewNGReader(&buf); err == nil {
		t.Fatal("classic pcap accepted as pcapng")
	}
}

func TestClassicRejectsNG(t *testing.T) {
	var buf bytes.Buffer
	_, _ = NewNGWriter(&buf, LinkTypeEthernet)
	if _, err := NewReader(&buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestNGSkipsUnknownBlocks(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewNGWriter(&buf, LinkTypeEthernet)
	// Inject a custom block (type 0x0bad) between packets.
	_ = w.WritePacket(t0, []byte{1, 2, 3, 4})
	custom := make([]byte, 16)
	binary.LittleEndian.PutUint32(custom[0:], 0x0bad)
	binary.LittleEndian.PutUint32(custom[4:], 16)
	binary.LittleEndian.PutUint32(custom[12:], 16)
	buf.Write(custom)
	_ = w.WritePacket(t0, []byte{5, 6})

	r, err := NewNGReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[1].Data, []byte{5, 6}) {
		t.Fatalf("unknown block handling broke reading: %d records", len(recs))
	}
}

func TestNGTruncatedBlock(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewNGWriter(&buf, LinkTypeEthernet)
	_ = w.WritePacket(t0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	cut := buf.Bytes()[:buf.Len()-6]
	r, err := NewNGReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadRecord(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestNGImplausibleBlockLength(t *testing.T) {
	var buf bytes.Buffer
	_, _ = NewNGWriter(&buf, LinkTypeEthernet)
	bad := make([]byte, 8)
	binary.LittleEndian.PutUint32(bad[0:], blockEnhancedPacket)
	binary.LittleEndian.PutUint32(bad[4:], 7) // <12 and unaligned
	buf.Write(bad)
	r, err := NewNGReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadRecord(); err == nil {
		t.Fatal("implausible block length accepted")
	}
}

func TestQuickNGRoundTrip(t *testing.T) {
	f := func(data []byte, ms uint32) bool {
		var buf bytes.Buffer
		w, err := NewNGWriter(&buf, LinkTypeEthernet)
		if err != nil {
			return false
		}
		ts := time.UnixMicro(int64(ms) * 1000).UTC()
		if err := w.WritePacket(ts, data); err != nil {
			return false
		}
		r, err := NewNGReader(&buf)
		if err != nil {
			return false
		}
		rec, err := r.ReadRecord()
		if err != nil {
			return false
		}
		return bytes.Equal(rec.Data, data) && rec.Timestamp.Equal(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
