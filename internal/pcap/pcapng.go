package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// pcapng (the modern capture format Wireshark defaults to) support:
// enough of the block structure to interoperate — Section Header,
// Interface Description, and Enhanced Packet blocks, little-endian,
// microsecond timestamp resolution. Unknown block types are skipped on
// read, as the specification requires.

// pcapng block type codes.
const (
	blockSectionHeader   = 0x0a0d0d0a
	blockInterfaceDesc   = 0x00000001
	blockEnhancedPacket  = 0x00000006
	byteOrderMagic       = 0x1a2b3c4d
	pcapngTsResolMicro   = 6 // if_tsresol option value
	optEndOfOptions      = 0
	optIfTsResol         = 9
	pcapngMaxBlockLength = 1 << 26 // 64 MiB sanity cap
)

// ErrNotPcapNG reports that the stream does not begin with a Section
// Header Block.
var ErrNotPcapNG = errors.New("pcap: not a pcapng stream")

// NGWriter writes a pcapng file with a single interface.
type NGWriter struct {
	w io.Writer
}

// NewNGWriter emits the Section Header and Interface Description
// blocks and returns a writer.
func NewNGWriter(w io.Writer, linkType LinkType) (*NGWriter, error) {
	// Section Header Block: type, len, magic, version 1.0, section len -1.
	shb := make([]byte, 28)
	binary.LittleEndian.PutUint32(shb[0:], blockSectionHeader)
	binary.LittleEndian.PutUint32(shb[4:], 28)
	binary.LittleEndian.PutUint32(shb[8:], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[12:], 1) // major
	binary.LittleEndian.PutUint16(shb[14:], 0) // minor
	binary.LittleEndian.PutUint64(shb[16:], ^uint64(0))
	binary.LittleEndian.PutUint32(shb[24:], 28)
	if _, err := w.Write(shb); err != nil {
		return nil, fmt.Errorf("pcap: writing SHB: %w", err)
	}
	// Interface Description Block with if_tsresol = 6 (microseconds).
	idb := make([]byte, 28)
	binary.LittleEndian.PutUint32(idb[0:], blockInterfaceDesc)
	binary.LittleEndian.PutUint32(idb[4:], 28)
	binary.LittleEndian.PutUint16(idb[8:], uint16(linkType))
	// reserved (2) + snaplen (4)
	binary.LittleEndian.PutUint32(idb[12:], DefaultSnapLen)
	// option: if_tsresol (code 9, len 1, value 6, 3 pad), then end.
	binary.LittleEndian.PutUint16(idb[16:], optIfTsResol)
	binary.LittleEndian.PutUint16(idb[18:], 1)
	idb[20] = pcapngTsResolMicro
	binary.LittleEndian.PutUint16(idb[24:], optEndOfOptions)
	binary.LittleEndian.PutUint32(idb[24:], 0) // opt_endofopt (code 0, len 0)
	binary.LittleEndian.PutUint32(idb[24:], 28)
	if _, err := w.Write(idb); err != nil {
		return nil, fmt.Errorf("pcap: writing IDB: %w", err)
	}
	return &NGWriter{w: w}, nil
}

// WritePacket appends one Enhanced Packet Block.
func (w *NGWriter) WritePacket(ts time.Time, data []byte) error {
	capLen := len(data)
	pad := (4 - capLen%4) % 4
	total := 32 + capLen + pad
	blk := make([]byte, total)
	binary.LittleEndian.PutUint32(blk[0:], blockEnhancedPacket)
	binary.LittleEndian.PutUint32(blk[4:], uint32(total))
	// interface id 0
	usec := uint64(ts.UnixMicro())
	binary.LittleEndian.PutUint32(blk[12:], uint32(usec>>32))
	binary.LittleEndian.PutUint32(blk[16:], uint32(usec))
	binary.LittleEndian.PutUint32(blk[20:], uint32(capLen))
	binary.LittleEndian.PutUint32(blk[24:], uint32(capLen))
	copy(blk[28:], data)
	binary.LittleEndian.PutUint32(blk[total-4:], uint32(total))
	if _, err := w.w.Write(blk); err != nil {
		return fmt.Errorf("pcap: writing EPB: %w", err)
	}
	return nil
}

// NGReader reads a pcapng file written by this package or compatible
// little-endian streams.
type NGReader struct {
	r        io.Reader
	linkType LinkType
}

// NewNGReader parses the Section Header and the first Interface
// Description block.
func NewNGReader(r io.Reader) (*NGReader, error) {
	rd := &NGReader{r: r}
	typ, body, err := rd.readBlock()
	if err != nil {
		return nil, err
	}
	if typ != blockSectionHeader || len(body) < 8 {
		return nil, ErrNotPcapNG
	}
	if binary.LittleEndian.Uint32(body[0:]) != byteOrderMagic {
		return nil, fmt.Errorf("%w: big-endian or corrupt section header", ErrNotPcapNG)
	}
	// Scan forward to the first IDB.
	for {
		typ, body, err = rd.readBlock()
		if err != nil {
			return nil, fmt.Errorf("pcap: no interface description block: %w", err)
		}
		if typ == blockInterfaceDesc {
			if len(body) < 8 {
				return nil, fmt.Errorf("pcap: short IDB")
			}
			rd.linkType = LinkType(binary.LittleEndian.Uint16(body[0:]))
			return rd, nil
		}
	}
}

// LinkType returns the first interface's link type.
func (r *NGReader) LinkType() LinkType { return r.linkType }

// readBlock returns the next block's type and body (without the
// framing type/length fields).
func (r *NGReader) readBlock() (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("pcap: truncated block header: %w", io.ErrUnexpectedEOF)
		}
		return 0, nil, err
	}
	typ := binary.LittleEndian.Uint32(hdr[0:])
	total := binary.LittleEndian.Uint32(hdr[4:])
	if total < 12 || total%4 != 0 || total > pcapngMaxBlockLength {
		return 0, nil, fmt.Errorf("pcap: implausible block length %d", total)
	}
	body := make([]byte, total-12)
	if _, err := io.ReadFull(r.r, body); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("pcap: truncated block body: %w", err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r.r, trailer[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("pcap: truncated block trailer: %w", err)
	}
	if binary.LittleEndian.Uint32(trailer[:]) != total {
		return 0, nil, fmt.Errorf("pcap: block trailer length mismatch")
	}
	return typ, body, nil
}

// ReadRecord returns the next Enhanced Packet Block as a Record,
// skipping unknown block types. io.EOF signals a clean end.
func (r *NGReader) ReadRecord() (Record, error) {
	for {
		typ, body, err := r.readBlock()
		if err != nil {
			return Record{}, err
		}
		if typ != blockEnhancedPacket {
			continue // skip IDBs, statistics, custom blocks, ...
		}
		if len(body) < 20 {
			return Record{}, fmt.Errorf("pcap: short EPB")
		}
		tsHigh := binary.LittleEndian.Uint32(body[4:])
		tsLow := binary.LittleEndian.Uint32(body[8:])
		capLen := binary.LittleEndian.Uint32(body[12:])
		origLen := binary.LittleEndian.Uint32(body[16:])
		if int(capLen) > len(body)-20 {
			return Record{}, fmt.Errorf("pcap: EPB capture length %d exceeds body", capLen)
		}
		usec := uint64(tsHigh)<<32 | uint64(tsLow)
		data := make([]byte, capLen)
		copy(data, body[20:20+capLen])
		return Record{
			Timestamp: time.UnixMicro(int64(usec)).UTC(),
			OrigLen:   int(origLen),
			Data:      data,
		}, nil
	}
}

// ReadAll reads records until EOF, mirroring Reader.ReadAll.
func (r *NGReader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
