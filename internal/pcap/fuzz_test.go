package pcap

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReader asserts the classic pcap reader never panics on arbitrary
// input and either errors cleanly or returns well-formed records.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	_ = w.WritePacket(time.Unix(1700000000, 0), []byte{1, 2, 3, 4})
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:25])
	f.Add(valid[:24])
	f.Add([]byte{})
	flip := append([]byte(nil), valid...)
	flip[0] ^= 0xff
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		recs, _ := r.ReadAll()
		for _, rec := range recs {
			if rec.Data == nil && len(rec.Data) != 0 {
				t.Fatal("record with nil data")
			}
			if rec.OrigLen < 0 {
				t.Fatal("negative original length")
			}
		}
	})
}

// FuzzNGReader does the same for the pcapng reader.
func FuzzNGReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewNGWriter(&buf, LinkTypeEthernet)
	_ = w.WritePacket(time.Unix(1700000000, 0), []byte{9, 8, 7})
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add(valid[:len(valid)-3])
	mangled := append([]byte(nil), valid...)
	mangled[30] ^= 0x55
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewNGReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		recs, _ := r.ReadAll()
		for _, rec := range recs {
			if len(rec.Data) > pcapngMaxBlockLength {
				t.Fatal("record larger than max block")
			}
		}
	})
}
