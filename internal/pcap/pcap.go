// Package pcap reads and writes capture files in the classic libpcap
// format (the .pcap files tcpdump and Wireshark produce).
//
// Both microsecond (magic 0xa1b2c3d4) and nanosecond (0xa1b23c4d)
// timestamp resolutions are supported, in either byte order. The
// reader is failure-tolerant: a truncated trailing record yields
// io.ErrUnexpectedEOF rather than a panic, and earlier records remain
// readable, matching how real capture files are often cut off
// mid-write.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers identifying pcap files.
const (
	MagicMicroseconds = 0xa1b2c3d4
	MagicNanoseconds  = 0xa1b23c4d
)

// LinkType identifies the layer-2 framing of the capture.
type LinkType uint32

// LinkTypeEthernet is DLT_EN10MB, the only link type the pipeline emits.
const LinkTypeEthernet LinkType = 1

// DefaultSnapLen is the snapshot length written into new file headers.
const DefaultSnapLen = 65535

// ErrBadMagic reports that the stream does not begin with a known pcap
// magic number.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Record is one captured packet as stored in the file.
type Record struct {
	Timestamp time.Time
	// OrigLen is the packet's original length on the wire, which may
	// exceed len(Data) if the capture was truncated by the snap length.
	OrigLen int
	Data    []byte
}

// Writer writes a pcap file.
type Writer struct {
	w     io.Writer
	nanos bool
}

// NewWriter writes a microsecond-resolution pcap file header to w and
// returns a Writer. linkType is typically LinkTypeEthernet.
func NewWriter(w io.Writer, linkType LinkType) (*Writer, error) {
	return newWriter(w, linkType, false)
}

// NewNanoWriter is NewWriter with nanosecond timestamp resolution.
func NewNanoWriter(w io.Writer, linkType LinkType) (*Writer, error) {
	return newWriter(w, linkType, true)
}

func newWriter(w io.Writer, linkType LinkType, nanos bool) (*Writer, error) {
	var hdr [24]byte
	magic := uint32(MagicMicroseconds)
	if nanos {
		magic = MagicNanoseconds
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(linkType))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing file header: %w", err)
	}
	return &Writer{w: w, nanos: nanos}, nil
}

// WriteRecord appends one packet record.
func (w *Writer) WriteRecord(rec Record) error {
	var hdr [16]byte
	ts := rec.Timestamp
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	frac := uint32(ts.Nanosecond())
	if !w.nanos {
		frac /= 1000
	}
	binary.LittleEndian.PutUint32(hdr[4:8], frac)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(rec.Data)))
	orig := rec.OrigLen
	if orig < len(rec.Data) {
		orig = len(rec.Data)
	}
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(orig))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(rec.Data); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	return nil
}

// WritePacket is a convenience wrapper over WriteRecord.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	return w.WriteRecord(Record{Timestamp: ts, OrigLen: len(data), Data: data})
}

// Reader reads a pcap file.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nanos    bool
	linkType LinkType
	snapLen  uint32
}

// NewReader parses the file header from r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	rd := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == MagicMicroseconds:
		rd.order = binary.LittleEndian
	case magicLE == MagicNanoseconds:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicBE == MagicMicroseconds:
		rd.order = binary.BigEndian
	case magicBE == MagicNanoseconds:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %08x", ErrBadMagic, magicLE)
	}
	rd.snapLen = rd.order.Uint32(hdr[16:20])
	rd.linkType = LinkType(rd.order.Uint32(hdr[20:24]))
	return rd, nil
}

// LinkType returns the capture's layer-2 type.
func (r *Reader) LinkType() LinkType { return r.linkType }

// SnapLen returns the capture's snapshot length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Nanosecond reports whether timestamps carry nanosecond resolution.
func (r *Reader) Nanosecond() bool { return r.nanos }

// ReadRecord reads the next packet record. It returns io.EOF at a
// clean end of file and io.ErrUnexpectedEOF if the file ends inside a
// record.
func (r *Reader) ReadRecord() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("pcap: truncated record header: %w", io.ErrUnexpectedEOF)
		}
		return Record{}, err // io.EOF passes through untouched
	}
	sec := r.order.Uint32(hdr[0:4])
	frac := r.order.Uint32(hdr[4:8])
	caplen := r.order.Uint32(hdr[8:12])
	origlen := r.order.Uint32(hdr[12:16])
	if caplen > r.snapLen && r.snapLen > 0 && caplen > DefaultSnapLen {
		return Record{}, fmt.Errorf("pcap: record capture length %d exceeds snap length %d", caplen, r.snapLen)
	}
	data := make([]byte, caplen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("pcap: truncated record body: %w", err)
	}
	nanos := int64(frac)
	if !r.nanos {
		nanos *= 1000
	}
	return Record{
		Timestamp: time.Unix(int64(sec), nanos).UTC(),
		OrigLen:   int(origlen),
		Data:      data,
	}, nil
}

// ReadAll reads records until EOF. If the file is truncated mid-record
// it returns the records read so far along with the error.
func (r *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
