package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Quantile(xs, 0) != 10 || Quantile(xs, 1) != 40 {
		t.Error("quantile edges wrong")
	}
	if got := Quantile(xs, 0.5); got != 25 {
		t.Errorf("median = %v, want 25", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("quantile of empty should be NaN")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 9.99, -1, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestHistogramProportionsSum(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		h.Add(r.Float64())
	}
	total := 0.0
	for _, p := range h.Proportions() {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("proportions sum %v", total)
	}
}

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{2, 2, 4})
	want := []float64{0.25, 0.25, 0.5}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("normalize = %v", p)
		}
	}
	u := Normalize([]float64{0, 0})
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Fatalf("zero vector should normalize to uniform, got %v", u)
	}
}

func TestJSDivergenceProperties(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0, 0.5, 0.5}
	if d := JSDivergence(p, p); d > 1e-12 {
		t.Errorf("JS(p,p) = %v", d)
	}
	d1, d2 := JSDivergence(p, q), JSDivergence(q, p)
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("JS not symmetric: %v vs %v", d1, d2)
	}
	// Disjoint distributions reach the ln 2 bound.
	a := []float64{1, 0}
	b := []float64{0, 1}
	if d := JSDivergence(a, b); math.Abs(d-math.Ln2) > 1e-12 {
		t.Errorf("JS(disjoint) = %v, want ln2", d)
	}
}

func TestJSDivergenceBoundedQuick(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		p := make([]float64, 4)
		q := make([]float64, 4)
		for i := 0; i < 4; i++ {
			p[i] = float64(a[i])
			q[i] = float64(b[i])
		}
		d := JSDivergence(p, q)
		return d >= -1e-12 && d <= math.Ln2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalVariation(t *testing.T) {
	if d := TotalVariation([]float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Errorf("TV(disjoint) = %v", d)
	}
	if d := TotalVariation([]float64{1, 1}, []float64{2, 2}); d > 1e-12 {
		t.Errorf("TV(same) = %v", d)
	}
}

func TestImbalanceRatio(t *testing.T) {
	if r := ImbalanceRatio([]float64{100, 25}); r != 4 {
		t.Errorf("ratio = %v", r)
	}
	if r := ImbalanceRatio([]float64{10, 0}); r != 10 {
		t.Errorf("zero-min ratio = %v", r)
	}
	if r := ImbalanceRatio(nil); r != 1 {
		t.Errorf("empty ratio = %v", r)
	}
}

func TestKSStatistic(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(same, same); d > 1e-12 {
		t.Errorf("KS(x,x) = %v", d)
	}
	lo := []float64{0, 0.1, 0.2, 0.3}
	hi := []float64{10, 10.1, 10.2, 10.3}
	if d := KSStatistic(lo, hi); math.Abs(d-1) > 1e-12 {
		t.Errorf("KS(disjoint) = %v, want 1", d)
	}
	if d := KSStatistic(nil, same); d != 1 {
		t.Errorf("KS(empty) = %v", d)
	}
	// Symmetry.
	a := []float64{1, 5, 9, 2}
	b := []float64{3, 4, 8}
	if KSStatistic(a, b) != KSStatistic(b, a) {
		t.Error("KS not symmetric")
	}
}

func TestKSStatisticConvergesForSameDistribution(t *testing.T) {
	r := NewRNG(1)
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	if d := KSStatistic(a, b); d > 0.06 {
		t.Errorf("KS of same distribution = %v, want small", d)
	}
}
