package stats

import "math"

// ApproxEqual reports whether a and b agree to within tol: absolutely
// for values near zero, relatively for large magnitudes. It is the
// sanctioned replacement for exact float ==/!= in non-test code (see
// the tracelint floateq analyzer): exact comparison of computed floats
// branches differently across platforms and optimization levels, which
// breaks the pipeline's same-seed-same-output guarantee.
//
// NaN compares unequal to everything, matching IEEE semantics.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		//tracelint:allow floateq — infinities carry no rounding error; only identical infinities match
		return a == b
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}
