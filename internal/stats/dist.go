package stats

import (
	"math"
	"sort"
)

// Dist is a sampleable scalar distribution.
type Dist interface {
	// Sample draws one variate using r.
	Sample(r *RNG) float64
	// Mean returns the distribution's theoretical mean (or an
	// approximation for heavy-tailed distributions where the mean
	// does not exist).
	Mean() float64
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws a uniform variate.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Normal is the Gaussian distribution with mean Mu and standard
// deviation Sigma.
type Normal struct{ Mu, Sigma float64 }

// Sample draws a Gaussian variate.
func (n Normal) Sample(r *RNG) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// LogNormal is the log-normal distribution: exp(Normal(Mu, Sigma)).
// Packet sizes and inter-arrival times in real traces are commonly
// modelled as log-normal.
type LogNormal struct{ Mu, Sigma float64 }

// Sample draws a log-normal variate.
func (l LogNormal) Sample(r *RNG) float64 { return math.Exp(l.Mu + l.Sigma*r.NormFloat64()) }

// Mean returns exp(Mu + Sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Exponential is the exponential distribution with rate Lambda.
type Exponential struct{ Lambda float64 }

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 {
	return -math.Log(1-r.Float64()) / e.Lambda
}

// Mean returns 1/Lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Pareto is the Pareto (power-law) distribution with scale Xm and
// shape Alpha. Flow sizes and burst lengths are heavy-tailed; Pareto
// is the classic model (cf. Harpoon, Swing).
type Pareto struct{ Xm, Alpha float64 }

// Sample draws a Pareto variate.
func (p Pareto) Sample(r *RNG) float64 {
	return p.Xm / math.Pow(1-r.Float64(), 1/p.Alpha)
}

// Mean returns Alpha*Xm/(Alpha-1) for Alpha > 1, otherwise a large
// finite proxy.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Categorical samples indices proportionally to Weights.
type Categorical struct {
	Weights []float64
	cum     []float64
}

// NewCategorical builds a categorical distribution over weights,
// which need not be normalized. It panics if weights is empty or the
// total weight is not positive.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		//tracelint:allow paniccheck — documented constructor invariant, mirrors stdlib math/rand argument panics
		panic("stats: empty categorical")
	}
	c := &Categorical{Weights: append([]float64(nil), weights...)}
	c.cum = make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			//tracelint:allow paniccheck — documented constructor invariant
			panic("stats: negative categorical weight")
		}
		total += w
		c.cum[i] = total
	}
	if total <= 0 {
		//tracelint:allow paniccheck — documented constructor invariant
		panic("stats: categorical with zero total weight")
	}
	return c
}

// SampleIndex draws an index in [0, len(Weights)).
func (c *Categorical) SampleIndex(r *RNG) int {
	u := r.Float64() * c.cum[len(c.cum)-1]
	return sort.SearchFloat64s(c.cum, u)
}

// Probability returns the normalized probability of index i.
func (c *Categorical) Probability(i int) float64 {
	return c.Weights[i] / c.cum[len(c.cum)-1]
}

// Zipf samples ranks 1..N with probability proportional to
// 1/rank^S. Port and destination popularity in real traffic follows
// Zipf-like consolidation (paper §2.3 "port consolidation").
type Zipf struct {
	N int
	S float64

	cat *Categorical
}

// NewZipf builds a Zipf distribution over ranks 1..n with exponent s.
func NewZipf(n int, s float64) *Zipf {
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return &Zipf{N: n, S: s, cat: NewCategorical(w)}
}

// SampleRank draws a rank in [1, N].
func (z *Zipf) SampleRank(r *RNG) int { return z.cat.SampleIndex(r) + 1 }

// Mixture samples from Components[i] with probability proportional to
// Weights[i]. Real packet-size distributions are multi-modal (e.g.
// ACK-sized vs MTU-sized packets); mixtures capture that.
type Mixture struct {
	Components []Dist
	cat        *Categorical
}

// NewMixture builds a mixture distribution. len(components) must equal
// len(weights).
func NewMixture(components []Dist, weights []float64) *Mixture {
	if len(components) != len(weights) {
		//tracelint:allow paniccheck — documented constructor invariant
		panic("stats: mixture arity mismatch")
	}
	return &Mixture{Components: components, cat: NewCategorical(weights)}
}

// Sample draws from a randomly selected component.
func (m *Mixture) Sample(r *RNG) float64 {
	return m.Components[m.cat.SampleIndex(r)].Sample(r)
}

// Mean returns the weighted mean of the component means.
func (m *Mixture) Mean() float64 {
	total := 0.0
	for i, c := range m.Components {
		total += m.cat.Probability(i) * c.Mean()
	}
	return total
}

// Clamped wraps a distribution and clamps samples to [Lo, Hi].
type Clamped struct {
	D      Dist
	Lo, Hi float64
}

// Sample draws from D and clamps the result.
func (c Clamped) Sample(r *RNG) float64 {
	v := c.D.Sample(r)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean returns the underlying mean clamped to [Lo, Hi].
func (c Clamped) Mean() float64 {
	v := c.D.Mean()
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}
