package stats

import (
	"math"
	"sort"
)

// Dist is a sampleable scalar distribution.
type Dist interface {
	// Sample draws one variate using r.
	Sample(r *RNG) float64
	// Mean returns the distribution's theoretical mean (or an
	// approximation for heavy-tailed distributions where the mean
	// does not exist).
	Mean() float64
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws a uniform variate.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Normal is the Gaussian distribution with mean Mu and standard
// deviation Sigma.
type Normal struct{ Mu, Sigma float64 }

// Sample draws a Gaussian variate.
func (n Normal) Sample(r *RNG) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// LogNormal is the log-normal distribution: exp(Normal(Mu, Sigma)).
// Packet sizes and inter-arrival times in real traces are commonly
// modelled as log-normal.
type LogNormal struct{ Mu, Sigma float64 }

// Sample draws a log-normal variate.
func (l LogNormal) Sample(r *RNG) float64 { return math.Exp(l.Mu + l.Sigma*r.NormFloat64()) }

// Mean returns exp(Mu + Sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Exponential is the exponential distribution with rate Lambda.
type Exponential struct{ Lambda float64 }

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 {
	return -math.Log(1-r.Float64()) / e.Lambda
}

// Mean returns 1/Lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Pareto is the Pareto (power-law) distribution with scale Xm and
// shape Alpha. Flow sizes and burst lengths are heavy-tailed; Pareto
// is the classic model (cf. Harpoon, Swing).
type Pareto struct{ Xm, Alpha float64 }

// Sample draws a Pareto variate.
func (p Pareto) Sample(r *RNG) float64 {
	return p.Xm / math.Pow(1-r.Float64(), 1/p.Alpha)
}

// paretoMeanProxyFactor scales Xm into the finite stand-in Mean
// returns when the true mean diverges (Alpha <= 1). Any consumer that
// normalizes rates by a mean — Mixture.Mean, the load harness's
// request-size accounting — must stay finite, so the proxy is "very
// heavy" rather than infinite.
const paretoMeanProxyFactor = 1e6

// Mean returns Alpha*Xm/(Alpha-1) for Alpha > 1, otherwise the large
// finite proxy Xm*1e6 (the true mean diverges, but an infinity here
// would poison every downstream rate normalization).
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return p.Xm * paretoMeanProxyFactor
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Gamma is the gamma distribution with shape k = Shape and scale
// θ = Scale. Inter-arrival gaps in bursty traffic are modelled as
// gamma with a coefficient of variation above 1 (shape < 1 clusters
// arrivals, shape > 1 regularizes them); the load harness derives
// Shape from a spec's `cv` as 1/cv².
type Gamma struct{ Shape, Scale float64 }

// Sample draws a gamma variate via the Marsaglia-Tsang squeeze
// (shape >= 1) with the standard power boost for shape < 1. Every
// accept/reject decision consumes draws from r only, so the stream is
// deterministic per seed.
func (g Gamma) Sample(r *RNG) float64 {
	k := g.Shape
	if k < 1 {
		// Gamma(k) = Gamma(k+1) * U^(1/k) for k in (0, 1).
		u := r.Float64()
		return Gamma{Shape: k + 1, Scale: g.Scale}.Sample(r) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * g.Scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * g.Scale
		}
	}
}

// Mean returns Shape*Scale.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// Weibull is the Weibull distribution with shape k = Shape and scale
// λ = Scale. Its shape parameter sweeps between heavy-tailed burstiness
// (k < 1) and near-deterministic spacing (k > 1), which makes it the
// third arrival-process option in workload specs.
type Weibull struct{ Shape, Scale float64 }

// Sample draws a Weibull variate by inverse transform.
func (w Weibull) Sample(r *RNG) float64 {
	return w.Scale * math.Pow(-math.Log(1-r.Float64()), 1/w.Shape)
}

// Mean returns Scale*Γ(1+1/Shape).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// Categorical samples indices proportionally to Weights.
type Categorical struct {
	Weights []float64
	cum     []float64
}

// NewCategorical builds a categorical distribution over weights,
// which need not be normalized. It panics if weights is empty or the
// total weight is not positive.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		//tracelint:allow paniccheck — documented constructor invariant, mirrors stdlib math/rand argument panics
		panic("stats: empty categorical")
	}
	c := &Categorical{Weights: append([]float64(nil), weights...)}
	c.cum = make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			//tracelint:allow paniccheck — documented constructor invariant
			panic("stats: negative categorical weight")
		}
		total += w
		c.cum[i] = total
	}
	if total <= 0 {
		//tracelint:allow paniccheck — documented constructor invariant
		panic("stats: categorical with zero total weight")
	}
	return c
}

// SampleIndex draws an index in [0, len(Weights)). Index i owns the
// half-open interval [cum[i-1], cum[i)), so the search is strict
// (first cum[i] > u): a draw landing exactly on a cumulative boundary
// belongs to the next component, and an index whose weight is zero —
// a zero-weight prefix makes cum[i] == u reachable at u == 0 — can
// never be selected.
func (c *Categorical) SampleIndex(r *RNG) int {
	total := c.cum[len(c.cum)-1]
	u := r.Float64() * total
	i := sort.Search(len(c.cum), func(j int) bool { return c.cum[j] > u })
	if i == len(c.cum) {
		// Float64()*total can round up to total itself; that draw
		// belongs to the last positive-weight component.
		i--
		for i > 0 && !(c.Weights[i] > 0) {
			i--
		}
	}
	return i
}

// Probability returns the normalized probability of index i.
func (c *Categorical) Probability(i int) float64 {
	return c.Weights[i] / c.cum[len(c.cum)-1]
}

// Zipf samples ranks 1..N with probability proportional to
// 1/rank^S. Port and destination popularity in real traffic follows
// Zipf-like consolidation (paper §2.3 "port consolidation").
type Zipf struct {
	N int
	S float64

	cat *Categorical
}

// NewZipf builds a Zipf distribution over ranks 1..n with exponent s.
func NewZipf(n int, s float64) *Zipf {
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return &Zipf{N: n, S: s, cat: NewCategorical(w)}
}

// SampleRank draws a rank in [1, N].
func (z *Zipf) SampleRank(r *RNG) int { return z.cat.SampleIndex(r) + 1 }

// Mixture samples from Components[i] with probability proportional to
// Weights[i]. Real packet-size distributions are multi-modal (e.g.
// ACK-sized vs MTU-sized packets); mixtures capture that.
type Mixture struct {
	Components []Dist
	cat        *Categorical
}

// NewMixture builds a mixture distribution. len(components) must equal
// len(weights).
func NewMixture(components []Dist, weights []float64) *Mixture {
	if len(components) != len(weights) {
		//tracelint:allow paniccheck — documented constructor invariant
		panic("stats: mixture arity mismatch")
	}
	return &Mixture{Components: components, cat: NewCategorical(weights)}
}

// Sample draws from a randomly selected component.
func (m *Mixture) Sample(r *RNG) float64 {
	return m.Components[m.cat.SampleIndex(r)].Sample(r)
}

// Mean returns the weighted mean of the component means.
func (m *Mixture) Mean() float64 {
	total := 0.0
	for i, c := range m.Components {
		total += m.cat.Probability(i) * c.Mean()
	}
	return total
}

// Clamped wraps a distribution and clamps samples to [Lo, Hi].
type Clamped struct {
	D      Dist
	Lo, Hi float64
}

// Sample draws from D and clamps the result.
func (c Clamped) Sample(r *RNG) float64 {
	v := c.D.Sample(r)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean returns the underlying mean clamped to [Lo, Hi].
func (c Clamped) Mean() float64 {
	v := c.D.Mean()
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}
