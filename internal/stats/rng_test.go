package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	n := 50000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(9)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams overlap in %d of 100 draws", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(42)
	// Burn an arbitrary prefix so the captured state is mid-stream.
	for i := 0; i < 137; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 50)
	for i := range want {
		want[i] = r.Uint64()
	}
	// A different generator restored to st continues the same stream.
	r2 := NewRNG(7)
	if err := r2.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("draw %d after SetState: got %d want %d", i, got, want[i])
		}
	}
}

func TestRNGSetStateRejectsZero(t *testing.T) {
	r := NewRNG(1)
	if err := r.SetState([4]uint64{}); err == nil {
		t.Fatal("all-zero state should be rejected")
	}
	// The generator keeps working after the rejected call.
	if a, b := r.Uint64(), r.Uint64(); a == 0 && b == 0 {
		t.Fatal("generator corrupted by rejected SetState")
	}
}

func TestRNGStateCapturesNormTail(t *testing.T) {
	// NormFloat64's rejection loop consumes a variable number of
	// uniforms; State/SetState must still resume mid-sequence exactly.
	r := NewRNG(3)
	for i := 0; i < 9; i++ {
		r.NormFloat64()
	}
	st := r.State()
	want := make([]float64, 20)
	for i := range want {
		want[i] = r.NormFloat64()
	}
	r2 := NewRNG(1000)
	if err := r2.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := r2.NormFloat64(); math.Float64bits(got) != math.Float64bits(want[i]) {
			t.Fatalf("normal draw %d differs after restore", i)
		}
	}
}
