package stats

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Max           float64
	P25, P50, P75, P95 float64
}

// Summarize computes descriptive statistics over xs. It returns the
// zero Summary for an empty sample.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.P25 = Quantile(sorted, 0.25)
	s.P50 = Quantile(sorted, 0.50)
	s.P75 = Quantile(sorted, 0.75)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0<=q<=1) of sorted (ascending)
// data using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
	// Under and Over count out-of-range observations.
	Under, Over int
}

// NewHistogram creates a histogram with bins equal-width bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		//tracelint:allow paniccheck — documented constructor invariant
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
	h.total++
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Proportions returns the in-range bin proportions (summing to <= 1).
func (h *Histogram) Proportions() []float64 {
	p := make([]float64, len(h.Counts))
	if h.total == 0 {
		return p
	}
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(h.total)
	}
	return p
}

// Normalize converts non-negative counts or weights into a probability
// vector. A zero vector normalizes to the uniform distribution.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	total := 0.0
	for _, x := range xs {
		total += x
	}
	if total <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(xs))
		}
		return out
	}
	for i, x := range xs {
		out[i] = x / total
	}
	return out
}

// JSDivergence returns the Jensen-Shannon divergence between two
// discrete distributions (normalized internally), in nats. It is
// symmetric and bounded by ln 2.
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		//tracelint:allow paniccheck — shape invariant on caller-built slices, same class as tensor kernel checks
		panic("stats: JSDivergence length mismatch")
	}
	pn, qn := Normalize(p), Normalize(q)
	m := make([]float64, len(pn))
	for i := range m {
		m[i] = (pn[i] + qn[i]) / 2
	}
	return (klTerm(pn, m) + klTerm(qn, m)) / 2
}

func klTerm(p, m []float64) float64 {
	total := 0.0
	for i := range p {
		if p[i] > 0 && m[i] > 0 {
			total += p[i] * math.Log(p[i]/m[i])
		}
	}
	return total
}

// TotalVariation returns the total-variation distance between two
// discrete distributions (normalized internally), in [0, 1].
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		//tracelint:allow paniccheck — shape invariant on caller-built slices, same class as tensor kernel checks
		panic("stats: TotalVariation length mismatch")
	}
	pn, qn := Normalize(p), Normalize(q)
	total := 0.0
	for i := range pn {
		total += math.Abs(pn[i] - qn[i])
	}
	return total / 2
}

// ImbalanceRatio returns max(count)/min(count) over a class-count
// vector, treating zero minima as 1 observation to stay finite. The
// paper's Figure 1 studies class-imbalance amplification; this is the
// scalar we report.
func ImbalanceRatio(counts []float64) float64 {
	if len(counts) == 0 {
		return 1
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, c := range counts {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	if mn < 1 {
		mn = 1
	}
	if mx < 1 {
		return 1
	}
	return mx / mn
}

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic —
// the maximum distance between the empirical CDFs of xs and ys, in
// [0, 1]. Zero-length samples yield 1 (maximally distinguishable).
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 1
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	var d float64
	for i < len(a) && j < len(b) {
		// Step past every sample equal to the smaller current value on
		// both sides, so ties advance the CDFs together.
		v := a[i]
		if b[j] < v {
			v = b[j]
		}
		//tracelint:allow floateq — v is copied (not computed) from a[i]/b[j]; exact tie-stepping over sorted samples is the KS definition
		for i < len(a) && a[i] == v {
			i++
		}
		//tracelint:allow floateq — same exact tie-step as above
		for j < len(b) && b[j] == v {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}
