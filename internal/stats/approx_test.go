package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-12, true},
		{0, 0, 1e-12, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1 + 1e-9, 1e-12, false},
		{1e12, 1e12 * (1 + 1e-13), 1e-12, true}, // relative for large magnitudes
		{1e12, 1e12 + 1, 1e-15, false},
		{0, 1e-13, 1e-12, true}, // absolute near zero
		{0, 1e-6, 1e-12, false},
		{-2, 2, 1e-12, false},
		{math.Inf(1), math.Inf(1), 1e-12, true},
		{math.Inf(1), math.Inf(-1), 1e-12, false},
		{math.Inf(1), 1e300, 1e-12, false},
		{math.NaN(), math.NaN(), 1e-12, false},
		{math.NaN(), 1, 1e-12, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
