// Package stats provides deterministic random number generation,
// probability distributions, histograms, and divergence measures used
// throughout the trace-synthesis pipeline.
//
// Everything in this package is seeded and reproducible: the same seed
// yields the same stream on every platform, which the test suite and the
// experiment harness rely on.
package stats

import (
	"fmt"
	"math"
)

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** by Blackman and Vigna). It is not safe for concurrent
// use; create one RNG per goroutine via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed using SplitMix64 so that
// nearby seeds produce unrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r, advancing r.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// State returns the generator's internal state. A generator restored
// with SetState continues the exact stream from the capture point,
// which is what makes mid-run training checkpoints resumable.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state previously captured by State. The
// all-zero state is a fixed point of xoshiro256** (the stream would be
// constant zero), so it is rejected; State never returns it for a
// generator built by NewRNG.
func (r *RNG) SetState(s [4]uint64) error {
	if s == [4]uint64{} {
		return fmt.Errorf("stats: refusing all-zero RNG state")
	}
	r.s = s
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		//tracelint:allow paniccheck — documented argument invariant, mirrors math/rand.Intn
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate via the polar
// Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
