package stats

import (
	"math"
	"sort"
	"testing"
)

func sampleMean(d Dist, r *RNG, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestUniformMean(t *testing.T) {
	r := NewRNG(1)
	d := Uniform{Lo: 2, Hi: 6}
	if m := sampleMean(d, r, 50000); math.Abs(m-4) > 0.05 {
		t.Errorf("uniform sample mean %v, want ~4", m)
	}
	if d.Mean() != 4 {
		t.Errorf("Mean() = %v", d.Mean())
	}
}

func TestNormalMean(t *testing.T) {
	r := NewRNG(2)
	d := Normal{Mu: -3, Sigma: 2}
	if m := sampleMean(d, r, 50000); math.Abs(m+3) > 0.05 {
		t.Errorf("normal sample mean %v, want ~-3", m)
	}
}

func TestLogNormalPositiveAndMean(t *testing.T) {
	r := NewRNG(3)
	d := LogNormal{Mu: 1, Sigma: 0.5}
	sum := 0.0
	for i := 0; i < 50000; i++ {
		v := d.Sample(r)
		if v <= 0 {
			t.Fatalf("log-normal produced non-positive %v", v)
		}
		sum += v
	}
	want := d.Mean()
	got := sum / 50000
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("log-normal sample mean %v, want ~%v", got, want)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(4)
	d := Exponential{Lambda: 2}
	if m := sampleMean(d, r, 50000); math.Abs(m-0.5) > 0.02 {
		t.Errorf("exponential sample mean %v, want ~0.5", m)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := NewRNG(5)
	d := Pareto{Xm: 3, Alpha: 2.5}
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 3 {
			t.Fatalf("pareto sample %v below xm", v)
		}
	}
	want := 2.5 * 3 / 1.5
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Errorf("pareto Mean() = %v, want %v", d.Mean(), want)
	}
}

// TestParetoMeanFiniteProxy pins the documented contract: for
// Alpha <= 1 the true mean diverges but Mean() must return the large
// finite proxy Xm*1e6, never an infinity that would poison downstream
// rate normalizations.
func TestParetoMeanFiniteProxy(t *testing.T) {
	cases := []struct {
		xm, alpha float64
		want      float64
	}{
		{1, 0.9, 1e6},
		{1, 1, 1e6},
		{3, 0.5, 3e6},
		{2, 1.0, 2e6},
		{1, 2, 2},          // alpha > 1: exact mean alpha*xm/(alpha-1)
		{3, 2.5, 2.5 * 2},  // 2.5*3/1.5
	}
	for _, c := range cases {
		got := Pareto{Xm: c.xm, Alpha: c.alpha}.Mean()
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("Pareto{%v,%v}.Mean() = %v, want finite", c.xm, c.alpha, got)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Pareto{%v,%v}.Mean() = %v, want %v", c.xm, c.alpha, got, c.want)
		}
	}
}

// TestMixtureMeanFiniteWithHeavyTail is the regression the proxy
// exists for: a mixture with an Alpha<=1 Pareto component must still
// report a finite mean, because rate normalization divides by it.
func TestMixtureMeanFiniteWithHeavyTail(t *testing.T) {
	m := NewMixture(
		[]Dist{LogNormal{Mu: 1, Sigma: 0.5}, Pareto{Xm: 1, Alpha: 0.8}},
		[]float64{0.9, 0.1},
	)
	got := m.Mean()
	if math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
		t.Fatalf("Mixture.Mean() with heavy-tailed component = %v, want finite positive", got)
	}
}

// TestCategoricalZeroWeightPrefix is the boundary-semantics regression
// test: with Weights=[0,1] the draw u==0 lands exactly on the first
// cumulative boundary (cum[0] == 0), and the old `cum[i] >= u` search
// returned index 0 — a component whose Probability() is 0. The strict
// search must never select a zero-weight index, for any seed.
func TestCategoricalZeroWeightPrefix(t *testing.T) {
	c := NewCategorical([]float64{0, 1})
	// u == 0 happens exactly when the 53 bits Float64 keeps are all
	// zero; force the boundary by scanning seeds AND by checking the
	// invariant over a large sample.
	r := NewRNG(1)
	for i := 0; i < 100000; i++ {
		if got := c.SampleIndex(r); got != 1 {
			t.Fatalf("draw %d selected zero-weight index %d", i, got)
		}
	}
	// Longer zero prefix, zero interior weight, zero suffix.
	c2 := NewCategorical([]float64{0, 0, 3, 0, 1, 0})
	r2 := NewRNG(2)
	counts := make([]int, 6)
	for i := 0; i < 100000; i++ {
		idx := c2.SampleIndex(r2)
		counts[idx]++
		if !(c2.Probability(idx) > 0) {
			t.Fatalf("draw %d selected index %d with probability 0", i, idx)
		}
	}
	if counts[2] == 0 || counts[4] == 0 {
		t.Fatalf("positive-weight indices never drawn: %v", counts)
	}
}

// TestCategoricalStreamUnchangedForPositiveWeights verifies the strict
// search returns the same index sequence as the old
// sort.SearchFloat64s(cum, u) semantics whenever every weight is
// positive — boundaries then sit at irrational partial sums that a
// 53-bit uniform essentially never hits, so Zipf and Mixture byte
// streams are unchanged by the fix.
func TestCategoricalStreamUnchangedForPositiveWeights(t *testing.T) {
	weightSets := [][]float64{
		{1, 2, 7},
		{0.3, 0.3, 0.4},
		{5},
		{1, 1, 1, 1, 1, 1, 1, 1},
	}
	for _, ws := range weightSets {
		c := NewCategorical(ws)
		rNew := NewRNG(42)
		rOld := NewRNG(42)
		for i := 0; i < 50000; i++ {
			got := c.SampleIndex(rNew)
			u := rOld.Float64() * c.cum[len(c.cum)-1]
			want := sort.SearchFloat64s(c.cum, u)
			if got != want {
				t.Fatalf("weights %v draw %d: strict search %d, legacy search %d (u=%v)", ws, i, got, want, u)
			}
		}
	}
	// Zipf rides on Categorical: its rank stream must be unchanged too.
	zNew, zOld := NewZipf(10, 1.2), NewZipf(10, 1.2)
	rNew, rOld := NewRNG(7), NewRNG(7)
	for i := 0; i < 50000; i++ {
		got := zNew.SampleRank(rNew)
		u := rOld.Float64() * zOld.cat.cum[len(zOld.cat.cum)-1]
		if want := sort.SearchFloat64s(zOld.cat.cum, u) + 1; got != want {
			t.Fatalf("zipf draw %d: rank %d, legacy rank %d", i, got, want)
		}
	}
	// Mixture selection consumes one categorical draw then the
	// component draw; identical selection indices imply identical byte
	// streams, which the seeded re-run pins end to end.
	m1 := NewMixture([]Dist{Normal{Mu: 0, Sigma: 1}, Normal{Mu: 10, Sigma: 1}}, []float64{0.5, 0.5})
	m2 := NewMixture([]Dist{Normal{Mu: 0, Sigma: 1}, Normal{Mu: 10, Sigma: 1}}, []float64{0.5, 0.5})
	ra, rb := NewRNG(9), NewRNG(9)
	for i := 0; i < 20000; i++ {
		a, b := m1.Sample(ra), m2.Sample(rb)
		//tracelint:allow floateq — same-seed same-stream bit-identity assertion
		if a != b {
			t.Fatalf("mixture draw %d: %v != %v with identical seeds", i, a, b)
		}
	}
}

func TestCategoricalProportions(t *testing.T) {
	r := NewRNG(6)
	c := NewCategorical([]float64{1, 2, 7})
	counts := make([]float64, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[c.SampleIndex(r)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i := range want {
		got := counts[i] / float64(n)
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("class %d frequency %v, want %v", i, got, want[i])
		}
		if math.Abs(c.Probability(i)-want[i]) > 1e-12 {
			t.Errorf("Probability(%d) = %v", i, c.Probability(i))
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"zero":     {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights should panic", name)
				}
			}()
			NewCategorical(weights)
		}()
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(7)
	z := NewZipf(10, 1.2)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		rank := z.SampleRank(r)
		if rank < 1 || rank > 10 {
			t.Fatalf("rank %d out of bounds", rank)
		}
		counts[rank-1]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("zipf rank 1 (%d) should dominate rank 10 (%d)", counts[0], counts[9])
	}
}

func TestMixtureMean(t *testing.T) {
	r := NewRNG(8)
	m := NewMixture(
		[]Dist{Normal{Mu: 0, Sigma: 1}, Normal{Mu: 10, Sigma: 1}},
		[]float64{0.5, 0.5},
	)
	if got := sampleMean(m, r, 50000); math.Abs(got-5) > 0.1 {
		t.Errorf("mixture sample mean %v, want ~5", got)
	}
	if math.Abs(m.Mean()-5) > 1e-9 {
		t.Errorf("mixture Mean() = %v", m.Mean())
	}
}

func TestClamped(t *testing.T) {
	r := NewRNG(9)
	c := Clamped{D: Normal{Mu: 0, Sigma: 100}, Lo: -1, Hi: 1}
	for i := 0; i < 10000; i++ {
		v := c.Sample(r)
		if v < -1 || v > 1 {
			t.Fatalf("clamped sample %v escaped bounds", v)
		}
	}
	if c.Mean() != 0 {
		t.Errorf("clamped mean %v", c.Mean())
	}
	if (Clamped{D: Normal{Mu: 5}, Lo: -1, Hi: 1}).Mean() != 1 {
		t.Error("mean should clamp to hi")
	}
}

// TestGammaMean checks sample-mean convergence against Mean() across
// the shape regimes the sampler switches between (boost path k < 1,
// squeeze path k >= 1).
func TestGammaMean(t *testing.T) {
	cases := []Gamma{
		{Shape: 0.25, Scale: 2},
		{Shape: 0.9, Scale: 1},
		{Shape: 1, Scale: 3},
		{Shape: 2.5, Scale: 0.5},
		{Shape: 9, Scale: 1.5},
	}
	for i, g := range cases {
		r := NewRNG(uint64(100 + i))
		want := g.Mean()
		if math.Abs(want-g.Shape*g.Scale) > 1e-12 {
			t.Fatalf("Gamma%+v.Mean() = %v, want %v", g, want, g.Shape*g.Scale)
		}
		sum := 0.0
		const n = 200000
		for j := 0; j < n; j++ {
			v := g.Sample(r)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Gamma%+v produced %v", g, v)
			}
			sum += v
		}
		got := sum / n
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("Gamma%+v sample mean %v, want ~%v", g, got, want)
		}
	}
}

// TestWeibullMean checks sample-mean convergence against
// Scale*Γ(1+1/Shape) across bursty (k<1), exponential (k=1) and
// regular (k>1) shapes.
func TestWeibullMean(t *testing.T) {
	cases := []Weibull{
		{Shape: 0.5, Scale: 1},
		{Shape: 1, Scale: 2},
		{Shape: 1.5, Scale: 0.5},
		{Shape: 4, Scale: 3},
	}
	for i, w := range cases {
		r := NewRNG(uint64(200 + i))
		want := w.Mean()
		sum := 0.0
		const n = 200000
		for j := 0; j < n; j++ {
			v := w.Sample(r)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Weibull%+v produced %v", w, v)
			}
			sum += v
		}
		got := sum / n
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("Weibull%+v sample mean %v, want ~%v", w, got, want)
		}
	}
	// k=1 degenerates to Exponential(1/Scale): means must agree exactly.
	if m := (Weibull{Shape: 1, Scale: 2}).Mean(); math.Abs(m-2) > 1e-12 {
		t.Errorf("Weibull shape 1 mean = %v, want 2", m)
	}
}

// TestGammaWeibullSeededIdentity pins the determinism contract for the
// new distributions: identical seeds yield bit-identical sample
// streams, and the streams differ across seeds.
func TestGammaWeibullSeededIdentity(t *testing.T) {
	dists := []Dist{
		Gamma{Shape: 0.5, Scale: 2},
		Gamma{Shape: 3, Scale: 1},
		Weibull{Shape: 0.7, Scale: 1},
		Weibull{Shape: 2, Scale: 4},
	}
	for di, d := range dists {
		a, b := NewRNG(uint64(300+di)), NewRNG(uint64(300+di))
		other := NewRNG(uint64(900 + di))
		diverged := false
		for i := 0; i < 10000; i++ {
			va, vb := d.Sample(a), d.Sample(b)
			//tracelint:allow floateq — same-seed same-stream bit-identity assertion
			if va != vb {
				t.Fatalf("dist %d draw %d: %v != %v with identical seeds", di, i, va, vb)
			}
			//tracelint:allow floateq — cross-seed divergence check
			if d.Sample(other) != va {
				diverged = true
			}
		}
		if !diverged {
			t.Fatalf("dist %d: different seeds produced identical streams", di)
		}
	}
}
