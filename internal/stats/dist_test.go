package stats

import (
	"math"
	"testing"
)

func sampleMean(d Dist, r *RNG, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestUniformMean(t *testing.T) {
	r := NewRNG(1)
	d := Uniform{Lo: 2, Hi: 6}
	if m := sampleMean(d, r, 50000); math.Abs(m-4) > 0.05 {
		t.Errorf("uniform sample mean %v, want ~4", m)
	}
	if d.Mean() != 4 {
		t.Errorf("Mean() = %v", d.Mean())
	}
}

func TestNormalMean(t *testing.T) {
	r := NewRNG(2)
	d := Normal{Mu: -3, Sigma: 2}
	if m := sampleMean(d, r, 50000); math.Abs(m+3) > 0.05 {
		t.Errorf("normal sample mean %v, want ~-3", m)
	}
}

func TestLogNormalPositiveAndMean(t *testing.T) {
	r := NewRNG(3)
	d := LogNormal{Mu: 1, Sigma: 0.5}
	sum := 0.0
	for i := 0; i < 50000; i++ {
		v := d.Sample(r)
		if v <= 0 {
			t.Fatalf("log-normal produced non-positive %v", v)
		}
		sum += v
	}
	want := d.Mean()
	got := sum / 50000
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("log-normal sample mean %v, want ~%v", got, want)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(4)
	d := Exponential{Lambda: 2}
	if m := sampleMean(d, r, 50000); math.Abs(m-0.5) > 0.02 {
		t.Errorf("exponential sample mean %v, want ~0.5", m)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := NewRNG(5)
	d := Pareto{Xm: 3, Alpha: 2.5}
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 3 {
			t.Fatalf("pareto sample %v below xm", v)
		}
	}
	want := 2.5 * 3 / 1.5
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Errorf("pareto Mean() = %v, want %v", d.Mean(), want)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Error("alpha<=1 should report infinite mean")
	}
}

func TestCategoricalProportions(t *testing.T) {
	r := NewRNG(6)
	c := NewCategorical([]float64{1, 2, 7})
	counts := make([]float64, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[c.SampleIndex(r)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i := range want {
		got := counts[i] / float64(n)
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("class %d frequency %v, want %v", i, got, want[i])
		}
		if math.Abs(c.Probability(i)-want[i]) > 1e-12 {
			t.Errorf("Probability(%d) = %v", i, c.Probability(i))
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"zero":     {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights should panic", name)
				}
			}()
			NewCategorical(weights)
		}()
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(7)
	z := NewZipf(10, 1.2)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		rank := z.SampleRank(r)
		if rank < 1 || rank > 10 {
			t.Fatalf("rank %d out of bounds", rank)
		}
		counts[rank-1]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("zipf rank 1 (%d) should dominate rank 10 (%d)", counts[0], counts[9])
	}
}

func TestMixtureMean(t *testing.T) {
	r := NewRNG(8)
	m := NewMixture(
		[]Dist{Normal{Mu: 0, Sigma: 1}, Normal{Mu: 10, Sigma: 1}},
		[]float64{0.5, 0.5},
	)
	if got := sampleMean(m, r, 50000); math.Abs(got-5) > 0.1 {
		t.Errorf("mixture sample mean %v, want ~5", got)
	}
	if math.Abs(m.Mean()-5) > 1e-9 {
		t.Errorf("mixture Mean() = %v", m.Mean())
	}
}

func TestClamped(t *testing.T) {
	r := NewRNG(9)
	c := Clamped{D: Normal{Mu: 0, Sigma: 100}, Lo: -1, Hi: 1}
	for i := 0; i < 10000; i++ {
		v := c.Sample(r)
		if v < -1 || v > 1 {
			t.Fatalf("clamped sample %v escaped bounds", v)
		}
	}
	if c.Mean() != 0 {
		t.Errorf("clamped mean %v", c.Mean())
	}
	if (Clamped{D: Normal{Mu: 5}, Lo: -1, Hi: 1}).Mean() != 1 {
		t.Error("mean should clamp to hi")
	}
}
