package load

import (
	"runtime"
	"sort"
	"testing"
)

func testSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := ParseSpec([]byte(specDoc))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestBuildScheduleBudgetAndOrder(t *testing.T) {
	spec := testSpec(t)
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Requests) != spec.NumRequests {
		t.Fatalf("requests = %d, want %d", len(sched.Requests), spec.NumRequests)
	}
	perClient := map[string]int{}
	for i := range sched.Requests {
		q := &sched.Requests[i]
		if q.Index != i {
			t.Fatalf("request %d has Index %d", i, q.Index)
		}
		if i > 0 && q.Offset < sched.Requests[i-1].Offset {
			t.Fatalf("offsets not sorted at %d", i)
		}
		if q.Flows < 1 {
			t.Fatalf("request %d: flows = %d", i, q.Flows)
		}
		perClient[q.Client]++
	}
	// Largest-remainder apportionment: 0.8/0.2 of 50 is exactly 40/10.
	if perClient["bulk"] != 40 || perClient["interactive"] != 10 {
		t.Fatalf("per-client counts = %v", perClient)
	}
	// Client fields copy through.
	for i := range sched.Requests {
		q := &sched.Requests[i]
		if q.Client == "interactive" && (q.Class != "teams" || q.Format != "csv" || q.TimeoutMs != 500 || q.Flows != 2) {
			t.Fatalf("interactive request = %+v", q)
		}
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	spec := testSpec(t)
	a, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("same spec produced different schedules")
	}
	// A different seed must move the schedule.
	spec.Seed = 8
	c, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest() == a.Digest() {
		t.Fatal("different seed produced identical schedule")
	}
}

// TestBuildScheduleGOMAXPROCSIndependent is the determinism guarantee
// the harness advertises: the schedule is a pure function of the spec,
// identical at any parallelism level.
func TestBuildScheduleGOMAXPROCSIndependent(t *testing.T) {
	spec := testSpec(t)
	digests := map[string]bool{}
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		sched, err := BuildSchedule(spec)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		digests[sched.Digest()] = true
	}
	if len(digests) != 1 {
		t.Fatalf("schedule digest varies with GOMAXPROCS: %d distinct", len(digests))
	}
}

// TestBuildScheduleClientStreamsIndependent: adding a client must not
// perturb the streams of clients declared before it.
func TestBuildScheduleClientStreamsIndependent(t *testing.T) {
	spec := testSpec(t)
	spec.NumRequests = 0
	spec.DurationS = 1
	base, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Rescale fractions and add a third client; bulk keeps fraction 0.8
	// of the same aggregate rate by scaling the rate too.
	spec2 := testSpec(t)
	spec2.NumRequests = 0
	spec2.DurationS = 1
	spec2.AggregateRate = 200
	for i := range spec2.Clients {
		spec2.Clients[i].RateFraction /= 2
	}
	spec2.Clients = append(spec2.Clients, ClientSpec{
		ID: "extra", RateFraction: 0.5, Class: "amazon", Format: "pcap",
		SLOClass: "batch", SLOTargetMs: 2000,
		Arrival: ArrivalSpec{Process: "poisson"},
		Size:    SizeSpec{Type: "constant", Params: map[string]float64{"value": 1}},
	})
	if err := spec2.Validate(); err != nil {
		t.Fatal(err)
	}
	two, err := BuildSchedule(spec2)
	if err != nil {
		t.Fatal(err)
	}
	// bulk's per-client rate is unchanged (100*0.8 == 200*0.4), so its
	// request stream must be byte-identical.
	extract := func(s *Schedule, client string) []Request {
		var out []Request
		for i := range s.Requests {
			if s.Requests[i].Client == client {
				q := s.Requests[i]
				q.Index = 0 // merge order differs; compare content only
				out = append(out, q)
			}
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Offset < out[b].Offset })
		return out
	}
	a, b := extract(base, "bulk"), extract(two, "bulk")
	if len(a) != len(b) {
		t.Fatalf("bulk stream length changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bulk request %d changed: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestClientBudgetApportionment(t *testing.T) {
	spec := &Spec{
		Version: "1", AggregateRate: 10, NumRequests: 10,
		Clients: []ClientSpec{
			{ID: "a", RateFraction: 0.34},
			{ID: "b", RateFraction: 0.33},
			{ID: "c", RateFraction: 0.33},
		},
	}
	total := 0
	for i := range spec.Clients {
		b := clientBudget(spec, i)
		if b < 0 {
			t.Fatalf("client %d budget = %d", i, b)
		}
		total += b
	}
	if total != spec.NumRequests {
		t.Fatalf("budgets sum to %d, want %d", total, spec.NumRequests)
	}
	// A tiny fraction may get zero — but must be honored as zero, not
	// treated as unbounded.
	spec2 := &Spec{
		Version: "1", AggregateRate: 10, NumRequests: 2,
		Clients: []ClientSpec{
			{ID: "big", RateFraction: 0.99},
			{ID: "tiny", RateFraction: 0.01},
		},
	}
	if b := clientBudget(spec2, 1); b != 0 {
		t.Fatalf("tiny budget = %d, want 0", b)
	}
	if b := clientBudget(spec2, 0); b != 2 {
		t.Fatalf("big budget = %d, want 2", b)
	}
	// No budget set: unbounded sentinel.
	spec3 := &Spec{Clients: []ClientSpec{{ID: "a", RateFraction: 1}}}
	if b := clientBudget(spec3, 0); b != -1 {
		t.Fatalf("unbounded budget = %d, want -1", b)
	}
}
