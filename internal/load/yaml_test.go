package load

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLMappingAndNesting(t *testing.T) {
	doc := `
# a comment
version: "1"
seed: 42
nested:
  a: 1
  b: two words  # trailing comment
  url: http://example.com:9000
`
	node, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"version": "1",
		"seed":    "42",
		"nested": map[string]any{
			"a":   "1",
			"b":   "two words",
			"url": "http://example.com:9000",
		},
	}
	if !reflect.DeepEqual(node, want) {
		t.Fatalf("got %#v\nwant %#v", node, want)
	}
}

func TestParseYAMLSequences(t *testing.T) {
	doc := `
scalars:
  - one
  - two
items:
  - id: a
    x: 1
  - id: b
    x: 2
unindented:
- id: c
`
	node, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	m := node.(map[string]any)
	if got := m["scalars"].([]any); !reflect.DeepEqual(got, []any{"one", "two"}) {
		t.Fatalf("scalars = %#v", got)
	}
	items := m["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("items = %#v", items)
	}
	if got := items[1].(map[string]any)["x"]; got != "2" {
		t.Fatalf("items[1].x = %v", got)
	}
	un := m["unindented"].([]any)
	if len(un) != 1 || un[0].(map[string]any)["id"] != "c" {
		t.Fatalf("unindented = %#v", un)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantSub string
	}{
		{"tab indent", "a:\n\tb: 1", "tab in indentation"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"empty", "\n# only a comment\n", "empty document"},
		{"bad entry", "a: 1\nnot a mapping line", "expected `key: value`"},
		{"stray indent", "a: 1\n   b: 2", "unexpected indent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseYAMLQuotesAndComments(t *testing.T) {
	doc := `
a: "quoted # not a comment"
b: 'single'
c: plain # stripped
`
	node, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	m := node.(map[string]any)
	if m["a"] != "quoted # not a comment" || m["b"] != "single" || m["c"] != "plain" {
		t.Fatalf("got %#v", m)
	}
}
