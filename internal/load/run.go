package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome is one request's observed result.
type Outcome struct {
	Request Request
	// Status is the HTTP status, or 0 for a transport-level failure
	// (connection refused, client-side timeout), in which case Err
	// holds the reason.
	Status int
	Err    string
	// Latency is send-to-last-byte. SendDelay is how far behind its
	// scheduled offset the request actually left — sustained growth
	// means the harness itself, not the server, is the bottleneck.
	Latency   time.Duration
	SendDelay time.Duration
	// Bytes is the response body length.
	Bytes int64
}

// RunConfig configures a load run against a live server.
type RunConfig struct {
	// BaseURL is the traced/tracerouter root, e.g. http://127.0.0.1:9000.
	BaseURL string
	// Timeout caps each in-flight request client-side (default 60s);
	// per-request TimeoutMs from the spec still applies server-side.
	Timeout time.Duration
	// OnProgress, when set, is called roughly once a second with the
	// number of requests sent and completed so far.
	OnProgress func(sent, done int)
}

// Run fires the schedule open-loop: every request leaves at its
// scheduled offset (or as soon after as the clock allows) regardless
// of how many earlier requests are still outstanding — the offered
// load never adapts to server slowness, which is the property that
// makes the SLO numbers honest. Outcomes are returned in schedule
// order. Run blocks until every request has completed or ctx is
// cancelled; cancelled-before-send requests report as unsent
// transport errors.
func Run(ctx context.Context, sched *Schedule, cfg RunConfig) ([]Outcome, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("load: BaseURL is required")
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	client := &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			// The whole point is many concurrent requests to one host;
			// don't let idle-conn caps serialize them.
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
	defer client.CloseIdleConnections()

	outcomes := make([]Outcome, len(sched.Requests))
	var wg sync.WaitGroup
	var doneCount atomic.Int64
	start := time.Now()
	var sentCount int
	lastProgress := start
	for i := range sched.Requests {
		req := &sched.Requests[i]
		// Sleep until the request's offset; a context cancel aborts the
		// remaining schedule.
		wait := req.Offset - time.Since(start)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
			case <-t.C:
			}
		}
		if ctx.Err() != nil {
			for j := i; j < len(sched.Requests); j++ {
				outcomes[j] = Outcome{Request: sched.Requests[j], Err: "unsent: " + ctx.Err().Error()}
			}
			break
		}
		sendDelay := time.Since(start) - req.Offset
		if sendDelay < 0 {
			sendDelay = 0
		}
		wg.Add(1)
		sentCount++
		go func(idx int, delay time.Duration) {
			defer wg.Done()
			outcomes[idx] = fire(ctx, client, cfg.BaseURL, &sched.Requests[idx], delay)
			doneCount.Add(1)
		}(i, sendDelay)
		if cfg.OnProgress != nil && time.Since(lastProgress) >= time.Second {
			lastProgress = time.Now()
			cfg.OnProgress(sentCount, int(doneCount.Load()))
		}
	}
	wg.Wait()
	return outcomes, nil
}

// generateRequest mirrors the server's POST /v1/generate body.
type generateRequest struct {
	Class     string `json:"class"`
	Count     int    `json:"count"`
	Seed      uint64 `json:"seed"`
	Format    string `json:"format"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
}

// fire sends one request and records its outcome. Each goroutine owns
// exactly one outcomes slot, so no locking is needed.
func fire(ctx context.Context, client *http.Client, baseURL string, req *Request, delay time.Duration) Outcome {
	out := Outcome{Request: *req, SendDelay: delay}
	body, err := json.Marshal(generateRequest{
		Class:     req.Class,
		Count:     req.Flows,
		Seed:      req.Seed,
		Format:    req.Format,
		TimeoutMs: req.TimeoutMs,
	})
	if err != nil {
		out.Err = "marshal: " + err.Error()
		return out
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		out.Err = "build request: " + err.Error()
		return out
	}
	httpReq.Header.Set("Content-Type", "application/json")
	begin := time.Now()
	resp, err := client.Do(httpReq)
	if err != nil {
		out.Latency = time.Since(begin)
		out.Err = err.Error()
		return out
	}
	n, err := io.Copy(io.Discard, resp.Body)
	out.Latency = time.Since(begin)
	out.Bytes = n
	out.Status = resp.StatusCode
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		out.Err = "read body: " + err.Error()
	}
	return out
}
