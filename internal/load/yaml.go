package load

import (
	"fmt"
	"strings"
)

// This file is a zero-dependency parser for the YAML subset workload
// specs are written in, matching the repo's no-external-deps rule. The
// subset is block-style only:
//
//   - mappings:  `key: value` and `key:` introducing a deeper block
//   - sequences: `- item` scalars and `- key: value` inline map items
//   - scalars:   bare words/numbers, "double" and 'single' quoted
//   - comments:  `#` to end of line (outside quotes)
//
// Flow style ({a: b}, [x, y]), anchors, multi-line strings and tabs are
// deliberately out of scope; the parser reports them as errors with
// line numbers instead of guessing. Parsed documents are generic
// map[string]any / []any / string trees that the spec decoder walks.

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // trimmed, comment-stripped
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses data into a generic node tree.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	node, err := p.parseNode(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("yaml: line %d: unexpected content after document (indent %d outside any block)",
			p.lines[p.pos].num, p.lines[p.pos].indent)
	}
	return node, nil
}

// splitYAMLLines strips comments and blanks and computes indentation.
func splitYAMLLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("yaml: line %d: tab in indentation (use spaces)", i+1)
		}
		text := stripYAMLComment(line[indent:])
		text = strings.TrimSpace(text)
		if text == "" || text == "---" {
			continue
		}
		out = append(out, yamlLine{num: i + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripYAMLComment removes a trailing `# ...` comment, respecting
// single and double quotes.
func stripYAMLComment(s string) string {
	var inSingle, inDouble bool
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if inSingle || inDouble {
				continue
			}
			// A comment starts the line or follows whitespace.
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

// parseNode parses either a mapping or a sequence block at indent.
func (p *yamlParser) parseNode(indent int) (any, error) {
	ln := p.lines[p.pos]
	if isSeqItem(ln.text) {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// parseMap parses consecutive `key: ...` lines at exactly indent.
func (p *yamlParser) parseMap(indent int) (map[string]any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indent %d (mapping block is at %d)", ln.num, ln.indent, indent)
		}
		if isSeqItem(ln.text) {
			break
		}
		key, rest, err := splitYAMLKey(ln.text, ln.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		if rest != "" {
			m[key] = unquoteYAML(rest)
			continue
		}
		// `key:` introduces a nested block if the next line is deeper —
		// or a sequence at the same indent, the common unindented-list
		// style (`clients:` followed by `- id: x` at the same column).
		if p.pos < len(p.lines) && (p.lines[p.pos].indent > indent ||
			(p.lines[p.pos].indent == indent && isSeqItem(p.lines[p.pos].text))) {
			v, err := p.parseNode(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("yaml: line %d: expected a mapping entry", p.lines[p.pos-1].num)
	}
	return m, nil
}

// parseSeq parses consecutive `- ...` lines at exactly indent.
func (p *yamlParser) parseSeq(indent int) ([]any, error) {
	var out []any
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !isSeqItem(ln.text) {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		switch {
		case rest == "":
			// `-` alone: the item is the deeper block that follows.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseNode(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			} else {
				out = append(out, nil)
			}
		case looksLikeMapping(rest):
			// `- key: value`: rewrite the line as the first entry of a
			// mapping whose indent is the key's column, then let
			// parseMap consume it plus the aligned lines below.
			inner := ln.indent + (len(ln.text) - len(rest))
			p.lines[p.pos] = yamlLine{num: ln.num, indent: inner, text: rest}
			v, err := p.parseMap(inner)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			p.pos++
			out = append(out, unquoteYAML(rest))
		}
	}
	return out, nil
}

// looksLikeMapping reports whether text starts a `key: value` entry
// (a colon at the end or followed by a space — "http://x" is a scalar).
func looksLikeMapping(text string) bool {
	i := strings.IndexByte(text, ':')
	if i <= 0 {
		return false
	}
	return i == len(text)-1 || text[i+1] == ' '
}

// splitYAMLKey splits `key: value` into key and the raw value text.
func splitYAMLKey(text string, num int) (key, rest string, err error) {
	if !looksLikeMapping(text) {
		return "", "", fmt.Errorf("yaml: line %d: expected `key: value`, got %q", num, text)
	}
	i := strings.IndexByte(text, ':')
	key = strings.TrimSpace(text[:i])
	rest = strings.TrimSpace(text[i+1:])
	if key == "" {
		return "", "", fmt.Errorf("yaml: line %d: empty key", num)
	}
	return unquoteYAML(key), rest, nil
}

// unquoteYAML strips one level of matching quotes; everything else is
// returned verbatim (scalars stay strings until the spec decoder types
// them).
func unquoteYAML(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
