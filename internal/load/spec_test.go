package load

import (
	"math"
	"strings"
	"testing"

	"trafficdiff/internal/stats"
)

const specDoc = `
version: "1"
seed: 7
aggregate_rate: 100
num_requests: 50
clients:
  - id: bulk
    rate_fraction: 0.8
    class: amazon
    format: pcap
    slo_class: batch
    slo_target_ms: 2000
    arrival:
      process: poisson
    size_distribution:
      type: lognormal
      params:
        mu: 1.0
        sigma: 0.5
      min: 1
      max: 32
  - id: interactive
    rate_fraction: 0.2
    class: teams
    format: csv
    slo_class: realtime
    slo_target_ms: 250
    timeout_ms: 500
    arrival:
      process: gamma
      cv: 2.0
    size_distribution:
      type: constant
      params:
        value: 2
`

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec([]byte(specDoc))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 || spec.NumRequests != 50 {
		t.Fatalf("seed/num_requests = %d/%d", spec.Seed, spec.NumRequests)
	}
	if !stats.ApproxEqual(spec.AggregateRate, 100, 1e-12) {
		t.Fatalf("aggregate_rate = %v", spec.AggregateRate)
	}
	if len(spec.Clients) != 2 {
		t.Fatalf("clients = %d", len(spec.Clients))
	}
	c := &spec.Clients[1]
	if c.ID != "interactive" || c.Class != "teams" || c.Format != "csv" ||
		c.SLOClass != "realtime" || c.TimeoutMs != 500 {
		t.Fatalf("client[1] = %+v", c)
	}
	if c.Arrival.Process != "gamma" || !stats.ApproxEqual(c.Arrival.CV, 2, 1e-12) {
		t.Fatalf("arrival = %+v", c.Arrival)
	}
	if got := spec.SLOClasses(); len(got) != 2 || got[0] != "batch" || got[1] != "realtime" {
		t.Fatalf("slo classes = %v", got)
	}
}

func TestParseSpecDefaults(t *testing.T) {
	doc := `
aggregate_rate: 10
duration_s: 1
clients:
  - id: only
    rate_fraction: 1.0
    class: amazon
    slo_class: default
    slo_target_ms: 1000
`
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	c := &spec.Clients[0]
	if spec.Version != "1" || spec.Seed != 1 {
		t.Fatalf("version/seed = %q/%d", spec.Version, spec.Seed)
	}
	if c.Format != "pcap" || c.Arrival.Process != "poisson" {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Size.Type != "constant" {
		t.Fatalf("size default = %+v", c.Size)
	}
}

func TestParseSpecValidationErrors(t *testing.T) {
	base := func(extra string) string {
		return `
version: "1"
aggregate_rate: 10
duration_s: 1
clients:
  - id: a
    rate_fraction: 1.0
    class: amazon
    slo_class: x
    slo_target_ms: 100
` + extra
	}
	cases := []struct {
		name, doc, wantSub string
	}{
		{"fractions", strings.Replace(base(""), "rate_fraction: 1.0", "rate_fraction: 0.5", 1), "sum to"},
		{"no bound", strings.Replace(base(""), "duration_s: 1", "duration_s: 0", 1), "bound the run"},
		{"bad rate", strings.Replace(base(""), "aggregate_rate: 10", "aggregate_rate: 0", 1), "aggregate_rate"},
		{"bad format", base("    format: xml\n"), "format"},
		{"bad process", base("    arrival:\n      process: bursty\n"), "unknown arrival process"},
		{"bad size type", base("    size_distribution:\n      type: cauchy\n"), "unknown size distribution"},
		{"missing param", base("    size_distribution:\n      type: pareto\n"), "missing param"},
		{"no clients", "version: \"1\"\naggregate_rate: 10\nduration_s: 1\nclients:\n", "clients"},
		{"no slo target", strings.Replace(base(""), "slo_target_ms: 100", "slo_target_ms: 0", 1), "slo_target_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseSpecConflictingSLOTargets(t *testing.T) {
	doc := `
version: "1"
aggregate_rate: 10
duration_s: 1
clients:
  - id: a
    rate_fraction: 0.5
    class: amazon
    slo_class: shared
    slo_target_ms: 100
  - id: b
    rate_fraction: 0.5
    class: teams
    slo_class: shared
    slo_target_ms: 200
`
	_, err := ParseSpec([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "conflicting targets") {
		t.Fatalf("err = %v", err)
	}
}

// TestInterArrivalMeansMatchRate checks every arrival process yields a
// mean gap of 1/rate, so rate fractions are honored regardless of
// burst shape.
func TestInterArrivalMeansMatchRate(t *testing.T) {
	cases := []ArrivalSpec{
		{Process: "poisson"},
		{Process: "gamma", CV: 0.5},
		{Process: "gamma", CV: 3},
		{Process: "weibull", Shape: 0.7},
		{Process: "weibull", Shape: 2},
	}
	for _, ar := range cases {
		c := ClientSpec{ID: "t", Arrival: ar}
		d, err := c.interArrival(25)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := d.Mean(), 1.0/25; math.Abs(got-want) > 1e-9 {
			t.Fatalf("%+v: mean gap = %v, want %v", ar, got, want)
		}
	}
}

func TestSizeSpecMixture(t *testing.T) {
	doc := `
version: "1"
aggregate_rate: 10
duration_s: 1
clients:
  - id: mixed
    rate_fraction: 1.0
    class: amazon
    slo_class: x
    slo_target_ms: 100
    size_distribution:
      type: mixture
      components:
        - type: constant
          params:
            value: 2
          weight: 0.7
        - type: pareto
          params:
            xm: 4
            alpha: 1.5
          weight: 0.3
`
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	d, err := spec.Clients[0].Size.Dist()
	if err != nil {
		t.Fatal(err)
	}
	// Mixture mean = 0.7*2 + 0.3*(1.5*4/0.5) = 1.4 + 3.6 = 5.0
	if got := d.Mean(); math.Abs(got-5.0) > 1e-9 {
		t.Fatalf("mixture mean = %v", got)
	}
}
