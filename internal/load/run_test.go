package load

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastSpec builds a spec whose schedule completes quickly in tests.
func fastSpec(t *testing.T, numRequests int) *Spec {
	t.Helper()
	spec, err := ParseSpec([]byte(`
version: "1"
seed: 3
aggregate_rate: 2000
num_requests: ` + itoa(numRequests) + `
clients:
  - id: fast
    rate_fraction: 0.5
    class: amazon
    format: pcap
    slo_class: batch
    slo_target_ms: 1000
  - id: slow
    rate_fraction: 0.5
    class: teams
    format: csv
    slo_class: realtime
    slo_target_ms: 50
`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func itoa(n int) string {
	b, err := json.Marshal(n)
	if err != nil {
		panic("unreachable") //tracelint:allow paniccheck json.Marshal of an int cannot fail
	}
	return string(b)
}

func TestRunCollectsOutcomes(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req generateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad body: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		mu.Lock()
		got[req.Class]++
		mu.Unlock()
		if req.Class == "teams" {
			// Shed the realtime class to exercise the 429 bucket.
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		if _, err := w.Write([]byte("payload")); err != nil {
			t.Errorf("write: %v", err)
		}
	}))
	defer srv.Close()

	spec := fastSpec(t, 40)
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	outcomes, err := Run(context.Background(), sched, RunConfig{BaseURL: srv.URL, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(sched.Requests) {
		t.Fatalf("outcomes = %d, want %d", len(outcomes), len(sched.Requests))
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.Request.Index != i {
			t.Fatalf("outcome %d out of schedule order", i)
		}
		switch o.Request.Class {
		case "amazon":
			if o.Status != http.StatusOK || o.Bytes != int64(len("payload")) {
				t.Fatalf("amazon outcome = %+v", o)
			}
		case "teams":
			if o.Status != http.StatusTooManyRequests {
				t.Fatalf("teams outcome = %+v", o)
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if got["amazon"] != 20 || got["teams"] != 20 {
		t.Fatalf("server saw %v", got)
	}

	rep := BuildReport(sched, outcomes, srv.URL, time.Since(start))
	if rep.Totals.OK != 20 || rep.Totals.Rejected != 20 {
		t.Fatalf("totals = %+v", rep.Totals)
	}
	if rep.Totals.Total() != 40 {
		t.Fatalf("total = %d", rep.Totals.Total())
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	batch, realtime := rep.Classes[0], rep.Classes[1]
	if batch.SLOClass != "batch" || realtime.SLOClass != "realtime" {
		t.Fatalf("class order = %q, %q", batch.SLOClass, realtime.SLOClass)
	}
	if batch.Counts.OK != 20 || !(batch.Attainment > 0.99) {
		t.Fatalf("batch = %+v", batch)
	}
	// Every realtime request was shed, so attainment is zero.
	if realtime.Counts.Rejected != 20 || realtime.Attainment > 0 {
		t.Fatalf("realtime = %+v", realtime)
	}
	if !(batch.P50Ms > 0) || batch.P99Ms < batch.P50Ms {
		t.Fatalf("latency percentiles = %v/%v", batch.P50Ms, batch.P99Ms)
	}
}

func TestRunContextCancelMarksUnsent(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)

	spec, err := ParseSpec([]byte(`
version: "1"
aggregate_rate: 5
duration_s: 60
clients:
  - id: a
    rate_fraction: 1.0
    class: amazon
    slo_class: x
    slo_target_ms: 100
`))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Requests) == 0 {
		t.Skip("empty schedule for this seed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	outcomes, err := Run(ctx, sched, RunConfig{BaseURL: srv.URL, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	unsent := 0
	for i := range outcomes {
		if strings.HasPrefix(outcomes[i].Err, "unsent:") {
			unsent++
		}
	}
	if unsent == 0 {
		t.Fatal("expected unsent outcomes after cancel")
	}
	rep := BuildReport(sched, outcomes, srv.URL, 300*time.Millisecond)
	if rep.Totals.Unsent != unsent {
		t.Fatalf("report unsent = %d, want %d", rep.Totals.Unsent, unsent)
	}
}

func TestReportWriters(t *testing.T) {
	spec := fastSpec(t, 10)
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]Outcome, len(sched.Requests))
	for i := range outcomes {
		outcomes[i] = Outcome{Request: sched.Requests[i], Status: 200, Latency: 10 * time.Millisecond}
	}
	rep := BuildReport(sched, outcomes, "http://test", time.Second)

	var jsonBuf strings.Builder
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(jsonBuf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.ScheduleDigest != sched.Digest() || back.Totals.OK != len(outcomes) {
		t.Fatalf("round-trip = %+v", back)
	}

	var tableBuf strings.Builder
	if err := rep.WriteTable(&tableBuf); err != nil {
		t.Fatal(err)
	}
	table := tableBuf.String()
	for _, want := range []string{"slo class", "batch", "realtime", "attain"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}
