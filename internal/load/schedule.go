package load

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"trafficdiff/internal/stats"
)

// Request is one scheduled request in a load run.
type Request struct {
	// Index is the request's position in the merged firing order.
	Index int `json:"index"`
	// Client is the originating client's ID.
	Client string `json:"client"`
	// Class, Format, SLOClass and SLOTargetMs copy through from the
	// client spec.
	Class       string  `json:"class"`
	Format      string  `json:"format"`
	SLOClass    string  `json:"slo_class"`
	SLOTargetMs float64 `json:"slo_target_ms"`
	// Offset is the scheduled send time relative to run start.
	Offset time.Duration `json:"offset_ns"`
	// Flows is the requested flow count (request size).
	Flows int `json:"flows"`
	// Seed is the per-request generation seed sent to the server, so a
	// load run's responses are themselves reproducible.
	Seed uint64 `json:"seed"`
	// TimeoutMs, when positive, is forwarded as the request deadline.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// Schedule is the fully materialized, deterministic request stream a
// spec expands to. Building it is sequential and independent of
// GOMAXPROCS; running it (run.go) is the only concurrent part.
type Schedule struct {
	Seed     uint64
	Duration time.Duration // offset of the last request
	Requests []Request
}

// BuildSchedule expands a spec into its request schedule. Each client
// draws gaps, sizes and per-request seeds from its own Split stream,
// derived from the spec seed in client declaration order; the streams
// are then merged by offset with a stable sort (ties keep declaration
// order).
func BuildSchedule(spec *Spec) (*Schedule, error) {
	root := stats.NewRNG(spec.Seed)
	var all []Request
	for ci := range spec.Clients {
		c := &spec.Clients[ci]
		// Split unconditionally so adding/removing a later client never
		// perturbs earlier clients' streams.
		r := root.Split()
		rate := spec.AggregateRate * c.RateFraction
		gapDist, err := c.interArrival(rate)
		if err != nil {
			return nil, err
		}
		sizeDist, err := c.Size.Dist()
		if err != nil {
			return nil, fmt.Errorf("client %q: %w", c.ID, err)
		}
		lo, hi := c.Size.clampBounds()
		budget := clientBudget(spec, ci)
		t := 0.0
		for n := 0; budget < 0 || n < budget; n++ {
			// Draw order is part of the determinism contract: gap, then
			// size, then seed.
			gap := gapDist.Sample(r)
			if gap < 0 || math.IsNaN(gap) {
				gap = 0
			}
			t += gap
			if spec.DurationS > 0 && t > spec.DurationS {
				break
			}
			size := sizeDist.Sample(r)
			if math.IsNaN(size) {
				size = lo
			}
			size = math.Round(size)
			if size < lo {
				size = lo
			}
			if size > hi {
				size = hi
			}
			seed := r.Uint64()
			all = append(all, Request{
				Client:      c.ID,
				Class:       c.Class,
				Format:      c.Format,
				SLOClass:    c.SLOClass,
				SLOTargetMs: c.SLOTargetMs,
				Offset:      time.Duration(t * float64(time.Second)),
				Flows:       int(size),
				Seed:        seed,
				TimeoutMs:   c.TimeoutMs,
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Offset < all[j].Offset })
	sched := &Schedule{Seed: spec.Seed, Requests: all}
	for i := range all {
		all[i].Index = i
		if all[i].Offset > sched.Duration {
			sched.Duration = all[i].Offset
		}
	}
	return sched, nil
}

// clientBudget apportions spec.NumRequests across clients by rate
// fraction using largest remainders, so budgets sum exactly to
// NumRequests (a small fraction can legitimately get 0). Returns -1
// (unbounded) when no request budget is set — duration bounds the run.
func clientBudget(spec *Spec, idx int) int {
	if spec.NumRequests <= 0 {
		return -1
	}
	n := len(spec.Clients)
	floors := make([]int, n)
	rems := make([]float64, n)
	total := 0
	for i := range spec.Clients {
		exact := float64(spec.NumRequests) * spec.Clients[i].RateFraction
		floors[i] = int(math.Floor(exact))
		rems[i] = exact - float64(floors[i])
		total += floors[i]
	}
	// Hand the leftover requests to the largest remainders; ties go to
	// earlier clients so apportionment is deterministic.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rems[order[a]] > rems[order[b]] })
	for k := 0; k < spec.NumRequests-total; k++ {
		floors[order[k%n]]++
	}
	return floors[idx]
}

// Digest returns a stable hash of the schedule's observable content —
// the cheap way for tests and reports to assert two runs offered the
// exact same request stream.
func (s *Schedule) Digest() string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		// hash.Hash.Write is documented to never return an error.
		_, _ = h.Write(buf[:])
	}
	writeStr := func(v string) {
		writeU64(uint64(len(v)))
		// hash.Hash.Write is documented to never return an error.
		_, _ = h.Write([]byte(v))
	}
	writeU64(s.Seed)
	writeU64(uint64(len(s.Requests)))
	for i := range s.Requests {
		q := &s.Requests[i]
		writeStr(q.Client)
		writeStr(q.Class)
		writeStr(q.Format)
		writeStr(q.SLOClass)
		writeU64(math.Float64bits(q.SLOTargetMs))
		writeU64(uint64(q.Offset))
		writeU64(uint64(q.Flows))
		writeU64(q.Seed)
		writeU64(uint64(q.TimeoutMs))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
