package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"trafficdiff/internal/stats"
)

// StatusCounts buckets request outcomes by terminal status.
type StatusCounts struct {
	OK        int `json:"ok"`         // 2xx
	Rejected  int `json:"rejected"`   // 429 backpressure
	Draining  int `json:"draining"`   // 503 drain / gate closed
	Deadline  int `json:"deadline"`   // 504 server-side expiry
	Upstream  int `json:"upstream"`   // 502 router with no live replica
	OtherHTTP int `json:"other_http"` // any other non-2xx status
	Transport int `json:"transport"`  // status 0: connection/timeout errors
	Unsent    int `json:"unsent"`     // cancelled before leaving the harness
}

// Total is the number of scheduled requests the counts cover.
func (s StatusCounts) Total() int {
	return s.OK + s.Rejected + s.Draining + s.Deadline + s.Upstream + s.OtherHTTP + s.Transport + s.Unsent
}

// ClassReport aggregates one SLO class's outcomes.
type ClassReport struct {
	SLOClass    string  `json:"slo_class"`
	TargetMs    float64 `json:"target_ms"`
	Requests    int     `json:"requests"`
	FlowsServed int64   `json:"flows_served"`

	Counts StatusCounts `json:"counts"`

	// Latency percentiles over successful (2xx) requests, ms.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`

	// ThroughputRPS is completed-2xx requests per second of wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Attainment is the fraction of ALL scheduled requests in the class
	// that completed 2xx within the target — sheds, timeouts and
	// transport failures all count against it, so an overloaded server
	// can't look good by only answering the requests it kept.
	Attainment float64 `json:"attainment"`
}

// Report is a complete load-run result.
type Report struct {
	// ScheduleDigest identifies the exact offered request stream, so two
	// reports are comparable iff their digests match.
	ScheduleDigest string  `json:"schedule_digest"`
	Seed           uint64  `json:"seed"`
	BaseURL        string  `json:"base_url"`
	Requests       int     `json:"requests"`
	WallSeconds    float64 `json:"wall_seconds"`
	OfferedRPS     float64 `json:"offered_rps"`

	Totals StatusCounts `json:"totals"`
	// MaxSendDelayMs is the worst observed lag behind the schedule; a
	// large value means the harness could not keep up and the offered
	// load was lower than the spec claims.
	MaxSendDelayMs float64 `json:"max_send_delay_ms"`

	Classes []ClassReport `json:"classes"`
}

// bucket classifies one outcome into its StatusCounts field.
func (s *StatusCounts) bucket(o *Outcome) {
	switch {
	case o.Status >= 200 && o.Status < 300:
		s.OK++
	case o.Status == 429:
		s.Rejected++
	case o.Status == 503:
		s.Draining++
	case o.Status == 504:
		s.Deadline++
	case o.Status == 502:
		s.Upstream++
	case o.Status != 0:
		s.OtherHTTP++
	case len(o.Err) >= 7 && o.Err[:7] == "unsent:":
		s.Unsent++
	default:
		s.Transport++
	}
}

// BuildReport aggregates run outcomes into per-SLO-class numbers.
// wall is the run's total wall-clock time (schedule duration plus
// drain of the last in-flight requests).
func BuildReport(sched *Schedule, outcomes []Outcome, baseURL string, wall time.Duration) *Report {
	rep := &Report{
		ScheduleDigest: sched.Digest(),
		Seed:           sched.Seed,
		BaseURL:        baseURL,
		Requests:       len(outcomes),
		WallSeconds:    wall.Seconds(),
	}
	if sched.Duration > 0 {
		rep.OfferedRPS = float64(len(sched.Requests)) / sched.Duration.Seconds()
	}
	byClass := map[string]*ClassReport{}
	latencies := map[string][]float64{}
	for i := range outcomes {
		o := &outcomes[i]
		rep.Totals.bucket(o)
		if ms := o.SendDelay.Seconds() * 1000; ms > rep.MaxSendDelayMs {
			rep.MaxSendDelayMs = ms
		}
		cr := byClass[o.Request.SLOClass]
		if cr == nil {
			cr = &ClassReport{SLOClass: o.Request.SLOClass, TargetMs: o.Request.SLOTargetMs}
			byClass[o.Request.SLOClass] = cr
		}
		cr.Requests++
		cr.Counts.bucket(o)
		if o.Status >= 200 && o.Status < 300 {
			ms := o.Latency.Seconds() * 1000
			latencies[cr.SLOClass] = append(latencies[cr.SLOClass], ms)
			cr.FlowsServed += int64(o.Request.Flows)
			if ms <= cr.TargetMs {
				// Attainment numerator; divided by Requests below.
				cr.Attainment++
			}
		}
	}
	for _, name := range sortedClassNames(byClass) {
		cr := byClass[name]
		lats := latencies[name]
		sort.Float64s(lats)
		if len(lats) > 0 {
			cr.P50Ms = stats.Quantile(lats, 0.50)
			cr.P95Ms = stats.Quantile(lats, 0.95)
			cr.P99Ms = stats.Quantile(lats, 0.99)
			cr.MaxMs = lats[len(lats)-1]
			sum := 0.0
			for _, v := range lats {
				sum += v
			}
			cr.MeanMs = sum / float64(len(lats))
		}
		if wall > 0 {
			cr.ThroughputRPS = float64(cr.Counts.OK) / wall.Seconds()
		}
		if cr.Requests > 0 {
			cr.Attainment /= float64(cr.Requests)
		}
		rep.Classes = append(rep.Classes, *cr)
	}
	return rep
}

func sortedClassNames(m map[string]*ClassReport) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes the human-readable summary table. Formatting goes
// through a buffer so there is exactly one fallible write at the end.
func (r *Report) WriteTable(w io.Writer) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "load run: %d requests offered at %.1f req/s over %.1fs wall (seed %d)\n",
		r.Requests, r.OfferedRPS, r.WallSeconds, r.Seed)
	fmt.Fprintf(&buf, "schedule %s\n", r.ScheduleDigest[:16])
	fmt.Fprintf(&buf, "totals: ok=%d 429=%d 503=%d 504=%d 502=%d other=%d transport=%d unsent=%d  max send delay %.1fms\n\n",
		r.Totals.OK, r.Totals.Rejected, r.Totals.Draining, r.Totals.Deadline,
		r.Totals.Upstream, r.Totals.OtherHTTP, r.Totals.Transport, r.Totals.Unsent,
		r.MaxSendDelayMs)
	// Size the first column to the longest class name.
	classW := len("slo class")
	for i := range r.Classes {
		if n := len(r.Classes[i].SLOClass); n > classW {
			classW = n
		}
	}
	fmt.Fprintf(&buf, "%-*s  %8s %6s %6s %6s %9s %9s %9s %10s %10s\n",
		classW, "slo class", "target", "reqs", "ok", "shed", "p50", "p95", "p99", "thruput", "attain")
	for i := range r.Classes {
		c := &r.Classes[i]
		shed := c.Counts.Rejected + c.Counts.Draining + c.Counts.Upstream
		fmt.Fprintf(&buf, "%-*s  %6.0fms %6d %6d %6d %7.1fms %7.1fms %7.1fms %8.1f/s %9.1f%%\n",
			classW, c.SLOClass, c.TargetMs, c.Requests, c.Counts.OK, shed,
			c.P50Ms, c.P95Ms, c.P99Ms, c.ThroughputRPS, 100*c.Attainment)
	}
	_, err := w.Write(buf.Bytes())
	return err
}
